# Empty dependencies file for bench_rle_index.
# This may be replaced when dependencies are built.
