file(REMOVE_RECURSE
  "CMakeFiles/bench_rle_index.dir/bench_rle_index.cc.o"
  "CMakeFiles/bench_rle_index.dir/bench_rle_index.cc.o.d"
  "bench_rle_index"
  "bench_rle_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rle_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
