file(REMOVE_RECURSE
  "CMakeFiles/bench_connections.dir/bench_connections.cc.o"
  "CMakeFiles/bench_connections.dir/bench_connections.cc.o.d"
  "bench_connections"
  "bench_connections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
