file(REMOVE_RECURSE
  "CMakeFiles/bench_intelligent_cache.dir/bench_intelligent_cache.cc.o"
  "CMakeFiles/bench_intelligent_cache.dir/bench_intelligent_cache.cc.o.d"
  "bench_intelligent_cache"
  "bench_intelligent_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intelligent_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
