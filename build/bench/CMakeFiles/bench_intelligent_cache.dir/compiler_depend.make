# Empty compiler generated dependencies file for bench_intelligent_cache.
# This may be replaced when dependencies are built.
