# Empty compiler generated dependencies file for bench_dataserver_temp.
# This may be replaced when dependencies are built.
