file(REMOVE_RECURSE
  "CMakeFiles/bench_dataserver_temp.dir/bench_dataserver_temp.cc.o"
  "CMakeFiles/bench_dataserver_temp.dir/bench_dataserver_temp.cc.o.d"
  "bench_dataserver_temp"
  "bench_dataserver_temp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataserver_temp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
