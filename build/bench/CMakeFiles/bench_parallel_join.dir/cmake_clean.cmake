file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_join.dir/bench_parallel_join.cc.o"
  "CMakeFiles/bench_parallel_join.dir/bench_parallel_join.cc.o.d"
  "bench_parallel_join"
  "bench_parallel_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
