# Empty dependencies file for bench_parallel_join.
# This may be replaced when dependencies are built.
