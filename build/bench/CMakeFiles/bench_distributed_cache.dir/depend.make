# Empty dependencies file for bench_distributed_cache.
# This may be replaced when dependencies are built.
