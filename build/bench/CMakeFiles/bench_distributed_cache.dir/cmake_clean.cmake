file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_cache.dir/bench_distributed_cache.cc.o"
  "CMakeFiles/bench_distributed_cache.dir/bench_distributed_cache.cc.o.d"
  "bench_distributed_cache"
  "bench_distributed_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
