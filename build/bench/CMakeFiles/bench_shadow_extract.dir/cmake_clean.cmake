file(REMOVE_RECURSE
  "CMakeFiles/bench_shadow_extract.dir/bench_shadow_extract.cc.o"
  "CMakeFiles/bench_shadow_extract.dir/bench_shadow_extract.cc.o.d"
  "bench_shadow_extract"
  "bench_shadow_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shadow_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
