# Empty compiler generated dependencies file for bench_shadow_extract.
# This may be replaced when dependencies are built.
