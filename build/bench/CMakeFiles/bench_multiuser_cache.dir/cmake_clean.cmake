file(REMOVE_RECURSE
  "CMakeFiles/bench_multiuser_cache.dir/bench_multiuser_cache.cc.o"
  "CMakeFiles/bench_multiuser_cache.dir/bench_multiuser_cache.cc.o.d"
  "bench_multiuser_cache"
  "bench_multiuser_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiuser_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
