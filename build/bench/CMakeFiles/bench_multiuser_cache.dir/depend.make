# Empty dependencies file for bench_multiuser_cache.
# This may be replaced when dependencies are built.
