# Empty compiler generated dependencies file for backend_architectures.
# This may be replaced when dependencies are built.
