file(REMOVE_RECURSE
  "CMakeFiles/backend_architectures.dir/backend_architectures.cpp.o"
  "CMakeFiles/backend_architectures.dir/backend_architectures.cpp.o.d"
  "backend_architectures"
  "backend_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
