file(REMOVE_RECURSE
  "CMakeFiles/blending.dir/blending.cpp.o"
  "CMakeFiles/blending.dir/blending.cpp.o.d"
  "blending"
  "blending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
