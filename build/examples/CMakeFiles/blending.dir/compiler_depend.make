# Empty compiler generated dependencies file for blending.
# This may be replaced when dependencies are built.
