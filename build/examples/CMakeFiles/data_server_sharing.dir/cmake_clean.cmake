file(REMOVE_RECURSE
  "CMakeFiles/data_server_sharing.dir/data_server_sharing.cpp.o"
  "CMakeFiles/data_server_sharing.dir/data_server_sharing.cpp.o.d"
  "data_server_sharing"
  "data_server_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_server_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
