# Empty compiler generated dependencies file for data_server_sharing.
# This may be replaced when dependencies are built.
