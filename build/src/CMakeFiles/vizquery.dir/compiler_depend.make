# Empty compiler generated dependencies file for vizquery.
# This may be replaced when dependencies are built.
