
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/distributed.cc" "src/CMakeFiles/vizquery.dir/cache/distributed.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/cache/distributed.cc.o.d"
  "/root/repo/src/cache/intelligent_cache.cc" "src/CMakeFiles/vizquery.dir/cache/intelligent_cache.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/cache/intelligent_cache.cc.o.d"
  "/root/repo/src/cache/literal_cache.cc" "src/CMakeFiles/vizquery.dir/cache/literal_cache.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/cache/literal_cache.cc.o.d"
  "/root/repo/src/cache/persistence.cc" "src/CMakeFiles/vizquery.dir/cache/persistence.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/cache/persistence.cc.o.d"
  "/root/repo/src/common/collation.cc" "src/CMakeFiles/vizquery.dir/common/collation.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/common/collation.cc.o.d"
  "/root/repo/src/common/result_table.cc" "src/CMakeFiles/vizquery.dir/common/result_table.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/common/result_table.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/vizquery.dir/common/status.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/vizquery.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/common/str_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/vizquery.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/vizquery.dir/common/types.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/common/types.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/vizquery.dir/common/value.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/common/value.cc.o.d"
  "/root/repo/src/dashboard/blending.cc" "src/CMakeFiles/vizquery.dir/dashboard/blending.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/dashboard/blending.cc.o.d"
  "/root/repo/src/dashboard/dashboard.cc" "src/CMakeFiles/vizquery.dir/dashboard/dashboard.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/dashboard/dashboard.cc.o.d"
  "/root/repo/src/dashboard/fusion.cc" "src/CMakeFiles/vizquery.dir/dashboard/fusion.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/dashboard/fusion.cc.o.d"
  "/root/repo/src/dashboard/opportunity_graph.cc" "src/CMakeFiles/vizquery.dir/dashboard/opportunity_graph.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/dashboard/opportunity_graph.cc.o.d"
  "/root/repo/src/dashboard/prefetcher.cc" "src/CMakeFiles/vizquery.dir/dashboard/prefetcher.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/dashboard/prefetcher.cc.o.d"
  "/root/repo/src/dashboard/query_service.cc" "src/CMakeFiles/vizquery.dir/dashboard/query_service.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/dashboard/query_service.cc.o.d"
  "/root/repo/src/dashboard/renderer.cc" "src/CMakeFiles/vizquery.dir/dashboard/renderer.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/dashboard/renderer.cc.o.d"
  "/root/repo/src/extract/csv_parser.cc" "src/CMakeFiles/vizquery.dir/extract/csv_parser.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/extract/csv_parser.cc.o.d"
  "/root/repo/src/extract/shadow_extract.cc" "src/CMakeFiles/vizquery.dir/extract/shadow_extract.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/extract/shadow_extract.cc.o.d"
  "/root/repo/src/extract/type_inference.cc" "src/CMakeFiles/vizquery.dir/extract/type_inference.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/extract/type_inference.cc.o.d"
  "/root/repo/src/federation/connection_pool.cc" "src/CMakeFiles/vizquery.dir/federation/connection_pool.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/federation/connection_pool.cc.o.d"
  "/root/repo/src/federation/data_source.cc" "src/CMakeFiles/vizquery.dir/federation/data_source.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/federation/data_source.cc.o.d"
  "/root/repo/src/federation/simulated_source.cc" "src/CMakeFiles/vizquery.dir/federation/simulated_source.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/federation/simulated_source.cc.o.d"
  "/root/repo/src/query/abstract_query.cc" "src/CMakeFiles/vizquery.dir/query/abstract_query.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/query/abstract_query.cc.o.d"
  "/root/repo/src/query/capabilities.cc" "src/CMakeFiles/vizquery.dir/query/capabilities.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/query/capabilities.cc.o.d"
  "/root/repo/src/query/compiler.cc" "src/CMakeFiles/vizquery.dir/query/compiler.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/query/compiler.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/vizquery.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/sql_dialect.cc" "src/CMakeFiles/vizquery.dir/query/sql_dialect.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/query/sql_dialect.cc.o.d"
  "/root/repo/src/server/data_server.cc" "src/CMakeFiles/vizquery.dir/server/data_server.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/server/data_server.cc.o.d"
  "/root/repo/src/server/temp_table_registry.cc" "src/CMakeFiles/vizquery.dir/server/temp_table_registry.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/server/temp_table_registry.cc.o.d"
  "/root/repo/src/server/workbook.cc" "src/CMakeFiles/vizquery.dir/server/workbook.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/server/workbook.cc.o.d"
  "/root/repo/src/tde/engine.cc" "src/CMakeFiles/vizquery.dir/tde/engine.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/engine.cc.o.d"
  "/root/repo/src/tde/exec/aggregate.cc" "src/CMakeFiles/vizquery.dir/tde/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/aggregate.cc.o.d"
  "/root/repo/src/tde/exec/batch.cc" "src/CMakeFiles/vizquery.dir/tde/exec/batch.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/batch.cc.o.d"
  "/root/repo/src/tde/exec/cost_profile.cc" "src/CMakeFiles/vizquery.dir/tde/exec/cost_profile.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/cost_profile.cc.o.d"
  "/root/repo/src/tde/exec/exchange.cc" "src/CMakeFiles/vizquery.dir/tde/exec/exchange.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/exchange.cc.o.d"
  "/root/repo/src/tde/exec/expression.cc" "src/CMakeFiles/vizquery.dir/tde/exec/expression.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/expression.cc.o.d"
  "/root/repo/src/tde/exec/join.cc" "src/CMakeFiles/vizquery.dir/tde/exec/join.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/join.cc.o.d"
  "/root/repo/src/tde/exec/operators.cc" "src/CMakeFiles/vizquery.dir/tde/exec/operators.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/operators.cc.o.d"
  "/root/repo/src/tde/exec/rle_index.cc" "src/CMakeFiles/vizquery.dir/tde/exec/rle_index.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/rle_index.cc.o.d"
  "/root/repo/src/tde/exec/scan.cc" "src/CMakeFiles/vizquery.dir/tde/exec/scan.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/scan.cc.o.d"
  "/root/repo/src/tde/exec/sort.cc" "src/CMakeFiles/vizquery.dir/tde/exec/sort.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/exec/sort.cc.o.d"
  "/root/repo/src/tde/plan/binder.cc" "src/CMakeFiles/vizquery.dir/tde/plan/binder.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/plan/binder.cc.o.d"
  "/root/repo/src/tde/plan/logical.cc" "src/CMakeFiles/vizquery.dir/tde/plan/logical.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/plan/logical.cc.o.d"
  "/root/repo/src/tde/plan/optimizer.cc" "src/CMakeFiles/vizquery.dir/tde/plan/optimizer.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/plan/optimizer.cc.o.d"
  "/root/repo/src/tde/plan/parallelizer.cc" "src/CMakeFiles/vizquery.dir/tde/plan/parallelizer.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/plan/parallelizer.cc.o.d"
  "/root/repo/src/tde/plan/properties.cc" "src/CMakeFiles/vizquery.dir/tde/plan/properties.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/plan/properties.cc.o.d"
  "/root/repo/src/tde/plan/rewriter.cc" "src/CMakeFiles/vizquery.dir/tde/plan/rewriter.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/plan/rewriter.cc.o.d"
  "/root/repo/src/tde/plan/tql_parser.cc" "src/CMakeFiles/vizquery.dir/tde/plan/tql_parser.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/plan/tql_parser.cc.o.d"
  "/root/repo/src/tde/plan/translator.cc" "src/CMakeFiles/vizquery.dir/tde/plan/translator.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/plan/translator.cc.o.d"
  "/root/repo/src/tde/storage/column.cc" "src/CMakeFiles/vizquery.dir/tde/storage/column.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/storage/column.cc.o.d"
  "/root/repo/src/tde/storage/database.cc" "src/CMakeFiles/vizquery.dir/tde/storage/database.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/storage/database.cc.o.d"
  "/root/repo/src/tde/storage/encoding.cc" "src/CMakeFiles/vizquery.dir/tde/storage/encoding.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/storage/encoding.cc.o.d"
  "/root/repo/src/tde/storage/file_format.cc" "src/CMakeFiles/vizquery.dir/tde/storage/file_format.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/storage/file_format.cc.o.d"
  "/root/repo/src/tde/storage/table.cc" "src/CMakeFiles/vizquery.dir/tde/storage/table.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/tde/storage/table.cc.o.d"
  "/root/repo/src/workload/faa_generator.cc" "src/CMakeFiles/vizquery.dir/workload/faa_generator.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/workload/faa_generator.cc.o.d"
  "/root/repo/src/workload/flights_dashboards.cc" "src/CMakeFiles/vizquery.dir/workload/flights_dashboards.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/workload/flights_dashboards.cc.o.d"
  "/root/repo/src/workload/traffic.cc" "src/CMakeFiles/vizquery.dir/workload/traffic.cc.o" "gcc" "src/CMakeFiles/vizquery.dir/workload/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
