file(REMOVE_RECURSE
  "libvizquery.a"
)
