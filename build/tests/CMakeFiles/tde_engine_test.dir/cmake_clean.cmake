file(REMOVE_RECURSE
  "CMakeFiles/tde_engine_test.dir/tde_engine_test.cc.o"
  "CMakeFiles/tde_engine_test.dir/tde_engine_test.cc.o.d"
  "tde_engine_test"
  "tde_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tde_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
