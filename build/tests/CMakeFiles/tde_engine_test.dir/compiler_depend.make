# Empty compiler generated dependencies file for tde_engine_test.
# This may be replaced when dependencies are built.
