file(REMOVE_RECURSE
  "CMakeFiles/workbook_test.dir/workbook_test.cc.o"
  "CMakeFiles/workbook_test.dir/workbook_test.cc.o.d"
  "workbook_test"
  "workbook_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workbook_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
