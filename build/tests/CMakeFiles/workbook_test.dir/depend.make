# Empty dependencies file for workbook_test.
# This may be replaced when dependencies are built.
