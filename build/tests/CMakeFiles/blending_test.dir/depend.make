# Empty dependencies file for blending_test.
# This may be replaced when dependencies are built.
