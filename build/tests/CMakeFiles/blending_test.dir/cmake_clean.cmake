file(REMOVE_RECURSE
  "CMakeFiles/blending_test.dir/blending_test.cc.o"
  "CMakeFiles/blending_test.dir/blending_test.cc.o.d"
  "blending_test"
  "blending_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blending_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
