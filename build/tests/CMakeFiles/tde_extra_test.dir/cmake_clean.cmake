file(REMOVE_RECURSE
  "CMakeFiles/tde_extra_test.dir/tde_extra_test.cc.o"
  "CMakeFiles/tde_extra_test.dir/tde_extra_test.cc.o.d"
  "tde_extra_test"
  "tde_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tde_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
