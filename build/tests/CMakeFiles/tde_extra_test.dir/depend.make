# Empty dependencies file for tde_extra_test.
# This may be replaced when dependencies are built.
