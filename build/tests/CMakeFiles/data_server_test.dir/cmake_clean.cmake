file(REMOVE_RECURSE
  "CMakeFiles/data_server_test.dir/data_server_test.cc.o"
  "CMakeFiles/data_server_test.dir/data_server_test.cc.o.d"
  "data_server_test"
  "data_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
