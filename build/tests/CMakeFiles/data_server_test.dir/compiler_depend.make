# Empty compiler generated dependencies file for data_server_test.
# This may be replaced when dependencies are built.
