// Encoding-aware execution bench (DESIGN.md §11): the Scan→Filter→
// Aggregate hot path on compressed columns vs the decoded row path.
//
// Two workloads on a 2M-row FAA-shaped fact table sorted by a 10-value
// dictionary key (so the key is heavily run-length encoded, like
// `carrier` in the flights extract):
//
//   * group-by — the FAA smoke probe shape: COUNT(*) per dictionary key.
//     The dense path folds whole key runs (one multiply-add per run
//     segment) where the row path hashes every row. A SUM(v) variant over
//     a plain int column is reported alongside (per-row accumulation
//     remains, only the hash probe is saved).
//   * filter — a selective predicate over a second RLE column (~3% of
//     rows survive, whole runs at a time). The encoded filter evaluates
//     once per run and emits a selection vector; the row path evaluates
//     per row and materializes survivors.
//
// Both comparisons flip only enable_encoded_exec. Streaming aggregation
// is disabled on both sides (the sorted key would otherwise claim the
// group-by for a different — also fast — path; E16/engine tests cover
// it), and the RLE IndexTable rewrite is disabled for the filter workload
// (E7 measures that axis; here the scan shape must stay fixed).
//
// --emit-json=PATH writes BENCH_columnar.json and enforces the acceptance
// bars: >=5x on the dictionary-key group-by, >=10x on the selective
// RLE-run filter, and an EXPLAIN ANALYZE plan confirming the encoded
// operators actually ran (exit 2 below bar, exit 1 on malfunction).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/common/rng.h"
#include "src/tde/engine.h"
#include "src/tde/storage/database.h"
#include "src/tde/storage/table.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 2000000;
constexpr int kKeyCardinality = 10;  // carrier-like
constexpr int kRunValues = 64;       // second RLE column's distinct values

std::shared_ptr<tde::Database> ColumnarDb() {
  static std::shared_ptr<tde::Database> db;
  if (db != nullptr) return db;
  Rng rng(2015);
  tde::TableBuilder builder("fact",
                            {tde::ColumnInfo{"k", DataType::String()},
                             tde::ColumnInfo{"r", DataType::Int64()},
                             tde::ColumnInfo{"v", DataType::Int64()}});
  // k: sorted 10-value dictionary key -> RLE over tokens (kAuto picks it).
  // r: globally increasing bucket -> RLE, runs of kRows/kRunValues.
  // v: plain random int measure.
  for (int64_t i = 0; i < kRows; ++i) {
    std::string k = "c" + std::to_string(i / (kRows / kKeyCardinality));
    int64_t r = i / (kRows / kRunValues);
    (void)builder.AddRow({Value(k), Value(r), Value(rng.Range(0, 1000))});
  }
  builder.DeclareSorted({0, 1});
  db = std::make_shared<tde::Database>("columnar");
  (void)db->AddTable(*builder.Finish());
  return db;
}

const char kGroupByCount[] =
    "(aggregate ((k k)) ((n count*)) (scan fact))";
const char kGroupBySum[] =
    "(aggregate ((k k)) ((n count*) (s sum v)) (scan fact))";
const char kSelectiveFilter[] =
    "(aggregate ((k k)) ((n count*)) (select (< r 2) (scan fact)))";

tde::QueryOptions BenchOptions(bool encoded) {
  tde::QueryOptions o = tde::QueryOptions::Serial();
  o.collect_analysis = false;
  o.optimizer.enable_encoded_exec = encoded;
  o.optimizer.enable_streaming_agg = false;
  o.optimizer.rle_index = tde::OptimizerOptions::RleIndexMode::kOff;
  return o;
}

// Best-of-`reps` wall milliseconds (first run is a discarded warmup).
double TimeQuery(tde::TdeEngine& engine, const std::string& tql,
                 const tde::QueryOptions& options, int reps = 5) {
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto result = engine.Execute(tql, options);
    auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i > 0) best = std::min(best, ms);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Harness benches (quick variants; the acceptance run is --emit-json).

void BM_GroupByDictKey(benchmark::State& state) {
  tde::TdeEngine engine(ColumnarDb());
  tde::QueryOptions options = BenchOptions(state.range(0) == 1);
  for (auto _ : state) {
    auto result = engine.Execute(kGroupByCount, options);
    if (!result.ok()) state.SkipWithError("query failed");
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(state.range(0) == 1 ? "encoded" : "decoded");
}
BENCHMARK(BM_GroupByDictKey)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SelectiveRleFilter(benchmark::State& state) {
  tde::TdeEngine engine(ColumnarDb());
  tde::QueryOptions options = BenchOptions(state.range(0) == 1);
  for (auto _ : state) {
    auto result = engine.Execute(kSelectiveFilter, options);
    if (!result.ok()) state.SkipWithError("query failed");
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(state.range(0) == 1 ? "encoded" : "decoded");
}
BENCHMARK(BM_SelectiveRleFilter)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --emit-json=PATH: the BENCH_columnar.json record (EXPERIMENTS.md E17).

int EmitJson(const std::string& path) {
  tde::TdeEngine engine(ColumnarDb());
  std::fprintf(stderr, "columnar: %lld rows, %d-value dict key, %d-run "
               "filter column\n",
               static_cast<long long>(kRows), kKeyCardinality, kRunValues);

  // Plan check: the encoded run must actually use the encoded operators.
  tde::QueryOptions analyzed = BenchOptions(/*encoded=*/true);
  analyzed.collect_analysis = true;
  auto plan_run = engine.Execute(kSelectiveFilter, analyzed);
  if (!plan_run.ok()) {
    std::fprintf(stderr, "plan run failed: %s\n",
                 plan_run.status().ToString().c_str());
    return 1;
  }
  std::string plan = plan_run->analysis->ToText();
  bool plan_ok = plan.find(" dense") != std::string::npos &&
                 plan.find(" encoded") != std::string::npos &&
                 plan.find("[encoded]") != std::string::npos &&
                 plan_run->stats->used_encoded_path &&
                 plan_run->stats->encoded_fallbacks == 0;
  std::fprintf(stderr, "encoded plan:\n%s", plan.c_str());
  if (!plan_ok) {
    std::fprintf(stderr, "encoded operators missing from the plan\n");
    return 1;
  }

  double gb_dec = TimeQuery(engine, kGroupByCount, BenchOptions(false));
  double gb_enc = TimeQuery(engine, kGroupByCount, BenchOptions(true));
  double gbs_dec = TimeQuery(engine, kGroupBySum, BenchOptions(false));
  double gbs_enc = TimeQuery(engine, kGroupBySum, BenchOptions(true));
  double fl_dec = TimeQuery(engine, kSelectiveFilter, BenchOptions(false));
  double fl_enc = TimeQuery(engine, kSelectiveFilter, BenchOptions(true));

  double gb_x = gb_enc > 0 ? gb_dec / gb_enc : 0;
  double gbs_x = gbs_enc > 0 ? gbs_dec / gbs_enc : 0;
  double fl_x = fl_enc > 0 ? fl_dec / fl_enc : 0;
  std::fprintf(stderr,
               "  group-by count*: decoded %.2f ms, encoded %.2f ms (%.1fx)\n"
               "  group-by +sum:   decoded %.2f ms, encoded %.2f ms (%.1fx)\n"
               "  selective filter: decoded %.2f ms, encoded %.2f ms (%.1fx)\n",
               gb_dec, gb_enc, gb_x, gbs_dec, gbs_enc, gbs_x, fl_dec, fl_enc,
               fl_x);

  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"columnar\",\n"
                "  \"workload\": \"%lld rows sorted by %d-value dict key; "
                "%d-run rle filter column; serial, streaming-agg and "
                "rle-index off\",\n"
                "  \"groupby_count\": {\"decoded_ms\": %.3f, \"encoded_ms\": "
                "%.3f, \"speedup_x\": %.2f},\n"
                "  \"groupby_count_sum\": {\"decoded_ms\": %.3f, "
                "\"encoded_ms\": %.3f, \"speedup_x\": %.2f},\n"
                "  \"selective_filter\": {\"decoded_ms\": %.3f, "
                "\"encoded_ms\": %.3f, \"speedup_x\": %.2f},\n"
                "  \"plan_confirms_encoded\": true\n"
                "}\n",
                static_cast<long long>(kRows), kKeyCardinality, kRunValues,
                gb_dec, gb_enc, gb_x, gbs_dec, gbs_enc, gbs_x, fl_dec, fl_enc,
                fl_x);
  f << buf;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  // Acceptance: >=5x on the dictionary-key group-by, >=10x on the
  // selective RLE-run filter.
  return (gb_x >= 5.0 && fl_x >= 10.0) ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json=", 12) == 0) {
      return EmitJson(argv[i] + 12);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
