// Scheduler isolation bench: interactive task latency under sustained
// background load, with priorities on vs off (the "single shared pool"
// baseline). This is the paper's client-side responsiveness story in
// miniature: speculative background work (prefetch, connection prewarm)
// must not queue in front of the render the user is staring at.
//
// Workload: a fixed 4-worker scheduler is flooded with background tasks
// (each a short simulated-I/O sleep), then interactive tasks arrive at a
// steady rate while the flood drains. We record each interactive task's
// submit-to-completion latency.
//
//   * prioritize=false — one undifferentiated FIFO: interactive arrivals
//     wait behind the whole background backlog.
//   * prioritize=true  — class-ordered dispatch plus class caps keep
//     reserve workers free, so interactive latency stays near the task's
//     own run time; the cost is a slower background drain (the isolation
//     tradeoff, reported alongside).
//
// Tasks sleep rather than spin, so on a single-core host the workers
// still genuinely overlap and queueing delay — the thing priorities
// remove — dominates the unprioritized p95.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/scheduler.h"

namespace {

using namespace vizq;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(double ms) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(p * (v.size() - 1))];
}

constexpr int kWorkers = 4;
constexpr int kBackgroundTasks = 600;
constexpr double kBackgroundTaskMs = 3.0;
constexpr int kInteractiveTasks = 40;
constexpr double kInteractiveTaskMs = 1.0;
constexpr double kArrivalGapMs = 8.0;

struct IsolationResult {
  double interactive_p50_ms = 0;
  double interactive_p95_ms = 0;
  double interactive_max_ms = 0;
  double background_wall_ms = 0;
  int64_t shed = 0;
};

// One full run: flood, paced interactive arrivals, drain.
IsolationResult RunIsolation(bool prioritize) {
  SchedulerOptions opts;
  opts.num_threads = kWorkers;
  opts.prioritize = prioritize;
  Scheduler sched(opts);

  int64_t flood_start = NowNs();
  TaskGroup background(&sched, TaskClass::kBackground);
  for (int i = 0; i < kBackgroundTasks; ++i) {
    background.Spawn([] { SleepMs(kBackgroundTaskMs); }, "bg-flood");
  }

  // Paced interactive arrivals while the flood drains. Each task stamps
  // its own slot; the group Wait() orders the reads.
  std::vector<int64_t> submitted_ns(kInteractiveTasks, 0);
  std::vector<int64_t> finished_ns(kInteractiveTasks, 0);
  {
    TaskGroup interactive(&sched, TaskClass::kInteractive);
    for (int i = 0; i < kInteractiveTasks; ++i) {
      submitted_ns[i] = NowNs();
      interactive.Spawn(
          [&finished_ns, i] {
            SleepMs(kInteractiveTaskMs);
            finished_ns[i] = NowNs();
          },
          "interactive");
      SleepMs(kArrivalGapMs);
    }
    interactive.Wait();
  }

  std::vector<double> latencies_ms;
  latencies_ms.reserve(kInteractiveTasks);
  for (int i = 0; i < kInteractiveTasks; ++i) {
    latencies_ms.push_back(
        static_cast<double>(finished_ns[i] - submitted_ns[i]) / 1e6);
  }

  background.Wait();
  IsolationResult out;
  out.background_wall_ms =
      static_cast<double>(NowNs() - flood_start) / 1e6;
  out.interactive_p50_ms = Percentile(latencies_ms, 0.50);
  out.interactive_p95_ms = Percentile(latencies_ms, 0.95);
  out.interactive_max_ms = *std::max_element(latencies_ms.begin(),
                                             latencies_ms.end());
  out.shed = sched.shed(TaskClass::kBackground) +
             sched.shed(TaskClass::kInteractive);
  return out;
}

// ---------------------------------------------------------------------------
// Harness benches (small variants; the acceptance run is --emit-json).

void BM_SubmitDrain(benchmark::State& state) {
  SchedulerOptions opts;
  opts.num_threads = kWorkers;
  Scheduler sched(opts);
  int64_t tasks = 0;
  for (auto _ : state) {
    TaskGroup group(&sched, TaskClass::kInteractive);
    std::atomic<int64_t> ran{0};
    for (int i = 0; i < 64; ++i) {
      group.Spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    if (ran.load() != 64) state.SkipWithError("lost tasks");
    tasks += 64;
  }
  state.SetItemsProcessed(tasks);
}
BENCHMARK(BM_SubmitDrain)->Unit(benchmark::kMicrosecond);

void BM_InteractiveUnderLoad(benchmark::State& state) {
  bool prioritize = state.range(0) == 1;
  IsolationResult last;
  for (auto _ : state) {
    last = RunIsolation(prioritize);
  }
  state.counters["interactive_p95_ms"] = last.interactive_p95_ms;
  state.counters["background_wall_ms"] = last.background_wall_ms;
  state.SetLabel(prioritize ? "prioritized" : "fifo_pool");
}
BENCHMARK(BM_InteractiveUnderLoad)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ---------------------------------------------------------------------------
// --emit-json=PATH: the BENCH_sched.json record (EXPERIMENTS.md E16).
// Acceptance: with priorities on, interactive p95 under background flood
// is at most half the FIFO baseline's (in practice it is ~100x lower:
// queueing delay vs task run time).

int EmitJson(const std::string& path) {
  std::fprintf(stderr,
               "scheduler isolation: %d workers, %d x %.0fms background, "
               "%d x %.0fms interactive every %.0fms\n",
               kWorkers, kBackgroundTasks, kBackgroundTaskMs,
               kInteractiveTasks, kInteractiveTaskMs, kArrivalGapMs);
  IsolationResult fifo = RunIsolation(/*prioritize=*/false);
  std::fprintf(stderr,
               "  fifo_pool:   p50 %.2f ms  p95 %.2f ms  max %.2f ms  "
               "(bg drain %.0f ms)\n",
               fifo.interactive_p50_ms, fifo.interactive_p95_ms,
               fifo.interactive_max_ms, fifo.background_wall_ms);
  IsolationResult prio = RunIsolation(/*prioritize=*/true);
  std::fprintf(stderr,
               "  prioritized: p50 %.2f ms  p95 %.2f ms  max %.2f ms  "
               "(bg drain %.0f ms)\n",
               prio.interactive_p50_ms, prio.interactive_p95_ms,
               prio.interactive_max_ms, prio.background_wall_ms);
  double improvement =
      prio.interactive_p95_ms > 0
          ? fifo.interactive_p95_ms / prio.interactive_p95_ms
          : 0;
  std::fprintf(stderr, "  p95 improvement: %.1fx\n", improvement);

  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  char buf[512];
  f << "{\n  \"bench\": \"scheduler\",\n"
    << "  \"workload\": \"" << kWorkers << " workers, " << kBackgroundTasks
    << " background x " << kBackgroundTaskMs << "ms flood, "
    << kInteractiveTasks << " interactive x " << kInteractiveTaskMs
    << "ms arriving every " << kArrivalGapMs << "ms\",\n  \"modes\": [\n";
  auto emit_mode = [&](const char* name, const IsolationResult& r,
                       bool last) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"interactive_p50_ms\": %.3f, "
                  "\"interactive_p95_ms\": %.3f, \"interactive_max_ms\": "
                  "%.3f, \"background_wall_ms\": %.1f, \"shed\": %lld}%s\n",
                  name, r.interactive_p50_ms, r.interactive_p95_ms,
                  r.interactive_max_ms, r.background_wall_ms,
                  static_cast<long long>(r.shed), last ? "" : ",");
    f << buf;
  };
  emit_mode("fifo_pool", fifo, false);
  emit_mode("prioritized", prio, true);
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"p95_improvement_x\": %.2f\n}\n", improvement);
  f << buf;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return prio.interactive_p95_ms <= fifo.interactive_p95_ms / 2.0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json=", 12) == 0) {
      return EmitJson(argv[i] + 12);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
