// E10 (§3.2): the distributed cache layer "allows sharing data across
// nodes in the cluster and keeping data warm regardless of which node
// handles particular requests".
//
// A cluster of N worker nodes serves the same dashboard queries with a
// round-robin load balancer. Regimes: local-only caches (each node must
// warm itself against the backend) vs local + shared tier (one node's
// fetch warms the cluster through the KV store).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "src/cache/distributed.h"
#include "src/dashboard/query_service.h"
#include "src/federation/simulated_source.h"
#include "src/workload/flights_dashboards.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 60000;

std::vector<query::AbstractQuery> DashboardQueries() {
  dashboard::Dashboard dash = workload::BuildFigure1Dashboard("faa");
  dashboard::InteractionState state;
  std::vector<query::AbstractQuery> out;
  for (const std::string& zone : dash.QueryZoneNames()) {
    auto q = dash.BuildZoneQuery(zone, state);
    if (q.ok()) out.push_back(*std::move(q));
  }
  return out;
}

void BM_DistributedCache(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  bool shared_tier = state.range(1) == 1;
  auto db = benchutil::FaaDb(kRows);
  std::vector<query::AbstractQuery> queries = DashboardQueries();

  for (auto _ : state) {
    auto source =
        federation::SimulatedDataSource::SingleThreadedSql("faa", db);
    dashboard::QueryService service(source, nullptr);  // caching done here
    if (!service.RegisterView(workload::FlightsStarView()).ok()) {
      state.SkipWithError("view registration failed");
      return;
    }
    auto tier = shared_tier ? std::make_shared<cache::DistributedCacheTier>()
                            : nullptr;
    std::vector<std::unique_ptr<cache::NodeCacheLayer>> node_caches;
    for (int n = 0; n < nodes; ++n) {
      node_caches.push_back(std::make_unique<cache::NodeCacheLayer>(
          "node" + std::to_string(n), tier));
    }

    dashboard::BatchOptions raw;
    raw.use_intelligent_cache = false;
    raw.use_literal_cache = false;
    raw.adjust.decompose_avg = false;

    // 4 rounds of user requests, each request routed round-robin.
    auto started = std::chrono::steady_clock::now();
    int backend_queries = 0;
    int request = 0;
    for (int round = 0; round < 4; ++round) {
      for (const query::AbstractQuery& q : queries) {
        cache::NodeCacheLayer& node = *node_caches[request++ % nodes];
        auto hit = node.Lookup(q);
        if (!hit.has_value()) {
          auto result = service.ExecuteQuery(q, raw);
          if (!result.ok()) {
            state.SkipWithError(result.status().ToString().c_str());
            return;
          }
          ++backend_queries;
          node.Put(q, *std::move(result), 20.0);
        }
      }
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
    state.SetIterationTime(ms / 1000.0);
    state.counters["backend_queries"] = backend_queries;
    if (tier != nullptr) {
      state.counters["tier_ms"] = tier->simulated_ms();
    }
  }
  state.SetLabel(shared_tier ? "local+shared-tier" : "local-only");
}

void RegisterAll() {
  for (int nodes : {2, 4, 8}) {
    for (int shared : {0, 1}) {
      std::string name = "BM_DistributedCache/nodes:" +
                         std::to_string(nodes) + "/" +
                         (shared ? "shared" : "local_only");
      benchmark::RegisterBenchmark(name.c_str(), BM_DistributedCache)
          ->Args({nodes, shared})
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
