// E19: the million-user traffic harness. Closed-loop interactive sessions
// (dashboard-open -> filter -> drill navigation, exponential think time,
// Zipfian workbook popularity) drive the real serving stack — Frontend
// (fair admission + load-shed ladder) -> QueryService -> intelligent /
// literal caches -> scheduler -> simulated backend — under an open-loop
// offered-load ramp that pushes past saturation.
//
// Arrival model: a Poisson arrival process at the target rate activates
// sessions. An arrival reuses an existing session whose think time has
// expired, or admits a brand-new user (open-loop population growth — at a
// million users there is always another browser tab). Each active step is
// one interaction batch with a client-side deadline that starts ticking at
// ARRIVAL, so queue wait burns response budget exactly as a real user's
// patience does.
//
// Two configurations per load point:
//   protected    — admission caps + the stale/derived/shed ladder on
//   unprotected  — everything admitted, no ladder (the ablation)
//
// Reported per point: measured offered load, goodput (content responses —
// fresh, labeled-stale, or derived — per second), shed rate, error rate,
// and p50/p95/p99 of arrival-to-response latency over ALL terminated
// requests (content, sheds, errors, and abandoned-at-cutoff arrivals).
//
// PR 9 adds the request-timeline layer on top: every request's
// PhaseTimeline decomposes arrival-to-response latency into named phases
// (client_queue, client_prep, admission, cache_lookup, plan, execution,
// materialize, ladder — plus per-class scheduler queue waits as additive
// detail), each point reports per-phase p50/p95/p99 and the attributed
// share of end-to-end latency, the frontend's SloMonitor burn rates ride
// along per point, the slowest requests of the ramp export as a Chrome
// trace from the TailExemplarStore, and the whole layer's hot-path
// overhead is measured by rerunning the warm serve path with timelines
// disabled.
//
// --emit-json=PATH writes BENCH_traffic.json; --selftest runs the quick
// CI invariants (see Selftest below); --tail-trace-out=PATH additionally
// writes the retained tail-exemplar Chrome trace.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/phase_timeline.h"
#include "src/common/rng.h"
#include "src/dashboard/query_service.h"
#include "src/federation/simulated_source.h"
#include "src/obs/exemplar.h"
#include "src/obs/json.h"
#include "src/server/frontend.h"
#include "src/workload/flights_dashboards.h"
#include "src/workload/sessions.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 20000;
constexpr int kWorkbooks = 8;
constexpr double kZipfSkew = 1.2;
// Client patience: the request's ExecContext deadline. Past this the user
// has navigated away and delivery is pointless (the context aborts
// in-flight backend work).
constexpr double kDeadlineMs = 2000.0;
// Interactive SLO: the response-time budget the paper is about. Content
// that lands inside the patience window but past this bound is "late" —
// delivered to a user who already stopped caring — and does not count as
// goodput.
constexpr double kSloMs = 500.0;
constexpr double kFreshTtlMs = 1200.0;   // cache entries go stale after this
constexpr double kStaleServeMs = 30000.0;  // ladder freshness bound
constexpr int kWorkers = 16;             // serving threads per load point

// --tail-trace-out=PATH (optional): where the retained tail-exemplar
// Chrome trace is written (by --emit-json and by the selftest).
std::string g_tail_trace_out;

// Bench sessions navigate faster than the human default so filter/drill
// diversity (the cache-missing part of the workload) shows up within a
// 2.5s load point.
workload::SessionProfile BenchProfile() {
  workload::SessionProfile p;
  p.think_mean_ms = 120.0;
  p.p_leave = 0.10;
  p.max_steps = 16;
  return p;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Stack: one backend + shared caches + frontend, per configuration.

struct Stack {
  std::shared_ptr<federation::SimulatedDataSource> source;
  std::shared_ptr<dashboard::CacheStack> caches;
  std::unique_ptr<dashboard::QueryService> service;
  std::unique_ptr<server::Frontend> frontend;
  std::vector<workload::Workbook> workbooks;
};

// A deliberately modest backend (few concurrent queries, single thread per
// query) so saturation arrives at a load the bench can ramp past quickly.
Stack MakeStack(bool protected_mode, double fresh_ttl_ms = kFreshTtlMs) {
  Stack s;
  auto db = benchutil::FaaDb(kRows);
  federation::PerformanceModel m;
  m.connect_ms = 5;
  m.dispatch_ms = 0.6;
  m.rows_per_ms = 500;  // ~40ms of scan per uncached query
  m.cpu_slots = 2;
  m.max_parallel_per_query = 1;
  m.network_rtt_ms = 0.4;
  query::Capabilities caps = query::Capabilities::SingleThreadedSql();
  caps.max_connections = 8;
  caps.max_concurrent_queries = 2;
  s.source = std::make_shared<federation::SimulatedDataSource>(
      "faa", db, m, caps, query::SqlDialect::MssqlLike());
  cache::IntelligentCacheOptions iopts;
  iopts.fresh_ttl_ms = fresh_ttl_ms;
  s.caches = std::make_shared<dashboard::CacheStack>(iopts);
  s.service = std::make_unique<dashboard::QueryService>(s.source, s.caches);
  if (!s.service->RegisterView(workload::FlightsStarView()).ok()) {
    std::abort();
  }
  server::FrontendOptions fo;
  fo.admission.enabled = protected_mode;
  fo.admission.fair = true;
  fo.admission.max_global_inflight = 6;
  fo.admission.max_session_inflight = 2;
  fo.stale_serve_ms = protected_mode ? kStaleServeMs : 0;
  s.frontend = std::make_unique<server::Frontend>(s.service.get(), fo);
  s.workbooks = workload::BuildWorkbookSet("faa", kWorkbooks);
  return s;
}

// Runs every workbook's open batch once through the full pipeline, so the
// caches hold each dashboard's initial render before traffic starts (the
// steady-state of a server that has been up for more than one minute).
void WarmCaches(Stack& s) {
  for (size_t w = 0; w < s.workbooks.size(); ++w) {
    workload::Session session(1000 + w, &s.workbooks[w], {}, /*seed=*/1);
    auto step = session.Next();
    if (!step.has_value()) continue;
    auto batch = session.BuildBatch(*step);
    if (!batch.ok()) continue;
    dashboard::BatchOptions opts;
    (void)s.service->ExecuteBatch(ExecContext::Background(), *batch, opts);
  }
}

// ---------------------------------------------------------------------------
// Load generation.

struct ActiveSession {
  workload::Session session;
  ActiveSession(uint64_t id, const workload::Workbook* wb, uint64_t seed)
      : session(id, wb, BenchProfile(), seed) {}
};

struct Arrival {
  std::unique_ptr<ActiveSession> session;
  ExecContext ctx;   // deadline starts at arrival
  int64_t t_arrive_ns = 0;
  // A user whose request was rejected clicks again. Retries are what turn
  // saturation into congestion collapse: they add offered load exactly
  // when the server can least afford it. Bounded so one user gives up
  // eventually.
  int retries_left = 2;
};

struct PhaseQuantiles {
  int64_t count = 0;  // requests that spent any time in this phase
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
};

struct PointResult {
  double rate_per_s = 0;      // target
  double offered_per_s = 0;   // measured arrivals/s
  int64_t attempted = 0;
  int64_t fresh = 0;
  int64_t stale = 0;
  int64_t derived = 0;
  int64_t shed = 0;
  int64_t errors = 0;
  int64_t late = 0;           // content served past the client deadline
  int64_t abandoned = 0;      // still queued at cutoff
  int64_t backend_queries = 0;  // actually executed by the data source
  double goodput_per_s = 0;   // (fresh+stale+derived) / duration
  double shed_rate = 0;
  double error_rate = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  // --- request-timeline decomposition ---
  PhaseQuantiles phases[kNumPhases];
  // Mean attributed share of arrival-to-response wall time (root phases
  // incl. client_queue/client_prep, which the harness charges) over all
  // terminated requests, and over the slow tail (latency >= this point's
  // p95) — the "where did the p95 go" number.
  double attributed_mean = 0;
  double attributed_tail = 0;
  obs::SloSnapshot slo;  // the frontend's burn-rate view of this point
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(p * (v.size() - 1))];
}

PointResult RunPoint(Stack& stack, double rate_per_s, double duration_s,
                     uint64_t seed) {
  PointResult out;
  out.rate_per_s = rate_per_s;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Arrival> queue;
  // Sessions between steps: ready again once their think time elapses.
  std::deque<std::pair<int64_t, std::unique_ptr<ActiveSession>>> thinking;
  bool arrivals_done = false;

  std::atomic<int64_t> next_session_id{1};
  std::atomic<int64_t> attempted{0}, fresh{0}, stale{0}, derived{0};
  std::atomic<int64_t> shed{0}, errors{0}, late{0};
  std::mutex lat_mu;
  std::vector<double> latencies_ms;
  std::vector<double> phase_samples[kNumPhases];
  // (arrival-to-response ms, attributed fraction) per terminated request.
  std::vector<std::pair<double, double>> attribution;

  // Fresh SLO epoch per load point so the burn-rate windows describe
  // exactly this point's traffic.
  stack.frontend->slo().Reset();

  ZipfDistribution zipf(kWorkbooks, kZipfSkew);
  Rng arrival_rng(seed);

  int64_t backend_before = stack.source->queries_executed();
  int64_t t_start = NowNs();
  int64_t t_stop = t_start + static_cast<int64_t>(duration_s * 1e9);
  // Hard cutoff: whatever is still queued then is abandoned.
  int64_t t_cutoff = t_stop + static_cast<int64_t>(2e9);

  std::thread arrival_thread([&] {
    Rng rng(seed * 7919 + 1);
    double next_ns = static_cast<double>(t_start);
    while (true) {
      double gap_ms = workload::SampleThinkMs(rng, 1000.0 / rate_per_s);
      next_ns += gap_ms * 1e6;
      int64_t target = static_cast<int64_t>(next_ns);
      if (target >= t_stop) break;
      int64_t now = NowNs();
      if (target > now) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(target - now));
      }
      Arrival a;
      a.ctx = ExecContext::WithDeadlineMs(kDeadlineMs);
      a.t_arrive_ns = NowNs();
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!thinking.empty() && thinking.front().first <= a.t_arrive_ns) {
          a.session = std::move(thinking.front().second);
          thinking.pop_front();
        }
      }
      if (a.session == nullptr) {  // a new user shows up
        uint64_t id = static_cast<uint64_t>(
            next_session_id.fetch_add(1, std::memory_order_relaxed));
        const workload::Workbook* wb =
            &stack.workbooks[zipf.Sample(arrival_rng)];
        a.session = std::make_unique<ActiveSession>(id, wb, seed);
      }
      attempted.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mu);
        queue.push_back(std::move(a));
      }
      cv.notify_one();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      arrivals_done = true;
    }
    cv.notify_all();
  });

  auto record_latency = [&](int64_t t_arrive_ns_, int64_t t_done_ns) {
    std::lock_guard<std::mutex> lock(lat_mu);
    latencies_ms.push_back(
        static_cast<double>(t_done_ns - t_arrive_ns_) / 1e6);
  };
  auto record_timeline = [&](const ExecContext& rctx, int64_t wall_ns) {
    const PhaseTimeline* tl = rctx.timeline();
    if (tl == nullptr || wall_ns <= 0) return;
    std::lock_guard<std::mutex> lock(lat_mu);
    for (int p = 0; p < kNumPhases; ++p) {
      double ms = tl->phase_ms(static_cast<Phase>(p));
      if (ms > 0) phase_samples[p].push_back(ms);
    }
    attribution.emplace_back(
        static_cast<double>(wall_ns) / 1e6,
        static_cast<double>(tl->attributed_ns()) /
            static_cast<double>(wall_ns));
  };

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(seed * 31 + w);
      while (true) {
        Arrival a;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return !queue.empty() || arrivals_done; });
          if (queue.empty()) return;
          if (NowNs() > t_cutoff) return;  // drain handles the rest
          a = std::move(queue.front());
          queue.pop_front();
        }
        // Arrival-to-pickup is the client-side queue wait; the step/batch
        // construction that follows is client_prep. Both are root phases,
        // so the timeline decomposes the FULL arrival-to-response wall.
        if (PhaseTimeline* tl = a.ctx.timeline()) {
          tl->Add(Phase::kClientQueue, NowNs() - a.t_arrive_ns);
        }
        workload::Session& session = a.session->session;
        PhaseScope prep(a.ctx.timeline(), Phase::kClientPrep);
        auto step = session.Next();
        if (!step.has_value()) {  // user left: a fresh one takes the slot
          uint64_t id = static_cast<uint64_t>(
              next_session_id.fetch_add(1, std::memory_order_relaxed));
          a.session = std::make_unique<ActiveSession>(
              id, &stack.workbooks[rng.Below(kWorkbooks)], seed);
          step = a.session->session.Next();
        }
        workload::Session& live = a.session->session;
        auto batch = live.BuildBatch(a.ctx, *step);
        prep.End();
        if (!batch.ok() || batch->empty()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          int64_t t_fail = NowNs();
          record_latency(a.t_arrive_ns, t_fail);
          record_timeline(a.ctx, t_fail - a.t_arrive_ns);
          continue;
        }
        server::ServeReport report;
        auto result =
            stack.frontend->Serve(live.id(), a.ctx, *batch, &report);
        int64_t t_done = NowNs();
        record_latency(a.t_arrive_ns, t_done);
        record_timeline(a.ctx, t_done - a.t_arrive_ns);
        double lat_ms =
            static_cast<double>(t_done - a.t_arrive_ns) / 1e6;
        if (result.ok() && lat_ms > kSloMs) {
          // The interactive budget ran out before the content landed: not
          // goodput, whatever the server thinks it served.
          late.fetch_add(1, std::memory_order_relaxed);
        } else if (result.ok()) {
          switch (report.outcome) {
            case server::ServeOutcome::kFresh:
              fresh.fetch_add(1, std::memory_order_relaxed);
              break;
            case server::ServeOutcome::kStale:
              stale.fetch_add(1, std::memory_order_relaxed);
              break;
            default:
              derived.fetch_add(1, std::memory_order_relaxed);
              break;
          }
        } else {
          if (result.status().code() == StatusCode::kResourceExhausted) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          if (a.retries_left > 0 && NowNs() < t_stop) {
            Arrival retry;
            retry.session = std::move(a.session);
            retry.ctx = ExecContext::WithDeadlineMs(kDeadlineMs);
            retry.t_arrive_ns = NowNs();
            retry.retries_left = a.retries_left - 1;
            attempted.fetch_add(1, std::memory_order_relaxed);
            {
              std::lock_guard<std::mutex> lock(mu);
              queue.push_back(std::move(retry));
            }
            cv.notify_one();
            continue;
          }
        }
        // Closed-loop: the session thinks before its next interaction.
        double think =
            workload::SampleThinkMs(rng, BenchProfile().think_mean_ms);
        int64_t ready = t_done + static_cast<int64_t>(think * 1e6);
        std::lock_guard<std::mutex> lock(mu);
        thinking.emplace_back(ready, std::move(a.session));
      }
    });
  }

  arrival_thread.join();
  for (auto& t : workers) t.join();

  // Abandoned arrivals: latency is at least wait-until-cutoff.
  {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& a : queue) {
      ++out.abandoned;
      // The whole abandoned wait is client-side queueing: fully
      // attributed, so the tail decomposition covers these too.
      if (PhaseTimeline* tl = a.ctx.timeline()) {
        tl->Add(Phase::kClientQueue, t_cutoff - a.t_arrive_ns);
      }
      record_latency(a.t_arrive_ns, t_cutoff);
      record_timeline(a.ctx, t_cutoff - a.t_arrive_ns);
    }
    queue.clear();
  }

  out.backend_queries = stack.source->queries_executed() - backend_before;
  out.attempted = attempted.load();
  out.fresh = fresh.load();
  out.stale = stale.load();
  out.derived = derived.load();
  out.shed = shed.load();
  out.late = late.load();
  out.errors = errors.load() + out.late + out.abandoned;
  out.offered_per_s = static_cast<double>(out.attempted) / duration_s;
  out.goodput_per_s =
      static_cast<double>(out.fresh + out.stale + out.derived) / duration_s;
  if (out.attempted > 0) {
    out.shed_rate = static_cast<double>(out.shed) / out.attempted;
    out.error_rate = static_cast<double>(out.errors) / out.attempted;
  }
  out.p50_ms = Percentile(latencies_ms, 0.50);
  out.p95_ms = Percentile(latencies_ms, 0.95);
  out.p99_ms = Percentile(latencies_ms, 0.99);

  for (int p = 0; p < kNumPhases; ++p) {
    std::vector<double>& v = phase_samples[p];
    out.phases[p].count = static_cast<int64_t>(v.size());
    if (v.empty()) continue;
    out.phases[p].p50_ms = Percentile(v, 0.50);
    out.phases[p].p95_ms = Percentile(v, 0.95);
    out.phases[p].p99_ms = Percentile(v, 0.99);
  }
  double frac_sum = 0, tail_sum = 0;
  int64_t tail_n = 0;
  for (const auto& [wall_ms, frac] : attribution) {
    frac_sum += frac;
    if (wall_ms >= out.p95_ms) {
      tail_sum += frac;
      ++tail_n;
    }
  }
  if (!attribution.empty()) {
    out.attributed_mean = frac_sum / static_cast<double>(attribution.size());
  }
  if (tail_n > 0) out.attributed_tail = tail_sum / static_cast<double>(tail_n);
  out.slo = stack.frontend->slo().Snapshot();
  return out;
}

void PrintPoint(const char* mode, const PointResult& r) {
  std::fprintf(stderr,
               "  %-11s rate %6.0f/s offered %6.1f/s goodput %6.1f/s "
               "shed %4.1f%% err %4.1f%% p50 %7.1fms p95 %7.1fms "
               "p99 %7.1fms backend_q %5lld attr %4.1f%% (tail %4.1f%%) "
               "burn %.1f/%.1f%s\n",
               mode, r.rate_per_s, r.offered_per_s, r.goodput_per_s,
               100 * r.shed_rate, 100 * r.error_rate, r.p50_ms, r.p95_ms,
               r.p99_ms, static_cast<long long>(r.backend_queries),
               100 * r.attributed_mean, 100 * r.attributed_tail,
               r.slo.short_burn, r.slo.long_burn,
               r.slo.firing ? " SLO-FIRING" : "");
}

// ---------------------------------------------------------------------------
// Timeline overhead: the warm admitted serve path (the hot path a healthy
// server runs all day), timed with the whole layer on vs the process-wide
// kill switch off (contexts then carry no timeline and every scope is a
// no-op). Single-threaded, min-of-rounds to shed scheduler noise.

double MeasureTimelineOverhead(double* on_us_per_req, double* off_us_per_req) {
  // An effectively infinite fresh TTL keeps every iteration on the warm
  // cache-hit path; otherwise entries expire mid-measurement and the probe
  // times the simulated backend's sleeps instead of the serving layer.
  Stack stack = MakeStack(/*protected_mode=*/true, /*fresh_ttl_ms=*/1e12);
  WarmCaches(stack);
  workload::Session session(9, &stack.workbooks[0], {}, 13);
  auto step = session.Next();
  if (!step.has_value()) return 0;
  auto batch = session.BuildBatch(*step);
  if (!batch.ok() || batch->empty()) return 0;

  auto run = [&](bool enabled, int iters) {
    PhaseTimeline::SetEnabled(enabled);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      ExecContext ctx;  // timeline allocation rides on context creation
      server::ServeReport r;
      (void)stack.frontend->Serve(9, ctx, *batch, &r);
    }
    auto t1 = std::chrono::steady_clock::now();
    PhaseTimeline::SetEnabled(true);
    return std::chrono::duration<double, std::micro>(t1 - t0).count() /
           static_cast<double>(iters);
  };

  // Let the box settle: the ramp that usually precedes this probe leaves
  // worker pools draining and the CPU in a boosted-then-throttled state.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  run(true, 200);  // warm: caches, allocator, TLS instrument memos
  // Paired rounds, median of per-round ratios. Each off/on pair runs
  // back-to-back inside one time slice, so slow drift (CPU frequency,
  // thermal) cancels within the pair; the median sheds the rounds a
  // background task landed on. A global min-on vs min-off comparison is
  // NOT drift-safe: the two minima can come from different regimes.
  std::vector<double> ratios, ons, offs;
  for (int round = 0; round < 25; ++round) {
    double off = run(false, 100);
    double on = run(true, 100);
    if (off <= 0) continue;
    ratios.push_back(on / off);
    ons.push_back(on);
    offs.push_back(off);
  }
  if (ratios.empty()) return 0;
  auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  *on_us_per_req = median(ons);
  *off_us_per_req = median(offs);
  return 100.0 * (median(ratios) - 1.0);
}

// ---------------------------------------------------------------------------
// Full ramp (--emit-json).

int EmitJson(const std::string& path, const std::string& tail_trace_out) {
  const double rates[] = {10, 20, 40, 80, 160};
  const double kDurationS = 3.0;
  obs::GlobalExemplars().Clear();  // the tail trace describes this ramp
  std::vector<PointResult> protected_pts, unprotected_pts;
  for (int mode = 0; mode < 2; ++mode) {
    bool prot = mode == 0;
    Stack stack = MakeStack(prot);
    WarmCaches(stack);
    std::fprintf(stderr, "%s:\n", prot ? "protected" : "unprotected");
    uint64_t seed = 42;
    for (double rate : rates) {
      PointResult r = RunPoint(stack, rate, kDurationS, seed++);
      PrintPoint(prot ? "protected" : "unprotected", r);
      (prot ? protected_pts : unprotected_pts).push_back(r);
    }
  }

  double on_us = 0, off_us = 0;
  double overhead_pct = MeasureTimelineOverhead(&on_us, &off_us);
  std::fprintf(stderr,
               "timeline overhead: %.2f us/req on vs %.2f us/req off "
               "(%.2f%%)\n",
               on_us, off_us, overhead_pct);

  obs::Exemplar slowest = obs::GlobalExemplars().Slowest();
  std::string tail_trace = obs::GlobalExemplars().ToChromeTrace();
  int tail_events = 0;
  (void)obs::ValidateChromeTrace(tail_trace, &tail_events);
  if (!tail_trace_out.empty()) {
    std::ofstream tf(tail_trace_out, std::ios::trunc);
    if (!tf) {
      std::fprintf(stderr, "cannot open %s\n", tail_trace_out.c_str());
      return 1;
    }
    tf << tail_trace;
    std::fprintf(stderr, "wrote tail-exemplar Chrome trace to %s\n",
                 tail_trace_out.c_str());
  }

  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  auto emit_points = [&](const std::vector<PointResult>& pts) {
    for (size_t i = 0; i < pts.size(); ++i) {
      const PointResult& r = pts[i];
      char buf[640];
      std::snprintf(
          buf, sizeof(buf),
          "      {\"rate_per_s\": %.0f, \"offered_per_s\": %.1f, "
          "\"goodput_per_s\": %.1f, \"shed_rate\": %.3f, "
          "\"error_rate\": %.3f, \"p50_ms\": %.1f, \"p95_ms\": %.1f, "
          "\"p99_ms\": %.1f, \"fresh\": %lld, \"stale\": %lld, "
          "\"derived\": %lld, \"shed\": %lld, \"late\": %lld, "
          "\"errors\": %lld, \"backend_queries\": %lld,\n",
          r.rate_per_s, r.offered_per_s, r.goodput_per_s, r.shed_rate,
          r.error_rate, r.p50_ms, r.p95_ms, r.p99_ms,
          static_cast<long long>(r.fresh), static_cast<long long>(r.stale),
          static_cast<long long>(r.derived), static_cast<long long>(r.shed),
          static_cast<long long>(r.late), static_cast<long long>(r.errors),
          static_cast<long long>(r.backend_queries));
      f << buf;
      std::snprintf(buf, sizeof(buf),
                    "       \"attributed_fraction_mean\": %.4f, "
                    "\"attributed_fraction_tail\": %.4f,\n",
                    r.attributed_mean, r.attributed_tail);
      f << buf;
      std::snprintf(buf, sizeof(buf),
                    "       \"slo\": {\"good\": %lld, \"total\": %lld, "
                    "\"sheds\": %lld, \"short_burn\": %.2f, "
                    "\"long_burn\": %.2f, \"firing\": %s},\n",
                    static_cast<long long>(r.slo.good),
                    static_cast<long long>(r.slo.total),
                    static_cast<long long>(r.slo.sheds), r.slo.short_burn,
                    r.slo.long_burn, r.slo.firing ? "true" : "false");
      f << buf;
      f << "       \"phases\": {";
      bool first = true;
      for (int p = 0; p < kNumPhases; ++p) {
        if (r.phases[p].count == 0) continue;
        std::snprintf(buf, sizeof(buf),
                      "%s\n        \"%s\": {\"count\": %lld, "
                      "\"p50_ms\": %.2f, \"p95_ms\": %.2f, "
                      "\"p99_ms\": %.2f}",
                      first ? "" : ",", PhaseName(static_cast<Phase>(p)),
                      static_cast<long long>(r.phases[p].count),
                      r.phases[p].p50_ms, r.phases[p].p95_ms,
                      r.phases[p].p99_ms);
        first = false;
        f << buf;
      }
      f << "}}" << (i + 1 < pts.size() ? "," : "") << "\n";
    }
  };
  f << "{\n  \"bench\": \"traffic\",\n"
    << "  \"workload\": \"closed-loop FAA dashboard sessions, Zipf("
    << kZipfSkew << ") over " << kWorkbooks
    << " workbooks, exp think, open-loop Poisson ramp, patience "
    << kDeadlineMs << "ms, SLO " << kSloMs << "ms\",\n"
    << "  \"slo_ms\": " << kSloMs << ",\n"
    << "  \"duration_s_per_point\": 3.0,\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"timeline_overhead\": {\"enabled_us_per_req\": %.2f, "
                  "\"disabled_us_per_req\": %.2f, \"overhead_pct\": %.2f},\n",
                  on_us, off_us, overhead_pct);
    f << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"tail_exemplars\": {\"retained\": %lld, "
                  "\"slowest_ms\": %.1f, \"trace_events\": %d},\n",
                  static_cast<long long>(
                      obs::GlobalExemplars().total_retained()),
                  slowest.duration_ms, tail_events);
    f << buf;
  }
  f << "  \"modes\": {\n    \"protected\": [\n";
  emit_points(protected_pts);
  f << "    ],\n    \"unprotected\": [\n";
  emit_points(unprotected_pts);
  f << "    ]\n  }\n}\n";
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Selftest (CI): fast invariants over the harness and the ladder.

#define CHECK_OR_FAIL(cond, msg)                           \
  do {                                                     \
    if (!(cond)) {                                         \
      std::fprintf(stderr, "SELFTEST FAIL: %s\n", (msg));  \
      return 1;                                            \
    }                                                      \
  } while (0)

int Selftest() {
  // 1. Session machine is deterministic per seed.
  {
    auto wbs = workload::BuildWorkbookSet("faa", 2);
    for (int w = 0; w < 2; ++w) {
      workload::Session a(7, &wbs[w], {}, 99), b(7, &wbs[w], {}, 99);
      for (int i = 0; i < 12; ++i) {
        auto sa = a.Next(), sb = b.Next();
        CHECK_OR_FAIL(sa.has_value() == sb.has_value(),
                      "session divergence (liveness)");
        if (!sa.has_value()) break;
        CHECK_OR_FAIL(sa->action == sb->action && sa->zone == sb->zone &&
                          sa->think_ms == sb->think_ms &&
                          sa->dirty_zones == sb->dirty_zones,
                      "session divergence (trace)");
      }
    }
  }
  // 2. Zipf popularity is skewed the right way.
  {
    ZipfDistribution zipf(kWorkbooks, kZipfSkew);
    Rng rng(5);
    std::vector<int> hist(kWorkbooks, 0);
    for (int i = 0; i < 20000; ++i) ++hist[zipf.Sample(rng)];
    CHECK_OR_FAIL(hist[0] > 2 * hist[kWorkbooks - 1],
                  "Zipf head not hotter than tail");
  }
  // 3. The ladder engages: a saturated frontend serves bounded-stale
  //    content from the cache and types its sheds.
  {
    Stack stack = MakeStack(/*protected_mode=*/true, /*fresh_ttl_ms=*/50);
    WarmCaches(stack);
    std::this_thread::sleep_for(std::chrono::milliseconds(90));
    // Saturate: admit nothing, every request walks the ladder.
    server::FrontendOptions fo;
    fo.admission.enabled = true;
    fo.admission.max_global_inflight = 0;
    fo.stale_serve_ms = kStaleServeMs;
    server::Frontend saturated(stack.service.get(), fo);
    workload::Session session(1, &stack.workbooks[0], {}, 1);
    auto step = session.Next();
    CHECK_OR_FAIL(step.has_value(), "no open step");
    auto batch = session.BuildBatch(*step);
    CHECK_OR_FAIL(batch.ok() && !batch->empty(), "open batch build failed");
    server::ServeReport report;
    auto res = saturated.Serve(1, ExecContext(), *batch, &report);
    CHECK_OR_FAIL(res.ok(), "warmed ladder request not served");
    CHECK_OR_FAIL(report.outcome == server::ServeOutcome::kStale,
                  "past-TTL answer not labeled stale");
    CHECK_OR_FAIL(report.max_age_ms > 50 &&
                      report.max_age_ms <= kStaleServeMs,
                  "stale age outside (ttl, bound]");
    // A query the cache has never seen must shed, typed.
    auto cold = query::QueryBuilder("faa", workload::kFlightsView)
                    .Dim("dest_state")
                    .Agg(AggFunc::kMin, "distance", "min_distance")
                    .Build();
    server::ServeReport shed_report;
    auto shed_res = saturated.Serve(1, ExecContext(),
                                    {cold}, &shed_report);
    CHECK_OR_FAIL(!shed_res.ok() && shed_res.status().code() ==
                                        StatusCode::kResourceExhausted,
                  "cold overload request not a typed shed");
    CHECK_OR_FAIL(shed_report.outcome == server::ServeOutcome::kShed,
                  "shed outcome not reported");
  }
  // 4. Fair admission invariant: one session can never hold more than
  //    max_session_inflight admitted requests, however hard it hammers.
  {
    Stack stack = MakeStack(/*protected_mode=*/true);
    WarmCaches(stack);
    workload::Session session(42, &stack.workbooks[0], {}, 3);
    auto step = session.Next();
    auto batch = session.BuildBatch(*step);
    CHECK_OR_FAIL(batch.ok(), "fairness batch build failed");
    std::vector<std::thread> greedy;
    for (int t = 0; t < 6; ++t) {
      greedy.emplace_back([&] {
        for (int i = 0; i < 8; ++i) {
          server::ServeReport r;
          (void)stack.frontend->Serve(42, ExecContext::WithDeadlineMs(500),
                                      *batch, &r);
        }
      });
    }
    for (auto& t : greedy) t.join();
    auto stats = stack.frontend->admission().stats();
    CHECK_OR_FAIL(
        stats.peak_session_inflight <=
            stack.frontend->options().admission.max_session_inflight,
        "per-session in-flight cap exceeded");
    CHECK_OR_FAIL(stats.inflight == 0, "admission tickets leaked");
  }
  // 5. Offered load ramps monotonically with the target rate.
  {
    Stack stack = MakeStack(/*protected_mode=*/true);
    WarmCaches(stack);
    PointResult low = RunPoint(stack, 10, 0.8, 11);
    PointResult high = RunPoint(stack, 80, 0.8, 12);
    CHECK_OR_FAIL(high.attempted > low.attempted,
                  "offered load not monotone in target rate");
  }
  // 6. Phase attribution: for sequential requests through the full
  //    pipeline, the root phases decompose the observed wall time — each
  //    request's attributed sum stays within clock-read tolerance of its
  //    wall, and never overshoots (exclusive accounting means no
  //    double-counting).
  {
    CHECK_OR_FAIL(PhaseTimeline::Enabled(), "timelines off at selftest start");
    Stack stack = MakeStack(/*protected_mode=*/true);
    WarmCaches(stack);
    workload::Session session(3, &stack.workbooks[1], {}, 17);
    double wall_total = 0, attr_total = 0;
    int measured = 0;
    for (int i = 0; i < 30; ++i) {
      auto step = session.Next();
      if (!step.has_value()) {
        session = workload::Session(3 + i, &stack.workbooks[i % kWorkbooks],
                                    {}, 17 + i);
        step = session.Next();
      }
      CHECK_OR_FAIL(step.has_value(), "attribution: no step");
      ExecContext ctx = ExecContext::WithDeadlineMs(kDeadlineMs);
      int64_t t0 = NowNs();
      auto batch = session.BuildBatch(ctx, *step);
      CHECK_OR_FAIL(batch.ok(), "attribution: batch build failed");
      if (batch->empty()) continue;
      server::ServeReport report;
      (void)stack.frontend->Serve(session.id(), ctx, *batch, &report);
      double wall_ms = static_cast<double>(NowNs() - t0) / 1e6;
      const PhaseTimeline* tl = ctx.timeline();
      CHECK_OR_FAIL(tl != nullptr, "request context carries no timeline");
      double attr_ms = static_cast<double>(tl->attributed_ns()) / 1e6;
      CHECK_OR_FAIL(attr_ms <= wall_ms * 1.10 + 1.0,
                    "attributed phases exceed wall time");
      wall_total += wall_ms;
      attr_total += attr_ms;
      ++measured;
    }
    CHECK_OR_FAIL(measured >= 20, "attribution: too few measured requests");
    CHECK_OR_FAIL(attr_total >= 0.85 * wall_total - 1.0,
                  "phases attribute <85% of sequential wall time");
    CHECK_OR_FAIL(attr_total <= 1.05 * wall_total + 1.0,
                  "phases over-attribute sequential wall time");
  }
  // 7. The burn-rate monitor fires on the unprotected ablation under
  //    saturating load and stays quiet on the protected ladder, and the
  //    timeline attributes the vast majority of latency either way.
  {
#ifdef NDEBUG
    // Saturating for the optimized build: ~4x the rate where the
    // unprotected ablation collapses, still inside ladder capacity.
    const double kProtectedRate = 160;
#else
    // An unoptimized build is ~10x slower per request; at 160/s even the
    // ladder's fast path exceeds single-core capacity and the queue wait
    // alone (correctly) burns the user-latency SLO. Scale the protected
    // check to what this build can physically serve — the property under
    // test is the ladder's protection, not the build's clock speed.
    const double kProtectedRate = 40;
#endif
    Stack prot = MakeStack(/*protected_mode=*/true);
    WarmCaches(prot);
    PointResult p = RunPoint(prot, kProtectedRate, 2.0, 21);
    CHECK_OR_FAIL(!p.slo.firing,
                  "SLO burn-rate fired on the protected ladder");
    CHECK_OR_FAIL(p.attributed_mean >= 0.90,
                  "protected: attributed mean share < 90%");
    CHECK_OR_FAIL(p.attributed_tail >= 0.95,
                  "protected: attributed tail share < 95%");

    Stack unprot = MakeStack(/*protected_mode=*/false);
    WarmCaches(unprot);
    PointResult u = RunPoint(unprot, 160, 2.0, 22);
    CHECK_OR_FAIL(u.slo.firing,
                  "SLO burn-rate silent on the unprotected ablation");
    CHECK_OR_FAIL(u.attributed_tail >= 0.95,
                  "unprotected: attributed tail share < 95%");
  }
  // 8. Tail exemplars: the ramp above retained the slowest requests, and
  //    they export as a valid Chrome trace.
  {
    obs::TailExemplarStore& store = obs::GlobalExemplars();
    CHECK_OR_FAIL(store.total_retained() > 0, "no tail exemplars retained");
    obs::Exemplar slowest = store.Slowest();
    CHECK_OR_FAIL(slowest.duration_ms > 0, "slowest exemplar has no duration");
    std::string trace = store.ToChromeTrace();
    int events = 0;
    Status valid = obs::ValidateChromeTrace(trace, &events);
    CHECK_OR_FAIL(valid.ok(), "tail-exemplar trace fails schema validation");
    CHECK_OR_FAIL(events > 0, "tail-exemplar trace has no events");
    if (!g_tail_trace_out.empty()) {
      std::ofstream tf(g_tail_trace_out, std::ios::trunc);
      CHECK_OR_FAIL(static_cast<bool>(tf), "cannot open tail trace path");
      tf << trace;
      std::fprintf(stderr, "selftest wrote tail trace: %s (%d events)\n",
                   g_tail_trace_out.c_str(), events);
    }
  }
  // 9. The always-on layer is cheap: warm hot-path overhead with
  //    timelines on vs the kill switch off stays under 10% (CI bound;
  //    the recorded bench run documents the tighter <5% number).
  {
    double on_us = 0, off_us = 0;
    double pct = MeasureTimelineOverhead(&on_us, &off_us);
    std::fprintf(stderr,
                 "timeline overhead: %.2f us/req on vs %.2f us/req off "
                 "(%.2f%%)\n",
                 on_us, off_us, pct);
    CHECK_OR_FAIL(pct < 10.0, "timeline hot-path overhead >= 10%");
    CHECK_OR_FAIL(PhaseTimeline::Enabled(),
                  "overhead probe left the kill switch off");
  }
  std::fprintf(stderr, "bench_traffic selftest: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool selftest = false;
  std::string emit_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest = true;
    } else if (std::strncmp(argv[i], "--emit-json=", 12) == 0) {
      emit_json_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--tail-trace-out=", 17) == 0) {
      g_tail_trace_out = argv[i] + 17;
    } else {
      std::fprintf(stderr,
                   "usage: bench_traffic --selftest | --emit-json=PATH "
                   "[--tail-trace-out=PATH]\n");
      return 2;
    }
  }
  if (selftest) return Selftest();
  if (!emit_json_path.empty()) {
    return EmitJson(emit_json_path, g_tail_trace_out);
  }
  return Selftest();
}
