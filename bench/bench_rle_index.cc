// E7 (§4.3): RLE IndexTable range skipping. A filter on a run-length
// encoded column is pushed onto the run table; surviving runs become
// direct range accesses. Sweeps filter selectivity (how many of the sorted
// key's values are selected).
//
// §4.3's caveat is measured too: "this approach does not always make the
// query execution faster ... it may also reduce the degree of parallelism
// [and] introduce data skew among threads". At high selectivity (most rows
// kept) the serial index scan loses to the plain *parallel* scan; at low
// selectivity range skipping wins big. The `index_modeled_ms` and
// `scan_modeled_ms` counters carry the parallel-plan comparison.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "src/common/rng.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 400000;
constexpr int kKeyCardinality = 64;

// A table sorted by `key` (so key is heavily run-length encoded).
std::shared_ptr<tde::Database> RleDb() {
  static std::shared_ptr<tde::Database> db;
  if (db != nullptr) return db;
  Rng rng(42);
  std::vector<int64_t> keys(kRows);
  for (int64_t i = 0; i < kRows; ++i) keys[i] = rng.Below(kKeyCardinality);
  std::sort(keys.begin(), keys.end());
  tde::TableBuilder builder("fact",
                            {tde::ColumnInfo{"key", DataType::Int64()},
                             tde::ColumnInfo{"val", DataType::Int64()}});
  builder.SetEncodingChoice(0, tde::EncodingChoice::kForceRle);
  for (int64_t i = 0; i < kRows; ++i) {
    (void)builder.AddRow({Value(keys[i]), Value(rng.Range(0, 1000))});
  }
  builder.DeclareSorted({0});
  db = std::make_shared<tde::Database>("rle");
  (void)db->AddTable(*builder.Finish());
  return db;
}

std::string FilterQuery(int selected_keys) {
  // key < selected_keys — selectivity = selected_keys / kKeyCardinality.
  return "(aggregate () ((total sum val) (n count*))"
         " (select (< key " + std::to_string(selected_keys) + ")"
         " (scan fact)))";
}

void BM_RleIndex(benchmark::State& state) {
  int selected = static_cast<int>(state.range(0));
  bool use_index = state.range(1) == 1;
  tde::TdeEngine engine(RleDb());

  // Serial on both sides first (the pure range-skipping effect).
  tde::QueryOptions options = tde::QueryOptions::Serial();
  options.optimizer.rle_index =
      use_index ? tde::OptimizerOptions::RleIndexMode::kForce
                : tde::OptimizerOptions::RleIndexMode::kOff;
  const std::string tql = FilterQuery(selected);

  int64_t rows_scanned = 0;
  for (auto _ : state) {
    auto result = engine.Execute(tql, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows_scanned = result->stats->rows_scanned;
    benchmark::DoNotOptimize(result->table.num_rows());
  }

  // The §4.3 plan-choice comparison: modeled parallel plain scan vs
  // modeled parallel index scan (the index path may have fewer/skewed
  // fractions).
  tde::QueryOptions par = options;
  par.parallel.enable_parallel = true;
  par.parallel.max_dop = 4;
  par.parallel.min_rows_per_fraction = 4096;
  par.serial_exchange_for_measurement = true;
  auto t0 = std::chrono::steady_clock::now();
  auto pr = engine.Execute(tql, par);
  double wall = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (pr.ok()) {
    state.counters["par_modeled_ms"] =
        benchutil::ModeledParallelMs(wall, *pr->stats);
  }
  state.counters["selectivity_pct"] = 100.0 * selected / kKeyCardinality;
  state.counters["rows_scanned"] = static_cast<double>(rows_scanned);
  state.SetLabel(use_index ? "index" : "scan");
}

// The §4.3 caveat in isolation: a column with only 4 giant runs. Selecting
// one of them leaves the index path a single range — a DOP of 1 — while
// the plain scan keeps 8 balanced fractions. The index's reduced
// parallelism makes it the slower *parallel* plan despite reading far
// fewer rows ("although it reduces the total amount of data to be read
// from the disk, it may also reduce the degree of parallelism").
std::shared_ptr<tde::Database> GiantRunsDb() {
  static std::shared_ptr<tde::Database> db;
  if (db != nullptr) return db;
  Rng rng(43);
  tde::TableBuilder builder("fact",
                            {tde::ColumnInfo{"key", DataType::Int64()},
                             tde::ColumnInfo{"val", DataType::Int64()},
                             tde::ColumnInfo{"tag", DataType::String()}});
  builder.SetEncodingChoice(0, tde::EncodingChoice::kForceRle);
  const char* tags[] = {"Alpha-One", "Bravo-Two", "Charlie-Three",
                        "Delta-Four", "Echo-Five"};
  for (int64_t i = 0; i < kRows; ++i) {
    (void)builder.AddRow({Value(i / (kRows / 4)), Value(rng.Range(0, 1000)),
                          Value(tags[rng.Below(5)])});
  }
  builder.DeclareSorted({0});
  db = std::make_shared<tde::Database>("rle4");
  (void)db->AddTable(*builder.Finish());
  return db;
}

void BM_RleIndexSkewCaveat(benchmark::State& state) {
  bool use_index = state.range(0) == 1;
  tde::TdeEngine engine(GiantRunsDb());
  tde::QueryOptions par;
  par.optimizer.rle_index = use_index
                                ? tde::OptimizerOptions::RleIndexMode::kForce
                                : tde::OptimizerOptions::RleIndexMode::kOff;
  par.parallel.max_dop = 8;
  par.parallel.min_rows_per_fraction = 4096;
  par.serial_exchange_for_measurement = true;
  // The per-selected-row work (a string expression in the aggregation) is
  // what the lost parallelism fails to spread across threads.
  const std::string tql =
      "(aggregate () ((total sum (strlen (lower tag)))) "
      "(select (= key 0) (scan fact)))";
  double wall_total = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto result = engine.Execute(tql, par);
    double wall = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    wall_total += wall;
    state.SetIterationTime(
        benchutil::ModeledParallelMs(wall, *result->stats) / 1000.0);
  }
  state.counters["wall_ms"] =
      benchmark::Counter(wall_total / state.iterations());
  state.SetLabel(use_index ? "index (1 giant range, dop 1)"
                           : "scan (8 fractions)");
}

void RegisterAll() {
  for (int use_index : {0, 1}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_RleIndexSkewCaveat/") +
         (use_index ? "index" : "scan"))
            .c_str(),
        BM_RleIndexSkewCaveat)
        ->Arg(use_index)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  for (int selected : {1, 4, 16, 48, 64}) {
    for (int use_index : {0, 1}) {
      std::string name = "BM_RleIndex/sel:" + std::to_string(selected) + "of" +
                         std::to_string(kKeyCardinality) + "/" +
                         (use_index ? "index" : "scan");
      benchmark::RegisterBenchmark(name.c_str(), BM_RleIndex)
          ->Args({selected, use_index})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
