// E12 (§5.3-5.4): Data Server temporary tables. A client repeatedly
// filters by a large enumeration (multi-dimensional set / categorical
// bins). Regimes:
//
//   inline     — the values travel with every query (client->server
//                traffic) and are inlined into the remote query
//   temp_table — uploaded once to the Data Server; queries reference the
//                name; the compiler externalizes to a database temp table
//                that pooled connections preserve and reuse
//
// Sweeps the enumeration cardinality. The `values_sent` counter shows the
// client->server traffic difference.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "src/federation/simulated_source.h"
#include "src/server/data_server.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 60000;

std::vector<Value> Enumeration(int cardinality) {
  std::vector<Value> out;
  out.reserve(cardinality);
  for (int i = 0; i < cardinality; ++i) {
    out.push_back(Value(static_cast<int64_t>(i * 7 % 2600)));
  }
  return out;
}

void BM_DataServerTempTables(benchmark::State& state) {
  int cardinality = static_cast<int>(state.range(0));
  bool use_temp = state.range(1) == 1;
  constexpr int kQueriesPerSession = 6;

  auto db = benchutil::FaaDb(kRows);
  std::vector<Value> values = Enumeration(cardinality);

  for (auto _ : state) {
    auto backend =
        federation::SimulatedDataSource::SingleThreadedSql("faa", db);
    server::DataServer server;
    server::PublishedDataSource source;
    source.name = "Flights";
    source.view.fact_table = "flights";
    if (!server.Publish(std::move(source), backend).ok()) {
      state.SkipWithError("publish failed");
      return;
    }
    auto session = server.Connect("user", "Flights");
    if (!session.ok()) {
      state.SkipWithError("connect failed");
      return;
    }

    auto started = std::chrono::steady_clock::now();
    int64_t values_sent = 0;
    if (use_temp) {
      // One upload; later queries reference the name.
      if (!(*session)
               ->CreateTempTable("bins", "distance", DataType::Int64(),
                                 values)
               .ok()) {
        state.SkipWithError("temp table creation failed");
        return;
      }
      values_sent += cardinality;
    }
    for (int q = 0; q < kQueriesPerSession; ++q) {
      server::ClientQuery cq;
      const char* dims[] = {"carrier", "dest_state", "weekday",
                            "dep_hour", "origin_state", "dest"};
      cq.query =
          query::QueryBuilder("", "").Dim(dims[q]).CountAll("n").Build();
      if (use_temp) {
        cq.temp_filters["distance"] = "bins";
      } else {
        cq.query.filters.predicates.push_back(
            query::ColumnPredicate::InSet("distance", values));
        cq.query.Canonicalize();
        values_sent += cardinality;
      }
      auto result = (*session)->Query(cq);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(result->num_rows());
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
    // The client<->Data Server link is in-process here; charge the §5.3
    // "network traffic between the client and the Data Server" explicitly:
    // ~0.5us per enumeration value shipped.
    double client_link_ms = 0.0005 * static_cast<double>(values_sent);
    state.SetIterationTime((ms + client_link_ms) / 1000.0);
    state.counters["values_sent"] = static_cast<double>(values_sent);
    state.counters["client_link_ms"] = client_link_ms;
  }
  state.counters["cardinality"] = cardinality;
  state.SetLabel(use_temp ? "temp_table" : "inline");
}

void RegisterAll() {
  for (int cardinality : {100, 1000, 10000, 50000}) {
    for (int temp : {0, 1}) {
      std::string name = "BM_DataServerTempTables/card:" +
                         std::to_string(cardinality) + "/" +
                         (temp ? "temp_table" : "inline");
      benchmark::RegisterBenchmark(name.c_str(), BM_DataServerTempTables)
          ->Args({cardinality, temp})
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
