// E8 (§3.2): the intelligent cache over a realistic interaction session.
//
// A user loads the Fig. 1 dashboard, then performs a sequence of
// interactions (quick-filter deselections, map selections, drill-downs).
// Regimes:
//   none          — no caching at all
//   literal       — text-keyed cache only (exact repeats hit)
//   intelligent   — subsumption matching + post-processing
//   intelligent+  — plus the §3.2 reuse adjustment (AVG decomposition and
//                   filter columns added as dimensions)
//
// Also ablates the match strategy: first-match (shipped) vs
// least-post-processing (the paper's stated future work).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dashboard/renderer.h"
#include "src/federation/simulated_source.h"
#include "src/workload/flights_dashboards.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 60000;

// Scripted session: initial load + 6 interactions.
void RunSession(dashboard::QueryService* service,
                const dashboard::BatchOptions& options, double* out_ms,
                int* out_remote) {
  dashboard::Dashboard dash = workload::BuildFigure1Dashboard("faa");
  dashboard::DashboardRenderer renderer(service);
  dashboard::InteractionState state;
  // Fig. 1 initial state: every filter value selected.
  std::vector<Value> all_carriers;
  for (int c = 0; c < 10; ++c) {
    all_carriers.push_back(Value(workload::FaaCarrierCodes()[c]));
  }
  state.SetQuickFilter("carrier", all_carriers);

  double total_ms = 0;
  int remote = 0;
  auto account = [&](const StatusOr<dashboard::RenderReport>& report) {
    if (!report.ok()) std::abort();
    total_ms += report->total_ms;
    for (const dashboard::BatchReport& b : report->batches) {
      remote += b.remote_queries;
    }
  };

  account(renderer.Render(dash, &state, options));

  // 1-2: deselect carriers in the quick filter (§3.2's Fig. 1 scenario).
  std::vector<Value> most(all_carriers.begin(), all_carriers.end() - 2);
  state.SetQuickFilter("carrier", most);
  account(renderer.Refresh(dash, &state, dash.QuickFilterTargets("carrier"),
                           options));
  std::vector<Value> fewer(all_carriers.begin(), all_carriers.end() - 5);
  state.SetQuickFilter("carrier", fewer);
  account(renderer.Refresh(dash, &state, dash.QuickFilterTargets("carrier"),
                           options));

  // 3: select two states on the origin map.
  state.Select("OriginMap", "origin_state", {Value("CA"), Value("NY")});
  account(renderer.Refresh(dash, &state, dash.ActionTargets("OriginMap"),
                           options));

  // 4: narrow to one state (a subset — post-filterable).
  state.Select("OriginMap", "origin_state", {Value("CA")});
  account(renderer.Refresh(dash, &state, dash.ActionTargets("OriginMap"),
                           options));

  // 5: back to the wider selection (an exact repeat of step 3).
  state.Select("OriginMap", "origin_state", {Value("CA"), Value("NY")});
  account(renderer.Refresh(dash, &state, dash.ActionTargets("OriginMap"),
                           options));

  // 6: clear everything (repeats the post-load queries).
  state.selections.clear();
  state.SetQuickFilter("carrier", all_carriers);
  account(renderer.Refresh(dash, &state, dash.QueryZoneNames(), options));

  *out_ms = total_ms;
  *out_remote = remote;
}

dashboard::BatchOptions Regime(int which) {
  dashboard::BatchOptions o;
  o.analyze_batch = true;
  o.fuse_queries = true;
  o.concurrent = true;
  switch (which) {
    case 0:  // none
      o.use_intelligent_cache = false;
      o.use_literal_cache = false;
      o.adjust.decompose_avg = false;
      break;
    case 1:  // literal only
      o.use_intelligent_cache = false;
      o.use_literal_cache = true;
      o.adjust.decompose_avg = false;
      break;
    case 2:  // intelligent
      o.use_intelligent_cache = true;
      o.use_literal_cache = true;
      o.adjust.decompose_avg = false;
      o.adjust.add_filter_dimensions = false;
      break;
    case 3:  // intelligent + reuse adjustment
      o.use_intelligent_cache = true;
      o.use_literal_cache = true;
      o.adjust.decompose_avg = true;
      o.adjust.add_filter_dimensions = true;
      break;
  }
  return o;
}

const char* RegimeName(int which) {
  switch (which) {
    case 0: return "none";
    case 1: return "literal";
    case 2: return "intelligent";
    case 3: return "intelligent+adjust";
  }
  return "?";
}

void BM_CacheSession(benchmark::State& state) {
  int regime = static_cast<int>(state.range(0));
  auto db = benchutil::FaaDb(kRows);
  for (auto _ : state) {
    // Fresh caches per iteration: we measure one user's session.
    auto source =
        federation::SimulatedDataSource::SingleThreadedSql("faa", db);
    auto caches = std::make_shared<dashboard::CacheStack>();
    dashboard::QueryService service(source, caches);
    if (!service.RegisterView(workload::FlightsStarView()).ok()) {
      state.SkipWithError("view registration failed");
      return;
    }
    double ms = 0;
    int remote = 0;
    RunSession(&service, Regime(regime), &ms, &remote);
    state.SetIterationTime(ms / 1000.0);
    state.counters["remote_queries"] = remote;
  }
  state.SetLabel(RegimeName(regime));
}
BENCHMARK(BM_CacheSession)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

// Match-strategy ablation: many coverable entries in the cache; the
// least-post-processing strategy picks the cheapest (smallest) one.
void BM_MatchStrategy(benchmark::State& state) {
  bool least = state.range(0) == 1;
  auto db = benchutil::FaaDb(kRows);
  auto source = std::make_shared<federation::TdeDataSource>("faa", db);
  cache::IntelligentCacheOptions copts;
  copts.strategy = least ? cache::MatchStrategy::kLeastPostProcessing
                         : cache::MatchStrategy::kFirstMatch;
  auto caches = std::make_shared<dashboard::CacheStack>(
      copts, cache::LiteralCacheOptions{});
  dashboard::QueryService service(source, caches);
  (void)service.RegisterTableView("flights");

  dashboard::BatchOptions raw;
  raw.use_intelligent_cache = false;
  raw.use_literal_cache = false;

  // Seed the cache: a fat fine-grained entry first, then a small exact
  // one. First-match scans in bucket insertion order and post-processes
  // the fat entry; least-post-processing finds the small one.
  auto fat = query::QueryBuilder("faa", "flights")
                 .Dim("market").Dim("carrier").Dim("weekday")
                 .Agg(AggFunc::kSum, "arr_delay", "total")
                 .Agg(AggFunc::kCount, "arr_delay", "n")
                 .Build();
  auto small = query::QueryBuilder("faa", "flights")
                   .Dim("carrier")
                   .Agg(AggFunc::kSum, "arr_delay", "total")
                   .Agg(AggFunc::kCount, "arr_delay", "n")
                   .Build();
  auto fat_result = service.ExecuteQuery(fat, raw);
  auto small_result = service.ExecuteQuery(small, raw);
  if (!fat_result.ok() || !small_result.ok()) {
    state.SkipWithError("seeding failed");
    return;
  }
  caches->intelligent.Put(fat, *fat_result, 50.0);
  caches->intelligent.Put(small, *small_result, 50.0);

  auto request = query::QueryBuilder("faa", "flights")
                     .Dim("carrier")
                     .Agg(AggFunc::kAvg, "arr_delay", "mean")
                     .Build();
  for (auto _ : state) {
    auto hit = caches->intelligent.Lookup(request);
    if (!hit.has_value()) {
      state.SkipWithError("expected a cache hit");
      return;
    }
    benchmark::DoNotOptimize(hit->num_rows());
  }
  state.SetLabel(least ? "least_post_processing" : "first_match");
}
BENCHMARK(BM_MatchStrategy)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
