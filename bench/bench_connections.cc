// E3 (§3.5): concurrent execution of queries through multiple connections
// "boosts performance, often dramatically, across the architectures
// supported" — provided idle resources exist.
//
// An 8-query batch runs with a connection-pool cap of 1/2/4/8 against
// three simulated architectures:
//   rowstore  — single thread per query, 8 CPUs: concurrency scales until
//               the CPUs are busy
//   warehouse — parallel plans: a lone query already uses the whole
//               machine, so extra connections help mostly with overheads
//   cloud     — server-side admission throttle of 2: client-side
//               connection count stops mattering beyond it

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dashboard/query_service.h"
#include "src/federation/simulated_source.h"

namespace {

using namespace vizq;
using query::QueryBuilder;

constexpr int64_t kRows = 60000;

std::vector<query::AbstractQuery> EightQueries() {
  const char* dims[] = {"carrier", "dest_state", "origin_state", "weekday",
                        "dep_hour", "dest",       "origin",       "market"};
  std::vector<query::AbstractQuery> batch;
  for (const char* d : dims) {
    batch.push_back(QueryBuilder("faa", "flights")
                        .Dim(d)
                        .CountAll("flights")
                        .Agg(AggFunc::kAvg, "arr_delay", "avg_delay")
                        .Build());
  }
  return batch;
}

std::shared_ptr<federation::SimulatedDataSource> MakeSource(int arch) {
  auto db = benchutil::FaaDb(kRows);
  switch (arch) {
    case 0: return federation::SimulatedDataSource::SingleThreadedSql("faa", db);
    case 1: return federation::SimulatedDataSource::ParallelWarehouse("faa", db);
    default: return federation::SimulatedDataSource::ThrottledCloud("faa", db);
  }
}

const char* ArchName(int arch) {
  switch (arch) {
    case 0: return "rowstore";
    case 1: return "warehouse";
    default: return "cloud";
  }
}

void BM_ConnectionsSweep(benchmark::State& state) {
  int arch = static_cast<int>(state.range(0));
  int connections = static_cast<int>(state.range(1));
  auto source = MakeSource(arch);
  // §3.5: "some systems impose limitations on the overall number of
  // connections" — the client clamps to the backend's cap.
  bool clamped = connections > source->capabilities().max_connections;
  if (clamped) connections = source->capabilities().max_connections;
  dashboard::QueryService service(source, nullptr);
  if (!service.RegisterTableView("flights").ok()) {
    state.SkipWithError("view registration failed");
    return;
  }
  std::vector<query::AbstractQuery> batch = EightQueries();

  dashboard::BatchOptions options;
  options.use_intelligent_cache = false;
  options.use_literal_cache = false;
  options.analyze_batch = false;
  options.fuse_queries = false;
  options.concurrent = connections > 1;
  options.max_parallel_queries = connections;

  for (auto _ : state) {
    auto results = service.ExecuteBatch(batch, options, nullptr);
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(results->size());
  }
  state.counters["connections"] = connections;
  state.counters["pool_opened"] =
      static_cast<double>(service.pool().stats().opened);
  state.SetLabel(std::string(ArchName(arch)) +
                 (clamped ? " (clamped to backend cap)" : ""));
}

void RegisterAll() {
  for (int arch = 0; arch <= 2; ++arch) {
    for (int connections : {1, 2, 4, 8}) {
      std::string name = std::string("BM_ConnectionsSweep/") +
                         ArchName(arch) + "/conns:" +
                         std::to_string(connections);
      benchmark::RegisterBenchmark(name.c_str(), BM_ConnectionsSweep)
          ->Args({arch, connections})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
