// E6 (§4.2.2, Fig. 4): parallel plans with joins. The fact side probes in
// parallel fractions; the dimension side is built once into a SharedTable
// and a single hash table shared by every probing thread.
//
// Manual time = modeled multi-core makespan; wall_ms = measured.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 300000;

void BM_ParallelJoin(benchmark::State& state) {
  int dop = static_cast<int>(state.range(0));
  auto db = benchutil::FaaDb(kRows);
  tde::TdeEngine engine(db);
  tde::QueryOptions options;
  if (dop <= 1) {
    options.parallel.enable_parallel = false;
  } else {
    options.parallel.max_dop = dop;
    options.parallel.min_rows_per_fraction = 1024;
  }
  options.parallel.enable_range_partition = false;
  options.serial_exchange_for_measurement = true;
  // Group by a dimension-side column so the join cannot be culled.
  const std::string tql =
      "(aggregate ((airline airline_name)) ((n count*) (delay avg arr_delay))"
      " (join inner ((carrier code)) (scan flights) (scan carriers)"
      " referential))";

  double wall_total = 0;
  for (auto _ : state) {
    auto started = std::chrono::steady_clock::now();
    auto result = engine.Execute(tql, options);
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    wall_total += wall_ms;
    double modeled = dop <= 1 ? wall_ms
                              : benchutil::ModeledParallelMs(wall_ms,
                                                             *result->stats);
    state.SetIterationTime(modeled / 1000.0);
  }
  state.counters["wall_ms"] =
      benchmark::Counter(wall_total / state.iterations());
  state.counters["dop"] = dop;
}
BENCHMARK(BM_ParallelJoin)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

// Join culling ablation (§4.1.2): the same query grouped by a fact column
// with culling on/off — "removal of the fact table from a join is critical
// for performance of domain queries" works the other way around here: the
// dimension join contributes nothing and is culled.
void BM_JoinCulling(benchmark::State& state) {
  bool culling = state.range(0) == 1;
  auto db = benchutil::FaaDb(kRows);
  tde::TdeEngine engine(db);
  tde::QueryOptions options = tde::QueryOptions::Serial();
  options.optimizer.enable_join_culling = culling;
  const std::string tql =
      "(aggregate ((carrier carrier)) ((n count*))"
      " (join inner ((carrier code)) (scan flights) (scan carriers)"
      " referential))";
  for (auto _ : state) {
    auto result = engine.Execute(tql, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table.num_rows());
  }
  state.SetLabel(culling ? "culled" : "kept");
}
BENCHMARK(BM_JoinCulling)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
