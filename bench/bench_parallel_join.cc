// E6 (§4.2.2, Fig. 4): parallel plans with blocking operators. The fact
// side probes in parallel fractions; the dimension side is built ONCE into
// a shared hash table — morsel-parallel key hashing plus one sole-writer
// insert task per hash partition — and the final aggregate merges
// thread-local partial states partitioned by group-key hash.
//
// Headline workload (--emit-json): a 2M-flight FAA fact joined to a
// derived dimension (market × fl_date COUNT(*), ~hundreds of thousands of
// build rows), grouped by carrier × dest_state with COUNT(*) and
// AVG(arr_delay). The build side is the expensive part — a full aggregate
// over the fact table — so serial build/merge caps scaling no matter how
// many probe fractions run; this bench records how far the partitioned
// build and merge move that cap.
//
// Manual time = modeled multi-core makespan (bench_util.h): serial
// remainder plus the per-section critical path measured contention-free
// under serial_exchange_for_measurement. wall_ms = measured 1-CPU wall.
//
// --selftest: parallel-vs-serial result equivalence (tolerance-aware
// table diff) plus the used_parallel_build/used_parallel_merge stats
// flags; exit 0 pass, 1 fail. --emit-json=PATH writes BENCH_join.json and
// enforces the acceptance bar: >=3x modeled speedup at DOP 8 over the
// all-serial baseline (exit 2 below bar, 1 on malfunction).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "src/testing/table_diff.h"

namespace {

using namespace vizq;

constexpr int64_t kQuickRows = 300000;    // harness + selftest
constexpr int64_t kEmitRows = 2000000;    // acceptance run

// Fact × derived-dimension join: every flight matches its own
// market × fl_date group, so the probe output stays 1:1 with the fact
// table while the build side is a full aggregate over it.
const char kDerivedDimJoin[] =
    "(aggregate ((carrier carrier) (dest_state dest_state))"
    " ((n count*) (delay avg arr_delay))"
    " (join inner ((market market) (fl_date day))"
    " (scan flights)"
    " (aggregate ((market market) (day fl_date)) ((m count*))"
    " (scan flights))))";

// Classic small-dimension join (carriers is a handful of rows): probe
// scaling with a near-free build.
const char kCarrierJoin[] =
    "(aggregate ((airline airline_name)) ((n count*) (delay avg arr_delay))"
    " (join inner ((carrier code)) (scan flights) (scan carriers)"
    " referential))";

tde::QueryOptions ParallelOptions(int dop, bool for_measurement) {
  tde::QueryOptions o;
  o.parallel.max_dop = dop;
  o.parallel.min_rows_per_fraction = 1024;
  o.parallel.enable_range_partition = false;
  o.parallel.parallel_build_min_rows = 1;
  o.parallel.parallel_merge_min_rows = 1;
  o.optimizer.enable_join_culling = false;
  o.serial_exchange_for_measurement = for_measurement;
  return o;
}

tde::QueryOptions SerialOptions() {
  tde::QueryOptions o = tde::QueryOptions::Serial();
  o.optimizer.enable_join_culling = false;
  return o;
}

struct Timed {
  double wall_ms = 0;
  double modeled_ms = 0;
};

// Best-of-`reps` by modeled time (first run is a discarded warmup).
Timed TimeModeled(tde::TdeEngine& engine, const std::string& tql,
                  const tde::QueryOptions& options, int reps = 3) {
  Timed best;
  best.modeled_ms = 1e300;
  for (int i = 0; i <= reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto result = engine.Execute(tql, options);
    auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    double wall = std::chrono::duration<double, std::milli>(t1 - t0).count();
    double modeled = options.serial_exchange_for_measurement
                         ? benchutil::ModeledParallelMs(wall, *result->stats)
                         : wall;
    if (i > 0 && modeled < best.modeled_ms) {
      best.wall_ms = wall;
      best.modeled_ms = modeled;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Harness benches (quick variants; the acceptance run is --emit-json).

void BM_ParallelJoin(benchmark::State& state) {
  int dop = static_cast<int>(state.range(0));
  auto db = benchutil::FaaDb(kQuickRows);
  tde::TdeEngine engine(db);
  tde::QueryOptions options =
      dop <= 1 ? SerialOptions() : ParallelOptions(dop, true);

  double wall_total = 0;
  for (auto _ : state) {
    auto started = std::chrono::steady_clock::now();
    auto result = engine.Execute(kDerivedDimJoin, options);
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    wall_total += wall_ms;
    double modeled = dop <= 1 ? wall_ms
                              : benchutil::ModeledParallelMs(wall_ms,
                                                             *result->stats);
    state.SetIterationTime(modeled / 1000.0);
  }
  state.counters["wall_ms"] =
      benchmark::Counter(wall_total / state.iterations());
  state.counters["dop"] = dop;
}
BENCHMARK(BM_ParallelJoin)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

// Join culling ablation (§4.1.2): the same query grouped by a fact column
// with culling on/off — "removal of the fact table from a join is critical
// for performance of domain queries" works the other way around here: the
// dimension join contributes nothing and is culled.
void BM_JoinCulling(benchmark::State& state) {
  bool culling = state.range(0) == 1;
  auto db = benchutil::FaaDb(kQuickRows);
  tde::TdeEngine engine(db);
  tde::QueryOptions options = tde::QueryOptions::Serial();
  options.optimizer.enable_join_culling = culling;
  const std::string tql =
      "(aggregate ((carrier carrier)) ((n count*))"
      " (join inner ((carrier code)) (scan flights) (scan carriers)"
      " referential))";
  for (auto _ : state) {
    auto result = engine.Execute(tql, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table.num_rows());
  }
  state.SetLabel(culling ? "culled" : "kept");
}
BENCHMARK(BM_JoinCulling)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --selftest: parallel results must equal serial results, and the
// partitioned build + partitioned merge must actually have run.

int SelfTest() {
  auto db = benchutil::FaaDb(kQuickRows);
  tde::TdeEngine engine(db);
  testing::DiffOptions diff;
  int failures = 0;

  auto check = [&](const char* name, const std::string& tql) {
    auto serial = engine.Execute(tql, SerialOptions());
    // Real scheduler-dispatched tasks, not measurement mode: the selftest
    // covers the concurrent path.
    auto parallel = engine.Execute(tql, ParallelOptions(8, false));
    if (!serial.ok() || !parallel.ok()) {
      std::fprintf(stderr, "FAIL %s: execution error: %s\n", name,
                   (!serial.ok() ? serial.status() : parallel.status())
                       .ToString()
                       .c_str());
      ++failures;
      return;
    }
    testing::DiffResult d =
        testing::DiffTables(serial->table, parallel->table, diff);
    if (!d.equivalent) {
      std::fprintf(stderr, "FAIL %s: parallel != serial: %s\n", name,
                   d.message.c_str());
      ++failures;
      return;
    }
    std::fprintf(stderr, "ok %s: %lld rows, build_morsels=%lld "
                 "merge_partitions=%lld parallel_build=%d parallel_merge=%d\n",
                 name, static_cast<long long>(parallel->table.num_rows()),
                 static_cast<long long>(parallel->stats->join_build_morsels),
                 static_cast<long long>(parallel->stats->merge_partitions),
                 parallel->stats->used_parallel_build ? 1 : 0,
                 parallel->stats->used_parallel_merge ? 1 : 0);
    if (std::strcmp(name, "derived_dim_join") == 0 &&
        (!parallel->stats->used_parallel_build ||
         !parallel->stats->used_parallel_merge ||
         parallel->stats->join_build_morsels <= 0)) {
      std::fprintf(stderr,
                   "FAIL %s: partitioned build/merge did not engage\n", name);
      ++failures;
    }
  };
  check("derived_dim_join", kDerivedDimJoin);
  check("carrier_join", kCarrierJoin);
  std::fprintf(stderr, failures == 0 ? "selftest passed\n"
                                     : "selftest FAILED\n");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --emit-json=PATH: the BENCH_join.json record (EXPERIMENTS.md).

int EmitJson(const std::string& path) {
  auto db = benchutil::FaaDb(kEmitRows);
  tde::TdeEngine engine(db);
  std::fprintf(stderr, "parallel join: %lld flights, derived-dim build\n",
               static_cast<long long>(kEmitRows));

  // Flag check: the measured plan must actually run the partitioned build
  // and the partitioned final merge.
  {
    auto t0 = std::chrono::steady_clock::now();
    auto probe = engine.Execute(kDerivedDimJoin, ParallelOptions(8, true));
    auto t1 = std::chrono::steady_clock::now();
    if (!probe.ok()) {
      std::fprintf(stderr, "flag run failed: %s\n",
                   probe.status().ToString().c_str());
      return 1;
    }
    double wall = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const tde::ExecStats& st = *probe->stats;
    std::fprintf(stderr,
                 "  stage breakdown @8: wall %.1f ms, fractions %.1f ms "
                 "(scan cp %.1f, build cp %.1f, merge cp %.1f), serial "
                 "remainder %.1f ms\n",
                 wall, st.SumFractionSeconds() * 1000,
                 st.StageCriticalPathSeconds(tde::ExecStats::kStageScan) * 1000,
                 st.StageCriticalPathSeconds(tde::ExecStats::kStageBuild) *
                     1000,
                 st.StageCriticalPathSeconds(tde::ExecStats::kStageMerge) *
                     1000,
                 wall - st.SumFractionSeconds() * 1000);
    if (std::getenv("VIZQ_BENCH_FRACTIONS") != nullptr) {
      for (const auto& f : st.fractions) {
        std::fprintf(stderr, "    frac section=%d stage=%d %.1f ms %lld rows\n",
                     f.section, f.stage, f.seconds * 1000,
                     static_cast<long long>(f.rows));
      }
    }
    if (!probe->stats->used_parallel_build ||
        !probe->stats->used_parallel_merge ||
        probe->stats->join_build_morsels <= 0 ||
        probe->stats->merge_partitions <= 0) {
      std::fprintf(stderr, "partitioned build/merge did not engage "
                   "(build=%d merge=%d morsels=%lld partitions=%lld)\n",
                   probe->stats->used_parallel_build ? 1 : 0,
                   probe->stats->used_parallel_merge ? 1 : 0,
                   static_cast<long long>(probe->stats->join_build_morsels),
                   static_cast<long long>(probe->stats->merge_partitions));
      return 1;
    }
  }

  // The acceptance ratio (serial vs DOP 8) gets extra reps: single-core
  // hosts jitter the serial baseline by ~10% and best-of-N converges it.
  Timed serial = TimeModeled(engine, kDerivedDimJoin, SerialOptions(), 5);
  std::fprintf(stderr, "  serial: %.1f ms\n", serial.wall_ms);

  const int kDops[] = {2, 4, 8};
  Timed scaled[3];
  for (int i = 0; i < 3; ++i) {
    scaled[i] = TimeModeled(engine, kDerivedDimJoin,
                            ParallelOptions(kDops[i], true),
                            kDops[i] == 8 ? 5 : 3);
    std::fprintf(stderr, "  dop %d: wall %.1f ms, modeled %.1f ms (%.2fx)\n",
                 kDops[i], scaled[i].wall_ms, scaled[i].modeled_ms,
                 serial.wall_ms / scaled[i].modeled_ms);
  }

  // Ablations at DOP 8: what serial blocking operators give back.
  tde::QueryOptions no_build = ParallelOptions(8, true);
  no_build.parallel.enable_parallel_build = false;
  tde::QueryOptions no_merge = ParallelOptions(8, true);
  no_merge.parallel.enable_parallel_merge = false;
  tde::QueryOptions no_both = ParallelOptions(8, true);
  no_both.parallel.enable_parallel_build = false;
  no_both.parallel.enable_parallel_merge = false;
  Timed abl_build = TimeModeled(engine, kDerivedDimJoin, no_build);
  Timed abl_merge = TimeModeled(engine, kDerivedDimJoin, no_merge);
  Timed abl_both = TimeModeled(engine, kDerivedDimJoin, no_both);
  std::fprintf(stderr,
               "  dop 8 ablations: serial-build %.1f ms, serial-merge %.1f "
               "ms, both-serial %.1f ms\n",
               abl_build.modeled_ms, abl_merge.modeled_ms,
               abl_both.modeled_ms);

  Timed carrier_serial = TimeModeled(engine, kCarrierJoin, SerialOptions());
  Timed carrier_dop8 =
      TimeModeled(engine, kCarrierJoin, ParallelOptions(8, true));

  double speedup8 = scaled[2].modeled_ms > 0
                        ? serial.wall_ms / scaled[2].modeled_ms
                        : 0;
  double blocking_gain = scaled[2].modeled_ms > 0
                             ? abl_both.modeled_ms / scaled[2].modeled_ms
                             : 0;
  double carrier_x = carrier_dop8.modeled_ms > 0
                         ? carrier_serial.wall_ms / carrier_dop8.modeled_ms
                         : 0;
  std::fprintf(stderr,
               "  speedup@8 %.2fx, blocking-operator gain %.2fx, "
               "carrier join %.2fx\n",
               speedup8, blocking_gain, carrier_x);

  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"parallel_join\",\n"
      "  \"workload\": \"%lld FAA flights joined to derived market x "
      "fl_date dimension, grouped by carrier x dest_state (count, avg "
      "arr_delay); modeled multi-core makespan from serial-measurement "
      "fractions\",\n"
      "  \"serial_ms\": %.3f,\n"
      "  \"dop2\": {\"wall_ms\": %.3f, \"modeled_ms\": %.3f, \"speedup_x\": "
      "%.2f},\n"
      "  \"dop4\": {\"wall_ms\": %.3f, \"modeled_ms\": %.3f, \"speedup_x\": "
      "%.2f},\n"
      "  \"dop8\": {\"wall_ms\": %.3f, \"modeled_ms\": %.3f, \"speedup_x\": "
      "%.2f},\n"
      "  \"dop8_ablation_serial_build_ms\": %.3f,\n"
      "  \"dop8_ablation_serial_merge_ms\": %.3f,\n"
      "  \"dop8_ablation_serial_both_ms\": %.3f,\n"
      "  \"blocking_operator_gain_x\": %.2f,\n"
      "  \"carrier_join\": {\"serial_ms\": %.3f, \"dop8_modeled_ms\": %.3f, "
      "\"speedup_x\": %.2f},\n"
      "  \"flags_confirmed\": true\n"
      "}\n",
      static_cast<long long>(kEmitRows), serial.wall_ms, scaled[0].wall_ms,
      scaled[0].modeled_ms, serial.wall_ms / scaled[0].modeled_ms,
      scaled[1].wall_ms, scaled[1].modeled_ms,
      serial.wall_ms / scaled[1].modeled_ms, scaled[2].wall_ms,
      scaled[2].modeled_ms, speedup8, abl_build.modeled_ms,
      abl_merge.modeled_ms, abl_both.modeled_ms, blocking_gain,
      carrier_serial.wall_ms, carrier_dop8.modeled_ms, carrier_x);
  f << buf;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  // Acceptance: >=3x modeled speedup at DOP 8 over the serial baseline.
  return speedup8 >= 3.0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) return SelfTest();
    if (std::strncmp(argv[i], "--emit-json=", 12) == 0) {
      return EmitJson(argv[i] + 12);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
