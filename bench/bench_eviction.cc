// E13 (§3.2): "cache entries ... are purged based upon a combination of
// entry age, usage, and the expense of re-evaluating the query." Ablates
// that score against plain LRU at the cache level, replaying a trace with
// heterogeneous re-evaluation costs:
//
//   * 3 "anchor" queries — expensive to evaluate (multi-dim aggregations,
//     80 ms each), re-issued every ~45 requests;
//   * a flood of one-off "probe" queries — cheap (5 ms), almost never
//     repeated — that exerts continuous memory pressure.
//
// By the time an anchor recurs it is among the least-recently-used
// entries, so LRU has evicted it and pays the 80 ms again; the
// age+usage+cost score keeps anchors resident. Iteration time is the
// modeled total evaluation cost (misses x their re-evaluation expense).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/cache/intelligent_cache.h"
#include "src/common/rng.h"
#include "src/dashboard/query_service.h"
#include "src/federation/data_source.h"

namespace {

using namespace vizq;
using query::QueryBuilder;

constexpr int64_t kRows = 60000;
constexpr double kAnchorCostMs = 80.0;
constexpr double kProbeCostMs = 5.0;

query::AbstractQuery AnchorQuery(int i) {
  switch (i % 3) {
    case 0:
      return QueryBuilder("faa", "flights")
          .Dim("origin").Dim("dest")
          .Agg(AggFunc::kSum, "arr_delay", "total")
          .Agg(AggFunc::kCount, "arr_delay", "n")
          .Build();
    case 1:
      return QueryBuilder("faa", "flights")
          .Dim("market")
          .CountAll("n")
          .Build();
    default:
      return QueryBuilder("faa", "flights")
          .Dim("dest").Dim("carrier")
          .Agg(AggFunc::kAvg, "dep_delay", "d")
          .Build();
  }
}

query::AbstractQuery CheapQuery(int i) {
  return QueryBuilder("faa", "flights")
      .Dim("origin_state")
      .CountAll("n")
      .FilterRange("distance", Value(static_cast<int64_t>(i * 3)),
                   Value(static_cast<int64_t>(i * 3 + 200)))
      .Build();
}

// Pre-computed results so the replay only exercises the cache.
struct Workload {
  std::vector<query::AbstractQuery> anchors;
  std::vector<ResultTable> anchor_results;
  ResultTable probe_result;  // all probes share a (tiny) result shape
};

const Workload& GetWorkload() {
  static const Workload* w = [] {
    auto db = benchutil::FaaDb(kRows);
    auto source = std::make_shared<federation::TdeDataSource>("faa", db);
    dashboard::QueryService service(source, nullptr);
    (void)service.RegisterTableView("flights");
    dashboard::BatchOptions raw;
    raw.use_intelligent_cache = false;
    raw.use_literal_cache = false;
    raw.adjust.decompose_avg = false;
    auto* out = new Workload();
    for (int i = 0; i < 3; ++i) {
      out->anchors.push_back(AnchorQuery(i));
      auto r = service.ExecuteQuery(out->anchors.back(), raw);
      if (!r.ok()) std::abort();
      out->anchor_results.push_back(*std::move(r));
    }
    auto pr = service.ExecuteQuery(CheapQuery(0), raw);
    if (!pr.ok()) std::abort();
    out->probe_result = *std::move(pr);
    return out;
  }();
  return *w;
}

void BM_EvictionPolicy(benchmark::State& state) {
  bool cost_aware = state.range(0) == 1;
  const Workload& w = GetWorkload();

  for (auto _ : state) {
    cache::IntelligentCacheOptions copts;
    copts.eviction = cost_aware ? cache::EvictionConfig::CostAware()
                                : cache::EvictionConfig::Lru();
    // The three anchors (~80 KB) plus ~20 probes fit; every further probe
    // forces an eviction decision.
    copts.max_bytes = 100 * 1024;
    cache::IntelligentCache cache(copts);

    Rng rng(11);
    double modeled_ms = 0;
    int64_t anchor_misses = 0;
    for (int i = 0; i < 450; ++i) {
      bool is_anchor = i % 15 == 0;
      query::AbstractQuery q =
          is_anchor ? w.anchors[(i / 15) % 3]
                    : CheapQuery(static_cast<int>(rng.Below(1000)));
      if (cache.Lookup(q).has_value()) continue;
      if (is_anchor) {
        modeled_ms += kAnchorCostMs;
        ++anchor_misses;
        cache.Put(q, w.anchor_results[(i / 15) % 3], kAnchorCostMs);
      } else {
        modeled_ms += kProbeCostMs;
        cache.Put(q, w.probe_result, kProbeCostMs);
      }
    }
    state.SetIterationTime(modeled_ms / 1000.0);
    state.counters["hits"] = static_cast<double>(cache.stats().hits());
    state.counters["anchor_misses"] = static_cast<double>(anchor_misses);
    state.counters["evictions"] = static_cast<double>(cache.stats().evictions);
  }
  state.SetLabel(cost_aware ? "age+usage+cost" : "lru");
}
BENCHMARK(BM_EvictionPolicy)
    ->Arg(0)->Arg(1)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
