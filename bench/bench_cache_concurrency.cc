// Concurrent cache throughput: the lock-striped IntelligentCache vs a
// global-lock baseline reproducing the pre-sharding design (one mutex
// around everything, deep result copy under the lock, O(n) eviction
// scan). Threads 1..16 issue mixed exact/derived/miss traffic.
//
// Single-core note (see bench_util.h): on a 1-CPU host real threads
// timeslice, so the *_real benches mostly sanity-check that throughput
// does not collapse under contention. BM_ModeledScaling reports the
// modeled multi-core picture: per-op wall time and per-op lock-hold time
// are measured single-threaded, then throughput at T cores is
//
//   modeled(T) = min(T / t_op, C / t_lock)
//
// i.e. T cores of pipelined ops capped by the serialization capacity of
// the lock(s) — C = 1 mutex for the baseline, C = num_shards for the
// striped cache (uniform keys). For the striped cache t_lock is
// conservatively taken as the FULL op time (an upper bound: exact-hit
// work is almost entirely under the shard lock), so its modeled scaling
// is understated, and it still clears the baseline by a wide margin:
// the baseline's copy-under-lock makes t_lock ≈ t_op with C = 1, which
// pins modeled(8)/modeled(1) at ~1x, while the striped cache reaches
// min(8, shards) ≈ 8x.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

#include "src/cache/eviction.h"
#include "src/cache/intelligent_cache.h"
#include "src/common/rng.h"
#include "src/query/abstract_query.h"

namespace {

using namespace vizq;
using cache::IntelligentCache;
using cache::IntelligentCacheOptions;
using query::AbstractQuery;
using query::QueryBuilder;

constexpr int kNumViews = 64;      // distinct exact-hit working set
constexpr int kStoredRows = 256;   // rows per cached result

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Global-lock baseline: the pre-sharding cache shape. Every operation —
// including the result deep copy on a hit and the ApplyMatchPlan roll-up
// on a derived hit — happens with the one mutex held.
class GlobalLockCache {
 public:
  explicit GlobalLockCache(int64_t max_bytes) : max_bytes_(max_bytes) {}

  std::optional<ResultTable> Lookup(const AbstractQuery& q) {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t held_start = NowNs();
    std::optional<ResultTable> out;
    auto it = entries_.find(q.ToKeyString());
    if (it != entries_.end()) {
      Touch(it->second);
      out = it->second.result;  // deep copy under the lock
    } else {
      for (auto& [key, e] : entries_) {
        auto plan = cache::MatchQueries(e.descriptor, e.result.columns(), q);
        if (!plan.has_value()) continue;
        auto derived = cache::ApplyMatchPlan(e.result, *plan, q);
        if (!derived.ok()) continue;
        Touch(e);
        out = *std::move(derived);  // post-processed under the lock
        break;
      }
    }
    lock_held_ns_.fetch_add(NowNs() - held_start, std::memory_order_relaxed);
    return out;
  }

  void Put(const AbstractQuery& q, const ResultTable& result, double cost_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t held_start = NowNs();
    Entry& e = entries_[q.ToKeyString()];
    if (e.usage.bytes > 0) bytes_ -= e.usage.bytes;
    e.descriptor = q;
    e.result = result;  // deep copy under the lock
    e.usage = cache::EntryUsage{};
    e.usage.inserted_tick = e.usage.last_used_tick = ++tick_;
    e.usage.eval_cost_ms = cost_ms;
    e.usage.bytes = e.result.ApproxBytes();
    bytes_ += e.usage.bytes;
    // O(n) scan per victim — the eviction the heap replaced.
    while (bytes_ > max_bytes_ && entries_.size() > 1) {
      auto victim = entries_.end();
      double best = 0;
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        double score = cache::EvictionScore(it->second.usage, tick_, config_);
        if (victim == entries_.end() || score > best) {
          victim = it;
          best = score;
        }
      }
      bytes_ -= victim->second.usage.bytes;
      entries_.erase(victim);
    }
    lock_held_ns_.fetch_add(NowNs() - held_start, std::memory_order_relaxed);
  }

  int64_t lock_held_ns() const {
    return lock_held_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    AbstractQuery descriptor;
    ResultTable result;
    cache::EntryUsage usage;
  };

  void Touch(Entry& e) {
    e.usage.last_used_tick = ++tick_;
    ++e.usage.hits;
  }

  std::mutex mu_;
  std::map<std::string, Entry> entries_;
  cache::EvictionConfig config_;
  int64_t max_bytes_;
  int64_t bytes_ = 0;
  int64_t tick_ = 0;
  std::atomic<int64_t> lock_held_ns_{0};
};

// ---------------------------------------------------------------------------
// Workload: synthetic (region x product) aggregates, no engine needed —
// the bench exercises cache locking, not evaluation.

ResultTable StoredResult() {
  ResultTable t(std::vector<ResultColumn>{{"region", DataType::String()},
                                          {"product", DataType::String()},
                                          {"total", DataType::Int64()}});
  const char* regions[] = {"East", "North", "South", "West"};
  for (int r = 0; r < 4; ++r) {
    for (int p = 0; p < kStoredRows / 4; ++p) {
      t.AddRow({Value(regions[r]), Value("p" + std::to_string(p)),
                Value(static_cast<int64_t>(r * 100 + p))});
    }
  }
  return t;
}

AbstractQuery StoredQuery(int view) {
  return QueryBuilder("bench", "view" + std::to_string(view))
      .Dim("region")
      .Dim("product")
      .Agg(AggFunc::kSum, "units", "total")
      .Build();
}

AbstractQuery RollupQuery(int view) {
  return QueryBuilder("bench", "view" + std::to_string(view))
      .Dim("region")
      .Agg(AggFunc::kSum, "units", "total")
      .Build();
}

AbstractQuery MissQuery(int i) {
  return QueryBuilder("bench", "cold" + std::to_string(i))
      .Dim("region")
      .CountAll("n")
      .Build();
}

template <typename Cache>
void Prepopulate(Cache& cache) {
  ResultTable stored = StoredResult();
  for (int v = 0; v < kNumViews; ++v) {
    cache.Put(StoredQuery(v), stored, 25.0);
  }
}

IntelligentCache& SharedShardedCache() {
  static auto* cache = [] {
    IntelligentCacheOptions options;
    options.num_shards = 16;
    auto* c = new IntelligentCache(options);
    Prepopulate(*c);
    return c;
  }();
  return *cache;
}

GlobalLockCache& SharedGlobalCache() {
  static auto* cache = [] {
    auto* c = new GlobalLockCache(256 << 20);
    Prepopulate(*c);
    return c;
  }();
  return *cache;
}

// ---------------------------------------------------------------------------
// Real-thread benches (items/s; see the single-core note above).

void BM_ExactHit_Real(benchmark::State& state) {
  bool sharded = state.range(0) == 1;
  int64_t ops = 0;
  Rng rng(state.thread_index() + 1);
  for (auto _ : state) {
    AbstractQuery q = StoredQuery(static_cast<int>(rng.Below(kNumViews)));
    if (sharded) {
      auto hit = SharedShardedCache().LookupHit(q);
      benchmark::DoNotOptimize(hit);
      if (!hit.has_value() || !hit->exact) state.SkipWithError("expected exact hit");
    } else {
      auto hit = SharedGlobalCache().Lookup(q);
      benchmark::DoNotOptimize(hit);
      if (!hit.has_value()) state.SkipWithError("expected exact hit");
    }
    ++ops;
  }
  state.SetItemsProcessed(ops);
  state.SetLabel(sharded ? "sharded16" : "global_lock");
}
BENCHMARK(BM_ExactHit_Real)
    ->Arg(0)->Arg(1)
    ->ThreadRange(1, 16)
    ->UseRealTime();

void BM_MixedTraffic_Real(benchmark::State& state) {
  bool sharded = state.range(0) == 1;
  int64_t ops = 0;
  Rng rng(state.thread_index() + 41);
  ResultTable fresh = StoredResult();
  for (auto _ : state) {
    double roll = rng.NextDouble();
    int view = static_cast<int>(rng.Below(kNumViews));
    if (roll < 0.70) {  // exact hit
      if (sharded) {
        benchmark::DoNotOptimize(SharedShardedCache().LookupHit(StoredQuery(view)));
      } else {
        benchmark::DoNotOptimize(SharedGlobalCache().Lookup(StoredQuery(view)));
      }
    } else if (roll < 0.85) {  // derived hit: roll-up post-processing
      if (sharded) {
        benchmark::DoNotOptimize(SharedShardedCache().LookupHit(RollupQuery(view)));
      } else {
        benchmark::DoNotOptimize(SharedGlobalCache().Lookup(RollupQuery(view)));
      }
    } else if (roll < 0.95) {  // miss
      AbstractQuery q = MissQuery(static_cast<int>(rng.Below(100000)));
      if (sharded) {
        benchmark::DoNotOptimize(SharedShardedCache().LookupHit(q));
      } else {
        benchmark::DoNotOptimize(SharedGlobalCache().Lookup(q));
      }
    } else {  // refresh a stored entry
      if (sharded) {
        SharedShardedCache().Put(StoredQuery(view), fresh, 25.0);
      } else {
        SharedGlobalCache().Put(StoredQuery(view), fresh, 25.0);
      }
    }
    ++ops;
  }
  state.SetItemsProcessed(ops);
  state.SetLabel(sharded ? "sharded16" : "global_lock");
}
BENCHMARK(BM_MixedTraffic_Real)
    ->Arg(0)->Arg(1)
    ->ThreadRange(1, 16)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Modeled multi-core scaling (the acceptance metric). Single-threaded
// measurement of t_op and t_lock per exact-hit op, then
// modeled(T) = min(T / t_op, C / t_lock).

void BM_ModeledScaling(benchmark::State& state) {
  bool sharded = state.range(0) == 1;
  constexpr int kOps = 20000;
  double t_op_ns = 0;
  double t_lock_ns = 0;
  for (auto _ : state) {
    Rng rng(7);
    if (sharded) {
      IntelligentCacheOptions options;
      options.num_shards = 16;
      IntelligentCache cache(options);
      Prepopulate(cache);
      int64_t start = NowNs();
      for (int i = 0; i < kOps; ++i) {
        auto hit =
            cache.LookupHit(StoredQuery(static_cast<int>(rng.Below(kNumViews))));
        benchmark::DoNotOptimize(hit);
      }
      t_op_ns = static_cast<double>(NowNs() - start) / kOps;
      // Conservative: treat the whole exact-hit op as shard-lock-held.
      t_lock_ns = t_op_ns;
    } else {
      GlobalLockCache cache(256 << 20);
      Prepopulate(cache);
      int64_t held_before = cache.lock_held_ns();
      int64_t start = NowNs();
      for (int i = 0; i < kOps; ++i) {
        auto hit =
            cache.Lookup(StoredQuery(static_cast<int>(rng.Below(kNumViews))));
        benchmark::DoNotOptimize(hit);
      }
      t_op_ns = static_cast<double>(NowNs() - start) / kOps;
      t_lock_ns =
          static_cast<double>(cache.lock_held_ns() - held_before) / kOps;
    }
  }
  double capacity = sharded ? 16.0 : 1.0;  // concurrent lock holders
  auto modeled = [&](double threads) {
    return std::min(threads / t_op_ns, capacity / t_lock_ns) * 1e9;
  };
  state.counters["t_op_ns"] = t_op_ns;
  state.counters["t_lock_ns"] = t_lock_ns;
  state.counters["modeled_ops_s_1t"] = modeled(1);
  state.counters["modeled_ops_s_8t"] = modeled(8);
  state.counters["modeled_ops_s_16t"] = modeled(16);
  state.counters["modeled_speedup_8t"] = modeled(8) / modeled(1);
  state.SetLabel(sharded ? "sharded16" : "global_lock");
}
BENCHMARK(BM_ModeledScaling)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --emit-json=PATH: machine-readable bench record (BENCH_cache.json) so
// the throughput/p95 trajectory is tracked across PRs. Self-timed (no
// google-benchmark harness): per thread count, every thread issues the
// mixed workload against one shared sharded cache and logs per-op
// latency; the run also measures the marginal cost of the global
// MetricsRegistry on the exact-hit hot path (acceptance: < 5%).

struct MixedRunResult {
  int threads = 0;
  double ops_per_s = 0;
  double p95_us = 0;
};

MixedRunResult RunMixedThreads(int num_threads, int ops_per_thread) {
  IntelligentCacheOptions options;
  options.num_shards = 16;
  IntelligentCache cache(options);
  Prepopulate(cache);
  ResultTable fresh = StoredResult();

  std::vector<std::vector<double>> latencies_us(num_threads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    latencies_us[t].reserve(ops_per_thread);
    threads.emplace_back([&, t] {
      Rng rng(t + 101);
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < ops_per_thread; ++i) {
        double roll = rng.NextDouble();
        int view = static_cast<int>(rng.Below(kNumViews));
        int64_t t0 = NowNs();
        if (roll < 0.70) {
          benchmark::DoNotOptimize(cache.LookupHit(StoredQuery(view)));
        } else if (roll < 0.85) {
          benchmark::DoNotOptimize(cache.LookupHit(RollupQuery(view)));
        } else if (roll < 0.95) {
          benchmark::DoNotOptimize(
              cache.LookupHit(MissQuery(static_cast<int>(rng.Below(100000)))));
        } else {
          cache.Put(StoredQuery(view), fresh, 25.0);
        }
        latencies_us[t].push_back(static_cast<double>(NowNs() - t0) / 1000.0);
      }
    });
  }
  int64_t start = NowNs();
  go.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
  double wall_s = static_cast<double>(NowNs() - start) / 1e9;

  std::vector<double> all;
  for (const auto& v : latencies_us) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  MixedRunResult out;
  out.threads = num_threads;
  out.ops_per_s = static_cast<double>(all.size()) / wall_s;
  out.p95_us = all.empty()
                   ? 0
                   : all[static_cast<size_t>(0.95 * (all.size() - 1))];
  return out;
}

// ns/op for a single-threaded exact-hit loop under `ctx`.
double MeasureExactHitNs(IntelligentCache& cache, const ExecContext& ctx,
                         int ops) {
  Rng rng(7);
  int64_t start = NowNs();
  for (int i = 0; i < ops; ++i) {
    benchmark::DoNotOptimize(
        cache.LookupHit(StoredQuery(static_cast<int>(rng.Below(kNumViews))),
                        ctx));
  }
  return static_cast<double>(NowNs() - start) / ops;
}

int EmitJson(const std::string& path) {
  constexpr int kOpsPerThread = 20000;
  const int thread_counts[] = {1, 2, 4, 8, 16};
  std::vector<MixedRunResult> runs;
  for (int t : thread_counts) {
    runs.push_back(RunMixedThreads(t, kOpsPerThread));
    std::fprintf(stderr, "  mixed %2d threads: %.0f ops/s, p95 %.2f us\n",
                 runs.back().threads, runs.back().ops_per_s,
                 runs.back().p95_us);
  }

  // Registry hot-path overhead: exact-hit loop with per-request metrics
  // on, with vs without the global sink forwarding. Warm-up first so
  // instrument creation is not billed to either side.
  IntelligentCacheOptions options;
  options.num_shards = 16;
  IntelligentCache cache(options);
  Prepopulate(cache);
  constexpr int kOverheadOps = 200000;
  ExecContext ctx;
  (void)obs::GlobalMetrics();  // ensure instruments exist
  MeasureExactHitNs(cache, ctx, 10000);
  SetGlobalMetricsSink(nullptr);
  double ns_no_sink = MeasureExactHitNs(cache, ctx, kOverheadOps);
  SetGlobalMetricsSink(&obs::GlobalMetrics());
  double ns_with_sink = MeasureExactHitNs(cache, ctx, kOverheadOps);
  double overhead_pct = 100.0 * (ns_with_sink - ns_no_sink) / ns_no_sink;
  std::fprintf(stderr,
               "  registry overhead: %.1f ns/op -> %.1f ns/op (%.2f%%)\n",
               ns_no_sink, ns_with_sink, overhead_pct);

  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  char buf[256];
  f << "{\n  \"bench\": \"cache_concurrency\",\n"
    << "  \"workload\": \"mixed 70% exact / 15% derived / 10% miss / 5% put,"
    << " sharded16\",\n  \"ops_per_thread\": " << kOpsPerThread
    << ",\n  \"threads\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"ops_per_s\": %.0f, "
                  "\"p95_us\": %.3f}%s\n",
                  runs[i].threads, runs[i].ops_per_s, runs[i].p95_us,
                  i + 1 < runs.size() ? "," : "");
    f << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"registry_overhead\": {\"exact_hit_ns_no_sink\": "
                "%.1f, \"exact_hit_ns_with_sink\": %.1f, "
                "\"overhead_pct\": %.2f}\n}\n",
                ns_no_sink, ns_with_sink, overhead_pct);
  f << buf;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return overhead_pct < 5.0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json=", 12) == 0) {
      return EmitJson(argv[i] + 12);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
