// E4 (§4.2, Fig. 3): parallel scans via the Exchange operator reduce
// single-query latency. Sweeps the degree of parallelism for an
// aggregation scan over the FAA fact table; manual time is the modeled
// multi-core makespan, the `wall_ms` counter is the measured single-host
// time (see bench_util.h).
//
// Also sweeps an expensive-expression variant (§4.2.2's cost profile: the
// parallelizer weighs per-row expression cost when picking the DOP).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 400000;

void RunPlan(benchmark::State& state, const std::string& tql, int dop) {
  auto db = benchutil::FaaDb(kRows);
  tde::TdeEngine engine(db);
  tde::QueryOptions options;
  if (dop <= 1) {
    options.parallel.enable_parallel = false;
  } else {
    options.parallel.max_dop = dop;
    options.parallel.min_rows_per_fraction = 1024;
  }
  // The aggregate strategies are ablated in bench_aggregation; keep this
  // one on plain exchange plans to isolate the scan parallelism.
  options.parallel.enable_range_partition = false;
  options.optimizer.enable_streaming_agg = false;
  options.serial_exchange_for_measurement = true;

  double wall_total = 0;
  for (auto _ : state) {
    auto started = std::chrono::steady_clock::now();
    auto result = engine.Execute(tql, options);
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    wall_total += wall_ms;
    double modeled = dop <= 1
                         ? wall_ms
                         : benchutil::ModeledParallelMs(wall_ms,
                                                        *result->stats);
    state.SetIterationTime(modeled / 1000.0);
  }
  state.counters["wall_ms"] =
      benchmark::Counter(wall_total / state.iterations());
  state.counters["dop"] = dop;
}

void BM_ParallelScan_Aggregate(benchmark::State& state) {
  RunPlan(state,
          "(aggregate ((carrier carrier)) ((n count*) (delay sum arr_delay))"
          " (scan flights))",
          static_cast<int>(state.range(0)));
}
BENCHMARK(BM_ParallelScan_Aggregate)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_ParallelScan_FilteredAggregate(benchmark::State& state) {
  RunPlan(state,
          "(aggregate ((dest dest)) ((n count*))"
          " (select (> arr_delay 60) (scan flights)))",
          static_cast<int>(state.range(0)));
}
BENCHMARK(BM_ParallelScan_FilteredAggregate)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

// Expensive per-row expressions (string transforms) shift more of the
// runtime into the parallel section, improving the modeled speedup.
void BM_ParallelScan_ExpensiveExpressions(benchmark::State& state) {
  RunPlan(state,
          "(aggregate ((m (substr (lower market) 1 3)))"
          " ((n count*)) (scan flights))",
          static_cast<int>(state.range(0)));
}
BENCHMARK(BM_ParallelScan_ExpensiveExpressions)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
