// E5 (§4.2.3, Fig. 5): aggregation strategies in parallel plans.
//
//   serial        — no parallelism
//   exchange      — parallel scan, Exchange below a serial hash aggregate
//   local/global  — partial aggregate per fraction + final above Exchange
//   range         — range-partitioned scan on the sorted group-by prefix;
//                   the global aggregate is removed entirely
//
// Sweeps three data shapes: uniform group keys (range partitioning's good
// case), heavily skewed keys, and a 2-value low-cardinality key — the two
// §4.2.3 caveats where range partitioning loses to local/global ("range
// partitioning in the TDE is applied conservatively today").
//
// Manual time = modeled multi-core makespan (bench_util.h); wall_ms is the
// measured single-host time.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "src/common/rng.h"

namespace {

using namespace vizq;
using tde::ColumnInfo;
using tde::TableBuilder;

constexpr int64_t kRows = 300000;

enum class Shape : int { kUniform = 0, kSkewed = 1, kLowCardinality = 2 };
enum class Strategy : int {
  kSerial = 0,
  kExchangeOnly = 1,
  kLocalGlobal = 2,
  kRangePartition = 3,
};

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kUniform: return "uniform";
    case Shape::kSkewed: return "skewed";
    case Shape::kLowCardinality: return "lowcard";
  }
  return "?";
}

// A fact table sorted by `key` with the requested distribution.
std::shared_ptr<tde::Database> ShapedDb(Shape shape) {
  static auto* cache = new std::map<int, std::shared_ptr<tde::Database>>();
  auto it = cache->find(static_cast<int>(shape));
  if (it != cache->end()) return it->second;

  Rng rng(7 + static_cast<int>(shape));
  std::vector<int64_t> keys(kRows);
  switch (shape) {
    case Shape::kUniform:
      for (int64_t i = 0; i < kRows; ++i) keys[i] = rng.Range(0, 499);
      break;
    case Shape::kSkewed: {
      // ~70% of rows share one key; the rest spread over 500.
      for (int64_t i = 0; i < kRows; ++i) {
        keys[i] = rng.Chance(0.7) ? 0 : rng.Range(1, 500);
      }
      break;
    }
    case Shape::kLowCardinality:
      for (int64_t i = 0; i < kRows; ++i) keys[i] = rng.Below(2);
      break;
  }
  std::sort(keys.begin(), keys.end());

  TableBuilder builder("fact", {ColumnInfo{"key", DataType::Int64()},
                                ColumnInfo{"val", DataType::Int64()},
                                ColumnInfo{"val2", DataType::Float64()}});
  for (int64_t i = 0; i < kRows; ++i) {
    (void)builder.AddRow({Value(keys[i]), Value(rng.Range(0, 1000)),
                          Value(rng.NextDouble())});
  }
  builder.DeclareSorted({0});
  auto db = std::make_shared<tde::Database>("shapes");
  (void)db->AddTable(*builder.Finish());
  cache->emplace(static_cast<int>(shape), db);
  return db;
}

tde::QueryOptions OptionsFor(Strategy strategy) {
  tde::QueryOptions o;
  o.serial_exchange_for_measurement = true;
  o.parallel.max_dop = 4;
  o.parallel.min_rows_per_fraction = 4096;
  o.optimizer.enable_streaming_agg = false;  // isolate the hash strategies
  switch (strategy) {
    case Strategy::kSerial:
      o.parallel.enable_parallel = false;
      break;
    case Strategy::kExchangeOnly:
      o.parallel.enable_local_global_agg = false;
      o.parallel.enable_range_partition = false;
      break;
    case Strategy::kLocalGlobal:
      o.parallel.enable_local_global_agg = true;
      o.parallel.enable_range_partition = false;
      break;
    case Strategy::kRangePartition:
      o.parallel.enable_local_global_agg = false;
      o.parallel.enable_range_partition = true;
      o.parallel.range_partition_min_distinct = 1;  // force it, even when
                                                    // conservative policy
                                                    // would decline
      break;
  }
  return o;
}

void BM_AggregationStrategy(benchmark::State& state) {
  Shape shape = static_cast<Shape>(state.range(0));
  Strategy strategy = static_cast<Strategy>(state.range(1));
  auto db = ShapedDb(shape);
  tde::TdeEngine engine(db);
  tde::QueryOptions options = OptionsFor(strategy);
  const std::string tql =
      "(aggregate ((key key)) ((total sum val) (mean avg val2) (n count*))"
      " (scan fact))";

  double wall_total = 0;
  bool used_range = false, used_lg = false;
  for (auto _ : state) {
    auto started = std::chrono::steady_clock::now();
    auto result = engine.Execute(tql, options);
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    wall_total += wall_ms;
    used_range = result->stats->used_range_partition;
    used_lg = result->stats->used_local_global_agg;
    double modeled =
        strategy == Strategy::kSerial
            ? wall_ms
            : benchutil::ModeledParallelMs(wall_ms, *result->stats);
    state.SetIterationTime(modeled / 1000.0);
  }
  state.counters["wall_ms"] =
      benchmark::Counter(wall_total / state.iterations());
  state.counters["range"] = used_range ? 1 : 0;
  state.counters["localglobal"] = used_lg ? 1 : 0;
  state.SetLabel(ShapeName(shape));
}

void RegisterAll() {
  for (int shape = 0; shape <= 2; ++shape) {
    for (int strategy = 0; strategy <= 3; ++strategy) {
      std::string name = "BM_AggregationStrategy/";
      name += ShapeName(static_cast<Shape>(shape));
      switch (static_cast<Strategy>(strategy)) {
        case Strategy::kSerial: name += "/serial"; break;
        case Strategy::kExchangeOnly: name += "/exchange"; break;
        case Strategy::kLocalGlobal: name += "/local_global"; break;
        case Strategy::kRangePartition: name += "/range_partition"; break;
      }
      benchmark::RegisterBenchmark(name.c_str(), BM_AggregationStrategy)
          ->Args({shape, strategy})
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

// Streaming vs hash aggregate on sorted input (§4.2.4's cost-based choice).
void BM_StreamingVsHash(benchmark::State& state) {
  bool streaming = state.range(0) == 1;
  auto db = ShapedDb(Shape::kUniform);
  tde::TdeEngine engine(db);
  tde::QueryOptions options = tde::QueryOptions::Serial();
  options.optimizer.enable_streaming_agg = streaming;
  const std::string tql =
      "(aggregate ((key key)) ((total sum val)) (scan fact))";
  for (auto _ : state) {
    auto result = engine.Execute(tql, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table.num_rows());
  }
  state.SetLabel(streaming ? "streaming" : "hash");
}
BENCHMARK(BM_StreamingVsHash)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
