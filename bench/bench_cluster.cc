// E21: sharded Data Server scaling and failover (DESIGN.md §15).
//
// A fixed pool of driver threads fires dashboard-style scatter batches
// (3 queries on 3 distinct views, randomized dep_hour/distance filters so
// the caches cannot absorb the work) at a ClusterCoordinator while the
// node count ramps N = 1 -> 2 -> 4 -> 8. Every published source is backed
// by its own simulated remote, so the backends never bottleneck; the
// per-node cpu-slot semaphore is the capacity under test, exactly as in a
// real Data Server fleet where each host runs a bounded worker pool.
// Reported per point: goodput (successful batches/s), typed-shed count
// (kResourceExhausted / kDeadlineExceeded / kAborted — the only failures
// the cluster is allowed to produce), untyped errors (must be zero), and
// p50/p95 batch latency.
//
// The failover run repeats the N=4 point with every batch touching a
// designated victim view; mid-run the victim's owner is killed. Recovery
// is the wall time from the kill to the first *successful* batch that
// includes the victim view — i.e. the lazy-detection + ring-reassign +
// retry path end to end, which the selftest bounds.
//
//   bench_cluster --selftest          fast CI invariants
//   bench_cluster --emit-json=PATH    full ramp -> BENCH_cluster.json (E21)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/coordinator.h"
#include "src/common/rng.h"
#include "src/federation/simulated_source.h"

namespace {

using namespace vizq;

// Small table + large modeled dispatch: per-query cost is dominated by
// simulated backend sleeps, not real single-core CPU, so slot-limited
// throughput scales with the node count even on a 1-CPU host (the same
// trick the traffic bench uses — see bench_util.h's single-core note).
constexpr int64_t kRows = 1000;
constexpr int kSources = 8;        // published views "s0".."s7"
constexpr int kDrivers = 12;       // closed-loop driver threads
constexpr int kViewsPerBatch = 3;  // distinct views per scatter batch
constexpr double kDeadlineMs = 800.0;  // client patience per batch

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One simulated remote per source: modest per-query sleeps (dispatch +
// scan + transfer) dominate, so batch cost is I/O-shaped and the node
// slot held across it is what limits throughput — true on one core too.
std::shared_ptr<federation::SimulatedDataSource> MakeBackend(
    const std::string& name, const std::shared_ptr<tde::Database>& db) {
  federation::PerformanceModel m;
  m.connect_ms = 2.0;
  m.dispatch_ms = 8.0;
  m.rows_per_ms = 2000;  // ~0.5ms scan over the bench table
  m.cpu_slots = 4;
  m.max_parallel_per_query = 1;
  m.network_rtt_ms = 0.5;
  query::Capabilities caps = query::Capabilities::SingleThreadedSql();
  caps.max_connections = 16;
  caps.max_concurrent_queries = 8;
  return std::make_shared<federation::SimulatedDataSource>(
      name, db, m, caps, query::SqlDialect::MssqlLike());
}

std::string ViewName(int i) { return "s" + std::to_string(i); }

struct Cluster {
  std::unique_ptr<cluster::ClusterCoordinator> coord;
  std::vector<std::shared_ptr<federation::SimulatedDataSource>> backends;
};

Cluster MakeCluster(int num_nodes) {
  Cluster c;
  auto db = benchutil::FaaDb(kRows);
  cluster::ClusterOptions copts;
  copts.num_nodes = num_nodes;
  copts.node.cpu_slots = 2;  // the scaling lever: 2 batch slots per node
  c.coord = std::make_unique<cluster::ClusterCoordinator>(copts);
  for (int i = 0; i < kSources; ++i) {
    auto backend = MakeBackend("remote-" + ViewName(i), db);
    cluster::SourceSpec spec;
    spec.view.name = ViewName(i);
    spec.view.fact_table = "flights";
    spec.backend = backend;
    if (!c.coord->Publish(spec).ok()) std::abort();
    c.backends.push_back(std::move(backend));
  }
  return c;
}

// A cache-defeating aggregate: random IN-set on dep_hour and a random
// distance range give ~24 * 2^10 distinct keys per view.
query::AbstractQuery MakeQuery(const std::string& view, Rng& rng) {
  query::AbstractQuery q;
  q.data_source = "faa";
  q.view = view;
  q.dimensions = {"carrier"};
  q.measures.push_back({AggFunc::kSum, "arr_delay", "delay"});
  q.measures.push_back({AggFunc::kCountStar, "", "n"});
  int64_t h = rng.Range(0, 20);
  q.filters.predicates.push_back(query::ColumnPredicate::InSet(
      "dep_hour", {Value(h), Value(h + 1), Value(h + 2)}));
  q.filters.predicates.push_back(query::ColumnPredicate::Range(
      "distance", Value(rng.Range(0, 500)), Value(rng.Range(1500, 3000))));
  q.Canonicalize();
  return q;
}

bool IsTypedShed(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded || code == StatusCode::kAborted;
}

struct PointResult {
  int nodes = 0;
  int64_t attempted = 0;
  int64_t ok = 0;
  int64_t shed = 0;    // typed cluster errors (allowed under overload)
  int64_t errors = 0;  // anything untyped (must be zero)
  double goodput_per_s = 0;  // successful batches / measured second
  double p50_ms = 0, p95_ms = 0;
  int64_t failovers = 0, retries = 0;
  double recovery_ms = -1;  // failover run only
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(p * (v.size() - 1))];
}

// Closed-loop drivers against `c` for `duration_s`. When `victim` is
// non-empty every batch includes that view, `kill_at_frac` of the run
// kills its owner, and the time to the first subsequent success is
// reported as recovery_ms.
PointResult RunPoint(Cluster& c, int num_nodes, double duration_s,
                     uint64_t seed, const std::string& victim = "",
                     double kill_at_frac = 0.5) {
  PointResult out;
  out.nodes = num_nodes;

  std::atomic<int64_t> attempted{0}, ok{0}, shed{0}, errors{0};
  std::atomic<int64_t> kill_ns{0}, recover_ns{0};
  std::mutex lat_mu;
  std::vector<double> latencies_ms;

  int64_t t_start = NowNs();
  int64_t t_stop = t_start + static_cast<int64_t>(duration_s * 1e9);

  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      Rng rng(seed * 1000003 + d);
      while (NowNs() < t_stop) {
        std::vector<query::AbstractQuery> batch;
        int first = victim.empty()
                        ? static_cast<int>(rng.Below(kSources))
                        : -1;  // -1 = the victim view
        for (int k = 0; k < kViewsPerBatch; ++k) {
          std::string view =
              (k == 0 && first < 0)
                  ? victim
                  : ViewName((std::max(first, 0) + k) % kSources);
          batch.push_back(MakeQuery(view, rng));
        }
        ExecContext ctx = ExecContext::WithDeadlineMs(kDeadlineMs);
        int64_t t0 = NowNs();
        dashboard::BatchReport report;
        auto results = c.coord->ExecuteBatch(ctx, batch, {}, &report);
        int64_t t1 = NowNs();
        attempted.fetch_add(1, std::memory_order_relaxed);
        if (results.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> lock(lat_mu);
            latencies_ms.push_back(static_cast<double>(t1 - t0) / 1e6);
          }
          // Recovery: first success that started after the kill and
          // includes the victim view.
          int64_t kns = kill_ns.load(std::memory_order_acquire);
          if (!victim.empty() && kns != 0 && t0 > kns) {
            int64_t expect = 0;
            recover_ns.compare_exchange_strong(expect, t1,
                                               std::memory_order_acq_rel);
          }
        } else if (IsTypedShed(results.status().code())) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "untyped error: %s\n",
                       results.status().ToString().c_str());
        }
      }
    });
  }

  if (!victim.empty()) {
    int64_t t_kill = t_start + static_cast<int64_t>(
                                   duration_s * kill_at_frac * 1e9);
    int64_t now = NowNs();
    if (t_kill > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(t_kill - now));
    }
    std::string owner = c.coord->OwnerOf(victim);
    kill_ns.store(NowNs(), std::memory_order_release);
    c.coord->KillNode(owner);
    std::fprintf(stderr, "  killed %s (owner of %s)\n", owner.c_str(),
                 victim.c_str());
  }
  for (auto& t : drivers) t.join();

  out.attempted = attempted.load();
  out.ok = ok.load();
  out.shed = shed.load();
  out.errors = errors.load();
  out.goodput_per_s = static_cast<double>(out.ok) / duration_s;
  out.p50_ms = Percentile(latencies_ms, 0.50);
  out.p95_ms = Percentile(latencies_ms, 0.95);
  out.failovers = c.coord->stats().failovers;
  out.retries = c.coord->retries();
  if (!victim.empty() && recover_ns.load() != 0) {
    out.recovery_ms =
        static_cast<double>(recover_ns.load() - kill_ns.load()) / 1e6;
  }
  return out;
}

void PrintPoint(const char* tag, const PointResult& r) {
  std::fprintf(stderr,
               "%s N=%d: %lld batches, goodput %.1f/s, shed %lld, "
               "errors %lld, p50 %.1fms p95 %.1fms",
               tag, r.nodes, static_cast<long long>(r.ok), r.goodput_per_s,
               static_cast<long long>(r.shed),
               static_cast<long long>(r.errors), r.p50_ms, r.p95_ms);
  if (r.recovery_ms >= 0) {
    std::fprintf(stderr, ", failovers %lld, recovery %.1fms",
                 static_cast<long long>(r.failovers), r.recovery_ms);
  }
  std::fprintf(stderr, "\n");
}

// Warm each backend's connections so the ramp measures steady state, not
// the connect handshake.
void Warm(Cluster& c, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < kSources; ++i) {
    std::vector<query::AbstractQuery> batch = {MakeQuery(ViewName(i), rng)};
    (void)c.coord->ExecuteBatch(batch);
  }
}

struct RampResult {
  std::vector<PointResult> points;
  PointResult failover;
};

RampResult RunRamp(double duration_s) {
  RampResult out;
  const int ramp[] = {1, 2, 4, 8};
  uint64_t seed = 2026;
  for (int n : ramp) {
    Cluster c = MakeCluster(n);
    Warm(c, seed);
    out.points.push_back(RunPoint(c, n, duration_s, seed++));
    PrintPoint("ramp", out.points.back());
  }
  {
    Cluster c = MakeCluster(4);
    Warm(c, seed);
    out.failover =
        RunPoint(c, 4, 2.0 * duration_s, seed, /*victim=*/ViewName(0));
    PrintPoint("failover", out.failover);
  }
  return out;
}

int EmitJson(const std::string& path, const RampResult& r) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  double g1 = r.points.front().goodput_per_s;
  double g4 = 0;
  for (const auto& p : r.points) {
    if (p.nodes == 4) g4 = p.goodput_per_s;
  }
  f << "{\n  \"bench\": \"cluster\",\n"
    << "  \"workload\": \"" << kDrivers
    << " closed-loop drivers, 3-view scatter batches with randomized "
       "filters over "
    << kSources << " sources (one simulated remote each), deadline "
    << kDeadlineMs << "ms, 2 cpu slots per node\",\n  \"ramp\": [\n";
  for (size_t i = 0; i < r.points.size(); ++i) {
    const PointResult& p = r.points[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"nodes\": %d, \"batches_ok\": %lld, \"goodput_per_s\": "
        "%.1f, \"shed\": %lld, \"errors\": %lld, \"p50_ms\": %.1f, "
        "\"p95_ms\": %.1f}%s\n",
        p.nodes, static_cast<long long>(p.ok), p.goodput_per_s,
        static_cast<long long>(p.shed), static_cast<long long>(p.errors),
        p.p50_ms, p.p95_ms, i + 1 < r.points.size() ? "," : "");
    f << buf;
  }
  {
    const PointResult& p = r.failover;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  ],\n  \"speedup_4x\": %.2f,\n"
        "  \"failover\": {\"nodes\": %d, \"batches_ok\": %lld, "
        "\"goodput_per_s\": %.1f, \"shed\": %lld, \"errors\": %lld, "
        "\"failovers\": %lld, \"retries\": %lld, \"recovery_ms\": %.1f}\n}\n",
        g1 > 0 ? g4 / g1 : 0, p.nodes, static_cast<long long>(p.ok),
        p.goodput_per_s, static_cast<long long>(p.shed),
        static_cast<long long>(p.errors), static_cast<long long>(p.failovers),
        static_cast<long long>(p.retries), p.recovery_ms);
    f << buf;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

#define CHECK_OR_FAIL(cond, msg)                          \
  do {                                                    \
    if (!(cond)) {                                        \
      std::fprintf(stderr, "SELFTEST FAIL: %s\n", (msg)); \
      return 1;                                           \
    }                                                     \
  } while (0)

// Fast CI invariants: goodput scales with the node count, failures are
// always typed, and killing an owner mid-run recovers within a bound.
int Selftest() {
  RampResult r = RunRamp(/*duration_s=*/1.2);
  double g1 = 0, g4 = 0;
  for (const auto& p : r.points) {
    CHECK_OR_FAIL(p.errors == 0, "ramp produced an untyped error");
    CHECK_OR_FAIL(p.ok > 0, "ramp point served nothing");
    if (p.nodes == 1) g1 = p.goodput_per_s;
    if (p.nodes == 4) g4 = p.goodput_per_s;
  }
  CHECK_OR_FAIL(g4 >= 1.25 * g1,
                "4-node goodput did not scale over single-node");
  CHECK_OR_FAIL(r.failover.errors == 0,
                "failover run produced an untyped error");
  CHECK_OR_FAIL(r.failover.failovers >= 1, "kill did not trigger a failover");
  CHECK_OR_FAIL(r.failover.recovery_ms >= 0,
                "no successful victim-view batch after the kill");
  CHECK_OR_FAIL(r.failover.recovery_ms < 2000.0,
                "failover recovery exceeded 2s");
  std::fprintf(stderr,
               "selftest ok: speedup_4x=%.2f recovery=%.1fms failovers=%lld\n",
               g4 / g1, r.failover.recovery_ms,
               static_cast<long long>(r.failover.failovers));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string emit_json;
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--emit-json=", 12) == 0) {
      emit_json = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest = true;
    } else {
      std::fprintf(stderr, "usage: %s [--selftest] [--emit-json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (selftest) return Selftest();
  RampResult r = RunRamp(/*duration_s=*/2.0);
  if (!emit_json.empty()) return EmitJson(emit_json, r);
  return 0;
}
