// E2 (§3.4): query fusion. A batch of k queries over the same relation
// (same view, same filters, same group-by) differing only in their
// projections is executed fused vs. unfused against a simulated backend.
// Fusion sends one remote query computing the union of projections; the
// members are sliced out locally. Gains grow with k: the underlying
// relation is computed once instead of k times, and per-query dispatch
// overhead is paid once.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dashboard/query_service.h"
#include "src/federation/simulated_source.h"

namespace {

using namespace vizq;
using query::QueryBuilder;

constexpr int64_t kRows = 60000;

std::vector<query::AbstractQuery> SameRelationBatch(int k) {
  // k queries over market with identical filters, different measures —
  // "different zones of a dashboard share the same filters but request
  // different columns".
  const std::vector<std::pair<AggFunc, std::string>> measures = {
      {AggFunc::kCountStar, ""},        {AggFunc::kSum, "arr_delay"},
      {AggFunc::kAvg, "dep_delay"},     {AggFunc::kMin, "distance"},
      {AggFunc::kMax, "arr_delay"},     {AggFunc::kSum, "distance"},
      {AggFunc::kCount, "dep_delay"},   {AggFunc::kAvg, "distance"},
  };
  std::vector<query::AbstractQuery> batch;
  for (int i = 0; i < k; ++i) {
    QueryBuilder b("faa", "flights");
    b.Dim("carrier");
    b.FilterIn("origin_state", {Value("CA"), Value("NY"), Value("TX")});
    auto [func, column] = measures[i % measures.size()];
    if (func == AggFunc::kCountStar) {
      b.CountAll("m" + std::to_string(i));
    } else {
      b.Agg(func, column, "m" + std::to_string(i));
    }
    batch.push_back(b.Build());
  }
  return batch;
}

void BM_QueryFusion(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  bool fused = state.range(1) == 1;
  auto db = benchutil::FaaDb(kRows);
  auto source =
      federation::SimulatedDataSource::SingleThreadedSql("faa", db);
  dashboard::QueryService service(source, nullptr);
  if (!service.RegisterTableView("flights").ok()) {
    state.SkipWithError("view registration failed");
    return;
  }
  std::vector<query::AbstractQuery> batch = SameRelationBatch(k);

  dashboard::BatchOptions options;
  options.use_intelligent_cache = false;
  options.use_literal_cache = false;
  options.analyze_batch = false;   // isolate fusion from the §3.3 analysis
  options.concurrent = true;
  options.fuse_queries = fused;

  dashboard::BatchReport report;
  for (auto _ : state) {
    auto results = service.ExecuteBatch(batch, options, &report);
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(results->size());
  }
  state.counters["k"] = k;
  state.counters["remote"] = report.fused_groups;
  state.SetLabel(fused ? "fused" : "unfused");
}
BENCHMARK(BM_QueryFusion)
    ->Args({2, 0})->Args({2, 1})
    ->Args({4, 0})->Args({4, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
