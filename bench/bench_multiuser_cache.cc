// E9 (§3.2): multi-user shared dashboards. U users replay
// Tableau-Public-style traffic (initial loads dominate; interactions are
// rare) against one shared server-side cache stack. With the cache on, the
// first user's load warms every later user's; backend query counts
// collapse.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dashboard/renderer.h"
#include "src/federation/simulated_source.h"
#include "src/workload/flights_dashboards.h"
#include "src/workload/traffic.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 60000;

std::vector<workload::Selectable> Selectables() {
  std::vector<workload::Selectable> out;
  workload::Selectable states;
  states.zone = "OriginMap";
  states.column = "origin_state";
  for (const std::string& s : {"CA", "NY", "TX", "FL", "IL"}) {
    states.candidates.push_back(Value(s));
  }
  out.push_back(states);
  workload::Selectable carriers;
  carriers.zone = "CarrierFilter";
  carriers.column = "carrier";
  carriers.is_quick_filter = true;
  for (int c = 0; c < 6; ++c) {
    carriers.candidates.push_back(Value(workload::FaaCarrierCodes()[c]));
  }
  out.push_back(carriers);
  return out;
}

void BM_MultiUserTraffic(benchmark::State& state) {
  int users = static_cast<int>(state.range(0));
  bool cached = state.range(1) == 1;
  auto db = benchutil::FaaDb(kRows);

  workload::TrafficOptions topts;
  topts.num_users = users;
  topts.interaction_probability = 0.1;  // Public-style: mostly readers
  std::vector<workload::TrafficEvent> events =
      workload::GenerateTraffic(topts, Selectables());

  for (auto _ : state) {
    auto source =
        federation::SimulatedDataSource::SingleThreadedSql("faa", db);
    // One shared cache stack for the whole server (all users).
    auto caches = cached ? std::make_shared<dashboard::CacheStack>() : nullptr;
    dashboard::QueryService service(source, caches);
    if (!service.RegisterView(workload::FlightsStarView()).ok()) {
      state.SkipWithError("view registration failed");
      return;
    }
    dashboard::Dashboard dash = workload::BuildFigure1Dashboard("faa");
    dashboard::DashboardRenderer renderer(&service);
    dashboard::BatchOptions options;
    options.use_intelligent_cache = cached;
    options.use_literal_cache = cached;
    options.adjust.add_filter_dimensions = cached;

    double total_ms = 0;
    // Per-user interaction state (sessions are independent).
    std::map<int, dashboard::InteractionState> sessions;
    for (const workload::TrafficEvent& e : events) {
      dashboard::InteractionState& st = sessions[e.user];
      StatusOr<dashboard::RenderReport> report = OkStatus();
      switch (e.kind) {
        case workload::TrafficEvent::Kind::kInitialLoad:
          report = renderer.Render(dash, &st, options);
          break;
        case workload::TrafficEvent::Kind::kSelect:
          st.Select(e.zone, e.column, e.values);
          report = renderer.Refresh(dash, &st, dash.ActionTargets(e.zone),
                                    options);
          break;
        case workload::TrafficEvent::Kind::kQuickFilter:
          st.SetQuickFilter(e.column, e.values);
          report = renderer.Refresh(dash, &st,
                                    dash.QuickFilterTargets(e.column),
                                    options);
          break;
      }
      if (!report.ok()) {
        state.SkipWithError(report.status().ToString().c_str());
        return;
      }
      total_ms += report->total_ms;
    }
    state.SetIterationTime(total_ms / 1000.0);
    state.counters["events"] = static_cast<double>(events.size());
    state.counters["backend_queries"] =
        static_cast<double>(source->queries_executed());
    state.counters["ms_per_event"] = total_ms / events.size();
  }
  state.SetLabel(cached ? "shared-cache" : "no-cache");
}

void RegisterAll() {
  for (int users : {5, 20, 50}) {
    for (int cached : {0, 1}) {
      std::string name = "BM_MultiUserTraffic/users:" +
                         std::to_string(users) + "/" +
                         (cached ? "cached" : "uncached");
      benchmark::RegisterBenchmark(name.c_str(), BM_MultiUserTraffic)
          ->Args({users, cached})
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
