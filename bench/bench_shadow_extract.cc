// E11 (§4.4): shadow extracts for text files. The Jet-style baseline
// re-parses the whole file for every query; the shadow extract pays a
// one-time parse + build cost and then answers from the TDE. Sweeps the
// number of queries in the session to locate the break-even point (which
// the paper's design assumes is ~1 query).

#include <benchmark/benchmark.h>

#include <chrono>

#include "src/extract/shadow_extract.h"
#include "src/tde/engine.h"
#include "src/workload/faa_generator.h"

namespace {

using namespace vizq;

const std::string& FaaCsv() {
  static const std::string* csv = [] {
    workload::FaaOptions options;
    options.num_flights = 50000;
    auto text = workload::GenerateFaaCsv(options);
    if (!text.ok()) std::abort();
    return new std::string(*std::move(text));
  }();
  return *csv;
}

const std::vector<std::string>& SessionQueries() {
  static const auto* queries = new std::vector<std::string>{
      "(aggregate ((carrier carrier)) ((n count*)) (scan flights))",
      "(aggregate ((dest_state dest_state)) ((d avg arr_delay)) "
      "(scan flights))",
      "(topn 5 ((n desc)) (aggregate ((market market)) ((n count*)) "
      "(scan flights)))",
      "(aggregate ((weekday weekday)) ((n count*)) (select (= cancelled "
      "true) (scan flights)))",
      "(aggregate () ((total sum distance) (n count*)) (scan flights))",
      "(aggregate ((dep_hour dep_hour)) ((d avg dep_delay)) (scan flights))",
      "(aggregate ((origin origin)) ((n count*)) (select (> arr_delay 60) "
      "(scan flights)))",
      "(aggregate ((carrier carrier) (weekday weekday)) ((d avg arr_delay)) "
      "(scan flights))",
  };
  return *queries;
}

// Jet-style: parse the file, build a transient table, run one query, drop.
void BM_ReparsePerQuery(benchmark::State& state) {
  int num_queries = static_cast<int>(state.range(0));
  const std::string& csv = FaaCsv();
  for (auto _ : state) {
    auto started = std::chrono::steady_clock::now();
    for (int q = 0; q < num_queries; ++q) {
      auto db = std::make_shared<tde::Database>("transient");
      extract::ShadowExtractManager manager(db);
      auto table = manager.ExtractCsv("flights", csv);
      if (!table.ok()) {
        state.SkipWithError(table.status().ToString().c_str());
        return;
      }
      tde::TdeEngine engine(db);
      auto result = engine.Query(
          SessionQueries()[q % SessionQueries().size()]);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(result->num_rows());
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
    state.SetIterationTime(ms / 1000.0);
  }
  state.counters["queries"] = num_queries;
  state.SetLabel("reparse-per-query");
}

// Shadow extract: one-time parse+build, then queries hit the TDE.
void BM_ShadowExtract(benchmark::State& state) {
  int num_queries = static_cast<int>(state.range(0));
  const std::string& csv = FaaCsv();
  for (auto _ : state) {
    auto started = std::chrono::steady_clock::now();
    auto db = std::make_shared<tde::Database>("extracts");
    extract::ShadowExtractManager manager(db);
    extract::ExtractStats estats;
    auto table = manager.ExtractCsv("flights", csv, {}, &estats);
    if (!table.ok()) {
      state.SkipWithError(table.status().ToString().c_str());
      return;
    }
    tde::TdeEngine engine(db);
    for (int q = 0; q < num_queries; ++q) {
      auto result = engine.Query(
          SessionQueries()[q % SessionQueries().size()]);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(result->num_rows());
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
    state.SetIterationTime(ms / 1000.0);
    state.counters["extract_ms"] = estats.parse_ms + estats.build_ms;
  }
  state.counters["queries"] = num_queries;
  state.SetLabel("extract-once");
}

// Persisted extract (workbook reopen): restore the single-file database,
// no parsing at all.
void BM_PersistedExtract(benchmark::State& state) {
  int num_queries = static_cast<int>(state.range(0));
  const std::string path = "/tmp/vizq_bench_extract.tde";
  {
    auto db = std::make_shared<tde::Database>("extracts");
    extract::ShadowExtractManager manager(db);
    if (!manager.ExtractCsv("flights", FaaCsv()).ok() ||
        !manager.PersistTo(path).ok()) {
      state.SkipWithError("setup failed");
      return;
    }
  }
  for (auto _ : state) {
    auto started = std::chrono::steady_clock::now();
    auto db = std::make_shared<tde::Database>("empty");
    extract::ShadowExtractManager manager(db);
    if (!manager.RestoreFrom(path).ok()) {
      state.SkipWithError("restore failed");
      return;
    }
    tde::TdeEngine engine(manager.shared_database());
    for (int q = 0; q < num_queries; ++q) {
      auto result = engine.Query(
          SessionQueries()[q % SessionQueries().size()]);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(result->num_rows());
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
    state.SetIterationTime(ms / 1000.0);
  }
  state.counters["queries"] = num_queries;
  state.SetLabel("persisted-extract");
}

}  // namespace

BENCHMARK(BM_ReparsePerQuery)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShadowExtract)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PersistedExtract)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
