// Shared helpers for the experiment benches (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the result log).
//
// Single-core note: this repository's benches may run on a 1-CPU host,
// where real threads cannot show CPU-parallel speedups. TDE parallel-plan
// benches therefore report a *modeled* multi-core makespan computed from
// per-fraction work measurements:
//
//   modeled = (wall - sum_of_fraction_times) + critical_path
//
// where critical_path sums, over each parallel section (scan fan-out, the
// partitioned join build's stages, the partitioned final merge), the
// slowest fraction of that section — sections run back-to-back, fractions
// within a section run concurrently. I.e. the serial sections as measured
// plus the per-section stragglers, which is what an idle multi-core host
// would realize. Both numbers are reported; I/O-bound benches (simulated
// remote sources) use real wall time, since sleeping connections overlap
// regardless of core count.

#ifndef VIZQUERY_BENCH_BENCH_UTIL_H_
#define VIZQUERY_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>

#include "src/tde/engine.h"
#include "src/workload/faa_generator.h"

namespace vizq::benchutil {

// Process-cached FAA database (generation is the expensive part).
inline std::shared_ptr<tde::Database> FaaDb(int64_t rows,
                                            uint64_t seed = 2015) {
  static auto* cache =
      new std::map<std::pair<int64_t, uint64_t>,
                   std::shared_ptr<tde::Database>>();
  auto key = std::make_pair(rows, seed);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  workload::FaaOptions options;
  options.num_flights = rows;
  options.seed = seed;
  auto db = workload::GenerateFaaDatabase(options);
  if (!db.ok()) std::abort();
  cache->emplace(key, *db);
  return *db;
}

// Modeled multi-core makespan in milliseconds (see the header comment).
inline double ModeledParallelMs(double wall_ms, const tde::ExecStats& stats) {
  double sum_ms = stats.SumFractionSeconds() * 1000.0;
  double path_ms = stats.CriticalPathSeconds() * 1000.0;
  double serial_ms = wall_ms - sum_ms;
  if (serial_ms < 0) serial_ms = 0;
  return serial_ms + path_ms;
}

}  // namespace vizq::benchutil

#endif  // VIZQUERY_BENCH_BENCH_UTIL_H_
