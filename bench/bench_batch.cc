// E1 (§3.3, Fig. 3): query batch processing for dashboards.
//
// The Fig. 1 dashboard batch (9 zone queries with cache-hit edges) runs
// against a simulated single-thread-per-query SQL backend under four
// regimes:
//
//   serial          — one query at a time, no analysis, no cache
//   concurrent      — all queries submitted concurrently (§3.5)
//   two_phase       — opportunity-graph partition: sources remote
//                     concurrently, covered queries computed locally (§3.3)
//   two_phase_fused — plus query fusion (§3.4)
//
// Wall time is real: the backend's latencies are slept, so concurrency
// effects are genuine even on one core.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dashboard/renderer.h"
#include "src/federation/simulated_source.h"
#include "src/workload/flights_dashboards.h"

namespace {

using namespace vizq;

constexpr int64_t kRows = 60000;

dashboard::BatchOptions Regime(int which) {
  dashboard::BatchOptions o;
  o.use_intelligent_cache = false;  // isolate batch effects from caching
  o.use_literal_cache = false;
  switch (which) {
    case 0:  // serial
      o.analyze_batch = false;
      o.fuse_queries = false;
      o.concurrent = false;
      break;
    case 1:  // concurrent
      o.analyze_batch = false;
      o.fuse_queries = false;
      o.concurrent = true;
      break;
    case 2:  // two-phase
      o.analyze_batch = true;
      o.fuse_queries = false;
      o.concurrent = true;
      break;
    case 3:  // two-phase + fusion
      o.analyze_batch = true;
      o.fuse_queries = true;
      o.concurrent = true;
      break;
  }
  return o;
}

const char* RegimeName(int which) {
  switch (which) {
    case 0: return "serial";
    case 1: return "concurrent";
    case 2: return "two_phase";
    case 3: return "two_phase_fused";
  }
  return "?";
}

// The Fig. 1 initial-load batch, plus two derivable queries that exercise
// the local (cache-hit-opportunity) partition: a roll-up of the airlines
// zone and a filtered variant of the state map.
std::vector<query::AbstractQuery> Fig1Batch() {
  using query::QueryBuilder;
  dashboard::Dashboard dash = workload::BuildFigure1Dashboard("faa");
  dashboard::InteractionState state;
  std::vector<query::AbstractQuery> batch;
  for (const std::string& zone : dash.QueryZoneNames()) {
    auto q = dash.BuildZoneQuery(zone, state);
    if (q.ok()) batch.push_back(*std::move(q));
  }
  batch.push_back(QueryBuilder("faa", workload::kFlightsView)
                      .Agg(AggFunc::kAvg, "arr_delay", "overall_delay")
                      .CountAll("flights")
                      .Build());
  batch.push_back(QueryBuilder("faa", workload::kFlightsView)
                      .Dim("origin_state")
                      .CountAll("flights")
                      .Agg(AggFunc::kAvg, "arr_delay", "avg_delay")
                      .FilterIn("origin_state", {Value("CA"), Value("NY")})
                      .Build());
  return batch;
}

void BM_DashboardBatch(benchmark::State& state) {
  int regime = static_cast<int>(state.range(0));
  auto db = benchutil::FaaDb(kRows);
  auto source =
      federation::SimulatedDataSource::SingleThreadedSql("faa", db);
  dashboard::QueryService service(source, nullptr);
  if (!service.RegisterView(workload::FlightsStarView()).ok()) {
    state.SkipWithError("view registration failed");
    return;
  }
  std::vector<query::AbstractQuery> batch = Fig1Batch();
  dashboard::BatchOptions options = Regime(regime);
  // Caching is off, so local resolution needs the analysis; that's what
  // ServedFrom::kLocalFromBatch uses.

  dashboard::BatchReport report;
  std::string last_trace;
  for (auto _ : state) {
    ExecContext ctx;  // traced, no deadline
    auto results = service.ExecuteBatch(ctx, batch, options, &report);
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(results->size());
    last_trace = ctx.trace()->ToText();
  }
  state.counters["queries"] = static_cast<double>(batch.size());
  state.counters["remote"] = report.remote_queries;
  state.counters["local"] = report.local_resolved;
  state.SetLabel(RegimeName(regime));
  // One sample trace of the most elaborate regime, for latency accounting.
  if (regime == 3 && !last_trace.empty()) {
    fprintf(stderr, "--- batch trace (%s) ---\n%s", RegimeName(regime),
            last_trace.c_str());
  }
}
BENCHMARK(BM_DashboardBatch)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
