// vizq_stats: runs the paper's FAA dashboard workload through the full
// stack (QueryService + caches + connection pool + simulated warehouse
// backend) with observability enabled, then dumps what the obs/ layer
// collected:
//
//   * the global MetricsRegistry snapshot (Prometheus text, or JSON with
//     --json) — cache, pool, service and per-operator histograms;
//   * the slowest-N recorded requests with their span trees;
//   * the whole recorded workload as Chrome trace-event JSON
//     (--trace-out FILE, loadable in chrome://tracing / Perfetto);
//   * the tail-exemplar store: retained slowest-request traces with their
//     phase timelines (--exemplar-trace-out FILE exports them as Chrome
//     trace JSON);
//   * per-plan-shape latency profiles (signature, count, p50/p95/p99);
//   * one operator-level EXPLAIN ANALYZE plan for a probe query.
//
// --selftest runs the same workload and asserts the acceptance criteria
// (plausible p50<=p95<=p99 in cache/pool/operator histograms, schema-valid
// Chrome trace, root rows-out == returned rows, retained tail exemplars
// with a valid trace, non-empty monotone plan profiles), exiting non-zero
// on any violation; CI runs it on every Release build.
//
// --cluster N routes the dashboard workload through an N-node sharded
// Data Server (cluster/coordinator.h) instead of the single-node service,
// so the Prometheus dump carries the per-node series — e.g.
//   vizq_rpc_node_batches{node="n1"} 7
//   vizq_rpc_node_ms{node="n1"} ...
// — showing which node did the work. The EXPLAIN ANALYZE probes stay on a
// direct service (plans are a node-local artifact), and --selftest always
// runs single-node.
//
//   ./build/tools/vizq_stats [--flights N] [--seed S] [--slow-n N]
//                            [--json] [--cluster N] [--trace-out FILE]
//                            [--exemplar-trace-out FILE] [--selftest]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/dashboard/renderer.h"
#include "src/federation/simulated_source.h"
#include "src/obs/exemplar.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/perf_recorder.h"
#include "src/obs/plan_profile.h"
#include "src/query/abstract_query.h"
#include "src/workload/faa_generator.h"
#include "src/workload/flights_dashboards.h"

using namespace vizq;

namespace {

struct ToolOptions {
  int64_t flights = 20000;
  uint64_t seed = 2015;
  int slow_n = 3;
  bool json = false;
  bool selftest = false;
  int cluster_nodes = 0;  // 0 = single-node service
  std::string trace_out;
  std::string exemplar_trace_out;
};

// What one workload run leaves behind for printing / asserting.
struct WorkloadResult {
  std::string plan_text;       // annotated EXPLAIN ANALYZE of the probe
  std::string plan_root_rows;  // "tde.analyze.root_rows" attachment
  int64_t probe_rows = 0;      // rows the probe actually returned
  // Second probe (carrier x dest_state): grouping not satisfied by the
  // table sort, so the encoded Scan->Aggregate path must claim it.
  std::string encoded_plan_text;
  int64_t encoded_probe_rows = 0;
  int64_t queries_run = 0;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "vizq_stats: %s\n", message.c_str());
  return 1;
}

StatusOr<WorkloadResult> RunWorkload(const ToolOptions& opt) {
  WorkloadResult out;

  workload::FaaOptions faa;
  faa.num_flights = opt.flights;
  faa.seed = opt.seed;
  VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<tde::Database> db,
                        workload::GenerateFaaDatabase(faa));

  // A parallel-warehouse backend: realistic connect/dispatch/transfer
  // latencies so the histograms have something to say, fast enough that
  // the selftest stays in CI budget.
  auto source = federation::SimulatedDataSource::ParallelWarehouse("faa", db);
  auto caches = std::make_shared<dashboard::CacheStack>();
  dashboard::QueryService service(source, caches);
  VIZQ_RETURN_IF_ERROR(service.RegisterView(workload::FlightsStarView()));

  dashboard::BatchOptions options;
  options.adjust.add_filter_dimensions = true;

  // --cluster N: the renderer talks to an N-node scatter/gather
  // coordinator hosting the flights view, so the registry picks up the
  // node-labeled rpc series. The direct `service` stays around for the
  // EXPLAIN ANALYZE probes below.
  std::unique_ptr<cluster::ClusterCoordinator> coordinator;
  dashboard::BatchExecutor* executor = &service;
  if (opt.cluster_nodes > 0) {
    cluster::ClusterOptions copts;
    copts.num_nodes = opt.cluster_nodes;
    coordinator = std::make_unique<cluster::ClusterCoordinator>(copts);
    cluster::SourceSpec spec;
    spec.view = workload::FlightsStarView();
    spec.backend = source;
    VIZQ_RETURN_IF_ERROR(coordinator->Publish(spec));
    // Shard aliases of the same star view: the dashboards only ever hit
    // the one published view (one owner), so a per-alias batch below
    // spreads traffic across the ring and lights up every node's series.
    for (int s = 0; s < 2 * opt.cluster_nodes; ++s) {
      cluster::SourceSpec alias = spec;
      alias.view.name = spec.view.name + "_shard" + std::to_string(s);
      VIZQ_RETURN_IF_ERROR(coordinator->Publish(alias));
    }
    executor = coordinator.get();
  }
  dashboard::DashboardRenderer renderer(executor);

  // Figure 1: cold load, a map selection, then a warm re-render (cache
  // exact/derived hits). Each render gets its own traced context, so each
  // dashboard batch becomes one recorder entry.
  dashboard::Dashboard fig1 = workload::BuildFigure1Dashboard("faa");
  {
    dashboard::InteractionState state;
    ExecContext ctx;
    VIZQ_ASSIGN_OR_RETURN(dashboard::RenderReport load,
                          renderer.Render(ctx, fig1, &state, options));
    for (const auto& b : load.batches) {
      out.queries_run += static_cast<int64_t>(b.queries.size());
    }
    state.Select("DestMap", "dest_state", {Value("CA")});
    ExecContext rctx;
    VIZQ_ASSIGN_OR_RETURN(dashboard::RenderReport refresh,
                          renderer.Refresh(rctx, fig1, &state,
                                           fig1.ActionTargets("DestMap"),
                                           options));
    for (const auto& b : refresh.batches) {
      out.queries_run += static_cast<int64_t>(b.queries.size());
    }
  }
  {
    dashboard::InteractionState warm;
    ExecContext ctx;
    VIZQ_ASSIGN_OR_RETURN(dashboard::RenderReport again,
                          renderer.Render(ctx, fig1, &warm, options));
    for (const auto& b : again.batches) {
      out.queries_run += static_cast<int64_t>(b.queries.size());
    }
  }

  // Figure 2: the Market / Carrier / Airline Name dashboard.
  {
    dashboard::Dashboard fig2 = workload::BuildFigure2Dashboard("faa");
    dashboard::InteractionState state;
    ExecContext ctx;
    VIZQ_ASSIGN_OR_RETURN(dashboard::RenderReport load,
                          renderer.Render(ctx, fig2, &state, options));
    for (const auto& b : load.batches) {
      out.queries_run += static_cast<int64_t>(b.queries.size());
    }
  }

  // Cluster mode: one query per shard alias in a single scatter batch, so
  // the gather fans out across the ring and every node contributes
  // rpc.node.* samples to the registry.
  if (coordinator != nullptr) {
    std::vector<query::AbstractQuery> scatter;
    for (int s = 0; s < 2 * opt.cluster_nodes; ++s) {
      scatter.push_back(
          query::QueryBuilder("faa", workload::kFlightsView + std::string("_shard") +
                                         std::to_string(s))
              .Dim("carrier")
              .CountAll("flights")
              .Build());
    }
    ExecContext cctx;
    VIZQ_ASSIGN_OR_RETURN(std::vector<ResultTable> shard_results,
                          coordinator->ExecuteBatch(cctx, scatter, options,
                                                    nullptr));
    out.queries_run += static_cast<int64_t>(shard_results.size());
  }

  // Probe query for the EXPLAIN ANALYZE dump: caches off so it must reach
  // the engine and produce a plan.
  query::AbstractQuery probe = query::QueryBuilder("faa", workload::kFlightsView)
                                   .Dim("carrier")
                                   .CountAll("flights")
                                   .Build();
  dashboard::BatchOptions probe_opts;
  probe_opts.use_intelligent_cache = false;
  probe_opts.use_literal_cache = false;
  ExecContext pctx;
  VIZQ_ASSIGN_OR_RETURN(ResultTable probe_result,
                        service.ExecuteQuery(pctx, probe, probe_opts));
  ++out.queries_run;
  out.probe_rows = probe_result.num_rows();
  out.plan_text = pctx.log()->attachment("tde.analyze");
  out.plan_root_rows = pctx.log()->attachment("tde.analyze.root_rows");

  // Encoded-path probe: carrier x dest_state. The flights table is sorted
  // by carrier only, so streaming aggregation cannot claim this grouping;
  // the dense token-indexed path must (carrier's RLE runs stay undecoded
  // through the scan).
  query::AbstractQuery encoded_probe =
      query::QueryBuilder("faa", workload::kFlightsView)
          .Dim("carrier")
          .Dim("dest_state")
          .CountAll("flights")
          .Build();
  ExecContext ectx;
  VIZQ_ASSIGN_OR_RETURN(ResultTable encoded_result,
                        service.ExecuteQuery(ectx, encoded_probe, probe_opts));
  ++out.queries_run;
  out.encoded_probe_rows = encoded_result.num_rows();
  out.encoded_plan_text = ectx.log()->attachment("tde.analyze");
  return out;
}

void PrintSpanTree(const obs::RecordedSpan& span, int depth) {
  std::printf("    %*s%s  %.3f ms\n", depth * 2, "", span.name.c_str(),
              span.duration_us / 1000.0);
  for (const obs::RecordedSpan& child : span.children) {
    PrintSpanTree(child, depth + 1);
  }
}

// --selftest: assert the acceptance criteria on what the run recorded.
int SelfTest(const WorkloadResult& result) {
  // (c) EXPLAIN ANALYZE root rows-out == returned rows.
  if (result.plan_text.empty()) {
    return Fail("selftest: probe left no tde.analyze attachment");
  }
  if (result.plan_root_rows != std::to_string(result.probe_rows)) {
    return Fail("selftest: plan root rows-out '" + result.plan_root_rows +
                "' != probe result rows " + std::to_string(result.probe_rows));
  }

  // (d) the encoded-path probe ran Scan->Aggregate on compressed columns:
  // dense grouping in the plan, no fallback, RLE rows never decoded.
  if (result.encoded_plan_text.find(" dense") == std::string::npos) {
    return Fail("selftest: encoded probe plan lacks dense aggregation:\n" +
                result.encoded_plan_text);
  }
  if (result.encoded_plan_text.find(" encoded") == std::string::npos) {
    return Fail("selftest: encoded probe plan lacks an encoded scan:\n" +
                result.encoded_plan_text);
  }
  {
    size_t at = result.encoded_plan_text.find("encoded: plans=");
    int plans = 0, fallbacks = -1;
    long long undecoded = 0;
    if (at == std::string::npos ||
        std::sscanf(result.encoded_plan_text.c_str() + at,
                    "encoded: plans=%d fallbacks=%d rows_undecoded=%lld",
                    &plans, &fallbacks, &undecoded) != 3) {
      return Fail("selftest: encoded probe plan lacks the encoded footer:\n" +
                  result.encoded_plan_text);
    }
    if (plans < 1 || fallbacks != 0 || undecoded <= 0) {
      return Fail("selftest: encoded probe did not take the encoded path "
                  "(plans=" + std::to_string(plans) +
                  " fallbacks=" + std::to_string(fallbacks) +
                  " rows_undecoded=" + std::to_string(undecoded) + ")");
    }
  }

  // (a) registry snapshot: cache, pool and per-operator histograms with
  // monotone percentiles.
  obs::MetricsSnapshot snap = obs::GlobalMetrics().TakeSnapshot();
  bool saw_cache = false, saw_pool = false, saw_op = false;
  for (const auto& h : snap.histograms) {
    if (h.count <= 0) continue;
    if (h.name.rfind("cache.", 0) == 0) saw_cache = true;
    if (h.name.rfind("pool.", 0) == 0) saw_pool = true;
    if (h.name.rfind("tde.op.", 0) == 0) saw_op = true;
    if (!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max &&
          h.min <= h.p50)) {
      return Fail("selftest: non-monotone percentiles in histogram " + h.name);
    }
  }
  if (!saw_cache) return Fail("selftest: no cache.* histogram observed");
  if (!saw_pool) return Fail("selftest: no pool.* histogram observed");
  if (!saw_op) return Fail("selftest: no tde.op.* histogram observed");
  if (snap.counters.find("cache.intelligent.miss") == snap.counters.end()) {
    return Fail("selftest: cache.intelligent.miss counter missing");
  }

  // (b) the recorded workload exports as schema-valid Chrome trace JSON.
  if (obs::GlobalRecorder().total_recorded() <= 0) {
    return Fail("selftest: recorder captured no requests");
  }
  std::string trace = obs::GlobalRecorder().AllToChromeTrace();
  int num_events = 0;
  Status valid = obs::ValidateChromeTrace(trace, &num_events);
  if (!valid.ok()) {
    return Fail("selftest: Chrome trace invalid: " + valid.ToString());
  }
  if (num_events <= 0) return Fail("selftest: Chrome trace has no events");

  // (e) the always-on tail-exemplar store retained this run's slowest
  // requests, and they export as a schema-valid Chrome trace too.
  obs::TailExemplarStore& exemplars = obs::GlobalExemplars();
  if (exemplars.total_retained() <= 0) {
    return Fail("selftest: tail-exemplar store retained nothing");
  }
  if (exemplars.Slowest().duration_ms <= 0) {
    return Fail("selftest: slowest tail exemplar has no duration");
  }
  int exemplar_events = 0;
  Status exemplar_valid =
      obs::ValidateChromeTrace(exemplars.ToChromeTrace(), &exemplar_events);
  if (!exemplar_valid.ok()) {
    return Fail("selftest: exemplar trace invalid: " +
                exemplar_valid.ToString());
  }
  if (exemplar_events <= 0) {
    return Fail("selftest: exemplar trace has no events");
  }

  // (f) plan profiles: the engine recorded at least one shape, and each
  // profile's quantiles are monotone.
  std::vector<obs::PlanProfileRegistry::Profile> profiles =
      obs::GlobalPlanProfiles().Snapshot();
  if (profiles.empty()) return Fail("selftest: no plan profiles recorded");
  for (const auto& p : profiles) {
    if (p.signature.empty() || p.count <= 0) {
      return Fail("selftest: degenerate plan profile");
    }
    if (!(p.min_ms <= p.p50_ms && p.p50_ms <= p.p95_ms &&
          p.p95_ms <= p.p99_ms && p.p99_ms <= p.max_ms)) {
      return Fail("selftest: non-monotone quantiles in plan profile " +
                  p.signature);
    }
  }

  std::printf("vizq_stats selftest OK: %lld queries, %lld recorded requests, "
              "%d trace events, %lld tail exemplars, %zu plan shapes, "
              "probe rows %lld\n",
              static_cast<long long>(result.queries_run),
              static_cast<long long>(obs::GlobalRecorder().total_recorded()),
              num_events, static_cast<long long>(exemplars.total_retained()),
              profiles.size(), static_cast<long long>(result.probe_rows));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ToolOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--flights") == 0 && i + 1 < argc) {
      opt.flights = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--slow-n") == 0 && i + 1 < argc) {
      opt.slow_n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--cluster") == 0 && i + 1 < argc) {
      opt.cluster_nodes = std::atoi(argv[++i]);
      if (opt.cluster_nodes < 1 || opt.cluster_nodes > 64) {
        return Fail("--cluster expects a node count in [1, 64]");
      }
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      opt.selftest = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      opt.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--exemplar-trace-out") == 0 &&
               i + 1 < argc) {
      opt.exemplar_trace_out = argv[++i];
    } else {
      return Fail(std::string("unknown flag: ") + argv[i] +
                  "\nusage: vizq_stats [--flights N] [--seed S] [--slow-n N]"
                  " [--json] [--cluster N] [--trace-out FILE]"
                  " [--exemplar-trace-out FILE] [--selftest]");
    }
  }

  // The selftest's assertions describe the single-node pipeline.
  if (opt.selftest) opt.cluster_nodes = 0;

  // Fresh observability epoch so the dump reflects exactly this run.
  obs::GlobalMetrics().Reset();
  obs::GlobalRecorder().Clear();
  obs::GlobalExemplars().Clear();
  obs::GlobalPlanProfiles().Reset();

  StatusOr<WorkloadResult> result = RunWorkload(opt);
  if (!result.ok()) return Fail("workload failed: " + result.status().ToString());

  if (opt.selftest) return SelfTest(*result);

  // --- registry snapshot ---
  std::printf("== global metrics (%s) ==\n",
              opt.json ? "json" : "prometheus");
  if (opt.json) {
    std::printf("%s\n", obs::GlobalMetrics().ToJson().c_str());
  } else {
    std::printf("%s", obs::GlobalMetrics().ToPrometheusText().c_str());
  }

  // --- slowest recorded requests ---
  // Fast runs leave the slow-query log empty; rank the ring instead so
  // the dump always shows where the time went.
  std::vector<obs::RecordedRequest> slow = obs::GlobalRecorder().Slowest();
  if (slow.empty()) {
    slow = obs::GlobalRecorder().Recent();
    std::sort(slow.begin(), slow.end(),
              [](const obs::RecordedRequest& a, const obs::RecordedRequest& b) {
                return a.duration_us > b.duration_us;
              });
  }
  std::printf("\n== slowest %d of %lld recorded requests ==\n", opt.slow_n,
              static_cast<long long>(obs::GlobalRecorder().total_recorded()));
  int shown = 0;
  for (const obs::RecordedRequest& r : slow) {
    if (shown++ >= opt.slow_n) break;
    std::printf("  #%lld %s  %.3f ms, %d spans, %zu breadcrumbs\n",
                static_cast<long long>(r.id), r.name.c_str(),
                r.duration_us / 1000.0, r.root.TotalSpans(), r.events.size());
    PrintSpanTree(r.root, 0);
  }

  // --- Chrome trace export ---
  if (!opt.trace_out.empty()) {
    std::ofstream f(opt.trace_out, std::ios::trunc);
    if (!f) return Fail("cannot open " + opt.trace_out);
    f << obs::GlobalRecorder().AllToChromeTrace();
    std::printf("\nwrote Chrome trace (load in chrome://tracing) to %s\n",
                opt.trace_out.c_str());
  }

  // --- tail exemplars ---
  {
    obs::TailExemplarStore& store = obs::GlobalExemplars();
    std::vector<obs::Exemplar> kept = store.Snapshot();
    std::printf("\n== tail exemplars (%zu retained of %lld offered) ==\n",
                kept.size(), static_cast<long long>(store.total_offered()));
    for (const obs::Exemplar& e : kept) {
      std::string rung =
          e.rung >= 0 ? " rung=" + std::to_string(e.rung) : std::string();
      std::printf("  %s%s  %.3f ms  outcome=%s%s\n", e.shed ? "[shed] " : "",
                  e.request.name.c_str(), e.duration_ms, e.outcome.c_str(),
                  rung.c_str());
      if (!e.timeline_text.empty()) {
        std::printf("    timeline: %s\n", e.timeline_text.c_str());
      }
    }
    if (!opt.exemplar_trace_out.empty()) {
      std::ofstream f(opt.exemplar_trace_out, std::ios::trunc);
      if (!f) return Fail("cannot open " + opt.exemplar_trace_out);
      f << store.ToChromeTrace();
      std::printf("  wrote exemplar Chrome trace to %s\n",
                  opt.exemplar_trace_out.c_str());
    }
  }

  // --- per-plan-shape latency profiles ---
  {
    std::vector<obs::PlanProfileRegistry::Profile> profiles =
        obs::GlobalPlanProfiles().Snapshot();
    std::printf("\n== plan profiles (%zu shapes, most-executed first) ==\n",
                profiles.size());
    for (const auto& p : profiles) {
      std::printf("  x%-4lld p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms  %s\n",
                  static_cast<long long>(p.count), p.p50_ms, p.p95_ms,
                  p.p99_ms, p.signature.c_str());
    }
  }

  // --- one annotated plan ---
  std::printf("\n== EXPLAIN ANALYZE: carrier flight counts (caches off) ==\n");
  std::printf("%s", result->plan_text.c_str());
  std::printf("  (root rows-out %s, returned rows %lld)\n",
              result->plan_root_rows.c_str(),
              static_cast<long long>(result->probe_rows));

  std::printf("\n== EXPLAIN ANALYZE: flights by carrier x dest_state "
              "(encoded path) ==\n");
  std::printf("%s", result->encoded_plan_text.c_str());
  std::printf("  (returned rows %lld)\n",
              static_cast<long long>(result->encoded_probe_rows));
  return 0;
}
