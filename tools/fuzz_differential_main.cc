// Standalone driver for the differential query fuzzer (src/testing).
//
// Bounded tier-1 run (also registered as the `fuzz_differential` ctest):
//   fuzz_differential --iterations 200
// Unbounded soak with an explicit seed:
//   fuzz_differential --iterations 20000 --seed 12345
//
// Exits 0 when every lane agreed with the oracle, 1 otherwise; each
// failure is printed with its seeds and a minimized query so it can be
// replayed (see src/testing/differential_fuzzer.h for the recipe).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/obs/exemplar.h"
#include "src/obs/metrics.h"
#include "src/testing/differential_fuzzer.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iterations N] [--seed S] [--queries N]\n"
               "          [--dataset-every N] [--max-failures N]\n"
               "          [--no-federated] [--no-deadline] [--no-metamorphic]\n"
               "          [--no-join] [--no-cluster]\n"
               "          [--no-minimize] [--inject] [--artifacts-dir DIR]\n",
               argv0);
}

// CI uploads DIR as a workflow artifact: every failure with its replay
// seeds and minimized query, plus the global metrics registry snapshot
// (what the whole campaign did — lane counts, cache hit/miss reasons,
// operator timings) and the tail-exemplar Chrome trace (the campaign's
// slowest traced requests, loadable in chrome://tracing) for triage
// without a local rerun.
void WriteArtifacts(const std::string& dir,
                    const vizq::testing::FuzzReport& report) {
  {
    std::ofstream f(dir + "/failures.txt", std::ios::trunc);
    f << report.Summary() << "\n\n";
    for (const auto& failure : report.failures) {
      f << failure.ToString() << "\n";
    }
  }
  {
    std::ofstream f(dir + "/registry_snapshot.json", std::ios::trunc);
    f << vizq::obs::GlobalMetrics().ToJson() << "\n";
  }
  {
    std::ofstream f(dir + "/tail_exemplars_trace.json", std::ios::trunc);
    f << vizq::obs::GlobalExemplars().ToChromeTrace() << "\n";
  }
  std::printf(
      "wrote artifacts to %s/{failures.txt,registry_snapshot.json,"
      "tail_exemplars_trace.json}\n",
      dir.c_str());
}

bool ParseInt64(const char* s, int64_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  vizq::testing::FuzzOptions options;
  std::string artifacts_dir;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_int = [&](int64_t* out) {
      if (i + 1 >= argc || !ParseInt64(argv[++i], out)) {
        Usage(argv[0]);
        std::exit(2);
      }
    };
    int64_t v = 0;
    if (std::strcmp(arg, "--iterations") == 0) {
      next_int(&v);
      options.iterations = static_cast<int>(v);
    } else if (std::strcmp(arg, "--seed") == 0) {
      next_int(&v);
      options.seed = static_cast<uint64_t>(v);
    } else if (std::strcmp(arg, "--queries") == 0) {
      next_int(&v);
      options.queries_per_iteration = static_cast<int>(v);
    } else if (std::strcmp(arg, "--dataset-every") == 0) {
      next_int(&v);
      options.dataset_every = static_cast<int>(v);
    } else if (std::strcmp(arg, "--max-failures") == 0) {
      next_int(&v);
      options.max_failures = static_cast<int>(v);
    } else if (std::strcmp(arg, "--no-federated") == 0) {
      options.include_federated = false;
    } else if (std::strcmp(arg, "--no-deadline") == 0) {
      options.deadline_lane = false;
    } else if (std::strcmp(arg, "--no-metamorphic") == 0) {
      options.metamorphic = false;
    } else if (std::strcmp(arg, "--no-join") == 0) {
      options.join_lane = false;
    } else if (std::strcmp(arg, "--no-cluster") == 0) {
      options.cluster_lane = false;
    } else if (std::strcmp(arg, "--no-minimize") == 0) {
      options.minimize = false;
    } else if (std::strcmp(arg, "--inject") == 0) {
      options.inject_offby_one = true;
    } else if (std::strcmp(arg, "--artifacts-dir") == 0) {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      artifacts_dir = argv[++i];
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  // Install the global metrics sink before the campaign so lane traffic
  // lands in the registry snapshot (the singleton self-installs lazily).
  vizq::obs::GlobalMetrics();

  std::printf("fuzz_differential: seed=%llu iterations=%d queries/iter=%d\n",
              static_cast<unsigned long long>(options.seed),
              options.iterations, options.queries_per_iteration);
  std::fflush(stdout);

  vizq::testing::FuzzReport report =
      vizq::testing::RunDifferentialFuzz(options);
  std::printf("%s\n", report.Summary().c_str());

  if (!artifacts_dir.empty()) WriteArtifacts(artifacts_dir, report);

  if (options.inject_offby_one) {
    // Self-test mode: the run must catch the injected off-by-one.
    bool caught = false;
    for (const auto& f : report.failures) {
      if (f.lane == "injected_offby_one") caught = true;
    }
    if (!caught) {
      std::printf("SELF-TEST FAILED: injected off-by-one was not detected\n");
      return 1;
    }
    std::printf("self-test: injected off-by-one detected and minimized\n");
    return 0;
  }
  return report.ok() ? 0 : 1;
}
