// The paper's running example: the FAA Flights On-Time dashboards of
// Figs. 1-2, rendered through the full pipeline — batch analysis, query
// fusion, intelligent caching, concurrent submission — including the §3.3
// iterative scenario where a selection is eliminated because its value
// disappeared from the source zone.
//
//   ./build/examples/flights_dashboard

#include <cstdio>
#include <iostream>

#include "src/dashboard/renderer.h"
#include "src/federation/data_source.h"
#include "src/workload/faa_generator.h"
#include "src/workload/flights_dashboards.h"

using namespace vizq;

namespace {

void PrintBatch(const char* label, const dashboard::BatchReport& report) {
  std::printf("  %-28s %s\n", label, report.Summary().c_str());
}

void PrintTop(const ResultTable& t, int64_t k, const char* label) {
  std::printf("  %s:\n", label);
  for (int64_t r = 0; r < std::min<int64_t>(k, t.num_rows()); ++r) {
    std::printf("    ");
    for (int c = 0; c < t.num_columns(); ++c) {
      std::printf("%s%s", c ? "  " : "", t.at(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // Generate the synthetic FAA data set and expose it through the TDE.
  workload::FaaOptions faa;
  faa.num_flights = 200000;
  auto db = workload::GenerateFaaDatabase(faa);
  if (!db.ok()) {
    std::cerr << db.status() << "\n";
    return 1;
  }
  auto source = std::make_shared<federation::TdeDataSource>("faa", *db);
  auto caches = std::make_shared<dashboard::CacheStack>();
  dashboard::QueryService service(source, caches);
  if (auto s = service.RegisterView(workload::FlightsStarView()); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  dashboard::BatchOptions options;
  options.adjust.add_filter_dimensions = true;
  dashboard::DashboardRenderer renderer(&service);

  // ---- Figure 1: the On-Time overview dashboard ----
  std::printf("== Figure 1 dashboard: initial load ==\n");
  dashboard::Dashboard fig1 = workload::BuildFigure1Dashboard("faa");
  dashboard::InteractionState state1;
  auto load = renderer.Render(fig1, &state1, options);
  if (!load.ok()) {
    std::cerr << load.status() << "\n";
    return 1;
  }
  PrintBatch("initial load", load->batches[0]);
  PrintTop(load->zone_results.at("Airlines"), 5, "airlines");
  PrintTop(load->zone_results.at("CancellationsByWeekday"), 7,
           "cancellations by weekday");

  // Select California destinations on the destination map.
  std::printf("\n== Select dest_state=CA on the destination map ==\n");
  state1.Select("DestMap", "dest_state", {Value("CA")});
  auto refresh = renderer.Refresh(fig1, &state1,
                                  fig1.ActionTargets("DestMap"), options);
  if (!refresh.ok()) {
    std::cerr << refresh.status() << "\n";
    return 1;
  }
  PrintBatch("after selection", refresh->batches[0]);
  PrintTop(refresh->zone_results.at("DestAirports"), 5,
           "destination airports (CA only)");

  // ---- Figure 2: Market / Carrier / Airline Name with linked actions ----
  std::printf("\n== Figure 2 dashboard ==\n");
  dashboard::Dashboard fig2 = workload::BuildFigure2Dashboard("faa");
  dashboard::InteractionState state2;
  auto load2 = renderer.Render(fig2, &state2, options);
  if (!load2.ok()) {
    std::cerr << load2.status() << "\n";
    return 1;
  }
  PrintBatch("initial load", load2->batches[0]);
  PrintTop(load2->zone_results.at("Market"), 5, "busiest markets");
  PrintTop(load2->zone_results.at("Carrier"), 5, "top carriers");

  // Reproduce the §3.3 narrative: select a market and a carrier...
  const ResultTable& markets = load2->zone_results.at("Market");
  std::string market1 = markets.at(0, 0).string_value();
  // Pick the smallest of the top-5 carriers so a market without it exists.
  const ResultTable& carriers = load2->zone_results.at("Carrier");
  std::string carrier1 =
      carriers.at(carriers.num_rows() - 1, 0).string_value();
  std::printf("\n== Select market %s, then carrier %s ==\n", market1.c_str(),
              carrier1.c_str());
  state2.Select("Market", "market", {Value(market1)});
  auto r1 = renderer.Refresh(fig2, &state2, fig2.ActionTargets("Market"),
                             options);
  if (!r1.ok()) { std::cerr << r1.status() << "\n"; return 1; }
  state2.Select("Carrier", "carrier", {Value(carrier1)});
  auto r2 = renderer.Refresh(fig2, &state2, fig2.ActionTargets("Carrier"),
                             options);
  if (!r2.ok()) { std::cerr << r2.status() << "\n"; return 1; }
  PrintTop(r2->zone_results.at("AirlineName"), 3, "airline (filtered)");

  // ...then switch to a market the carrier does not serve. The stale
  // carrier selection is eliminated and the AirlineName zone re-queried in
  // a second iteration — the paper's HNL-OGG example. Find such a market
  // by asking which markets the carrier flies.
  std::string market2;
  {
    auto served = service.ExecuteQuery(
        query::QueryBuilder("faa", workload::kFlightsView)
            .Dim("market")
            .FilterIn("carrier", {Value(carrier1)})
            .Build(),
        options);
    auto all_markets = service.ExecuteQuery(
        query::QueryBuilder("faa", workload::kFlightsView)
            .Dim("market")
            .Build(),
        options);
    if (served.ok() && all_markets.ok()) {
      auto flies = [&](const std::string& m) {
        for (int64_t r = 0; r < served->num_rows(); ++r) {
          if (served->at(r, 0).string_value() == m) return true;
        }
        return false;
      };
      for (int64_t r = 0; r < all_markets->num_rows(); ++r) {
        std::string candidate = all_markets->at(r, 0).string_value();
        if (candidate != market1 && !flies(candidate)) {
          market2 = candidate;
          break;
        }
      }
      if (market2.empty()) {  // carrier flies everywhere; pick any other
        market2 = markets.at(markets.num_rows() - 1, 0).string_value();
      }
    }
  }
  std::printf("\n== Switch market to %s (carrier %s may vanish) ==\n",
              market2.c_str(), carrier1.c_str());
  state2.Select("Market", "market", {Value(market2)});
  auto r3 = renderer.Refresh(fig2, &state2, fig2.ActionTargets("Market"),
                             options);
  if (!r3.ok()) { std::cerr << r3.status() << "\n"; return 1; }
  std::printf("  iterations: %d\n", r3->iterations);
  for (const std::string& e : r3->eliminated_selections) {
    std::printf("  eliminated selection: %s\n", e.c_str());
  }

  // Cache effectiveness over the whole session.
  const auto& stats = caches->intelligent.stats();
  std::printf("\n== intelligent cache over the session ==\n");
  std::printf("  exact hits: %lld, derived hits: %lld, misses: %lld\n",
              static_cast<long long>(stats.exact_hits),
              static_cast<long long>(stats.derived_hits),
              static_cast<long long>(stats.misses));
  return 0;
}
