// Data Server walk-through (§5, Fig. 6): publish one data source, share it
// across users and workbooks without duplicating extracts or calculations,
// enforce row-level permissions, and use server-side temporary tables to
// keep large filters off the wire.
//
//   ./build/examples/data_server_sharing

#include <cstdio>
#include <iostream>

#include "src/federation/simulated_source.h"
#include "src/server/data_server.h"
#include "src/workload/faa_generator.h"

using namespace vizq;

int main() {
  // The "underlying database" is a simulated warehouse.
  workload::FaaOptions faa;
  faa.num_flights = 120000;
  auto db = workload::GenerateFaaDatabase(faa);
  if (!db.ok()) {
    std::cerr << db.status() << "\n";
    return 1;
  }
  auto backend =
      federation::SimulatedDataSource::ParallelWarehouse("warehouse", *db);

  // Publish one data source: flights joined to carriers, one shared
  // calculation, and per-user row filters.
  server::DataServer server;
  server::PublishedDataSource source;
  source.name = "FlightsAnalytics";
  source.view.fact_table = "flights";
  source.view.joins.push_back(
      query::ViewJoin{"carriers", "carrier", "code", true});
  source.calculations["Total Delay"] =
      query::Measure{AggFunc::kSum, "arr_delay", ""};
  query::PredicateSet ca_only;
  ca_only.predicates.push_back(
      query::ColumnPredicate::InSet("dest_state", {Value("CA")}));
  source.permissions.SetUserFilter("ca_analyst", std::move(ca_only));
  if (auto s = server.Publish(std::move(source), backend); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Two users connect; the client "populates its data window" from the
  // returned metadata.
  auto manager = server.Connect("manager", "FlightsAnalytics");
  auto analyst = server.Connect("ca_analyst", "FlightsAnalytics");
  if (!manager.ok() || !analyst.ok()) {
    std::cerr << "connect failed\n";
    return 1;
  }
  std::printf("metadata: %zu columns, %zu shared calculations\n",
              (*manager)->metadata().columns.size(),
              (*manager)->metadata().calculation_names.size());

  // The same query through both sessions: permissions differ.
  server::ClientQuery by_state;
  by_state.query = query::QueryBuilder("", "")
                       .Dim("dest_state")
                       .CountAll("flights")
                       .OrderBy("flights", false)
                       .Limit(5)
                       .Build();
  auto full = (*manager)->Query(by_state);
  auto restricted = (*analyst)->Query(by_state);
  if (!full.ok() || !restricted.ok()) {
    std::cerr << "query failed\n";
    return 1;
  }
  std::printf("\nmanager sees %lld destination states; ca_analyst sees %lld\n",
              static_cast<long long>(full->num_rows()),
              static_cast<long long>(restricted->num_rows()));

  // Shared calculation by name.
  server::ClientQuery calc;
  calc.query.dimensions = {"carrier"};
  calc.query.measures.push_back(
      query::Measure{AggFunc::kSum, "Total Delay", "delay"});
  calc.query.limit = 3;
  calc.query.order_by.push_back(query::OrderSpec{"delay", false});
  auto delays = (*manager)->Query(calc);
  if (delays.ok()) {
    std::printf("\nworst carriers by shared 'Total Delay' calculation:\n");
    for (int64_t r = 0; r < delays->num_rows(); ++r) {
      std::printf("  %s  %s\n", delays->at(r, 0).ToString().c_str(),
                  delays->at(r, 1).ToString().c_str());
    }
  }

  // Temp tables (§5.3): upload a big market list once, reference it by
  // name afterwards.
  std::vector<Value> markets;
  for (const std::string& o : workload::FaaAirportCodes()) {
    markets.push_back(Value(o + "-LAX"));
    markets.push_back(Value(o + "-SFO"));
  }
  if (auto s = (*manager)->CreateTempTable("west_markets", "market",
                                           DataType::String(), markets);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  server::ClientQuery temp_q;
  temp_q.query =
      query::QueryBuilder("", "").Dim("carrier").CountAll("flights").Build();
  temp_q.temp_filters["market"] = "west_markets";
  dashboard::BatchReport report;
  auto west = (*manager)->Query(temp_q, &report);
  if (west.ok()) {
    std::printf("\nflights into LAX/SFO by carrier (filter via temp table, "
                "%lld values kept off the wire):\n",
                static_cast<long long>(server.values_saved_by_temp_refs()));
    for (int64_t r = 0; r < std::min<int64_t>(4, west->num_rows()); ++r) {
      std::printf("  %s  %s\n", west->at(r, 0).ToString().c_str(),
                  west->at(r, 1).ToString().c_str());
    }
  }

  // Proxy caches are shared across users (§3.2): the manager's earlier
  // by-state query is a cache hit for a third user.
  auto third = server.Connect("viewer", "FlightsAnalytics");
  dashboard::BatchReport viewer_report;
  auto again = (*third)->Query(by_state, &viewer_report);
  std::printf("\nviewer repeats the by-state query: %d remote, %d cache "
              "hits\n",
              viewer_report.remote_queries, viewer_report.cache_hits);
  return 0;
}
