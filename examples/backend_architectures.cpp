// Federation walk-through (§3.1, §3.5): compile one abstract query for
// backends with different dialects and capabilities, then submit a
// dashboard-sized batch serially and concurrently against each simulated
// architecture and watch where concurrency pays off.
//
//   ./build/examples/backend_architectures

#include <chrono>
#include <cstdio>
#include <iostream>

#include "src/dashboard/query_service.h"
#include "src/federation/simulated_source.h"
#include "src/workload/faa_generator.h"

using namespace vizq;

namespace {

std::vector<query::AbstractQuery> DashboardBatch() {
  using query::QueryBuilder;
  std::vector<query::AbstractQuery> batch;
  batch.push_back(QueryBuilder("src", "flights")
                      .Dim("carrier").CountAll("flights").Build());
  batch.push_back(QueryBuilder("src", "flights")
                      .Dim("dest_state").CountAll("flights").Build());
  batch.push_back(QueryBuilder("src", "flights")
                      .Dim("weekday")
                      .Agg(AggFunc::kAvg, "arr_delay", "avg_delay")
                      .Build());
  batch.push_back(QueryBuilder("src", "flights")
                      .Dim("dep_hour")
                      .Agg(AggFunc::kAvg, "dep_delay", "avg_delay")
                      .Build());
  batch.push_back(QueryBuilder("src", "flights")
                      .Dim("market").CountAll("flights")
                      .OrderBy("flights", false).Limit(10).Build());
  batch.push_back(QueryBuilder("src", "flights")
                      .Dim("origin").CountAll("flights").Build());
  return batch;
}

}  // namespace

int main() {
  workload::FaaOptions faa;
  faa.num_flights = 60000;
  auto db = workload::GenerateFaaDatabase(faa);
  if (!db.ok()) {
    std::cerr << db.status() << "\n";
    return 1;
  }

  // One query, three dialects.
  auto warehouse =
      federation::SimulatedDataSource::ParallelWarehouse("warehouse", *db);
  auto rowstore =
      federation::SimulatedDataSource::SingleThreadedSql("rowstore", *db);
  auto cloud = federation::SimulatedDataSource::ThrottledCloud("cloud", *db);

  query::AbstractQuery q = query::QueryBuilder("src", "flights")
                               .Dim("carrier")
                               .CountAll("flights")
                               .OrderBy("flights", false)
                               .Limit(5)
                               .Build();
  std::printf("== one internal query, per-dialect text ==\n");
  for (const auto& source :
       std::vector<std::shared_ptr<federation::SimulatedDataSource>>{
           warehouse, rowstore, cloud}) {
    query::ViewDefinition view;
    view.name = "flights";
    view.fact_table = "flights";
    query::QueryCompiler compiler(view, source->capabilities(),
                                  source->dialect(), &source->catalog());
    auto cq = compiler.Compile(q);
    if (cq.ok()) {
      std::printf("  [%-9s] %s\n", source->name().c_str(), cq->sql.c_str());
    }
  }

  // Batch submission: serial vs concurrent per architecture (§3.5).
  std::printf("\n== 6-query dashboard batch: serial vs concurrent ==\n");
  for (const auto& source :
       std::vector<std::shared_ptr<federation::SimulatedDataSource>>{
           warehouse, rowstore, cloud}) {
    for (bool concurrent : {false, true}) {
      auto service = std::make_unique<dashboard::QueryService>(source, nullptr);
      (void)service->RegisterTableView("flights");
      dashboard::BatchOptions options;
      options.use_intelligent_cache = false;
      options.use_literal_cache = false;
      options.analyze_batch = false;
      options.fuse_queries = false;
      options.concurrent = concurrent;
      dashboard::BatchReport report;
      auto started = std::chrono::steady_clock::now();
      auto results = service->ExecuteBatch(DashboardBatch(), options, &report);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - started)
                      .count();
      if (!results.ok()) {
        std::cerr << results.status() << "\n";
        return 1;
      }
      std::printf("  [%-9s] %-10s %7.1f ms\n", source->name().c_str(),
                  concurrent ? "concurrent" : "serial", ms);
    }
  }
  std::printf("\n(the throttled cloud source admits only 2 queries at a "
              "time, so concurrency helps less there — §3.5)\n");
  return 0;
}
