// Data blending across heterogeneous data sources (§2): flight volumes
// from one backend blended with route-distance reference data held in a
// second, independent backend. Each side runs through its own query
// pipeline (caches, pools); the aggregated results are left-joined
// locally on the linking dimension.
//
//   ./build/examples/blending

#include <cstdio>
#include <iostream>

#include "src/dashboard/blending.h"
#include "src/federation/simulated_source.h"
#include "src/workload/faa_generator.h"

using namespace vizq;

int main() {
  // Primary source: flight facts in a simulated warehouse.
  workload::FaaOptions faa;
  faa.num_flights = 80000;
  auto flights_db = workload::GenerateFaaDatabase(faa);
  if (!flights_db.ok()) {
    std::cerr << flights_db.status() << "\n";
    return 1;
  }
  auto warehouse = federation::SimulatedDataSource::ParallelWarehouse(
      "warehouse", *flights_db);
  auto warehouse_caches = std::make_shared<dashboard::CacheStack>();
  dashboard::QueryService flights_service(warehouse, warehouse_caches);
  if (!flights_service.RegisterTableView("flights").ok()) return 1;

  // Secondary source: per-carrier fleet reference data in a completely
  // separate (single-threaded SQL) backend.
  auto ref_db = std::make_shared<tde::Database>("reference");
  {
    tde::TableBuilder builder("fleet", {{"carrier", DataType::String()},
                                        {"aircraft", DataType::Int64()},
                                        {"hubs", DataType::Int64()}});
    int64_t aircraft[] = {950, 880, 760, 720, 280, 230, 60, 110, 90, 60};
    int64_t hubs[] = {10, 9, 8, 11, 4, 3, 2, 3, 3, 2};
    for (int c = 0; c < 8; ++c) {  // two carriers intentionally missing
      (void)builder.AddRow({Value(workload::FaaCarrierCodes()[c]),
                            Value(aircraft[c]), Value(hubs[c])});
    }
    (void)ref_db->AddTable(*builder.Finish());
  }
  auto reference =
      federation::SimulatedDataSource::SingleThreadedSql("reference", ref_db);
  dashboard::QueryService fleet_service(reference, nullptr);
  if (!fleet_service.RegisterTableView("fleet").ok()) return 1;

  // Blend: flights per carrier (primary) + fleet size (secondary).
  dashboard::BlendSpec spec;
  spec.primary = query::QueryBuilder("warehouse", "flights")
                     .Dim("carrier")
                     .CountAll("flights")
                     .Agg(AggFunc::kAvg, "arr_delay", "avg_delay")
                     .Build();
  spec.secondary = query::QueryBuilder("reference", "fleet")
                       .Dim("carrier")
                       .Agg(AggFunc::kMax, "aircraft", "aircraft")
                       .Build();
  spec.link_on = {{"carrier", "carrier"}};

  auto blended =
      dashboard::ExecuteBlend(&flights_service, &fleet_service, spec);
  if (!blended.ok()) {
    std::cerr << blended.status() << "\n";
    return 1;
  }
  std::printf("carrier  flights  avg_delay  aircraft (secondary source)\n");
  for (int64_t r = 0; r < blended->num_rows(); ++r) {
    std::printf("%-8s %-8s %-10.8s %s\n",
                blended->at(r, 0).ToString().c_str(),
                blended->at(r, 1).ToString().c_str(),
                blended->at(r, 2).ToString().c_str(),
                blended->at(r, 3).is_null()
                    ? "(no reference data)"
                    : blended->at(r, 3).ToString().c_str());
  }

  // Blending again is nearly free: both sides hit their caches.
  auto again =
      dashboard::ExecuteBlend(&flights_service, &fleet_service, spec);
  const auto& stats = warehouse_caches->intelligent.stats();
  std::printf("\nsecond blend: primary-source cache hits = %lld\n",
              static_cast<long long>(stats.hits()));
  return again.ok() ? 0 : 1;
}
