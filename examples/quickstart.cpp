// Quickstart: extract a CSV into the TDE column store, query it with TQL,
// inspect plans, and round-trip the single-file database format.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "src/extract/shadow_extract.h"
#include "src/tde/engine.h"
#include "src/tde/storage/file_format.h"

int main() {
  using namespace vizq;

  // 1. Some CSV "file" content. Types and the header are inferred.
  const std::string csv =
      "region,product,units,price,day\n"
      "East,apple,12,1.50,2014-06-01\n"
      "East,banana,7,0.75,2014-06-01\n"
      "East,apple,4,1.55,2014-06-02\n"
      "North,cherry,9,3.25,2014-06-01\n"
      "North,apple,5,1.60,2014-06-03\n"
      "South,banana,20,0.70,2014-06-02\n"
      "South,cherry,3,3.10,2014-06-03\n"
      "West,apple,8,1.45,2014-06-02\n"
      "West,banana,11,0.80,2014-06-03\n";

  // 2. Shadow-extract it (§4.4): parse once, store in the TDE, then all
  //    queries run against the column store instead of re-parsing.
  auto db = std::make_shared<tde::Database>("quickstart");
  extract::ShadowExtractManager extracts(db);
  extract::ExtractOptions options;
  options.sort_by = {"region"};  // declared sort order, used by the planner
  extract::ExtractStats stats;
  auto table = extracts.ExtractCsv("sales", csv, options, &stats);
  if (!table.ok()) {
    std::cerr << "extract failed: " << table.status() << "\n";
    return 1;
  }
  std::printf("extracted %lld rows (parse %.2f ms, build %.2f ms)\n\n",
              static_cast<long long>(stats.rows), stats.parse_ms,
              stats.build_ms);

  // 3. Query with TQL text.
  tde::TdeEngine engine(db);
  const std::string tql =
      "(order ((total desc))"
      "  (aggregate ((region region))"
      "             ((total sum units) (avg_price avg price) (n count*))"
      "    (select (> units 3) (scan sales))))";
  auto result = engine.Query(tql);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return 1;
  }
  std::printf("revenue by region (units > 3):\n%s\n", result->ToCsv().c_str());

  // 4. Look at the optimized plan and execution statistics.
  tde::QueryOptions qopts;
  qopts.parallel.min_rows_per_fraction = 2;  // tiny demo table
  qopts.parallel.max_dop = 2;
  auto detailed = engine.Execute(tql, qopts);
  if (detailed.ok()) {
    std::printf("optimized plan:\n%s\n", detailed->plan_text.c_str());
    std::printf("rows scanned: %lld, parallel: %s\n\n",
                static_cast<long long>(detailed->stats->rows_scanned),
                detailed->stats->used_parallel_plan ? "yes" : "no");
  }

  // 5. Pack the whole database into one file and reopen it (§4.1.1's
  //    single-file convenience), e.g. to ship an extract inside a workbook.
  const std::string path = "/tmp/quickstart.tde";
  if (auto s = tde::DatabaseSerializer::PackToFile(*db, path); !s.ok()) {
    std::cerr << "pack failed: " << s << "\n";
    return 1;
  }
  auto reopened = tde::DatabaseSerializer::UnpackFromFile(path);
  if (!reopened.ok()) {
    std::cerr << "unpack failed: " << reopened.status() << "\n";
    return 1;
  }
  tde::TdeEngine engine2(*reopened);
  auto check = engine2.Query("(aggregate () ((n count*)) (scan sales))");
  std::printf("reopened single-file extract: %s rows\n",
              check.ok() ? check->at(0, 0).ToString().c_str() : "?");
  std::remove(path.c_str());
  return 0;
}
