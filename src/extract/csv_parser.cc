#include "src/extract/csv_parser.h"

namespace vizq::extract {

StatusOr<bool> CsvReader::Next(CsvRecord* record) {
  record->clear();
  if (pos_ >= text_.size()) return false;

  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  while (pos_ < text_.size()) {
    char ch = text_[pos_];
    if (in_quotes) {
      if (ch == options_.quote) {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == options_.quote) {
          field += options_.quote;  // escaped quote
          pos_ += 2;
        } else {
          in_quotes = false;
          ++pos_;
        }
      } else {
        field += ch;
        ++pos_;
      }
      continue;
    }
    if (ch == options_.quote && !field_started) {
      in_quotes = true;
      field_started = true;
      ++pos_;
      continue;
    }
    if (ch == options_.separator) {
      record->push_back(std::move(field));
      field.clear();
      field_started = false;
      ++pos_;
      continue;
    }
    if (ch == '\r') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '\n') ++pos_;
      record->push_back(std::move(field));
      ++records_;
      return true;
    }
    if (ch == '\n') {
      ++pos_;
      record->push_back(std::move(field));
      ++records_;
      return true;
    }
    field += ch;
    field_started = true;
    ++pos_;
  }
  if (in_quotes) return DataLoss("unterminated quoted field at end of input");
  record->push_back(std::move(field));
  ++records_;
  return true;
}

StatusOr<std::vector<CsvRecord>> ParseCsv(std::string_view text,
                                          const CsvOptions& options) {
  CsvReader reader(text, options);
  std::vector<CsvRecord> records;
  CsvRecord record;
  size_t arity = 0;
  while (true) {
    VIZQ_ASSIGN_OR_RETURN(bool more, reader.Next(&record));
    if (!more) break;
    // Skip completely empty trailing lines.
    if (record.size() == 1 && record[0].empty()) continue;
    if (records.empty()) {
      arity = record.size();
    } else if (record.size() != arity) {
      return DataLoss("ragged CSV: record " +
                      std::to_string(records.size() + 1) + " has " +
                      std::to_string(record.size()) + " fields, expected " +
                      std::to_string(arity));
    }
    records.push_back(record);
  }
  return records;
}

}  // namespace vizq::extract
