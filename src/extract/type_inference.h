// Metadata discovery for text files (§4.4): "The text parser accepts a
// schema file as additional input if one is available. Otherwise, it
// attempts to discover the metadata by performing type and column name
// inference."

#ifndef VIZQUERY_EXTRACT_TYPE_INFERENCE_H_
#define VIZQUERY_EXTRACT_TYPE_INFERENCE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/extract/csv_parser.h"

namespace vizq::extract {

struct InferredColumn {
  std::string name;
  DataType type;
};

struct InferredSchema {
  std::vector<InferredColumn> columns;
  bool first_row_is_header = false;
};

// Infers column names and types from parsed records. The first row is a
// header when every cell is non-empty, non-numeric and the cells are
// distinct; otherwise columns are named F1..Fn. Types narrow in the order
// bool -> int64 -> float64 -> date -> string over a bounded sample; NULL
// tokens don't vote.
InferredSchema InferSchema(const std::vector<CsvRecord>& records,
                           const CsvOptions& options = {},
                           int64_t sample_rows = 1024);

// Parses a schema file: one "name:type[:nocase]" per line, '#' comments.
// Types: bool, int64, float64, string, date.
StatusOr<std::vector<InferredColumn>> ParseSchemaFile(
    const std::string& text);

// Converts a raw field to a Value of `type` (NULL tokens map to null; an
// unconvertible field is an error).
StatusOr<Value> ConvertField(const std::string& field, const DataType& type,
                             const CsvOptions& options);

}  // namespace vizq::extract

#endif  // VIZQUERY_EXTRACT_TYPE_INFERENCE_H_
