#include "src/extract/shadow_extract.h"

#include <algorithm>
#include <chrono>

namespace vizq::extract {

StatusOr<std::shared_ptr<tde::Table>> BuildTableFromCsv(
    const std::string& name, std::string_view content,
    const ExtractOptions& options, ExtractStats* stats) {
  auto t0 = std::chrono::steady_clock::now();
  VIZQ_ASSIGN_OR_RETURN(std::vector<CsvRecord> records,
                        ParseCsv(content, options.csv));
  auto t1 = std::chrono::steady_clock::now();

  std::vector<InferredColumn> columns;
  size_t first_data_row = 0;
  if (!options.schema.empty()) {
    columns = options.schema;
    // A header row matching the schema names is skipped.
    if (!records.empty() && records[0].size() == columns.size()) {
      bool matches = true;
      for (size_t c = 0; c < columns.size(); ++c) {
        if (records[0][c] != columns[c].name) {
          matches = false;
          break;
        }
      }
      if (matches) first_data_row = 1;
    }
  } else {
    InferredSchema inferred = InferSchema(records, options.csv);
    columns = inferred.columns;
    first_data_row = inferred.first_row_is_header ? 1 : 0;
  }
  if (!records.empty() && records[0].size() != columns.size()) {
    return InvalidArgument("schema arity does not match the file");
  }

  std::vector<tde::ColumnInfo> schema;
  schema.reserve(columns.size());
  for (const InferredColumn& c : columns) {
    schema.push_back(tde::ColumnInfo{c.name, c.type});
  }

  tde::TableBuilder builder(name, schema);
  std::vector<Value> row(columns.size());
  // Optional sort: materialize value rows first, sort, then append.
  std::vector<std::vector<Value>> rows;
  rows.reserve(records.size());
  for (size_t r = first_data_row; r < records.size(); ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      VIZQ_ASSIGN_OR_RETURN(
          row[c], ConvertField(records[r][c], columns[c].type, options.csv));
    }
    rows.push_back(row);
  }

  std::vector<int> sort_indices;
  for (const std::string& s : options.sort_by) {
    int idx = -1;
    for (size_t c = 0; c < columns.size(); ++c) {
      if (columns[c].name == s) idx = static_cast<int>(c);
    }
    if (idx < 0) return NotFound("sort column '" + s + "' not in the file");
    sort_indices.push_back(idx);
  }
  if (!sort_indices.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const std::vector<Value>& a,
                         const std::vector<Value>& b) {
                       for (int k : sort_indices) {
                         int cmp = a[k].Compare(b[k]);
                         if (cmp != 0) return cmp < 0;
                       }
                       return false;
                     });
  }
  for (const std::vector<Value>& r : rows) {
    VIZQ_RETURN_IF_ERROR(builder.AddRow(r));
  }
  if (!sort_indices.empty()) builder.DeclareSorted(sort_indices);

  VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<tde::Table> table, builder.Finish());
  auto t2 = std::chrono::steady_clock::now();
  if (stats != nullptr) {
    stats->parse_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats->build_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    stats->rows = table->num_rows();
  }
  return table;
}

StatusOr<std::shared_ptr<tde::Table>> ShadowExtractManager::ExtractCsv(
    const std::string& name, std::string_view content,
    const ExtractOptions& options, ExtractStats* stats) {
  VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<tde::Table> table,
                        BuildTableFromCsv(name, content, options, stats));
  // Refresh semantics: replace any previous extract of this name.
  (void)db_->DropTable(tde::kDefaultSchema, name);
  VIZQ_RETURN_IF_ERROR(db_->AddTable(table));
  return table;
}

Status ShadowExtractManager::PersistTo(const std::string& path) const {
  return tde::DatabaseSerializer::PackToFile(*db_, path);
}

Status ShadowExtractManager::RestoreFrom(const std::string& path) {
  VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<tde::Database> restored,
                        tde::DatabaseSerializer::UnpackFromFile(path));
  db_ = std::move(restored);
  return OkStatus();
}

}  // namespace vizq::extract
