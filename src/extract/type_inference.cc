#include "src/extract/type_inference.h"

#include <algorithm>
#include <set>

#include "src/common/str_util.h"

namespace vizq::extract {

namespace {

bool IsNullToken(const std::string& field, const CsvOptions& options) {
  return std::find(options.null_tokens.begin(), options.null_tokens.end(),
                   field) != options.null_tokens.end();
}

// Candidate lattice position; narrowing only moves toward kString.
enum class Candidate : uint8_t { kBool, kInt, kFloat, kDate, kString };

Candidate Classify(const std::string& field) {
  if (ParseBool(field).has_value() &&
      !ParseInt64(field).has_value()) {  // "1"/"0" count as ints
    return Candidate::kBool;
  }
  if (ParseInt64(field).has_value()) return Candidate::kInt;
  if (ParseDouble(field).has_value()) return Candidate::kFloat;
  if (ParseDateDays(field).has_value()) return Candidate::kDate;
  return Candidate::kString;
}

Candidate Merge(Candidate a, Candidate b) {
  if (a == b) return a;
  // int + float = float; anything else incompatible collapses to string.
  auto numeric = [](Candidate c) {
    return c == Candidate::kInt || c == Candidate::kFloat;
  };
  if (numeric(a) && numeric(b)) return Candidate::kFloat;
  return Candidate::kString;
}

DataType CandidateToType(Candidate c) {
  switch (c) {
    case Candidate::kBool: return DataType::Bool();
    case Candidate::kInt: return DataType::Int64();
    case Candidate::kFloat: return DataType::Float64();
    case Candidate::kDate: return DataType::Date();
    case Candidate::kString: return DataType::String();
  }
  return DataType::String();
}

}  // namespace

InferredSchema InferSchema(const std::vector<CsvRecord>& records,
                           const CsvOptions& options, int64_t sample_rows) {
  InferredSchema schema;
  if (records.empty()) return schema;
  size_t ncols = records[0].size();

  // Header detection.
  const CsvRecord& first = records[0];
  bool header = true;
  std::set<std::string> distinct;
  for (const std::string& cell : first) {
    if (cell.empty() || ParseInt64(cell).has_value() ||
        ParseDouble(cell).has_value() || !distinct.insert(cell).second) {
      header = false;
      break;
    }
  }
  if (records.size() == 1) header = false;  // lone row is data
  schema.first_row_is_header = header;

  // Type inference over a sample of data rows.
  std::vector<Candidate> candidates(ncols, Candidate::kBool);
  std::vector<bool> seen(ncols, false);
  size_t start = header ? 1 : 0;
  size_t end = std::min(records.size(),
                        start + static_cast<size_t>(sample_rows));
  for (size_t r = start; r < end; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& field = records[r][c];
      if (IsNullToken(field, options)) continue;
      Candidate k = Classify(field);
      candidates[c] = seen[c] ? Merge(candidates[c], k) : k;
      seen[c] = true;
    }
  }

  for (size_t c = 0; c < ncols; ++c) {
    InferredColumn col;
    col.name = header ? first[c] : "F" + std::to_string(c + 1);
    col.type = seen[c] ? CandidateToType(candidates[c]) : DataType::String();
    schema.columns.push_back(std::move(col));
  }
  return schema;
}

StatusOr<std::vector<InferredColumn>> ParseSchemaFile(
    const std::string& text) {
  std::vector<InferredColumn> out;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> parts = StrSplit(line, ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return InvalidArgument("bad schema line: '" + std::string(line) + "'");
    }
    InferredColumn col;
    col.name = std::string(StripWhitespace(parts[0]));
    std::string type = ToLower(StripWhitespace(parts[1]));
    if (type == "bool") {
      col.type = DataType::Bool();
    } else if (type == "int64" || type == "int") {
      col.type = DataType::Int64();
    } else if (type == "float64" || type == "double") {
      col.type = DataType::Float64();
    } else if (type == "string") {
      col.type = DataType::String();
    } else if (type == "date") {
      col.type = DataType::Date();
    } else {
      return InvalidArgument("unknown type '" + type + "' in schema file");
    }
    if (parts.size() == 3) {
      std::string collation = ToLower(StripWhitespace(parts[2]));
      if (collation == "nocase") {
        col.type.collation = Collation::kCaseInsensitive;
      } else if (collation != "binary") {
        return InvalidArgument("unknown collation '" + collation + "'");
      }
    }
    out.push_back(std::move(col));
  }
  if (out.empty()) return InvalidArgument("schema file declares no columns");
  return out;
}

StatusOr<Value> ConvertField(const std::string& field, const DataType& type,
                             const CsvOptions& options) {
  if (IsNullToken(field, options)) return Value::Null();
  switch (type.kind) {
    case TypeKind::kBool: {
      auto b = ParseBool(field);
      if (!b) return InvalidArgument("'" + field + "' is not a bool");
      return Value(*b);
    }
    case TypeKind::kInt64: {
      auto i = ParseInt64(field);
      if (!i) return InvalidArgument("'" + field + "' is not an int");
      return Value(*i);
    }
    case TypeKind::kFloat64: {
      auto d = ParseDouble(field);
      if (!d) return InvalidArgument("'" + field + "' is not a number");
      return Value(*d);
    }
    case TypeKind::kDate: {
      auto days = ParseDateDays(field);
      if (!days) return InvalidArgument("'" + field + "' is not a date");
      return Value(*days);
    }
    case TypeKind::kString:
      return Value(field);
  }
  return Value(field);
}

}  // namespace vizq::extract
