// Shadow extracts (§4.4): "When a text or excel file is connected, Tableau
// extracts the data from the file, and stores them in temporary tables in
// the TDE. Subsequently, all queries are executed by the TDE instead of
// parsing the entire file each time. ... we need to pay a one-time cost of
// creating the temporary database. Last but not least, the system can
// persist extracts in workbooks to avoid recreating temporary tables at
// every load."

#ifndef VIZQUERY_EXTRACT_SHADOW_EXTRACT_H_
#define VIZQUERY_EXTRACT_SHADOW_EXTRACT_H_

#include <map>
#include <memory>
#include <string>

#include "src/extract/type_inference.h"
#include "src/tde/engine.h"
#include "src/tde/storage/file_format.h"

namespace vizq::extract {

struct ExtractOptions {
  CsvOptions csv;
  // Explicit schema (from a schema file); empty = infer.
  std::vector<InferredColumn> schema;
  // Sort the extract by these column names (enables §4.2.3 range
  // partitioning and streaming aggregation on the extract).
  std::vector<std::string> sort_by;
};

struct ExtractStats {
  double parse_ms = 0;
  double build_ms = 0;
  int64_t rows = 0;
  bool from_persisted = false;
};

// Builds and caches TDE tables for text content ("files" are named text
// blobs here; the file-system indirection adds nothing to the behaviour
// under study).
class ShadowExtractManager {
 public:
  explicit ShadowExtractManager(std::shared_ptr<tde::Database> db)
      : db_(std::move(db)) {}

  // Parses `content` and materializes it as table `name` in the extract
  // database. Returns the table. Re-extracting an existing name replaces
  // the table (extract refresh semantics).
  StatusOr<std::shared_ptr<tde::Table>> ExtractCsv(
      const std::string& name, std::string_view content,
      const ExtractOptions& options = {}, ExtractStats* stats = nullptr);

  // Persists the extract database to a single file / restores it, so a
  // workbook reopen skips re-extraction.
  Status PersistTo(const std::string& path) const;
  Status RestoreFrom(const std::string& path);

  tde::Database& database() { return *db_; }
  std::shared_ptr<tde::Database> shared_database() { return db_; }

 private:
  std::shared_ptr<tde::Database> db_;
};

// Builds a TDE table from CSV content without registering it anywhere
// (shared by the manager and the Jet-style baseline in bench E11).
StatusOr<std::shared_ptr<tde::Table>> BuildTableFromCsv(
    const std::string& name, std::string_view content,
    const ExtractOptions& options, ExtractStats* stats);

}  // namespace vizq::extract

#endif  // VIZQUERY_EXTRACT_SHADOW_EXTRACT_H_
