// CSV tokenizer/parser (§4.4): the in-house text parser that replaced the
// Jet/Ace drivers — cross-platform, no 4GB limit, optional schema file,
// and type/column-name inference when no schema is given.

#ifndef VIZQUERY_EXTRACT_CSV_PARSER_H_
#define VIZQUERY_EXTRACT_CSV_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace vizq::extract {

struct CsvOptions {
  char separator = ',';
  char quote = '"';
  // Values parsed as NULL.
  std::vector<std::string> null_tokens = {"", "NULL", "null", "NA"};
};

// One parsed record: raw field strings (quotes removed, escapes resolved).
using CsvRecord = std::vector<std::string>;

// Parses full CSV text (RFC-4180-style: quoted fields may contain
// separators, doubled quotes and newlines). Returns all records; ragged
// rows are an error.
StatusOr<std::vector<CsvRecord>> ParseCsv(std::string_view text,
                                          const CsvOptions& options = {});

// Incremental reader over in-memory text (the file-content abstraction the
// extractor streams from).
class CsvReader {
 public:
  CsvReader(std::string_view text, CsvOptions options = {})
      : text_(text), options_(options) {}

  // Reads the next record into *record (cleared first). Returns false at
  // end of input.
  StatusOr<bool> Next(CsvRecord* record);

  int64_t records_read() const { return records_; }

 private:
  std::string_view text_;
  CsvOptions options_;
  size_t pos_ = 0;
  int64_t records_ = 0;
};

}  // namespace vizq::extract

#endif  // VIZQUERY_EXTRACT_CSV_PARSER_H_
