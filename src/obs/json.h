// Minimal JSON reader used by the observability layer's tests and tools
// to validate its own output (the Chrome trace export, the registry's
// JSON snapshot) without an external dependency.
//
// Supports the full JSON value grammar (objects, arrays, strings with
// \uXXXX escapes, numbers, booleans, null). Not a streaming parser;
// documents are parsed into an owned tree.

#ifndef VIZQUERY_OBS_JSON_H_
#define VIZQUERY_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace vizq::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double n);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses `text` as a single JSON document (trailing whitespace allowed,
// trailing garbage is an error). kInvalidArgument with a position-bearing
// message on malformed input.
StatusOr<JsonValue> ParseJson(const std::string& text);

// Structural validation of a Chrome trace-event document as produced by
// obs::PerfRecorder::ToChromeTrace and accepted by chrome://tracing /
// Perfetto: top-level object with a "traceEvents" array; every event has
// string "name"/"ph", numeric "ts"/"pid"/"tid", duration events (ph "X")
// additionally a numeric non-negative "dur". Returns the number of events
// via `num_events` (optional). kInvalidArgument with a description of the
// first offending event otherwise.
Status ValidateChromeTrace(const std::string& json, int* num_events = nullptr);

}  // namespace vizq::obs

#endif  // VIZQUERY_OBS_JSON_H_
