// PlanProfileRegistry: per-plan-shape latency profiles.
//
// Every executed query has a *plan shape* — the operator tree the
// engine actually ran (Scan → Filter → HashJoin → Aggregate, with
// structural parameters like column/predicate counts but no runtime
// values). The registry keys a latency histogram by that shape's
// signature (PlanAnalysis::Signature()) and records the measured wall
// time of each execution, so the profile answers "how long does THIS
// kind of plan usually take?".
//
// This is the calibration substrate for deadline-aware planning
// (ROADMAP: Maliva-style adaptive materialization chooses plans by
// whether they can meet the interactive budget): a planner can consult
// the profile's p95 for a candidate shape before committing to it. For
// now it is exported read-only through vizq_stats.
//
// Recording is one histogram Observe behind a shared-mutex signature
// lookup; shapes are few (dozens, not thousands) so the map stays tiny.

#ifndef VIZQUERY_OBS_PLAN_PROFILE_H_
#define VIZQUERY_OBS_PLAN_PROFILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace vizq::obs {

class PlanProfileRegistry {
 public:
  PlanProfileRegistry() = default;
  PlanProfileRegistry(const PlanProfileRegistry&) = delete;
  PlanProfileRegistry& operator=(const PlanProfileRegistry&) = delete;

  struct Profile {
    std::string signature;
    int64_t count = 0;
    double mean_ms = 0;
    double p50_ms = 0, p95_ms = 0, p99_ms = 0;
    double min_ms = 0, max_ms = 0;
  };

  // Records one execution of the shape. No-op for an empty signature.
  void Record(const std::string& signature, double latency_ms);

  // All profiles, most-executed first. Quantiles come from one
  // consistent Quantiles() pass per histogram.
  std::vector<Profile> Snapshot() const;

  // {"plans":[{"signature":...,"count":...,"p50_ms":...,...}]}
  std::string ToJson() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  // Histogram is append-only and internally atomic; the mutex only
  // guards the map shape, so Record holds it just for the lookup.
  std::map<std::string, std::unique_ptr<Histogram>> profiles_;
};

// The process-wide registry (leaked singleton), fed by TdeEngine.
PlanProfileRegistry& GlobalPlanProfiles();

}  // namespace vizq::obs

#endif  // VIZQUERY_OBS_PLAN_PROFILE_H_
