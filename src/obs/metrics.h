// The process-wide metrics registry (the observability layer's §2-style
// "performance recording" counters): named counters, gauges and
// fixed-bucket latency histograms whose hot path is a single atomic add.
//
// Shape:
//   * instruments are created on first use and live forever (references
//     stay valid for the process lifetime — call sites may cache them);
//   * name -> instrument resolution is lock-striped: a short stripe mutex
//     guards the map probe, then the update itself is lock-free;
//   * histograms use one shared exponential bucket layout (~1.58x per
//     bucket, covering 1e-3 .. ~1e10 in whatever unit the caller uses),
//     so p50/p95/p99/max come from bucket interpolation with bounded
//     error and are monotone in the percentile by construction;
//   * exposition: Prometheus-style text and a JSON snapshot.
//
// GlobalMetrics() is the process singleton. On first use it installs
// itself as the ExecContext global sink, so every existing
// ctx.Count/Observe call site (cache.*, pool.*, tde.*, service.*) feeds
// the global registry with the same names the per-request view uses.

#ifndef VIZQUERY_OBS_METRICS_H_
#define VIZQUERY_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/exec_context.h"

namespace vizq::obs {

// Monotonically increasing counter. Hot path: one relaxed atomic add.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins instantaneous value (bytes in cache, pool occupancy).
class Gauge {
 public:
  void Set(double v) { bits_.store(Pack(v), std::memory_order_relaxed); }
  double value() const { return Unpack(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t Pack(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Unpack(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{Pack(0.0)};
};

// Fixed-bucket latency/size histogram. Observe() is wait-free: one bucket
// add plus count/sum/min/max updates, no locks. Unit-agnostic — callers
// pick the unit and put it in the name (…_us, …_ms).
class Histogram {
 public:
  // Bucket i counts values in (UpperBound(i-1), UpperBound(i)];
  // bucket 0 additionally absorbs everything <= its bound (and <= 0).
  static constexpr int kNumBuckets = 64;
  // Exponential bounds: kMinBound * kGrowth^i. A quantile landing in
  // bucket i is interpolated linearly between LowerBound(i) and
  // UpperBound(i) by its rank within the bucket — i.e. the reported value
  // approaches the bucket's *upper bound* as the rank approaches the last
  // observation in the bucket.
  static double UpperBound(int bucket);
  static double LowerBound(int bucket);  // 0 for bucket 0

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double min() const;
  double max() const;
  double mean() const;
  // Interpolated percentile, p in [0, 100]. Clamped to [min, max] so the
  // bucket interpolation never reports a value outside what was observed.
  // Equivalent to Quantiles({p})[0].
  double Percentile(double p) const;

  // Interpolates every requested quantile (each in [0, 100]) over ONE
  // consistent copy of the bucket counts, in a single walk. This is the
  // monotonicity-safe way to report several quantiles of a live
  // histogram: back-to-back Percentile() calls each re-read the atomic
  // buckets, so a concurrent Observe() landing between the p50 and the
  // p95 read could yield p95 < p50. The returned values are monotone in
  // the requested quantile (for sorted `ps`) by construction.
  std::vector<double> Quantiles(const std::vector<double>& ps) const;

  std::vector<int64_t> BucketCounts() const;

 private:
  static int BucketFor(double value);

  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double, CAS-accumulated
  std::atomic<uint64_t> min_bits_{0};  // valid when count_ > 0
  std::atomic<uint64_t> max_bits_{0};
};

// Point-in-time view of every instrument, sorted by name.
struct MetricsSnapshot {
  struct HistogramRow {
    std::string name;
    int64_t count = 0;
    double sum = 0, min = 0, max = 0;
    double p50 = 0, p95 = 0, p99 = 0;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<HistogramRow> histograms;
};

// The registry. Thread-safe; implements the ExecContext global sink so
// per-request metric strings land here too.
class MetricsRegistry : public GlobalMetricsSink {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry() override;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Resolve-or-create. References remain valid forever; call sites on hot
  // paths should resolve once and cache the pointer. A name registered as
  // one instrument kind stays that kind (a counter name never becomes a
  // histogram; the mismatched call is dropped).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // GlobalMetricsSink: string-keyed convenience forms.
  void Add(const std::string& name, int64_t delta) override;
  void Observe(const std::string& name, double value) override;
  void SetGauge(const std::string& name, double value) override;

  MetricsSnapshot TakeSnapshot() const;

  // Prometheus-style exposition: counter/gauge lines plus
  // <name>{quantile="..."} summaries for histograms.
  std::string ToPrometheusText() const;
  // {"counters":{...},"gauges":{...},"histograms":[{...}]}
  std::string ToJson() const;

  // Drops every instrument (tests / tools starting a fresh epoch).
  // Cached Counter/Gauge/Histogram references from before a Reset are
  // invalidated — only the string-keyed API is Reset-safe.
  void Reset();

 private:
  static constexpr int kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  Stripe& StripeFor(const std::string& name) {
    return stripes_[std::hash<std::string>{}(name) % kStripes];
  }
  const Stripe& StripeFor(const std::string& name) const {
    return stripes_[std::hash<std::string>{}(name) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;

  // Sink instruments returned for kind-mismatched lookups (the name is
  // already registered as another kind). Writes land here and are never
  // exported, honouring the "mismatched call is dropped" contract while
  // still returning a forever-valid reference.
  Counter dropped_counter_;
  Gauge dropped_gauge_;
  Histogram dropped_histogram_;
};

// The process-wide registry. First call installs it as the ExecContext
// global metrics sink (idempotent, thread-safe).
MetricsRegistry& GlobalMetrics();

// Prometheus-style labeled metric name: Labeled("rpc.calls", "node", "n2")
// == R"(rpc.calls{node="n2"})". The registry is name-keyed, so a label is
// just a naming convention — but one the exposition formats pass through
// unchanged, giving per-node (per-anything) series without a label type.
inline std::string Labeled(const std::string& name, const std::string& key,
                           const std::string& value) {
  return name + '{' + key + "=\"" + value + "\"}";
}

}  // namespace vizq::obs

#endif  // VIZQUERY_OBS_METRICS_H_
