#include "src/obs/perf_recorder.h"

#include <algorithm>
#include <cstdio>

namespace vizq::obs {

namespace {

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string FormatUs(double us) {
  // Chrome's ts/dur are microseconds; integers keep the export stable.
  return std::to_string(static_cast<int64_t>(us < 0 ? 0 : us));
}

double ToUs(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

int RecordedSpan::TotalSpans() const {
  int n = 1;
  for (const RecordedSpan& c : children) n += c.TotalSpans();
  return n;
}

PerfRecorder::PerfRecorder(PerfRecorderOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

namespace {

RecordedSpan CopySpan(const Span& span,
                      std::chrono::steady_clock::time_point epoch) {
  RecordedSpan out;
  out.name = span.name();
  out.start_us = ToUs(span.start_time() - epoch);
  out.duration_us = span.duration_ms() * 1000.0;
  for (const Span* child : span.children()) {
    out.children.push_back(CopySpan(*child, epoch));
  }
  return out;
}

}  // namespace

RecordedRequest CaptureRequest(const ExecContext& ctx, const Span& span,
                               const std::string& name,
                               std::chrono::steady_clock::time_point epoch) {
  RecordedRequest request;
  request.name = name;
  request.root = CopySpan(span, epoch);
  request.duration_us = request.root.duration_us;

  if (ctx.log_enabled()) {
    // Keep only breadcrumbs inside the span's window: a renderer reuses
    // one context across several batches, and each batch records only its
    // own decisions.
    auto window_start = span.start_time();
    auto window_end =
        window_start + std::chrono::nanoseconds(static_cast<int64_t>(
                           request.duration_us * 1000.0));
    for (const RequestLog::Event& ev : ctx.log()->events()) {
      if (ev.at < window_start || ev.at > window_end) continue;
      RecordedEvent out;
      out.category = ev.category;
      out.detail = ev.detail;
      out.at_us = ToUs(ev.at - epoch);
      request.events.push_back(std::move(out));
    }
    request.attachments = ctx.log()->attachments();
  }
  return request;
}

int64_t PerfRecorder::Record(const ExecContext& ctx, const Span* span,
                             const std::string& name) {
  if (span == nullptr || !ctx.tracing_enabled()) return 0;

  RecordedRequest request = CaptureRequest(ctx, *span, name, epoch_);

  std::lock_guard<std::mutex> lock(mu_);
  request.id = next_id_++;
  ++total_recorded_;
  int64_t id = request.id;
  AppendLocked(std::move(request));
  return id;
}

void PerfRecorder::AppendLocked(RecordedRequest request) {
  double threshold_us = options_.slow_threshold_ms * 1000.0;
  if (request.duration_us >= threshold_us && options_.slow_log_capacity > 0) {
    if (static_cast<int>(slow_.size()) < options_.slow_log_capacity) {
      slow_.push_back(request);
    } else {
      // Evict the fastest retained entry if this one is slower.
      auto fastest = std::min_element(
          slow_.begin(), slow_.end(),
          [](const RecordedRequest& a, const RecordedRequest& b) {
            return a.duration_us < b.duration_us;
          });
      if (fastest->duration_us < request.duration_us) *fastest = request;
    }
  }
  if (options_.ring_capacity > 0) {
    if (static_cast<int>(ring_.size()) >= options_.ring_capacity) {
      ring_.erase(ring_.begin());
    }
    ring_.push_back(std::move(request));
  }
}

std::vector<RecordedRequest> PerfRecorder::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RecordedRequest> out(ring_.rbegin(), ring_.rend());
  return out;
}

std::vector<RecordedRequest> PerfRecorder::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RecordedRequest> out = slow_;
  std::sort(out.begin(), out.end(),
            [](const RecordedRequest& a, const RecordedRequest& b) {
              return a.duration_us > b.duration_us;
            });
  return out;
}

RecordedRequest PerfRecorder::FindById(int64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RecordedRequest& r : ring_) {
    if (r.id == id) return r;
  }
  for (const RecordedRequest& r : slow_) {
    if (r.id == id) return r;
  }
  return RecordedRequest{};
}

int64_t PerfRecorder::NextRecordId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

int64_t PerfRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_recorded_;
}

namespace {

void AppendSpanEvents(const RecordedSpan& span, int64_t pid, int depth,
                      bool* first, std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->append("{\"name\":\"");
  AppendJsonEscaped(span.name, out);
  // One trace "thread" per tree depth: chrome://tracing renders nested
  // spans on separate rows without needing flow events.
  out->append("\",\"ph\":\"X\",\"ts\":");
  out->append(FormatUs(span.start_us));
  out->append(",\"dur\":");
  out->append(FormatUs(span.duration_us));
  out->append(",\"pid\":");
  out->append(std::to_string(pid));
  out->append(",\"tid\":");
  out->append(std::to_string(depth));
  out->append("}");
  for (const RecordedSpan& child : span.children) {
    AppendSpanEvents(child, pid, depth + 1, first, out);
  }
}

void AppendRequestEvents(const RecordedRequest& request, bool* first,
                         std::string* out) {
  int64_t pid = request.id;
  AppendSpanEvents(request.root, pid, 0, first, out);
  for (const RecordedEvent& ev : request.events) {
    if (!*first) out->push_back(',');
    *first = false;
    out->append("{\"name\":\"");
    AppendJsonEscaped(ev.category, out);
    out->append("\",\"ph\":\"i\",\"s\":\"p\",\"ts\":");
    out->append(FormatUs(ev.at_us));
    out->append(",\"pid\":");
    out->append(std::to_string(pid));
    out->append(",\"tid\":0,\"args\":{\"detail\":\"");
    AppendJsonEscaped(ev.detail, out);
    out->append("\"}}");
  }
  // Name the process after the request so Perfetto's track labels are
  // meaningful.
  if (!*first) out->push_back(',');
  *first = false;
  out->append(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":");
  out->append(std::to_string(pid));
  out->append(",\"tid\":0,\"args\":{\"name\":\"");
  AppendJsonEscaped(request.name, out);
  out->append("\"}}");
}

}  // namespace

std::string RequestsToChromeTrace(
    const std::vector<RecordedRequest>& requests) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const RecordedRequest& r : requests) {
    AppendRequestEvents(r, &first, &out);
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

std::string PerfRecorder::ToChromeTrace(const RecordedRequest& request) {
  return RequestsToChromeTrace({request});
}

std::string PerfRecorder::AllToChromeTrace() const {
  return RequestsToChromeTrace(Recent());
}

void PerfRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  slow_.clear();
}

PerfRecorder& GlobalRecorder() {
  static PerfRecorder* recorder = new PerfRecorder();
  return *recorder;
}

}  // namespace vizq::obs
