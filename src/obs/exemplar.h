// TailExemplarStore: always-on retention of *full traces* for the
// requests that matter most — the slowest content requests and the
// requests the shed ladder turned away.
//
// Aggregates (histograms, SLO burn rates) tell you THAT the p99
// regressed; they cannot tell you WHY. The exemplar store closes that
// gap: for every completed request the serving layer offers the
// request's duration plus its live span tree; the store keeps the top-K
// slowest (and separately up to shed_k shed requests) per rolling time
// window, copying the full PerfRecorder-style trace — span tree,
// breadcrumbs, attachments, and the request's PhaseTimeline rendering —
// only for requests that actually make the cut.
//
// Cost model: the hot path is WouldAdmit(), a handful of atomic/mutexed
// comparisons against the current window's admission floor. The
// expensive part (deep-copying the span tree) happens only for admitted
// requests — at steady state that is K requests per window, not K per
// second. This is what makes "always on" affordable.
//
// Two windows (current + previous) are retained so that a scrape right
// after a window rolls still sees the tail of the last full window.
// Exports reuse the PerfRecorder Chrome-trace writer, so exemplar dumps
// load in chrome://tracing / Perfetto unchanged.

#ifndef VIZQUERY_OBS_EXEMPLAR_H_
#define VIZQUERY_OBS_EXEMPLAR_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/exec_context.h"
#include "src/obs/perf_recorder.h"

namespace vizq::obs {

struct TailExemplarOptions {
  // Slowest content requests retained per window.
  int top_k = 8;
  // Shed requests retained per window (first-come: sheds are about
  // coverage of the decision, not about being slow).
  int shed_k = 4;
  // Window length; current + previous windows are queryable.
  int window_seconds = 60;
  // Requests faster than this never compete for a slot (0 = everything
  // competes; bench/tests use 0, servers can set a floor).
  double min_duration_ms = 0;
};

// One retained request: the full recorded trace plus the serving-layer
// verdict that made it interesting.
struct Exemplar {
  RecordedRequest request;   // span tree + breadcrumbs + attachments
  double duration_ms = 0;
  std::string outcome;       // e.g. "content", "placeholder", "rejected"
  int rung = -1;             // shed-ladder rung, -1 when not degraded
  bool shed = false;         // retained via the shed lane
  std::string timeline_text; // PhaseTimeline::ToString() at completion
};

class TailExemplarStore {
 public:
  explicit TailExemplarStore(TailExemplarOptions options = {});

  TailExemplarStore(const TailExemplarStore&) = delete;
  TailExemplarStore& operator=(const TailExemplarStore&) = delete;

  // Cheap pre-check: would a content request of this duration currently
  // make the slow lane? Callers use it to skip building the offer on the
  // fast path. (A true result is advisory — a racing offer may still
  // displace this one.)
  bool WouldAdmit(double duration_ms) const;

  // Offers one completed request. Copies the span tree only if the
  // request wins a slot. `span` may be null (shed requests often have no
  // trace); a synthetic single-span tree is recorded instead so exports
  // stay loadable. `outcome` follows ServeOutcomeName()-style labels.
  void Offer(const ExecContext& ctx, const Span* span,
             const std::string& name, double duration_ms,
             const std::string& outcome, bool shed);

  // Everything currently retained (current + previous window), slowest
  // first; shed exemplars follow the slow ones, newest first.
  std::vector<Exemplar> Snapshot() const;
  // The single slowest retained request (duration 0 when empty).
  Exemplar Slowest() const;

  // Chrome trace-event JSON of every retained exemplar.
  std::string ToChromeTrace() const;

  void Clear();

  int64_t total_offered() const;
  int64_t total_retained() const;

  const TailExemplarOptions& options() const { return options_; }

 private:
  struct Window {
    int64_t index = -1;                // floor(now / window_seconds)
    std::deque<Exemplar> slow;         // sorted slowest-first, <= top_k
    std::deque<Exemplar> shed;         // newest-first, <= shed_k
  };

  int64_t WindowIndexLocked() const;
  void RollLocked();

  const TailExemplarOptions options_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  Window current_;
  Window previous_;
  int64_t total_offered_ = 0;
  int64_t total_retained_ = 0;
};

// The process-wide store (leaked singleton), fed by QueryService and the
// frontend's shed path.
TailExemplarStore& GlobalExemplars();

}  // namespace vizq::obs

#endif  // VIZQUERY_OBS_EXEMPLAR_H_
