// SloMonitor: threshold + multi-window burn-rate monitoring over
// good/total request counts, driven by the interactive 500 ms SLO.
//
// IDEBench (PAPERS.md) argues interactive systems must be judged by
// time-threshold violations, not means; this monitor makes that
// operational. Each completed *content* request is recorded as good
// (answered within threshold_ms) or bad (late, errored, abandoned);
// typed sheds are counted separately and excluded from the SLO total —
// a shed is the server *honoring* its protection contract, and counting
// it as an SLO miss would make the load-shed ladder look worse than the
// congestion collapse it prevents.
//
// Burn rate is the SRE-standard ratio
//
//   burn = bad_fraction / (1 - target)
//
// i.e. how many times faster than "exactly on objective" the error
// budget is being consumed (1.0 = spending the budget exactly at the
// allowed rate). The monitor keeps a ring of per-second good/total
// buckets and evaluates the burn over a short and a long trailing
// window; it fires only when BOTH exceed fire_burn_rate (the classic
// multi-window rule: the short window gives fast detection, the long
// window keeps one latency blip from paging).

#ifndef VIZQUERY_OBS_SLO_H_
#define VIZQUERY_OBS_SLO_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vizq::obs {

struct SloMonitorOptions {
  // Good = a content response within this bound (the paper's interactive
  // budget; bench_traffic's kSloMs).
  double threshold_ms = 500.0;
  // The objective: this fraction of content requests should be good.
  double target = 0.9;
  // Trailing windows (seconds) for the multi-window burn evaluation.
  // Scaled for bench runs (seconds, not the SRE hours) — what matters is
  // short << long.
  int short_window_s = 2;
  int long_window_s = 10;
  // Fire when burn >= this in BOTH windows.
  double fire_burn_rate = 2.0;
  // Don't fire on fewer than this many requests in the long window
  // (a 1-of-2 blip is noise, not an incident).
  int64_t min_requests_to_fire = 20;
};

struct SloSnapshot {
  double threshold_ms = 0;
  double target = 0;
  int64_t total = 0;  // content requests recorded (good + bad), lifetime
  int64_t good = 0;
  int64_t sheds = 0;  // excluded from total (see header comment)
  double short_bad_fraction = 0;
  double long_bad_fraction = 0;
  double short_burn = 0;
  double long_burn = 0;
  int64_t long_window_requests = 0;
  bool firing = false;

  std::string ToString() const;
};

// Thread-safe; one mutex-guarded update per completed request.
class SloMonitor {
 public:
  explicit SloMonitor(SloMonitorOptions options = {});

  // Records one completed content attempt. `latency_ms` is compared
  // against threshold_ms; errors/abandons should be reported with a
  // latency past the threshold (or use RecordBad()).
  void Record(double latency_ms);
  void RecordBad();            // known-bad regardless of latency
  void RecordShed();           // typed shed: tracked, outside the SLO

  SloSnapshot Snapshot() const;
  // Fresh epoch: zeroes counts and the window ring (bench load points).
  void Reset();

  const SloMonitorOptions& options() const { return options_; }

 private:
  struct Bucket {
    int64_t second = -1;  // which absolute second this bucket holds
    int64_t total = 0;
    int64_t good = 0;
  };

  int64_t NowSecondLocked() const;
  void RecordLocked(bool good);
  // Sums the trailing `window_s` seconds ending now.
  void WindowSumsLocked(int window_s, int64_t* total, int64_t* good) const;

  const SloMonitorOptions options_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<Bucket> ring_;  // indexed by second % ring_.size()
  int64_t total_ = 0;
  int64_t good_ = 0;
  int64_t sheds_ = 0;
};

}  // namespace vizq::obs

#endif  // VIZQUERY_OBS_SLO_H_
