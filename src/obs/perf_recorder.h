// PerfRecorder: the process-wide flight recorder for completed requests.
//
// When a request (one dashboard batch, one server query) finishes, the
// owning layer calls Record(ctx, span, meta). The recorder copies the
// span subtree into an owned RecordedRequest — wall times, the request's
// breadcrumb trail (cache decisions, pool events) and named attachments
// (the annotated EXPLAIN ANALYZE plan) — and files it in two places:
//
//   * a bounded ring buffer of the most recent N requests;
//   * a bounded slow-query log retaining requests whose total duration
//     exceeded a configurable threshold (evicting the *fastest* retained
//     entry when full, so the log converges on the worst offenders).
//
// Entries can be exported individually or in bulk as Chrome trace-event
// JSON ("trace event format"), loadable in chrome://tracing / Perfetto.
// Spans become complete ("ph":"X") events; breadcrumbs become instant
// ("ph":"i") events. Timestamps are microseconds relative to the
// recorder's epoch (steady clock), so exports are stable run-to-run
// modulo the actual durations.

#ifndef VIZQUERY_OBS_PERF_RECORDER_H_
#define VIZQUERY_OBS_PERF_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/exec_context.h"

namespace vizq::obs {

// One span, flattened out of the live Trace (which the request owns and
// may destroy after Record returns).
struct RecordedSpan {
  std::string name;
  double start_us = 0;  // relative to the recorder epoch
  double duration_us = 0;
  std::vector<RecordedSpan> children;

  int TotalSpans() const;
};

// One breadcrumb from the request's RequestLog.
struct RecordedEvent {
  std::string category;
  std::string detail;
  double at_us = 0;  // relative to the recorder epoch
};

struct RecordedRequest {
  int64_t id = 0;          // monotonically increasing record id
  std::string name;        // e.g. "batch:flights_star" or "query:<view>"
  double duration_us = 0;  // the recorded root span's wall time
  RecordedSpan root;
  std::vector<RecordedEvent> events;
  std::map<std::string, std::string> attachments;
};

// Flattens `span`'s subtree (plus the context's breadcrumbs inside the
// span's [start, end] window and all attachments) into an owned
// RecordedRequest with timestamps relative to `epoch`. The shared capture
// path of PerfRecorder::Record and TailExemplarStore::Offer; `id` is left
// 0 for the caller to assign.
RecordedRequest CaptureRequest(const ExecContext& ctx, const Span& span,
                               const std::string& name,
                               std::chrono::steady_clock::time_point epoch);

// Chrome trace-event JSON for a set of captured requests (each renders as
// one "pid" so Perfetto groups them). The building block behind
// PerfRecorder::AllToChromeTrace and TailExemplarStore::ToChromeTrace.
std::string RequestsToChromeTrace(const std::vector<RecordedRequest>& requests);

struct PerfRecorderOptions {
  int ring_capacity = 256;
  int slow_log_capacity = 32;
  double slow_threshold_ms = 50.0;
};

class PerfRecorder {
 public:
  explicit PerfRecorder(PerfRecorderOptions options = {});

  PerfRecorder(const PerfRecorder&) = delete;
  PerfRecorder& operator=(const PerfRecorder&) = delete;

  // Captures `span`'s subtree (plus the context's breadcrumbs that fall
  // inside the span's [start, end] window, and all attachments) under
  // `name`. The span should be ended; an open span is captured with its
  // elapsed-so-far duration. No-op (returns 0) when the context has
  // tracing disabled or `span` is null. Returns the record id.
  int64_t Record(const ExecContext& ctx, const Span* span,
                 const std::string& name);

  // Most-recent-first snapshot of the ring buffer.
  std::vector<RecordedRequest> Recent() const;
  // Slow log, slowest first.
  std::vector<RecordedRequest> Slowest() const;
  // Lookup by record id in either store; nullopt-like empty request
  // (id == 0) when evicted or unknown.
  RecordedRequest FindById(int64_t id) const;

  // Id that the next Record() call will return. FindById(x) for
  // x >= NextRecordId() is always a miss; a fuzzer lane uses the pair to
  // assert "this execution left a recorder entry".
  int64_t NextRecordId() const;

  int64_t total_recorded() const;

  // Chrome trace-event JSON for one request / for every ring entry.
  // Each request renders as one "pid" so Perfetto groups them.
  static std::string ToChromeTrace(const RecordedRequest& request);
  std::string AllToChromeTrace() const;

  // Drops all retained entries (the id counter keeps advancing).
  void Clear();

  const PerfRecorderOptions& options() const { return options_; }

 private:
  void AppendLocked(RecordedRequest request);

  const PerfRecorderOptions options_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  int64_t next_id_ = 1;
  int64_t total_recorded_ = 0;
  std::vector<RecordedRequest> ring_;  // oldest first
  std::vector<RecordedRequest> slow_;  // unordered; sorted on read
};

// The process-wide recorder (leaked singleton), used by QueryService and
// the data server unless a caller supplies their own.
PerfRecorder& GlobalRecorder();

}  // namespace vizq::obs

#endif  // VIZQUERY_OBS_PERF_RECORDER_H_
