#include "src/obs/slo.h"

#include <algorithm>
#include <sstream>

namespace vizq::obs {

std::string SloSnapshot::ToString() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "slo<=" << threshold_ms << "ms target=" << target
     << " total=" << total << " good=" << good << " sheds=" << sheds
     << " burn[short]=" << short_burn << " burn[long]=" << long_burn
     << (firing ? " FIRING" : " ok");
  return os.str();
}

SloMonitor::SloMonitor(SloMonitorOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  // The ring must out-span the long window plus the current second.
  ring_.resize(static_cast<size_t>(std::max(options_.long_window_s, 1) + 2));
}

int64_t SloMonitor::NowSecondLocked() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void SloMonitor::RecordLocked(bool good) {
  int64_t sec = NowSecondLocked();
  Bucket& b = ring_[static_cast<size_t>(sec) % ring_.size()];
  if (b.second != sec) {
    b.second = sec;
    b.total = 0;
    b.good = 0;
  }
  ++b.total;
  if (good) ++b.good;
  ++total_;
  if (good) ++good_;
}

void SloMonitor::Record(double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLocked(latency_ms <= options_.threshold_ms);
}

void SloMonitor::RecordBad() {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLocked(false);
}

void SloMonitor::RecordShed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++sheds_;
}

void SloMonitor::WindowSumsLocked(int window_s, int64_t* total,
                                  int64_t* good) const {
  *total = 0;
  *good = 0;
  int64_t now_sec = NowSecondLocked();
  for (int back = 0; back < window_s; ++back) {
    int64_t sec = now_sec - back;
    if (sec < 0) break;
    const Bucket& b = ring_[static_cast<size_t>(sec) % ring_.size()];
    if (b.second != sec) continue;  // stale slot from an older second
    *total += b.total;
    *good += b.good;
  }
}

SloSnapshot SloMonitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  SloSnapshot out;
  out.threshold_ms = options_.threshold_ms;
  out.target = options_.target;
  out.total = total_;
  out.good = good_;
  out.sheds = sheds_;

  const double budget = std::max(1e-9, 1.0 - options_.target);
  int64_t st = 0, sg = 0, lt = 0, lg = 0;
  WindowSumsLocked(options_.short_window_s, &st, &sg);
  WindowSumsLocked(options_.long_window_s, &lt, &lg);
  out.short_bad_fraction =
      st == 0 ? 0.0 : static_cast<double>(st - sg) / static_cast<double>(st);
  out.long_bad_fraction =
      lt == 0 ? 0.0 : static_cast<double>(lt - lg) / static_cast<double>(lt);
  out.short_burn = out.short_bad_fraction / budget;
  out.long_burn = out.long_bad_fraction / budget;
  out.long_window_requests = lt;
  out.firing = lt >= options_.min_requests_to_fire &&
               out.short_burn >= options_.fire_burn_rate &&
               out.long_burn >= options_.fire_burn_rate;
  return out;
}

void SloMonitor::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Bucket& b : ring_) b = Bucket{};
  total_ = 0;
  good_ = 0;
  sheds_ = 0;
}

}  // namespace vizq::obs
