#include "src/obs/plan_profile.h"

#include <algorithm>
#include <cstdio>

namespace vizq::obs {

namespace {

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

void PlanProfileRegistry::Record(const std::string& signature,
                                 double latency_ms) {
  if (signature.empty()) return;
  Histogram* h = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Histogram>& slot = profiles_[signature];
    if (slot == nullptr) slot = std::make_unique<Histogram>();
    h = slot.get();
  }
  h->Observe(latency_ms);
}

std::vector<PlanProfileRegistry::Profile> PlanProfileRegistry::Snapshot()
    const {
  std::vector<Profile> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(profiles_.size());
    for (const auto& [sig, hist] : profiles_) {
      Profile p;
      p.signature = sig;
      p.count = hist->count();
      p.mean_ms = hist->mean();
      std::vector<double> qs = hist->Quantiles({50, 95, 99});
      p.p50_ms = qs[0];
      p.p95_ms = qs[1];
      p.p99_ms = qs[2];
      p.min_ms = p.count > 0 ? hist->min() : 0;
      p.max_ms = p.count > 0 ? hist->max() : 0;
      out.push_back(std::move(p));
    }
  }
  std::sort(out.begin(), out.end(), [](const Profile& a, const Profile& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.signature < b.signature;
  });
  return out;
}

std::string PlanProfileRegistry::ToJson() const {
  std::vector<Profile> profiles = Snapshot();
  std::string out = "{\"plans\":[";
  bool first = true;
  for (const Profile& p : profiles) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"signature\":\"");
    AppendJsonEscaped(p.signature, &out);
    out.append("\",\"count\":");
    out.append(std::to_string(p.count));
    out.append(",\"mean_ms\":");
    out.append(FormatMs(p.mean_ms));
    out.append(",\"p50_ms\":");
    out.append(FormatMs(p.p50_ms));
    out.append(",\"p95_ms\":");
    out.append(FormatMs(p.p95_ms));
    out.append(",\"p99_ms\":");
    out.append(FormatMs(p.p99_ms));
    out.append(",\"min_ms\":");
    out.append(FormatMs(p.min_ms));
    out.append(",\"max_ms\":");
    out.append(FormatMs(p.max_ms));
    out.append("}");
  }
  out.append("]}");
  return out;
}

void PlanProfileRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
}

PlanProfileRegistry& GlobalPlanProfiles() {
  static PlanProfileRegistry* registry = new PlanProfileRegistry();
  return *registry;
}

}  // namespace vizq::obs
