#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

namespace vizq::obs {

namespace {

// Epoch for the per-thread instrument memo below. Bumped whenever any
// registry's instrument references may have been invalidated (Reset or
// registry destruction), which flushes every thread's memo lazily.
std::atomic<uint64_t> g_memo_epoch{1};

// Per-thread name -> instrument memo for the string-keyed hot path
// (ExecContext forwards every per-request Count/Observe through it).
// After the first use of a name on a thread, a forwarded update is one
// string hash + local map find + atomic add — no stripe lock.
struct TlsMemo {
  uint64_t epoch = 0;
  const void* registry = nullptr;
  std::unordered_map<std::string, Counter*> counters;
  std::unordered_map<std::string, Gauge*> gauges;
  std::unordered_map<std::string, Histogram*> histograms;

  void FlushIfStale(const void* reg) {
    uint64_t now = g_memo_epoch.load(std::memory_order_acquire);
    if (epoch != now || registry != reg) {
      counters.clear();
      gauges.clear();
      histograms.clear();
      epoch = now;
      registry = reg;
    }
  }
};

TlsMemo& Memo() {
  thread_local TlsMemo memo;
  return memo;
}

constexpr double kMinBound = 1e-3;
// 64 buckets spanning 1e-3 .. 1e-3 * kGrowth^63 ≈ 3e9: ~1.58x per bucket
// (5 buckets per decade), so interpolated percentiles are within ~±25%
// of the true value — plenty for latency triage.
const double kGrowth = std::pow(10.0, 0.2);

uint64_t PackDouble(double v) {
  uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double UnpackDouble(uint64_t bits) {
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      default: out->push_back(c);
    }
  }
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted names
// (cache.intelligent.exact_hit) map dots and dashes to underscores. An
// obs::Labeled() suffix ({node="n2"}) is NOT part of the name: it is
// split off and re-emitted as a real Prometheus label block, so labeled
// series scrape as first-class dimensions (`name{labels...}`), not as
// per-value metric names.
struct PrometheusParts {
  std::string name;    // sanitized, "vizq_"-prefixed
  std::string labels;  // inner label list, "" when unlabeled
};

PrometheusParts SplitPrometheusName(const std::string& name) {
  PrometheusParts parts;
  size_t brace = name.find('{');
  size_t base_len = brace == std::string::npos ? name.size() : brace;
  parts.name = "vizq_";
  for (size_t i = 0; i < base_len; ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    parts.name.push_back(ok ? c : '_');
  }
  if (brace != std::string::npos) {
    size_t end = name.rfind('}');
    if (end != std::string::npos && end > brace) {
      parts.labels = name.substr(brace + 1, end - brace - 1);
    }
  }
  return parts;
}

}  // namespace

// --- Histogram ---

double Histogram::UpperBound(int bucket) {
  return kMinBound * std::pow(kGrowth, bucket);
}

double Histogram::LowerBound(int bucket) {
  return bucket <= 0 ? 0.0 : UpperBound(bucket - 1);
}

int Histogram::BucketFor(double value) {
  if (!(value > kMinBound)) return 0;  // includes <= 0 and NaN
  int b = static_cast<int>(std::ceil(std::log(value / kMinBound) /
                                     std::log(kGrowth)));
  return std::clamp(b, 0, kNumBuckets - 1);
}

void Histogram::Observe(double value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  int64_t prev_count = count_.fetch_add(1, std::memory_order_acq_rel);
  // sum: CAS-accumulate a double.
  uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      expected, PackDouble(UnpackDouble(expected) + value),
      std::memory_order_relaxed)) {
  }
  // min/max: first observer seeds both; later ones CAS toward extremes.
  if (prev_count == 0) {
    min_bits_.store(PackDouble(value), std::memory_order_relaxed);
    max_bits_.store(PackDouble(value), std::memory_order_relaxed);
    return;
  }
  expected = min_bits_.load(std::memory_order_relaxed);
  while (value < UnpackDouble(expected) &&
         !min_bits_.compare_exchange_weak(expected, PackDouble(value),
                                          std::memory_order_relaxed)) {
  }
  expected = max_bits_.load(std::memory_order_relaxed);
  while (value > UnpackDouble(expected) &&
         !max_bits_.compare_exchange_weak(expected, PackDouble(value),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return UnpackDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  return count() == 0
             ? 0
             : UnpackDouble(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return count() == 0
             ? 0
             : UnpackDouble(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0 : sum() / static_cast<double>(n);
}

double Histogram::Percentile(double p) const { return Quantiles({p})[0]; }

std::vector<double> Histogram::Quantiles(const std::vector<double>& ps) const {
  // One consistent copy of the buckets; every quantile interpolates over
  // the same counts, so the results are monotone for sorted `ps` even
  // while writers race. The total is the copy's own sum (not count_):
  // Observe() bumps the bucket before the count, so the two can disagree
  // transiently.
  std::array<int64_t, kNumBuckets> counts;
  int64_t n = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    n += counts[b];
  }
  std::vector<double> out(ps.size(), 0.0);
  if (n == 0) return out;
  // Clamp bounds read once for the same reason.
  const double lo_clamp = min();
  const double hi_clamp = std::max(lo_clamp, max());

  // Walk the buckets once, answering quantiles in ascending-rank order.
  std::vector<size_t> order(ps.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&ps](size_t a, size_t b) { return ps[a] < ps[b]; });
  auto rank_of = [n](double p) {
    p = std::clamp(p, 0.0, 100.0);
    return std::max<int64_t>(
        1,
        static_cast<int64_t>(std::ceil(p / 100.0 * static_cast<double>(n))));
  };
  size_t qi = 0;
  int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets && qi < order.size(); ++b) {
    int64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    while (qi < order.size() &&
           cumulative + in_bucket >= rank_of(ps[order[qi]])) {
      double lo = LowerBound(b);
      double hi = UpperBound(b);
      double frac =
          static_cast<double>(rank_of(ps[order[qi]]) - cumulative) /
          static_cast<double>(in_bucket);
      out[order[qi]] = std::clamp(lo + (hi - lo) * frac, lo_clamp, hi_clamp);
      ++qi;
    }
    cumulative += in_bucket;
  }
  for (; qi < order.size(); ++qi) out[order[qi]] = hi_clamp;
  return out;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(kNumBuckets);
  for (int b = 0; b < kNumBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

// --- MetricsRegistry ---

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Stripe& s = StripeFor(name);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.counters.find(name);
  if (it != s.counters.end()) return *it->second;
  // Instrument kinds are sticky: a name already registered as another
  // kind never becomes a counter (duplicate exposition names would make
  // the Prometheus output invalid); the write lands in a dropped sink.
  if (s.histograms.count(name) != 0 || s.gauges.count(name) != 0) {
    return dropped_counter_;
  }
  return *(s.counters[name] = std::make_unique<Counter>());
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Stripe& s = StripeFor(name);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.gauges.find(name);
  if (it != s.gauges.end()) return *it->second;
  if (s.counters.count(name) != 0 || s.histograms.count(name) != 0) {
    return dropped_gauge_;
  }
  return *(s.gauges[name] = std::make_unique<Gauge>());
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  Stripe& s = StripeFor(name);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.histograms.find(name);
  if (it != s.histograms.end()) return *it->second;
  if (s.counters.count(name) != 0 || s.gauges.count(name) != 0) {
    return dropped_histogram_;
  }
  return *(s.histograms[name] = std::make_unique<Histogram>());
}

void MetricsRegistry::Add(const std::string& name, int64_t delta) {
  TlsMemo& memo = Memo();
  memo.FlushIfStale(this);
  auto it = memo.counters.find(name);
  if (it == memo.counters.end()) {
    it = memo.counters.emplace(name, &GetCounter(name)).first;
  }
  it->second->Add(delta);
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  TlsMemo& memo = Memo();
  memo.FlushIfStale(this);
  auto it = memo.histograms.find(name);
  if (it == memo.histograms.end()) {
    it = memo.histograms.emplace(name, &GetHistogram(name)).first;
  }
  it->second->Observe(value);
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  TlsMemo& memo = Memo();
  memo.FlushIfStale(this);
  auto it = memo.gauges.find(name);
  if (it == memo.gauges.end()) {
    it = memo.gauges.emplace(name, &GetGauge(name)).first;
  }
  it->second->Set(value);
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  MetricsSnapshot snap;
  std::map<std::string, const Histogram*> hists;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [name, c] : s.counters) {
      snap.counters[name] = c->value();
    }
    for (const auto& [name, g] : s.gauges) {
      snap.gauges[name] = g->value();
    }
    for (const auto& [name, h] : s.histograms) hists[name] = h.get();
  }
  for (const auto& [name, h] : hists) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.min = h->min();
    row.max = h->max();
    // Single-pass quantiles over one bucket copy: three Percentile()
    // calls could interleave with writers and report p95 < p50.
    std::vector<double> qs = h->Quantiles({50, 95, 99});
    row.p50 = qs[0];
    row.p95 = qs[1];
    row.p99 = qs[2];
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

std::string MetricsRegistry::ToPrometheusText() const {
  MetricsSnapshot snap = TakeSnapshot();
  std::string out;
  auto with_labels = [](const PrometheusParts& p) {
    return p.labels.empty() ? p.name : p.name + '{' + p.labels + '}';
  };
  for (const auto& [name, v] : snap.counters) {
    PrometheusParts p = SplitPrometheusName(name);
    out += "# TYPE " + p.name + " counter\n";
    out += with_labels(p) + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    PrometheusParts p = SplitPrometheusName(name);
    out += "# TYPE " + p.name + " gauge\n";
    out += with_labels(p) + " " + FormatDouble(v) + "\n";
  }
  for (const MetricsSnapshot::HistogramRow& h : snap.histograms) {
    PrometheusParts p = SplitPrometheusName(h.name);
    // Own labels (if any) merge ahead of the quantile label.
    std::string prefix = p.labels.empty() ? "" : p.labels + ",";
    std::string suffix = p.labels.empty() ? "" : "{" + p.labels + "}";
    out += "# TYPE " + p.name + " summary\n";
    out += p.name + "{" + prefix + "quantile=\"0.5\"} " +
           FormatDouble(h.p50) + "\n";
    out += p.name + "{" + prefix + "quantile=\"0.95\"} " +
           FormatDouble(h.p95) + "\n";
    out += p.name + "{" + prefix + "quantile=\"0.99\"} " +
           FormatDouble(h.p99) + "\n";
    out += p.name + "_min" + suffix + " " + FormatDouble(h.min) + "\n";
    out += p.name + "_max" + suffix + " " + FormatDouble(h.max) + "\n";
    out += p.name + "_sum" + suffix + " " + FormatDouble(h.sum) + "\n";
    out += p.name + "_count" + suffix + " " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  MetricsSnapshot snap = TakeSnapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(name, &out);
    out += "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(name, &out);
    out += "\":" + FormatDouble(v);
  }
  out += "},\"histograms\":[";
  first = true;
  for (const MetricsSnapshot::HistogramRow& h : snap.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(h.name, &out);
    out += "\",\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + FormatDouble(h.sum);
    out += ",\"min\":" + FormatDouble(h.min);
    out += ",\"max\":" + FormatDouble(h.max);
    out += ",\"p50\":" + FormatDouble(h.p50);
    out += ",\"p95\":" + FormatDouble(h.p95);
    out += ",\"p99\":" + FormatDouble(h.p99);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

void MetricsRegistry::Reset() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.counters.clear();
    s.gauges.clear();
    s.histograms.clear();
  }
  // Invalidate every thread's memo (they re-resolve on next use).
  g_memo_epoch.fetch_add(1, std::memory_order_acq_rel);
}

MetricsRegistry::~MetricsRegistry() {
  // A destroyed registry's instruments must never be reached through a
  // thread's stale memo (e.g. a test-local registry at a reused address).
  g_memo_epoch.fetch_add(1, std::memory_order_acq_rel);
}

MetricsRegistry& GlobalMetrics() {
  // Leaked singleton: instruments must outlive every thread.
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    SetGlobalMetricsSink(r);
    return r;
  }();
  return *registry;
}

}  // namespace vizq::obs
