#include "src/obs/json.h"

#include <cctype>
#include <cstdlib>

namespace vizq::obs {

// --- JsonValue ---

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

// --- parser ---

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    StatusOr<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgument("json: " + what + " at offset " +
                           std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        StatusOr<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::MakeString(std::move(*s));
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return JsonValue::MakeBool(true);
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return JsonValue::MakeBool(false);
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return JsonValue::MakeNull();
        }
        return Error("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipWhitespace();
      StatusOr<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      members[std::move(*key)] = std::move(*value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    while (true) {
      SkipWhitespace();
      StatusOr<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      items.push_back(std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("invalid \\u escape");
            }
            // UTF-8 encode the code point (surrogate pairs are passed
            // through as their individual halves — our own output never
            // emits them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("invalid escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue::MakeNumber(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

// --- Chrome trace validation ---

namespace {

Status BadEvent(size_t index, const std::string& why) {
  return InvalidArgument("chrome trace: event " + std::to_string(index) +
                         " " + why);
}

}  // namespace

Status ValidateChromeTrace(const std::string& json, int* num_events) {
  StatusOr<JsonValue> doc = ParseJson(json);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return InvalidArgument("chrome trace: top level must be an object");
  }
  const JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return InvalidArgument("chrome trace: missing \"traceEvents\" array");
  }
  for (size_t i = 0; i < events->array().size(); ++i) {
    const JsonValue& ev = events->array()[i];
    if (!ev.is_object()) return BadEvent(i, "is not an object");
    const JsonValue* name = ev.Find("name");
    if (name == nullptr || !name->is_string() || name->string().empty()) {
      return BadEvent(i, "lacks a non-empty string \"name\"");
    }
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string().size() != 1) {
      return BadEvent(i, "lacks a one-character string \"ph\"");
    }
    for (const char* field : {"ts", "pid", "tid"}) {
      const JsonValue* v = ev.Find(field);
      if (v == nullptr || !v->is_number()) {
        return BadEvent(i, std::string("lacks a numeric \"") + field + "\"");
      }
    }
    if (ev.Find("ts")->number() < 0) return BadEvent(i, "has negative ts");
    if (ph->string() == "X") {
      const JsonValue* dur = ev.Find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number() < 0) {
        return BadEvent(i, "complete event lacks non-negative \"dur\"");
      }
    }
  }
  if (num_events != nullptr) {
    *num_events = static_cast<int>(events->array().size());
  }
  return OkStatus();
}

}  // namespace vizq::obs
