#include "src/obs/exemplar.h"

#include <algorithm>

#include "src/common/phase_timeline.h"

namespace vizq::obs {

TailExemplarStore::TailExemplarStore(TailExemplarOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

int64_t TailExemplarStore::WindowIndexLocked() const {
  int64_t sec = std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::steady_clock::now() - epoch_)
                    .count();
  return sec / std::max(options_.window_seconds, 1);
}

void TailExemplarStore::RollLocked() {
  int64_t idx = WindowIndexLocked();
  if (current_.index == idx) return;
  if (current_.index == idx - 1) {
    previous_ = std::move(current_);
  } else {
    // More than one whole window elapsed with no offers: both stale.
    previous_ = Window{};
  }
  current_ = Window{};
  current_.index = idx;
}

bool TailExemplarStore::WouldAdmit(double duration_ms) const {
  if (duration_ms < options_.min_duration_ms) return false;
  if (options_.top_k <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  // A rolled-over window admits everything; don't mutate state here —
  // Offer() does the actual roll.
  if (current_.index != WindowIndexLocked()) return true;
  if (static_cast<int>(current_.slow.size()) < options_.top_k) return true;
  return duration_ms > current_.slow.back().duration_ms;
}

void TailExemplarStore::Offer(const ExecContext& ctx, const Span* span,
                              const std::string& name, double duration_ms,
                              const std::string& outcome, bool shed) {
  // Capture outside the lock: the copy is the expensive part, and the
  // caller only reaches here after WouldAdmit (or for a shed, which is
  // rare by construction once the ladder works).
  Exemplar ex;
  ex.duration_ms = duration_ms;
  ex.outcome = outcome;
  ex.shed = shed;
  if (const PhaseTimeline* tl = ctx.timeline()) {
    ex.rung = tl->rung();
    ex.timeline_text = tl->ToString();
  }
  if (span != nullptr && ctx.tracing_enabled()) {
    ex.request = CaptureRequest(ctx, *span, name, epoch_);
  } else {
    // Shed / tracing-off requests still export: synthesize a one-span
    // tree with the observed duration so the Chrome trace stays valid.
    ex.request.name = name;
    ex.request.duration_us = duration_ms * 1000.0;
    ex.request.root.name = name;
    ex.request.root.duration_us = ex.request.duration_us;
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++total_offered_;
  RollLocked();

  if (shed) {
    if (options_.shed_k <= 0) return;
    ex.request.id = ++total_retained_;
    current_.shed.push_front(std::move(ex));
    if (static_cast<int>(current_.shed.size()) > options_.shed_k) {
      current_.shed.pop_back();
    }
    return;
  }

  if (duration_ms < options_.min_duration_ms || options_.top_k <= 0) return;
  bool full = static_cast<int>(current_.slow.size()) >= options_.top_k;
  if (full && duration_ms <= current_.slow.back().duration_ms) return;
  ex.request.id = ++total_retained_;
  // Insert keeping slowest-first order.
  auto pos = std::upper_bound(
      current_.slow.begin(), current_.slow.end(), duration_ms,
      [](double d, const Exemplar& e) { return d > e.duration_ms; });
  current_.slow.insert(pos, std::move(ex));
  if (static_cast<int>(current_.slow.size()) > options_.top_k) {
    current_.slow.pop_back();
  }
}

std::vector<Exemplar> TailExemplarStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Exemplar> out;
  out.reserve(current_.slow.size() + previous_.slow.size() +
              current_.shed.size() + previous_.shed.size());
  for (const Exemplar& e : current_.slow) out.push_back(e);
  for (const Exemplar& e : previous_.slow) out.push_back(e);
  std::sort(out.begin(), out.end(), [](const Exemplar& a, const Exemplar& b) {
    return a.duration_ms > b.duration_ms;
  });
  for (const Exemplar& e : current_.shed) out.push_back(e);
  for (const Exemplar& e : previous_.shed) out.push_back(e);
  return out;
}

Exemplar TailExemplarStore::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Exemplar* best = nullptr;
  for (const Window* w : {&current_, &previous_}) {
    if (!w->slow.empty() &&
        (best == nullptr || w->slow.front().duration_ms > best->duration_ms)) {
      best = &w->slow.front();
    }
  }
  return best == nullptr ? Exemplar{} : *best;
}

std::string TailExemplarStore::ToChromeTrace() const {
  std::vector<Exemplar> all = Snapshot();
  std::vector<RecordedRequest> requests;
  requests.reserve(all.size());
  for (Exemplar& e : all) requests.push_back(std::move(e.request));
  return RequestsToChromeTrace(requests);
}

void TailExemplarStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = Window{};
  previous_ = Window{};
  total_offered_ = 0;
  total_retained_ = 0;
}

int64_t TailExemplarStore::total_offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_offered_;
}

int64_t TailExemplarStore::total_retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_retained_;
}

TailExemplarStore& GlobalExemplars() {
  static TailExemplarStore* store = new TailExemplarStore();
  return *store;
}

}  // namespace vizq::obs
