#include "src/rpc/envelope.h"

#include "src/common/binary_io.h"

namespace vizq::rpc {

namespace {
constexpr uint32_t kRequestMagic = 0x56515251;   // 'VQRQ'
constexpr uint32_t kResponseMagic = 0x56515253;  // 'VQRS'
}  // namespace

std::string RpcRequest::Serialize() const {
  BinaryWriter w;
  w.U32(kRequestMagic);
  w.U64(request_id);
  w.Str(method);
  w.Str(target);
  w.F64(budget_ms);
  w.Str(payload);
  return w.TakeBytes();
}

StatusOr<RpcRequest> RpcRequest::Deserialize(const std::string& bytes) {
  BinaryReader r(bytes);
  uint32_t magic;
  if (!r.U32(&magic) || magic != kRequestMagic) {
    return DataLoss("rpc: not a request envelope");
  }
  RpcRequest req;
  if (!r.U64(&req.request_id) || !r.Str(&req.method) || !r.Str(&req.target) ||
      !r.F64(&req.budget_ms) || !r.Str(&req.payload) || !r.AtEnd()) {
    return DataLoss("rpc: truncated request envelope");
  }
  return req;
}

Status RpcResponse::ToStatus() const {
  if (code == StatusCode::kOk) return OkStatus();
  return Status(code, message);
}

std::string RpcResponse::Serialize() const {
  BinaryWriter w;
  w.U32(kResponseMagic);
  w.U64(request_id);
  w.U32(static_cast<uint32_t>(code));
  w.Str(message);
  w.F64(remote_ms);
  w.Str(payload);
  return w.TakeBytes();
}

StatusOr<RpcResponse> RpcResponse::Deserialize(const std::string& bytes) {
  BinaryReader r(bytes);
  uint32_t magic;
  if (!r.U32(&magic) || magic != kResponseMagic) {
    return DataLoss("rpc: not a response envelope");
  }
  RpcResponse resp;
  uint32_t code;
  if (!r.U64(&resp.request_id) || !r.U32(&code) || !r.Str(&resp.message) ||
      !r.F64(&resp.remote_ms) || !r.Str(&resp.payload) || !r.AtEnd()) {
    return DataLoss("rpc: truncated response envelope");
  }
  if (code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return DataLoss("rpc: unknown status code in response envelope");
  }
  resp.code = static_cast<StatusCode>(code);
  return resp;
}

}  // namespace vizq::rpc
