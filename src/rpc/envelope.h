// RPC envelopes: the wire format of the in-process cluster boundary.
//
// Even though caller and callee share an address space, every call is
// genuinely serialized to bytes and parsed back on the far side (the
// little-endian length-prefixed BinaryWriter format the cache
// persistence layer uses). That buys three things a pointer-passing
// shortcut would not:
//   * the modeled network cost (rpc::NetworkCostModel) charges real
//     payload sizes, so "chatty" protocols show up in benches;
//   * nothing non-serializable can leak across the node boundary by
//     accident — exactly the discipline a real multi-process split
//     would enforce;
//   * a corrupt/truncated envelope is a typed kDataLoss, which the
//     fuzzer's cluster lane can exercise.
//
// Envelope layout (all integers little-endian, strings u32-length
// prefixed):
//   request:  magic 'VQRQ' | request_id u64 | method | target |
//             budget_ms f64 | payload
//   response: magic 'VQRS' | request_id u64 | code u32 | message |
//             remote_ms f64 | payload
// `payload` is method-defined (the cluster layer nests its own
// BinaryWriter block inside it).

#ifndef VIZQUERY_RPC_ENVELOPE_H_
#define VIZQUERY_RPC_ENVELOPE_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace vizq::rpc {

struct RpcRequest {
  uint64_t request_id = 0;
  std::string method;    // e.g. "execute_batch"
  std::string target;    // node id the caller believes owns the work
  double budget_ms = 0;  // per-call deadline budget; <= 0 = caller's
  std::string payload;

  std::string Serialize() const;
  static StatusOr<RpcRequest> Deserialize(const std::string& bytes);
};

struct RpcResponse {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;   // error detail when code != kOk
  double remote_ms = 0;  // handler wall time on the remote node
  std::string payload;

  // OK -> OkStatus; otherwise (code, message) as a Status.
  Status ToStatus() const;

  std::string Serialize() const;
  static StatusOr<RpcResponse> Deserialize(const std::string& bytes);
};

}  // namespace vizq::rpc

#endif  // VIZQUERY_RPC_ENVELOPE_H_
