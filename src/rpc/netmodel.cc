#include "src/rpc/netmodel.h"

#include <chrono>
#include <thread>

namespace vizq::rpc {

double NetworkCostModel::ChargeMs(double ms) {
  if (ms <= 0) return 0;
  simulated_ns_.fetch_add(static_cast<int64_t>(ms * 1e6),
                          std::memory_order_relaxed);
  if (options_.simulate_latency) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
  }
  return ms;
}

double NetworkCostModel::Charge(int64_t payload_bytes) {
  return ChargeMs(CostMs(payload_bytes));
}

double NetworkCostModel::ChargeOneWay(int64_t payload_bytes) {
  return ChargeMs(
      options_.rtt_ms / 2.0 +
      options_.per_kb_ms * static_cast<double>(payload_bytes) / 1024.0);
}

}  // namespace vizq::rpc
