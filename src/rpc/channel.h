// The in-process RPC boundary: a simulated network between the
// coordinator and the data-server nodes.
//
// InProcessTransport carries serialized envelopes (envelope.h) between
// registered endpoints. A call pays the modeled network cost
// (netmodel.h) on both legs, respects the caller's deadline plus an
// optional per-call budget, enforces a bounded per-endpoint inbox, and
// surfaces *typed transport errors* distinct from application errors:
//
//   kAborted            endpoint down (before the call, or killed while
//                       the handler ran — the response is "lost")
//   kResourceExhausted  endpoint inbox full (bounded queue overflow)
//   kDeadlineExceeded   budget spent before or during the call
//   kDataLoss           corrupt envelope (fault injection / bugs)
//
// Handlers run inline on the calling thread. That is deliberate: the
// scatter path already runs on scheduler workers, and dispatching the
// handler to *another* worker and blocking this one on a condition
// variable could park every worker at saturation. The simulated wire
// cost still separates "caller time" from "remote time": the node-side
// context carries no PhaseTimeline (ExecContext::ForRemoteCall), and
// the transport charges the handler's wall time back to the caller's
// timeline as the additive `remote_exec` phase.
//
// RetryingChannel is the ytsaurus retriable/roaming channel in
// miniature: it re-resolves the target per attempt (so a rebalance
// mid-retry roams to the new owner), retries only transport-level
// failures plus kFailedPrecondition (the code a node answers with when
// a stale placement routed it a source it no longer hosts), backs off
// exponentially (deadline-aware), and wraps an exhausted budget as
// kResourceExhausted so the frontend's shed ladder can degrade it.
// Application errors (bad query, engine failure) pass through verbatim
// on the first attempt — retrying them would duplicate work and mask
// the typed error the caller should see.

#ifndef VIZQUERY_RPC_CHANNEL_H_
#define VIZQUERY_RPC_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/exec_context.h"
#include "src/rpc/envelope.h"
#include "src/rpc/netmodel.h"

namespace vizq::rpc {

// A node-side service. Handle() must be thread-safe (the coordinator
// scatters concurrently) and must honor `ctx`'s deadline/cancellation.
class RpcHandler {
 public:
  virtual ~RpcHandler() = default;
  virtual RpcResponse Handle(const ExecContext& ctx,
                             const RpcRequest& request) = 0;
};

struct TransportOptions {
  NetworkCostOptions net;
  // Bounded inbox: calls in flight per endpoint beyond this are refused
  // with transport-level kResourceExhausted. <= 0 = unbounded.
  int inbox_capacity = 64;
};

class InProcessTransport {
 public:
  explicit InProcessTransport(TransportOptions options = {})
      : options_(options), net_(options.net) {}

  // `handler` must outlive the endpoint registration.
  void RegisterEndpoint(const std::string& node_id, RpcHandler* handler);
  void UnregisterEndpoint(const std::string& node_id);
  // Down endpoints refuse new calls AND lose in-flight responses
  // (mid-call kill: the handler may have run, the caller still sees
  // kAborted — exactly the ambiguity real networks have, which is why
  // only idempotent calls are retried).
  void SetEndpointUp(const std::string& node_id, bool up);
  bool EndpointUp(const std::string& node_id) const;

  // Fault hook for tests/fuzzing: consulted per call; a non-OK status is
  // returned to the caller as that transport error. May mutate nothing.
  using FaultHook = std::function<Status(const RpcRequest&)>;
  void SetFaultHook(FaultHook hook);

  // One round trip. Transport-level failures come back as a non-OK
  // Status; application-level failures come back OK with the response's
  // code set (the channel treats the two differently for retries).
  StatusOr<RpcResponse> Call(const ExecContext& ctx, const RpcRequest& req);

  NetworkCostModel& net() { return net_; }

  int64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  int64_t transport_errors() const {
    return transport_errors_.load(std::memory_order_relaxed);
  }
  int64_t bytes_moved() const {
    return bytes_moved_.load(std::memory_order_relaxed);
  }

 private:
  struct Endpoint {
    RpcHandler* handler = nullptr;
    std::atomic<bool> up{true};
    std::atomic<int> in_flight{0};
  };

  std::shared_ptr<Endpoint> FindEndpoint(const std::string& node_id) const;

  TransportOptions options_;
  NetworkCostModel net_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_;
  FaultHook fault_hook_;
  std::atomic<int64_t> calls_{0};
  std::atomic<int64_t> transport_errors_{0};
  std::atomic<int64_t> bytes_moved_{0};
};

struct RetryOptions {
  int max_attempts = 3;
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  // Per-attempt budget handed to the remote node; <= 0 = whatever
  // remains of the caller's deadline.
  double call_budget_ms = 0;
};

class RetryingChannel {
 public:
  // Re-resolves the target node per attempt (roaming): after a failure
  // triggers a rebalance, the retry goes to the *new* owner.
  using Resolver = std::function<std::string()>;
  // Notified on every retriable failure before the backoff; the cluster
  // coordinator uses it to mark the node dead and rebalance.
  using FailureHook =
      std::function<void(const std::string& node_id, const Status& status)>;

  RetryingChannel(InProcessTransport* transport, RetryOptions options = {})
      : transport_(transport), options_(options) {}

  // Calls `method` with `payload` against whatever node `resolve`
  // returns, retrying transport failures (node down, inbox full, corrupt
  // envelope) and the stale-placement code kFailedPrecondition.
  // Returns the final response (whose code may still be an application
  // error — those are the caller's business), or:
  //   * the last non-retriable error verbatim;
  //   * kResourceExhausted when every attempt failed retriably — the
  //     "overloaded/unavailable" shape the shed ladder degrades;
  //   * kDeadlineExceeded when the deadline lapsed mid-retry.
  StatusOr<RpcResponse> Call(const ExecContext& ctx, const std::string& method,
                             std::string payload, const Resolver& resolve,
                             const FailureHook& on_failure = nullptr);

  int64_t retries() const { return retries_.load(std::memory_order_relaxed); }

 private:
  InProcessTransport* transport_;
  RetryOptions options_;
  std::atomic<int64_t> retries_{0};
};

}  // namespace vizq::rpc

#endif  // VIZQUERY_RPC_CHANNEL_H_
