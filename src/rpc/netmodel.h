// NetworkCostModel: the single source of truth for simulated network
// latency. Both "remote" hops in the process — the distributed cache
// tier (src/cache/distributed.*) and the in-process RPC transport
// (src/rpc/transport.*) — charge the same modeled cost: a per-operation
// round trip plus a per-KB transfer term, really slept so end-to-end
// benches see genuine latency rather than an accounting fiction.
//
// Extracted from DistributedCacheTier so the cache tier and the RPC
// layer cannot drift apart on what a byte costs; the old inline model
// also accumulated its total outside any lock (a benign data race this
// version removes with an atomic nanosecond counter).

#ifndef VIZQUERY_RPC_NETMODEL_H_
#define VIZQUERY_RPC_NETMODEL_H_

#include <atomic>
#include <cstdint>

namespace vizq::rpc {

struct NetworkCostOptions {
  double rtt_ms = 0.4;           // per-operation round trip
  double per_kb_ms = 0.002;      // payload transfer
  bool simulate_latency = true;  // sleep for the modeled time
};

class NetworkCostModel {
 public:
  NetworkCostModel() = default;
  explicit NetworkCostModel(NetworkCostOptions options)
      : options_(options) {}

  // Modeled cost of moving `payload_bytes` over one round trip.
  double CostMs(int64_t payload_bytes) const {
    return options_.rtt_ms +
           options_.per_kb_ms * static_cast<double>(payload_bytes) / 1024.0;
  }

  // Accounts (and, when simulate_latency, sleeps) the modeled cost.
  // Returns the charged milliseconds so callers can attribute them.
  double Charge(int64_t payload_bytes);

  // Charges a half trip: the transfer term plus half the RTT. The RPC
  // transport uses this to split one logical round trip across the
  // request and response legs without double-charging the RTT.
  double ChargeOneWay(int64_t payload_bytes);

  // Total simulated network time charged against this model.
  double simulated_ms() const {
    return static_cast<double>(
               simulated_ns_.load(std::memory_order_relaxed)) /
           1e6;
  }

  const NetworkCostOptions& options() const { return options_; }

 private:
  double ChargeMs(double ms);

  NetworkCostOptions options_;
  std::atomic<int64_t> simulated_ns_{0};
};

}  // namespace vizq::rpc

#endif  // VIZQUERY_RPC_NETMODEL_H_
