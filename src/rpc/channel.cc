#include "src/rpc/channel.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace vizq::rpc {

void InProcessTransport::RegisterEndpoint(const std::string& node_id,
                                          RpcHandler* handler) {
  auto ep = std::make_shared<Endpoint>();
  ep->handler = handler;
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[node_id] = std::move(ep);
}

void InProcessTransport::UnregisterEndpoint(const std::string& node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_.erase(node_id);
}

void InProcessTransport::SetEndpointUp(const std::string& node_id, bool up) {
  std::shared_ptr<Endpoint> ep = FindEndpoint(node_id);
  if (ep != nullptr) ep->up.store(up, std::memory_order_release);
}

bool InProcessTransport::EndpointUp(const std::string& node_id) const {
  std::shared_ptr<Endpoint> ep = FindEndpoint(node_id);
  return ep != nullptr && ep->up.load(std::memory_order_acquire);
}

void InProcessTransport::SetFaultHook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(hook);
}

std::shared_ptr<InProcessTransport::Endpoint> InProcessTransport::FindEndpoint(
    const std::string& node_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(node_id);
  return it == endpoints_.end() ? nullptr : it->second;
}

namespace {

// Decrements an endpoint's in-flight count on every exit path.
class InFlightGuard {
 public:
  explicit InFlightGuard(std::atomic<int>* in_flight) : in_flight_(in_flight) {}
  ~InFlightGuard() {
    if (in_flight_ != nullptr) {
      in_flight_->fetch_sub(1, std::memory_order_relaxed);
    }
  }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::atomic<int>* in_flight_;
};

}  // namespace

StatusOr<RpcResponse> InProcessTransport::Call(const ExecContext& ctx,
                                               const RpcRequest& req) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("rpc call"));

  // Serialize before anything else: on the wire, the request is bytes.
  std::string wire = req.Serialize();

  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = fault_hook_;
  }
  if (hook != nullptr) {
    Status injected = hook(req);
    if (!injected.ok()) {
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
      return injected;
    }
  }

  std::shared_ptr<Endpoint> ep = FindEndpoint(req.target);
  if (ep == nullptr || !ep->up.load(std::memory_order_acquire)) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    return Aborted("rpc: node " + req.target + " is down");
  }

  if (options_.inbox_capacity > 0 &&
      ep->in_flight.fetch_add(1, std::memory_order_relaxed) + 1 >
          options_.inbox_capacity) {
    ep->in_flight.fetch_sub(1, std::memory_order_relaxed);
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    return ResourceExhausted("rpc: inbox full at " + req.target);
  }
  InFlightGuard guard(options_.inbox_capacity > 0 ? &ep->in_flight : nullptr);

  // Request leg: pay the wire cost, then parse on the "far side".
  bytes_moved_.fetch_add(static_cast<int64_t>(wire.size()),
                         std::memory_order_relaxed);
  net_.ChargeOneWay(static_cast<int64_t>(wire.size()));
  auto parsed = RpcRequest::Deserialize(wire);
  if (!parsed.ok()) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    return parsed.status();
  }

  // The node executes under a context that shares cancellation, trace,
  // metrics and log, but carries no timeline (the caller's `rpc` root
  // phase owns this wall time) and a deadline tightened by the call
  // budget.
  ExecContext node_ctx = ctx.ForRemoteCall(parsed->budget_ms);
  auto handler_start = std::chrono::steady_clock::now();
  RpcResponse resp = ep->handler->Handle(node_ctx, *parsed);
  auto handler_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - handler_start)
                        .count();
  if (PhaseTimeline* tl = ctx.timeline()) {
    tl->Add(Phase::kRemoteExec, handler_ns);
  }
  resp.request_id = parsed->request_id;
  resp.remote_ms = static_cast<double>(handler_ns) / 1e6;

  // Mid-call kill: the handler may have finished, but a down endpoint
  // cannot deliver its response. The caller sees kAborted and cannot know
  // whether the work happened — which is why only idempotent calls ride
  // the retry channel.
  if (!ep->up.load(std::memory_order_acquire)) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    return Aborted("rpc: node " + req.target + " died before responding");
  }

  // Response leg.
  std::string resp_wire = resp.Serialize();
  bytes_moved_.fetch_add(static_cast<int64_t>(resp_wire.size()),
                         std::memory_order_relaxed);
  net_.ChargeOneWay(static_cast<int64_t>(resp_wire.size()));
  auto out = RpcResponse::Deserialize(resp_wire);
  if (!out.ok()) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    return out.status();
  }
  return *std::move(out);
}

namespace {

bool RetriableTransportError(const Status& s) {
  // Node down / inbox full / corrupt envelope: a resend (possibly to a
  // re-resolved owner) is the natural recovery. A spent deadline is not
  // retriable — there is no budget left to spend.
  return s.code() == StatusCode::kAborted ||
         s.code() == StatusCode::kResourceExhausted ||
         s.code() == StatusCode::kDataLoss;
}

std::atomic<uint64_t> g_next_request_id{1};

}  // namespace

StatusOr<RpcResponse> RetryingChannel::Call(const ExecContext& ctx,
                                            const std::string& method,
                                            std::string payload,
                                            const Resolver& resolve,
                                            const FailureHook& on_failure) {
  Status last = OkStatus();
  double backoff_ms = options_.initial_backoff_ms;
  int attempts = std::max(1, options_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("rpc retry"));
    std::string target = resolve();
    if (target.empty()) {
      return NotFound("rpc: no owner resolved for " + method);
    }
    RpcRequest req;
    req.request_id =
        g_next_request_id.fetch_add(1, std::memory_order_relaxed);
    req.method = method;
    req.target = target;
    req.budget_ms = options_.call_budget_ms;
    req.payload = payload;

    Status failure;
    {
      // One span per attempt, named for the node it went to — the trace
      // of a slow scatter/gather shows exactly which node stalled.
      ScopedSpan span(ctx.StartSpan("rpc:" + target));
      auto result = transport_->Call(ctx, req);
      if (result.ok()) {
        if (result->code != StatusCode::kFailedPrecondition) {
          // Success, or an application error the caller should see
          // verbatim (retrying a bad query cannot fix it).
          return *std::move(result);
        }
        // Stale placement: the node no longer hosts the source. The
        // re-resolve on the next attempt roams to the new owner.
        failure = result->ToStatus();
      } else {
        failure = result.status();
        if (!RetriableTransportError(failure)) return failure;
      }
    }
    last = failure;
    if (on_failure != nullptr) on_failure(target, failure);
    if (attempt + 1 >= attempts) break;
    retries_.fetch_add(1, std::memory_order_relaxed);
    ctx.Count("rpc.retry");
    double sleep_ms = backoff_ms;
    if (ctx.has_deadline()) {
      sleep_ms = std::min(sleep_ms, std::max(0.0, ctx.remaining_ms()));
    }
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(sleep_ms * 1000)));
    }
    backoff_ms *= options_.backoff_multiplier;
  }
  // Exhausted: surface as kResourceExhausted — the "temporarily
  // unavailable" shape the frontend ladder knows how to degrade.
  return ResourceExhausted("rpc: " + std::to_string(attempts) +
                           " attempts exhausted calling " + method + ": " +
                           last.ToString());
}

}  // namespace vizq::rpc
