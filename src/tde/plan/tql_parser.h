// Text form of TQL (§4.1.2: "a classic query compiler that accepts a TQL
// query as text and translates it into some logical operator tree").
//
// The syntax is s-expressions:
//
//   (scan Extract.flights)
//   (select (> arr_delay 10) (scan flights))
//   (project ((carrier carrier) (delay2 (* arr_delay 2))) (scan flights))
//   (join inner ((carrier_id id)) (scan flights) (scan carriers) referential)
//   (aggregate ((carrier carrier)) ((total sum arr_delay) (n count*))
//              (scan flights))
//   (order ((carrier asc)) (scan flights))
//   (topn 5 ((total desc)) (aggregate ...))
//   (distinct (project ((market market)) (scan flights)))
//
// Expressions: identifiers are column names; literals are integers, floats,
// "strings", true/false, null, date literals d"2014-06-01"; compound forms
// are (op a b) with op in {+ - * / % = <> < <= > >= and or}, (not e),
// (in e v1 v2 ...), (isnull e) and scalar functions
// (abs|lower|upper|strlen|substr|year|month|weekday|if ...).

#ifndef VIZQUERY_TDE_PLAN_TQL_PARSER_H_
#define VIZQUERY_TDE_PLAN_TQL_PARSER_H_

#include <string>

#include "src/tde/plan/logical.h"

namespace vizq::tde {

// Parses TQL text into an unbound logical plan.
StatusOr<LogicalOpPtr> ParseTql(const std::string& text);

// Parses just an expression (used in tests).
StatusOr<ExprPtr> ParseTqlExpr(const std::string& text);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_PLAN_TQL_PARSER_H_
