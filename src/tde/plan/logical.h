// TQL logical operator trees (§4.1.2).
//
// TQL is "a logical tree style language" with the classic operators:
// TableScan, Select, Project, Join, Aggregate, Order, TopN (plus Distinct,
// which the compiler rewrites into a GROUP BY). The parallelizer adds
// Exchange nodes and aggregate phases; the optimizer may replace a
// Select+Scan pair with an RleIndexScan (§4.3).
//
// Trees are built unbound (column names as strings), then bound against a
// database (tables resolved, expressions type-checked, output schemas
// derived). Plans are mutable shared_ptr trees during compilation; the
// translator turns them into physical operator pipelines.

#ifndef VIZQUERY_TDE_PLAN_LOGICAL_H_
#define VIZQUERY_TDE_PLAN_LOGICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/tde/exec/aggregate.h"
#include "src/tde/exec/expression.h"
#include "src/tde/exec/join.h"
#include "src/tde/exec/rle_index.h"
#include "src/tde/storage/database.h"

namespace vizq::tde {

enum class LogicalKind : uint8_t {
  kScan,
  kSelect,
  kProject,
  kJoin,
  kAggregate,
  kOrder,
  kTopN,
  kDistinct,       // rewritten to kAggregate by the compiler
  kExchange,       // inserted by the parallelizer
  kRleIndexScan,   // produced by the RLE range-skipping rewrite
};

const char* LogicalKindToString(LogicalKind k);

// How a partitioned scan splits its rows across Exchange inputs (§4.2.3).
enum class PartitionKind : uint8_t {
  kNone = 0,    // serial scan
  kRandom,      // contiguous even slices (TDE "random" partitioning)
  kRangeOnSortPrefix,  // group-aligned slices on the sorted prefix
  kMorsel,      // dynamic row-range morsels from a shared queue (§10)
};

// A named output expression (projection entry / group-by entry).
struct NamedExpr {
  std::string name;
  ExprPtr expr;
};

// A logical aggregate computation.
struct LogicalAgg {
  AggFunc func = AggFunc::kCountStar;
  ExprPtr arg;  // nullptr for COUNT(*)
  std::string name;
};

// A logical ordering key.
struct LogicalSortKey {
  ExprPtr expr;
  bool ascending = true;
};

struct LogicalOp;
using LogicalOpPtr = std::shared_ptr<LogicalOp>;

// Output column of a plan node, derived at bind time.
struct OutputColumn {
  std::string name;
  DataType type;
};

struct LogicalOp {
  LogicalKind kind = LogicalKind::kScan;
  std::vector<LogicalOpPtr> children;

  // --- kScan / kRleIndexScan ---
  std::string table_path;
  std::shared_ptr<const Table> table;  // resolved at bind time
  std::vector<int> scan_columns;       // table column indices produced
  // Parallel annotations (set by the parallelizer):
  int scan_dop = 1;
  PartitionKind partition = PartitionKind::kNone;
  int range_prefix_len = 0;  // for kRangeOnSortPrefix
  int64_t morsel_rows = 0;   // for kMorsel: rows per claimed morsel
  // kRleIndexScan only:
  int rle_column = -1;        // table column index the runs belong to
  ExprPtr run_predicate;      // bound against a 1-column schema of it
  // Encoding-aware execution (DESIGN.md §11), set by DecideEncodedExec:
  // kScan emits kRle columns run-encoded instead of flattening them.
  bool emit_encoded = false;

  // --- kSelect ---
  ExprPtr predicate;
  // Encoded filter: pass batches through with a selection vector,
  // evaluating classified conjuncts per token / per run (DESIGN.md §11).
  bool encoded_filter = false;
  std::vector<EncodedConjunct> encoded_conjuncts;

  // --- kProject ---
  std::vector<NamedExpr> projections;

  // --- kJoin ---
  JoinType join_type = JoinType::kInner;
  std::vector<std::pair<ExprPtr, ExprPtr>> join_keys;  // (left, right)
  // "Assume referential integrity": every left (fact) row matches exactly
  // one right (dimension) row. Gates join culling both ways (§6's join
  // culling, and fact-table culling for domain queries §4.1.2).
  bool referential = false;
  // Parallelism of the partitioned hash build (set by the parallelizer;
  // 1 = serial build). Gated at runtime by the build side's row count.
  int build_dop = 1;

  // --- kAggregate / kDistinct ---
  std::vector<NamedExpr> group_by;
  std::vector<LogicalAgg> aggregates;
  AggPhase agg_phase = AggPhase::kComplete;
  bool prefer_streaming = false;  // set by the optimizer when sortedness
                                  // makes a streaming aggregate applicable
  // Parallelism of the kFinal partitioned merge (set by the parallelizer
  // alongside the local/global split; 1 = serial merge above the Exchange).
  int merge_dop = 1;
  // Dense token-indexed grouping (DESIGN.md §11), set by DecideEncodedExec.
  bool use_encoded_agg = false;
  std::vector<int> encoded_key_columns;    // child column index per key
  std::vector<int64_t> encoded_key_cards;  // dictionary size per key
  int64_t encoded_cells = 1;               // prod(card + 1)

  // --- kOrder / kTopN ---
  std::vector<LogicalSortKey> order_keys;
  int64_t limit = 0;  // kTopN

  // --- kExchange ---
  int dop = 1;

  // Derived at bind time.
  bool bound = false;
  std::vector<OutputColumn> output;

  // The BatchSchema equivalent of `output` (no dictionary info; binding
  // only needs names and types).
  BatchSchema OutputBatchSchema() const;

  int FindOutputColumn(const std::string& name) const;

  // Deep copy of the plan tree (expressions are shared, they're immutable).
  LogicalOpPtr Clone() const;

  // Multi-line indented rendering for debugging and plan tests.
  std::string ToString(int indent = 0) const;
};

// --- construction helpers (unbound) ---
LogicalOpPtr MakeScan(std::string table_path);
LogicalOpPtr MakeSelect(ExprPtr predicate, LogicalOpPtr child);
LogicalOpPtr MakeProject(std::vector<NamedExpr> projections, LogicalOpPtr child);
LogicalOpPtr MakeJoin(JoinType type,
                      std::vector<std::pair<ExprPtr, ExprPtr>> keys,
                      LogicalOpPtr left, LogicalOpPtr right,
                      bool referential = false);
LogicalOpPtr MakeAggregate(std::vector<NamedExpr> group_by,
                           std::vector<LogicalAgg> aggregates,
                           LogicalOpPtr child);
LogicalOpPtr MakeOrder(std::vector<LogicalSortKey> keys, LogicalOpPtr child);
LogicalOpPtr MakeTopN(int64_t limit, std::vector<LogicalSortKey> keys,
                      LogicalOpPtr child);
LogicalOpPtr MakeDistinct(LogicalOpPtr child);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_PLAN_LOGICAL_H_
