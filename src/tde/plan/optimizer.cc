#include "src/tde/plan/optimizer.h"

#include <algorithm>

#include "src/tde/plan/binder.h"
#include "src/tde/plan/properties.h"

namespace vizq::tde {

void SplitConjuncts(const ExprPtr& predicate, std::vector<ExprPtr>* out) {
  if (predicate->kind == ExprKind::kBinary &&
      predicate->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(predicate->children[0], out);
    SplitConjuncts(predicate->children[1], out);
    return;
  }
  out->push_back(predicate);
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::kBinary;
    node->binary_op = BinaryOp::kAnd;
    node->children = {acc, conjuncts[i]};
    node->bound = true;
    node->result_type = DataType::Bool();
    acc = node;
  }
  return acc;
}

namespace {

bool HasColumnRefs(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef) return true;
  for (const ExprPtr& c : e.children) {
    if (HasColumnRefs(*c)) return true;
  }
  return false;
}

bool IsLiteralBool(const Expr& e, bool value) {
  return e.kind == ExprKind::kLiteral && e.literal.is_bool() &&
         e.literal.bool_value() == value;
}

// Substitutes bound column references through `exprs`: a reference to
// column i becomes exprs[i] (shared, immutable). Used when pushing a
// predicate below a Project or Aggregate.
ExprPtr SubstituteRefs(const ExprPtr& e, const std::vector<ExprPtr>& exprs) {
  if (e->kind == ExprKind::kColumnRef && e->column_index >= 0 &&
      e->column_index < static_cast<int>(exprs.size())) {
    return exprs[e->column_index];
  }
  auto out = std::make_shared<Expr>(*e);
  out->children.clear();
  for (const ExprPtr& c : e->children) {
    out->children.push_back(SubstituteRefs(c, exprs));
  }
  return out;
}

// --- constant folding ---

StatusOr<ExprPtr> FoldExpr(const ExprPtr& e) {
  auto folded = std::make_shared<Expr>(*e);
  folded->children.clear();
  for (const ExprPtr& c : e->children) {
    VIZQ_ASSIGN_OR_RETURN(ExprPtr fc, FoldExpr(c));
    folded->children.push_back(std::move(fc));
  }
  // Boolean identities first.
  if (folded->kind == ExprKind::kBinary) {
    const ExprPtr& a = folded->children[0];
    const ExprPtr& b = folded->children[1];
    if (folded->binary_op == BinaryOp::kAnd) {
      if (IsLiteralBool(*a, true)) return b;
      if (IsLiteralBool(*b, true)) return a;
      if (IsLiteralBool(*a, false) || IsLiteralBool(*b, false)) {
        return Lit(Value(false));
      }
    }
    if (folded->binary_op == BinaryOp::kOr) {
      if (IsLiteralBool(*a, false)) return b;
      if (IsLiteralBool(*b, false)) return a;
      if (IsLiteralBool(*a, true) || IsLiteralBool(*b, true)) {
        return Lit(Value(true));
      }
    }
  }
  // NOT NOT x -> x
  if (folded->kind == ExprKind::kUnary && folded->unary_op == UnaryOp::kNot) {
    const ExprPtr& a = folded->children[0];
    if (a->kind == ExprKind::kUnary && a->unary_op == UnaryOp::kNot) {
      return a->children[0];
    }
  }
  // Single-element IN -> equality.
  if (folded->kind == ExprKind::kIn && folded->in_set.size() == 1 &&
      !folded->in_set[0].is_null()) {
    auto lit = Lit(folded->in_set[0]);
    auto eq = std::make_shared<Expr>();
    eq->kind = ExprKind::kBinary;
    eq->binary_op = BinaryOp::kEq;
    eq->children = {folded->children[0], lit};
    eq->bound = true;
    eq->result_type = DataType::Bool();
    // The literal child of a bound tree must be bound too.
    auto bl = std::make_shared<Expr>(*lit);
    bl->bound = true;
    const Value& v = folded->in_set[0];
    if (v.is_string()) {
      bl->result_type = DataType::String();
    } else if (v.is_double()) {
      bl->result_type = DataType::Float64();
    } else if (v.is_bool()) {
      bl->result_type = DataType::Bool();
    } else {
      bl->result_type = DataType::Int64();
    }
    eq->children[1] = bl;
    return ExprPtr(eq);
  }
  // Fully-constant subtree: evaluate on a one-row batch.
  if (folded->bound && folded->kind != ExprKind::kLiteral &&
      !HasColumnRefs(*folded)) {
    Batch one;
    one.num_rows = 1;
    VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(*folded, one));
    auto lit = std::make_shared<Expr>();
    lit->kind = ExprKind::kLiteral;
    lit->literal = v.GetValue(0);
    lit->bound = true;
    lit->result_type = folded->result_type;
    return ExprPtr(lit);
  }
  return ExprPtr(folded);
}

Status FoldNode(LogicalOpPtr* node) {
  for (LogicalOpPtr& c : (*node)->children) {
    VIZQ_RETURN_IF_ERROR(FoldNode(&c));
  }
  LogicalOp* op = node->get();
  switch (op->kind) {
    case LogicalKind::kSelect: {
      VIZQ_ASSIGN_OR_RETURN(op->predicate, FoldExpr(op->predicate));
      if (IsLiteralBool(*op->predicate, true)) {
        *node = op->children[0];
      }
      break;
    }
    case LogicalKind::kProject:
      for (NamedExpr& p : op->projections) {
        VIZQ_ASSIGN_OR_RETURN(p.expr, FoldExpr(p.expr));
      }
      break;
    case LogicalKind::kAggregate:
      for (NamedExpr& g : op->group_by) {
        VIZQ_ASSIGN_OR_RETURN(g.expr, FoldExpr(g.expr));
      }
      for (LogicalAgg& a : op->aggregates) {
        if (a.arg != nullptr) {
          VIZQ_ASSIGN_OR_RETURN(a.arg, FoldExpr(a.arg));
        }
      }
      break;
    case LogicalKind::kOrder:
    case LogicalKind::kTopN:
      for (LogicalSortKey& k : op->order_keys) {
        VIZQ_ASSIGN_OR_RETURN(k.expr, FoldExpr(k.expr));
      }
      break;
    default:
      break;
  }
  return OkStatus();
}

// --- select pushdown ---

// Tries to push the Select at *node one step down. Returns true if the
// tree changed.
StatusOr<bool> TryPushSelect(LogicalOpPtr* node) {
  LogicalOpPtr select = *node;
  LogicalOpPtr child = select->children[0];
  switch (child->kind) {
    case LogicalKind::kSelect: {
      // Merge adjacent selects.
      child->predicate =
          CombineConjuncts({child->predicate, select->predicate});
      *node = child;
      return true;
    }
    case LogicalKind::kProject: {
      // Select(p, Project(es, C)) == Project(es, Select(p[es], C)).
      std::vector<ExprPtr> exprs;
      exprs.reserve(child->projections.size());
      for (const NamedExpr& p : child->projections) exprs.push_back(p.expr);
      ExprPtr pushed = SubstituteRefs(select->predicate, exprs);
      auto new_select = std::make_shared<LogicalOp>();
      new_select->kind = LogicalKind::kSelect;
      new_select->predicate = pushed;
      new_select->children = {child->children[0]};
      new_select->bound = true;
      VIZQ_RETURN_IF_ERROR(DeriveOutput(new_select.get()));
      child->children[0] = new_select;
      VIZQ_RETURN_IF_ERROR(DeriveOutput(child.get()));
      *node = child;
      return true;
    }
    case LogicalKind::kOrder: {
      // Swap: Select(Order(x)) -> Order(Select(x)).
      LogicalOpPtr inner = child->children[0];
      select->children[0] = inner;
      VIZQ_RETURN_IF_ERROR(DeriveOutput(select.get()));
      child->children[0] = select;
      VIZQ_RETURN_IF_ERROR(DeriveOutput(child.get()));
      *node = child;
      return true;
    }
    case LogicalKind::kJoin: {
      int nleft = static_cast<int>(child->children[0]->output.size());
      int nright = static_cast<int>(child->children[1]->output.size());
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(select->predicate, &conjuncts);
      std::vector<ExprPtr> to_left, to_right, stay;
      for (const ExprPtr& c : conjuncts) {
        std::vector<int> refs;
        c->CollectColumnIndices(&refs);
        bool all_left = true, all_right = true;
        for (int r : refs) {
          if (r >= nleft) all_left = false;
          if (r < nleft) all_right = false;
        }
        if (!refs.empty() && all_left) {
          to_left.push_back(c);
        } else if (!refs.empty() && all_right &&
                   child->join_type == JoinType::kInner) {
          // Remap to right-child indices. (Not pushed through the null-
          // producing side of an outer join.)
          std::vector<int> mapping(nleft + nright);
          for (int i = 0; i < nleft + nright; ++i) mapping[i] = i - nleft;
          to_right.push_back(RemapColumns(c, mapping));
        } else {
          stay.push_back(c);
        }
      }
      if (to_left.empty() && to_right.empty()) return false;
      auto wrap = [](ExprPtr pred, LogicalOpPtr c) {
        auto s = std::make_shared<LogicalOp>();
        s->kind = LogicalKind::kSelect;
        s->predicate = std::move(pred);
        s->children = {std::move(c)};
        s->bound = true;
        DeriveOutput(s.get()).ok();
        return s;
      };
      if (!to_left.empty()) {
        child->children[0] = wrap(CombineConjuncts(to_left), child->children[0]);
      }
      if (!to_right.empty()) {
        child->children[1] =
            wrap(CombineConjuncts(to_right), child->children[1]);
      }
      VIZQ_RETURN_IF_ERROR(DeriveOutput(child.get()));
      if (stay.empty()) {
        *node = child;
      } else {
        select->predicate = CombineConjuncts(stay);
        select->children[0] = child;
        VIZQ_RETURN_IF_ERROR(DeriveOutput(select.get()));
      }
      return true;
    }
    case LogicalKind::kAggregate: {
      int ngroups = static_cast<int>(child->group_by.size());
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(select->predicate, &conjuncts);
      std::vector<ExprPtr> pushable, stay;
      std::vector<ExprPtr> group_exprs;
      for (const NamedExpr& g : child->group_by) group_exprs.push_back(g.expr);
      for (const ExprPtr& c : conjuncts) {
        std::vector<int> refs;
        c->CollectColumnIndices(&refs);
        bool only_groups = !refs.empty();
        for (int r : refs) {
          if (r >= ngroups) only_groups = false;
        }
        if (only_groups) {
          pushable.push_back(SubstituteRefs(c, group_exprs));
        } else {
          stay.push_back(c);
        }
      }
      if (pushable.empty()) return false;
      auto s = std::make_shared<LogicalOp>();
      s->kind = LogicalKind::kSelect;
      s->predicate = CombineConjuncts(pushable);
      s->children = {child->children[0]};
      s->bound = true;
      VIZQ_RETURN_IF_ERROR(DeriveOutput(s.get()));
      child->children[0] = s;
      VIZQ_RETURN_IF_ERROR(DeriveOutput(child.get()));
      if (stay.empty()) {
        *node = child;
      } else {
        select->predicate = CombineConjuncts(stay);
        select->children[0] = child;
      }
      return true;
    }
    default:
      return false;
  }
}

Status PushdownNode(LogicalOpPtr* node) {
  if ((*node)->kind == LogicalKind::kSelect) {
    while (true) {
      VIZQ_ASSIGN_OR_RETURN(bool changed, TryPushSelect(node));
      if (!changed || (*node)->kind != LogicalKind::kSelect) break;
    }
  }
  for (LogicalOpPtr& c : (*node)->children) {
    VIZQ_RETURN_IF_ERROR(PushdownNode(&c));
  }
  return OkStatus();
}

// --- column pruning + join culling ---

// Prunes the subtree at *node so it only produces the columns in
// `required` (indices into the node's current output). Returns the mapping
// old-output-index -> new-output-index (-1 when dropped).
// `dup_insensitive` is true when the consumer ignores row multiplicity
// (enables fact-table culling under referential integrity).
StatusOr<std::vector<int>> PruneNode(LogicalOpPtr* node,
                                     std::vector<bool> required,
                                     bool dup_insensitive,
                                     bool enable_join_culling) {
  LogicalOp* op = node->get();
  int old_width = static_cast<int>(op->output.size());
  auto identity = [old_width]() {
    std::vector<int> m(old_width);
    for (int i = 0; i < old_width; ++i) m[i] = i;
    return m;
  };

  switch (op->kind) {
    case LogicalKind::kScan: {
      std::vector<int> mapping(old_width, -1);
      std::vector<int> new_cols;
      for (int i = 0; i < old_width; ++i) {
        if (required[i]) {
          mapping[i] = static_cast<int>(new_cols.size());
          new_cols.push_back(op->scan_columns[i]);
        }
      }
      if (new_cols.empty()) {
        // Keep one column: downstream operators need a row stream.
        mapping[0] = 0;
        new_cols.push_back(op->scan_columns[0]);
      }
      op->scan_columns = std::move(new_cols);
      VIZQ_RETURN_IF_ERROR(DeriveOutput(op));
      return mapping;
    }
    case LogicalKind::kRleIndexScan:
      // Already produced by a later pass in other configurations; prune is
      // run before the RLE rewrite, so treat as opaque.
      return identity();
    case LogicalKind::kSelect: {
      std::vector<bool> child_req = required;
      std::vector<int> refs;
      op->predicate->CollectColumnIndices(&refs);
      for (int r : refs) child_req[r] = true;
      VIZQ_ASSIGN_OR_RETURN(
          std::vector<int> child_map,
          PruneNode(&op->children[0], child_req, dup_insensitive,
                    enable_join_culling));
      op->predicate = RemapColumns(op->predicate, child_map);
      VIZQ_RETURN_IF_ERROR(DeriveOutput(op));
      return child_map;
    }
    case LogicalKind::kProject: {
      // Drop projections nobody needs.
      std::vector<int> mapping(old_width, -1);
      std::vector<NamedExpr> kept;
      for (int i = 0; i < old_width; ++i) {
        if (required[i]) {
          mapping[i] = static_cast<int>(kept.size());
          kept.push_back(op->projections[i]);
        }
      }
      if (kept.empty()) {
        mapping[0] = 0;
        kept.push_back(op->projections[0]);
      }
      std::vector<bool> child_req(op->children[0]->output.size(), false);
      for (const NamedExpr& p : kept) {
        std::vector<int> refs;
        p.expr->CollectColumnIndices(&refs);
        for (int r : refs) child_req[r] = true;
      }
      VIZQ_ASSIGN_OR_RETURN(
          std::vector<int> child_map,
          PruneNode(&op->children[0], child_req, dup_insensitive,
                    enable_join_culling));
      for (NamedExpr& p : kept) {
        p.expr = RemapColumns(p.expr, child_map);
      }
      op->projections = std::move(kept);
      VIZQ_RETURN_IF_ERROR(DeriveOutput(op));
      return mapping;
    }
    case LogicalKind::kJoin: {
      int nleft = static_cast<int>(op->children[0]->output.size());
      int nright = static_cast<int>(op->children[1]->output.size());
      bool left_needed = false, right_needed = false;
      for (int i = 0; i < old_width; ++i) {
        if (!required[i]) continue;
        if (i < nleft) {
          left_needed = true;
        } else {
          right_needed = true;
        }
      }

      // Join culling (§4.1.2, §6): under assumed referential integrity an
      // inner join to the dimension adds no rows and filters none, so a
      // side whose columns are unused can be removed. Culling the fact
      // (left) side additionally requires a duplicate-insensitive consumer
      // since dimension rows may match many fact rows.
      if (enable_join_culling && op->referential &&
          op->join_type == JoinType::kInner) {
        if (!right_needed) {
          std::vector<bool> lreq(required.begin(), required.begin() + nleft);
          VIZQ_ASSIGN_OR_RETURN(
              std::vector<int> lmap,
              PruneNode(&op->children[0], lreq, dup_insensitive,
                        enable_join_culling));
          std::vector<int> mapping(old_width, -1);
          for (int i = 0; i < nleft; ++i) mapping[i] = lmap[i];
          *node = op->children[0];
          return mapping;
        }
        if (!left_needed && dup_insensitive) {
          std::vector<bool> rreq(required.begin() + nleft, required.end());
          VIZQ_ASSIGN_OR_RETURN(
              std::vector<int> rmap,
              PruneNode(&op->children[1], rreq, dup_insensitive,
                        enable_join_culling));
          std::vector<int> mapping(old_width, -1);
          for (int i = 0; i < nright; ++i) mapping[nleft + i] = rmap[i];
          *node = op->children[1];
          return mapping;
        }
      }

      std::vector<bool> lreq(nleft, false), rreq(nright, false);
      for (int i = 0; i < old_width; ++i) {
        if (!required[i]) continue;
        if (i < nleft) {
          lreq[i] = true;
        } else {
          rreq[i - nleft] = true;
        }
      }
      for (auto& [lk, rk] : op->join_keys) {
        std::vector<int> refs;
        lk->CollectColumnIndices(&refs);
        for (int r : refs) lreq[r] = true;
        refs.clear();
        rk->CollectColumnIndices(&refs);
        for (int r : refs) rreq[r] = true;
      }
      VIZQ_ASSIGN_OR_RETURN(std::vector<int> lmap,
                            PruneNode(&op->children[0], lreq, false,
                                      enable_join_culling));
      VIZQ_ASSIGN_OR_RETURN(std::vector<int> rmap,
                            PruneNode(&op->children[1], rreq, false,
                                      enable_join_culling));
      for (auto& [lk, rk] : op->join_keys) {
        lk = RemapColumns(lk, lmap);
        rk = RemapColumns(rk, rmap);
      }
      int new_nleft = static_cast<int>(op->children[0]->output.size());
      std::vector<int> mapping(old_width, -1);
      for (int i = 0; i < nleft; ++i) mapping[i] = lmap[i];
      for (int i = 0; i < nright; ++i) {
        mapping[nleft + i] = rmap[i] < 0 ? -1 : new_nleft + rmap[i];
      }
      VIZQ_RETURN_IF_ERROR(DeriveOutput(op));
      return mapping;
    }
    case LogicalKind::kAggregate: {
      int ngroups = static_cast<int>(op->group_by.size());
      // Group columns always stay (they define the grouping); unused
      // aggregates are dropped.
      std::vector<int> mapping(old_width, -1);
      std::vector<LogicalAgg> kept;
      for (int i = 0; i < ngroups; ++i) mapping[i] = i;
      for (int i = ngroups; i < old_width; ++i) {
        if (required[i]) {
          mapping[i] = ngroups + static_cast<int>(kept.size());
          kept.push_back(op->aggregates[i - ngroups]);
        }
      }
      op->aggregates = std::move(kept);
      std::vector<bool> child_req(op->children[0]->output.size(), false);
      auto mark = [&](const ExprPtr& e) {
        std::vector<int> refs;
        e->CollectColumnIndices(&refs);
        for (int r : refs) child_req[r] = true;
      };
      for (const NamedExpr& g : op->group_by) mark(g.expr);
      for (const LogicalAgg& a : op->aggregates) {
        if (a.arg != nullptr) mark(a.arg);
      }
      bool child_dup_ok =
          op->aggregates.empty() ||
          std::all_of(op->aggregates.begin(), op->aggregates.end(),
                      [](const LogicalAgg& a) {
                        return a.func == AggFunc::kMin ||
                               a.func == AggFunc::kMax ||
                               a.func == AggFunc::kCountDistinct;
                      });
      VIZQ_ASSIGN_OR_RETURN(
          std::vector<int> child_map,
          PruneNode(&op->children[0], child_req, child_dup_ok,
                    enable_join_culling));
      for (NamedExpr& g : op->group_by) {
        g.expr = RemapColumns(g.expr, child_map);
      }
      for (LogicalAgg& a : op->aggregates) {
        if (a.arg != nullptr) a.arg = RemapColumns(a.arg, child_map);
      }
      VIZQ_RETURN_IF_ERROR(DeriveOutput(op));
      return mapping;
    }
    case LogicalKind::kOrder:
    case LogicalKind::kTopN: {
      std::vector<bool> child_req = required;
      for (const LogicalSortKey& k : op->order_keys) {
        std::vector<int> refs;
        k.expr->CollectColumnIndices(&refs);
        for (int r : refs) child_req[r] = true;
      }
      VIZQ_ASSIGN_OR_RETURN(
          std::vector<int> child_map,
          PruneNode(&op->children[0], child_req, false, enable_join_culling));
      for (LogicalSortKey& k : op->order_keys) {
        k.expr = RemapColumns(k.expr, child_map);
      }
      VIZQ_RETURN_IF_ERROR(DeriveOutput(op));
      return child_map;
    }
    case LogicalKind::kDistinct:
    case LogicalKind::kExchange: {
      VIZQ_ASSIGN_OR_RETURN(
          std::vector<int> child_map,
          PruneNode(&op->children[0], required, dup_insensitive,
                    enable_join_culling));
      VIZQ_RETURN_IF_ERROR(DeriveOutput(op));
      return child_map;
    }
  }
  return identity();
}

// --- RLE index rewrite ---

StatusOr<bool> TryRleRewrite(LogicalOpPtr* node,
                             const OptimizerOptions& options) {
  LogicalOpPtr select = *node;
  if (select->kind != LogicalKind::kSelect) return false;
  LogicalOpPtr scan = select->children[0];
  if (scan->kind != LogicalKind::kScan) return false;

  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(select->predicate, &conjuncts);

  // Find an RLE-encoded scanned column such that at least one conjunct
  // references only that column.
  int chosen_output_col = -1;
  std::vector<ExprPtr> run_conjuncts, rest;
  for (const ExprPtr& c : conjuncts) {
    std::vector<int> refs;
    c->CollectColumnIndices(&refs);
    bool single = !refs.empty() &&
                  std::all_of(refs.begin(), refs.end(),
                              [&](int r) { return r == refs[0]; });
    if (single && chosen_output_col < 0) {
      int table_col = scan->scan_columns[refs[0]];
      const Column& col = *scan->table->column(table_col);
      if (col.is_rle()) {
        bool apply = false;
        switch (options.rle_index) {
          case OptimizerOptions::RleIndexMode::kOff:
            break;
          case OptimizerOptions::RleIndexMode::kForce:
            apply = true;
            break;
          case OptimizerOptions::RleIndexMode::kAuto:
            apply = static_cast<int64_t>(col.rle_runs().size()) *
                        options.rle_auto_run_factor <=
                    col.size();
            break;
        }
        if (apply) chosen_output_col = refs[0];
      }
    }
    if (chosen_output_col >= 0 && single && refs[0] == chosen_output_col) {
      // Remap to a single-column schema (index 0).
      std::vector<int> mapping(scan->output.size(), -1);
      mapping[chosen_output_col] = 0;
      run_conjuncts.push_back(RemapColumns(c, mapping));
    } else {
      rest.push_back(c);
    }
  }
  if (chosen_output_col < 0 || run_conjuncts.empty()) return false;

  auto rle = std::make_shared<LogicalOp>();
  rle->kind = LogicalKind::kRleIndexScan;
  rle->table_path = scan->table_path;
  rle->table = scan->table;
  rle->scan_columns = scan->scan_columns;
  rle->rle_column = scan->scan_columns[chosen_output_col];
  rle->run_predicate = CombineConjuncts(run_conjuncts);
  rle->bound = true;
  VIZQ_RETURN_IF_ERROR(DeriveOutput(rle.get()));

  if (rest.empty()) {
    *node = rle;
  } else {
    select->predicate = CombineConjuncts(rest);
    select->children[0] = rle;
    VIZQ_RETURN_IF_ERROR(DeriveOutput(select.get()));
  }
  return true;
}

Status RleNode(LogicalOpPtr* node, const OptimizerOptions& options) {
  VIZQ_RETURN_IF_ERROR(TryRleRewrite(node, options).status());
  for (LogicalOpPtr& c : (*node)->children) {
    VIZQ_RETURN_IF_ERROR(RleNode(&c, options));
  }
  return OkStatus();
}

// --- encoding-aware execution (DESIGN.md §11) ---

// The pattern DecideEncodedExec looks for: Aggregate → [Select]* → Scan
// where every group key is a bare reference to a dictionary-string column.
// `candidate` means the pattern matched; `viable` means all gates passed
// too (key-space cap, argument and conjunct encodings).
struct EncodedCandidate {
  bool candidate = false;
  bool viable = false;
  LogicalOp* scan = nullptr;
  std::vector<LogicalOp*> selects;  // outermost first
  std::vector<int> key_columns;     // child-schema index per group key
  std::vector<int64_t> key_cards;   // dictionary size per group key
  int64_t cells = 1;                // prod(card + 1)
  bool all_keys_rle = false;        // every key column is storage-RLE
  // Classified conjuncts, parallel to `selects`.
  std::vector<std::vector<EncodedConjunct>> conjuncts;
};

EncodedCandidate AnalyzeEncodedCandidate(LogicalOp* op,
                                         const OptimizerOptions& options) {
  EncodedCandidate cand;
  if (op->kind != LogicalKind::kAggregate ||
      op->agg_phase == AggPhase::kFinal || op->group_by.empty()) {
    return cand;
  }
  // Walk the child chain: Selects over a plain table scan.
  LogicalOp* cur = op->children.empty() ? nullptr : op->children[0].get();
  while (cur != nullptr && cur->kind == LogicalKind::kSelect) {
    cand.selects.push_back(cur);
    cur = cur->children.empty() ? nullptr : cur->children[0].get();
  }
  if (cur == nullptr || cur->kind != LogicalKind::kScan ||
      cur->table == nullptr) {
    return cand;
  }
  cand.scan = cur;
  const Table& table = *cur->table;
  int num_cols = static_cast<int>(cur->scan_columns.size());

  auto table_column = [&](int child_col) -> const Column* {
    if (child_col < 0 || child_col >= num_cols) return nullptr;
    return table.column(cur->scan_columns[child_col]).get();
  };

  // Every group key must be a bare reference to a dict-string column.
  cand.all_keys_rle = true;
  for (const NamedExpr& g : op->group_by) {
    if (g.expr->kind != ExprKind::kColumnRef || g.expr->column_index < 0) {
      return cand;
    }
    const Column* col = table_column(g.expr->column_index);
    if (col == nullptr || !col->is_dictionary_string()) return cand;
    cand.key_columns.push_back(g.expr->column_index);
    cand.key_cards.push_back(col->dictionary()->size());
    if (!col->is_rle()) cand.all_keys_rle = false;
  }
  cand.candidate = true;

  // Gate 1: the dense cell space must fit under the cap (overflow-safe).
  int64_t cap = options.encoded_group_cells_max;
  for (int64_t card : cand.key_cards) {
    if (card + 1 > cap / cand.cells) return cand;  // fallback
    cand.cells *= card + 1;
  }

  // Gate 2: aggregate arguments. Bare column refs fold run-aware; computed
  // args must only touch columns the scan will emit flat (non-RLE).
  for (const LogicalAgg& a : op->aggregates) {
    if (a.arg == nullptr) continue;
    if (a.arg->kind == ExprKind::kColumnRef) {
      if (a.arg->column_index < 0 ||
          table_column(a.arg->column_index) == nullptr) {
        return cand;
      }
      continue;
    }
    std::vector<int> refs;
    a.arg->CollectColumnIndices(&refs);
    for (int c : refs) {
      const Column* col = table_column(c);
      if (col == nullptr || col->is_rle()) return cand;
    }
  }

  // Gate 3: classify filter conjuncts. Single-column conjuncts over dict
  // columns evaluate per token, over RLE columns per run; everything else
  // runs per row and must only touch flat columns.
  for (LogicalOp* sel : cand.selects) {
    std::vector<ExprPtr> parts;
    SplitConjuncts(sel->predicate, &parts);
    std::vector<EncodedConjunct> classified;
    for (const ExprPtr& e : parts) {
      std::vector<int> refs;
      e->CollectColumnIndices(&refs);
      std::sort(refs.begin(), refs.end());
      refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
      EncodedConjunct ec;
      ec.expr = e;
      if (refs.size() == 1) {
        const Column* col = table_column(refs[0]);
        if (col == nullptr) return cand;
        ec.column_index = refs[0];
        if (col->is_dictionary_string()) {
          ec.kind = EncodedConjunct::Kind::kTokenBitmap;
        } else if (col->is_rle()) {
          ec.kind = EncodedConjunct::Kind::kPerRun;
        } else {
          ec.kind = EncodedConjunct::Kind::kPerRow;
        }
      } else {
        ec.kind = EncodedConjunct::Kind::kPerRow;
        for (int c : refs) {
          const Column* col = table_column(c);
          if (col == nullptr || col->is_rle()) return cand;
        }
      }
      classified.push_back(std::move(ec));
    }
    cand.conjuncts.push_back(std::move(classified));
  }

  cand.viable = true;
  return cand;
}

void DecideEncodedNode(const LogicalOpPtr& node,
                       const OptimizerOptions& options,
                       EncodedExecDecision* out) {
  LogicalOp* op = node.get();
  // Streaming aggregation keeps precedence where it actually executes
  // (complete-phase, sorted input): it pipelines and never materializes a
  // table. Partial-phase nodes in parallel plans never run streaming, so
  // the dense path may claim them even if prefer_streaming survived the
  // phase split.
  bool claimed_by_streaming =
      op->prefer_streaming && op->agg_phase == AggPhase::kComplete;
  if (op->kind == LogicalKind::kAggregate && !claimed_by_streaming) {
    EncodedCandidate cand = AnalyzeEncodedCandidate(op, options);
    if (cand.candidate) {
      if (cand.viable) {
        op->use_encoded_agg = true;
        op->encoded_key_columns = cand.key_columns;
        op->encoded_key_cards = cand.key_cards;
        op->encoded_cells = cand.cells;
        cand.scan->emit_encoded = true;
        for (size_t i = 0; i < cand.selects.size(); ++i) {
          cand.selects[i]->encoded_filter = true;
          cand.selects[i]->encoded_conjuncts = cand.conjuncts[i];
        }
        ++out->plans;
      } else {
        ++out->fallbacks;
      }
    }
  }
  for (const LogicalOpPtr& c : op->children) {
    DecideEncodedNode(c, options, out);
  }
}

// --- streaming aggregate selection ---

Status StreamingNode(LogicalOpPtr* node) {
  for (LogicalOpPtr& c : (*node)->children) {
    VIZQ_RETURN_IF_ERROR(StreamingNode(&c));
  }
  LogicalOp* op = node->get();
  if (op->kind == LogicalKind::kAggregate &&
      op->agg_phase == AggPhase::kComplete) {
    PlanProperties child_props = DeriveProperties(*op->children[0]);
    if (GroupingSatisfiedBySort(*op, child_props)) {
      op->prefer_streaming = true;
    }
  }
  return OkStatus();
}

// --- redundant order removal ---

Status OrderNode(LogicalOpPtr* node) {
  LogicalOp* op = node->get();
  // An Order feeding a hash aggregate, another Order, or a TopN is useless
  // (§4.1.2 "removal of unnecessary orderings") — unless it is exactly what
  // enables a streaming aggregate.
  bool consumer_reorders =
      op->kind == LogicalKind::kOrder || op->kind == LogicalKind::kTopN ||
      (op->kind == LogicalKind::kAggregate && !op->prefer_streaming);
  if (consumer_reorders && !op->children.empty() &&
      op->children[0]->kind == LogicalKind::kOrder) {
    op->children[0] = op->children[0]->children[0];
  }
  for (LogicalOpPtr& c : op->children) {
    VIZQ_RETURN_IF_ERROR(OrderNode(&c));
  }
  return OkStatus();
}

}  // namespace

Status FoldConstantsPass(LogicalOpPtr* root) { return FoldNode(root); }

Status SelectPushdownPass(LogicalOpPtr* root) { return PushdownNode(root); }

Status ColumnPruningPass(LogicalOpPtr* root, bool enable_join_culling) {
  std::vector<bool> all((*root)->output.size(), true);
  return PruneNode(root, all, false, enable_join_culling).status();
}

Status RleIndexPass(LogicalOpPtr* root, const OptimizerOptions& options) {
  if (options.rle_index == OptimizerOptions::RleIndexMode::kOff) {
    return OkStatus();
  }
  return RleNode(root, options);
}

Status StreamingAggPass(LogicalOpPtr* root) { return StreamingNode(root); }

EncodedExecDecision DecideEncodedExec(const LogicalOpPtr& root,
                                      const OptimizerOptions& options) {
  EncodedExecDecision decision;
  if (root == nullptr || !options.enable_encoded_exec) return decision;
  DecideEncodedNode(root, options, &decision);
  return decision;
}

Status OrderRemovalPass(LogicalOpPtr* root) { return OrderNode(root); }

Status OptimizePlan(LogicalOpPtr* root, const OptimizerOptions& options) {
  if (!(*root)->bound) {
    return FailedPrecondition("OptimizePlan requires a bound plan");
  }
  if (options.enable_constant_folding) {
    VIZQ_RETURN_IF_ERROR(FoldConstantsPass(root));
  }
  if (options.enable_select_pushdown) {
    VIZQ_RETURN_IF_ERROR(SelectPushdownPass(root));
  }
  if (options.enable_column_pruning) {
    VIZQ_RETURN_IF_ERROR(
        ColumnPruningPass(root, options.enable_join_culling));
    // Pushdown again: pruning can reshape projections.
    if (options.enable_select_pushdown) {
      VIZQ_RETURN_IF_ERROR(SelectPushdownPass(root));
    }
  }
  VIZQ_RETURN_IF_ERROR(RleIndexPass(root, options));
  if (options.enable_streaming_agg) {
    VIZQ_RETURN_IF_ERROR(StreamingAggPass(root));
  }
  if (options.enable_order_removal) {
    VIZQ_RETURN_IF_ERROR(OrderRemovalPass(root));
  }
  return OkStatus();
}

}  // namespace vizq::tde
