// Parallel plan generation (§4.2.2–§4.2.3).
//
// Following Vectorwise's style, the parallelizer takes the optimized serial
// plan and transforms it into a parallel plan bottom-up:
//
//   1. At each TableScan the optimizer inspects metadata (row count, the
//      per-row cost of the expressions the scan feeds) and picks a degree
//      of parallelism N >= 1 (the table is split into N fractions).
//   2. Flow operators (Select, Project) inherit the child's DOP.
//   3. At a stop-and-go operator (Aggregate, Order, TopN) an Exchange is
//      inserted between child and parent — with these §4.2.3 refinements:
//        * local/global aggregation: a partial aggregate below the
//          Exchange and a final one above, shrinking Exchange input;
//        * removal of the global aggregate entirely when a permutation of
//          a subset of the GROUP BY columns is a prefix of the scan
//          table's sort order — the scan switches to range partitioning so
//          each group lands in exactly one fraction (Lemmas 1–3);
//        * local/global TopN, same idea.
//   4. Joins: the left (fact) sub-tree joins the main parallelism; the
//      right sub-tree forms an independent unit whose result and hash
//      table are shared across the probing threads.
//   5. If the root still has DOP > 1, a final Exchange closes the plan.
//
// The Exchange here is N-inputs/one-output only, exactly the Tableau 9.0
// restriction; everything above an Exchange runs serially.

#ifndef VIZQUERY_TDE_PLAN_PARALLELIZER_H_
#define VIZQUERY_TDE_PLAN_PARALLELIZER_H_

#include "src/tde/plan/logical.h"

namespace vizq::tde {

struct ParallelOptions {
  bool enable_parallel = true;
  int max_dop = 4;
  // A fraction must be worth at least this many rows of work.
  int64_t min_rows_per_fraction = 65536;
  bool enable_local_global_agg = true;
  bool enable_range_partition = true;
  bool enable_local_global_topn = true;
  // Range partitioning is applied conservatively (§4.2.3): skipped when
  // the sort-prefix key has fewer distinct values than this (low
  // cardinality would starve fractions / skew them).
  int64_t range_partition_min_distinct = 8;
  // Morsel-driven scans (DESIGN.md §10): randomly-partitioned scans claim
  // dynamic row-range morsels from a queue shared by the Exchange inputs
  // instead of fixed fractions, so skew self-balances. Range-partitioned
  // scans keep static group-aligned fractions (alignment is the point),
  // and the engine disables morsels under serial_exchange_for_measurement
  // (one-at-a-time inputs would claim everything into fraction 0).
  bool enable_morsel = true;
  int64_t morsel_rows = 8192;  // rows per claimed morsel
  // Blocking-operator parallelism (DESIGN.md §12): the partitioned
  // hash-join build and the partitioned kFinal merge. The dop lands as a
  // plan annotation (build_dop / merge_dop); the row thresholds gate the
  // fan-out at runtime, when the actual build/partial sizes are known.
  bool enable_parallel_build = true;
  bool enable_parallel_merge = true;
  int64_t parallel_build_min_rows = 65536;
  int64_t parallel_merge_min_rows = 4096;
};

// Rewrites the optimized, bound plan in place into a parallel plan.
// Annotations: scans get scan_dop/partition, aggregates get phases,
// Exchange nodes appear at serialization points.
Status ParallelizePlan(LogicalOpPtr* root, const ParallelOptions& options);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_PLAN_PARALLELIZER_H_
