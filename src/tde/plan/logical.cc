#include "src/tde/plan/logical.h"

namespace vizq::tde {

const char* LogicalKindToString(LogicalKind k) {
  switch (k) {
    case LogicalKind::kScan: return "Scan";
    case LogicalKind::kSelect: return "Select";
    case LogicalKind::kProject: return "Project";
    case LogicalKind::kJoin: return "Join";
    case LogicalKind::kAggregate: return "Aggregate";
    case LogicalKind::kOrder: return "Order";
    case LogicalKind::kTopN: return "TopN";
    case LogicalKind::kDistinct: return "Distinct";
    case LogicalKind::kExchange: return "Exchange";
    case LogicalKind::kRleIndexScan: return "RleIndexScan";
  }
  return "?";
}

BatchSchema LogicalOp::OutputBatchSchema() const {
  BatchSchema schema;
  for (const OutputColumn& c : output) {
    schema.names.push_back(c.name);
    schema.prototypes.emplace_back(c.type);
  }
  return schema;
}

int LogicalOp::FindOutputColumn(const std::string& name) const {
  for (size_t i = 0; i < output.size(); ++i) {
    if (output[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

LogicalOpPtr LogicalOp::Clone() const {
  auto copy = std::make_shared<LogicalOp>(*this);
  copy->children.clear();
  for (const LogicalOpPtr& c : children) {
    copy->children.push_back(c->Clone());
  }
  return copy;
}

std::string LogicalOp::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string out = pad + LogicalKindToString(kind);
  switch (kind) {
    case LogicalKind::kScan:
    case LogicalKind::kRleIndexScan:
      out += " " + table_path;
      if (scan_dop > 1) {
        out += " dop=" + std::to_string(scan_dop);
        switch (partition) {
          case PartitionKind::kRangeOnSortPrefix:
            out += " partition=range";
            break;
          case PartitionKind::kMorsel:
            out += " partition=morsel";
            break;
          default:
            out += " partition=random";
            break;
        }
      }
      if (kind == LogicalKind::kRleIndexScan && run_predicate != nullptr) {
        out += " runs[" + run_predicate->ToString() + "]";
      }
      if (!scan_columns.empty()) {
        out += " cols[";
        for (size_t i = 0; i < scan_columns.size(); ++i) {
          if (i > 0) out += ",";
          out += std::to_string(scan_columns[i]);
        }
        out += "]";
      }
      break;
    case LogicalKind::kSelect:
      out += " " + (predicate != nullptr ? predicate->ToString() : "?");
      break;
    case LogicalKind::kProject: {
      out += " [";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out += ", ";
        out += projections[i].name + "=" + projections[i].expr->ToString();
      }
      out += "]";
      break;
    }
    case LogicalKind::kJoin: {
      out += join_type == JoinType::kInner ? " inner" : " left";
      if (referential) out += " referential";
      out += " on [";
      for (size_t i = 0; i < join_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += join_keys[i].first->ToString() + "=" +
               join_keys[i].second->ToString();
      }
      out += "]";
      break;
    }
    case LogicalKind::kAggregate: {
      switch (agg_phase) {
        case AggPhase::kComplete: break;
        case AggPhase::kPartial: out += "(partial)"; break;
        case AggPhase::kFinal: out += "(final)"; break;
      }
      if (prefer_streaming) out += "(streaming)";
      out += " by[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_by[i].name;
      }
      out += "] aggs[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        out += aggregates[i].name + "=" +
               std::string(AggFuncToString(aggregates[i].func));
        if (aggregates[i].arg != nullptr) {
          out += "(" + aggregates[i].arg->ToString() + ")";
        }
      }
      out += "]";
      break;
    }
    case LogicalKind::kOrder:
    case LogicalKind::kTopN: {
      if (kind == LogicalKind::kTopN) out += " " + std::to_string(limit);
      out += " keys[";
      for (size_t i = 0; i < order_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += order_keys[i].expr->ToString();
        out += order_keys[i].ascending ? " asc" : " desc";
      }
      out += "]";
      break;
    }
    case LogicalKind::kDistinct:
      break;
    case LogicalKind::kExchange:
      out += " dop=" + std::to_string(dop);
      break;
  }
  out += "\n";
  for (const LogicalOpPtr& c : children) {
    out += c->ToString(indent + 1);
  }
  return out;
}

namespace {
LogicalOpPtr NewOp(LogicalKind kind) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = kind;
  return op;
}
}  // namespace

LogicalOpPtr MakeScan(std::string table_path) {
  auto op = NewOp(LogicalKind::kScan);
  op->table_path = std::move(table_path);
  return op;
}

LogicalOpPtr MakeSelect(ExprPtr predicate, LogicalOpPtr child) {
  auto op = NewOp(LogicalKind::kSelect);
  op->predicate = std::move(predicate);
  op->children = {std::move(child)};
  return op;
}

LogicalOpPtr MakeProject(std::vector<NamedExpr> projections,
                         LogicalOpPtr child) {
  auto op = NewOp(LogicalKind::kProject);
  op->projections = std::move(projections);
  op->children = {std::move(child)};
  return op;
}

LogicalOpPtr MakeJoin(JoinType type,
                      std::vector<std::pair<ExprPtr, ExprPtr>> keys,
                      LogicalOpPtr left, LogicalOpPtr right,
                      bool referential) {
  auto op = NewOp(LogicalKind::kJoin);
  op->join_type = type;
  op->join_keys = std::move(keys);
  op->children = {std::move(left), std::move(right)};
  op->referential = referential;
  return op;
}

LogicalOpPtr MakeAggregate(std::vector<NamedExpr> group_by,
                           std::vector<LogicalAgg> aggregates,
                           LogicalOpPtr child) {
  auto op = NewOp(LogicalKind::kAggregate);
  op->group_by = std::move(group_by);
  op->aggregates = std::move(aggregates);
  op->children = {std::move(child)};
  return op;
}

LogicalOpPtr MakeOrder(std::vector<LogicalSortKey> keys, LogicalOpPtr child) {
  auto op = NewOp(LogicalKind::kOrder);
  op->order_keys = std::move(keys);
  op->children = {std::move(child)};
  return op;
}

LogicalOpPtr MakeTopN(int64_t limit, std::vector<LogicalSortKey> keys,
                      LogicalOpPtr child) {
  auto op = NewOp(LogicalKind::kTopN);
  op->limit = limit;
  op->order_keys = std::move(keys);
  op->children = {std::move(child)};
  return op;
}

LogicalOpPtr MakeDistinct(LogicalOpPtr child) {
  auto op = NewOp(LogicalKind::kDistinct);
  op->children = {std::move(child)};
  return op;
}

}  // namespace vizq::tde
