#include "src/tde/plan/parallelizer.h"

#include <algorithm>

#include "src/tde/exec/cost_profile.h"
#include "src/tde/plan/binder.h"
#include "src/tde/plan/properties.h"

namespace vizq::tde {

namespace {

// Sum of per-row expression costs across the plan; feeds the DOP decision
// the way §4.2.2 describes (expensive expressions justify more fractions).
double PlanExprCostPerRow(const LogicalOp& op) {
  const CostProfile& profile = CostProfile::Default();
  double cost = 0;
  switch (op.kind) {
    case LogicalKind::kSelect:
      cost += EstimateExprCost(*op.predicate, profile);
      break;
    case LogicalKind::kProject:
      for (const NamedExpr& p : op.projections) {
        cost += EstimateExprCost(*p.expr, profile);
      }
      break;
    case LogicalKind::kAggregate:
      for (const NamedExpr& g : op.group_by) {
        cost += EstimateExprCost(*g.expr, profile);
      }
      for (const LogicalAgg& a : op.aggregates) {
        if (a.arg != nullptr) cost += EstimateExprCost(*a.arg, profile);
      }
      break;
    default:
      break;
  }
  for (const LogicalOpPtr& c : op.children) {
    cost += PlanExprCostPerRow(*c);
  }
  return cost;
}

struct Ctx {
  const ParallelOptions& opts;
  double cost_per_row = 0;
};

int DecideDop(int64_t rows, const Ctx& ctx) {
  if (!ctx.opts.enable_parallel || ctx.opts.max_dop <= 1) return 1;
  // Expensive expressions make each row "heavier", justifying more
  // fractions for the same row count.
  double weight = std::max(1.0, ctx.cost_per_row / 8.0);
  int64_t effective = static_cast<int64_t>(rows * weight);
  int64_t dop64 = effective / std::max<int64_t>(1, ctx.opts.min_rows_per_fraction);
  int dop = static_cast<int>(std::min<int64_t>(dop64, ctx.opts.max_dop));
  return dop < 2 ? 1 : dop;
}

LogicalOpPtr MakeExchange(int dop, LogicalOpPtr child) {
  auto x = std::make_shared<LogicalOp>();
  x->kind = LogicalKind::kExchange;
  x->dop = dop;
  x->children = {std::move(child)};
  x->bound = true;
  DeriveOutput(x.get()).ok();
  return x;
}

StatusOr<int> Par(LogicalOpPtr* node, Ctx& ctx);

StatusOr<int> ParAggregate(LogicalOpPtr* node, Ctx& ctx) {
  LogicalOpPtr op = *node;
  VIZQ_ASSIGN_OR_RETURN(int child_dop, Par(&op->children[0], ctx));
  if (child_dop <= 1) return 1;

  // --- §4.2.3: remove the global aggregate via range partitioning ---
  if (ctx.opts.enable_range_partition && !op->group_by.empty()) {
    std::vector<int> scan_cols;
    LogicalOp* scan = TraceGroupColumnsToScan(*op, &scan_cols);
    int prefix_len = 0;
    if (scan != nullptr && scan->scan_dop > 1 &&
        scan->table->SubsetMatchesSortPrefix(scan_cols, &prefix_len)) {
      // Conservative application: skip when the partition key has very low
      // cardinality (e.g. partitioning on gender) — the fractions would be
      // few and skewed, and local/global wins instead.
      int major = scan->table->sort_columns()[0];
      int64_t distinct =
          scan->table->column(major)->stats().distinct_estimate;
      if (distinct >= ctx.opts.range_partition_min_distinct) {
        scan->partition = PartitionKind::kRangeOnSortPrefix;
        scan->range_prefix_len = prefix_len;
        // The aggregate itself stays complete and runs inside each
        // fraction; every group is wholly local (Lemma 2), so the merged
        // stream needs no further aggregation.
        return child_dop;
      }
    }
  }

  // --- §4.2.3: local/global aggregation ---
  bool reaggregable =
      std::all_of(op->aggregates.begin(), op->aggregates.end(),
                  [](const LogicalAgg& a) { return IsReaggregable(a.func); });
  if (ctx.opts.enable_local_global_agg && reaggregable) {
    // Partial (local) aggregate below the Exchange.
    auto partial = std::make_shared<LogicalOp>(*op);
    partial->children = {op->children[0]};
    partial->agg_phase = AggPhase::kPartial;
    partial->prefer_streaming = false;
    VIZQ_RETURN_IF_ERROR(DeriveOutput(partial.get()));

    LogicalOpPtr exchange = MakeExchange(child_dop, partial);

    // This node becomes the final (global) aggregate over partials.
    int ngroups = static_cast<int>(op->group_by.size());
    for (int i = 0; i < ngroups; ++i) {
      op->group_by[i].expr =
          ColIdx(i, partial->output[i].type);
    }
    int col = ngroups;
    for (LogicalAgg& a : op->aggregates) {
      a.arg = ColIdx(col, partial->output[col].type);
      AggSpec spec{a.func, a.arg, a.name};
      col += static_cast<int>(PartialStateColumns(spec).size());
    }
    op->agg_phase = AggPhase::kFinal;
    op->prefer_streaming = false;
    // The merge above the Exchange partitions partial states by group-key
    // hash and merges concurrently (DESIGN.md §12); one partition per
    // contributing lane is the natural fan-out.
    op->merge_dop = ctx.opts.enable_parallel_merge ? child_dop : 1;
    op->children[0] = exchange;
    VIZQ_RETURN_IF_ERROR(DeriveOutput(op.get()));
    return 1;
  }

  // --- plain: close parallelism below the aggregate ---
  op->children[0] = MakeExchange(child_dop, op->children[0]);
  op->prefer_streaming = false;  // the Exchange disturbed the sort (§4.2.4)
  return 1;
}

StatusOr<int> Par(LogicalOpPtr* node, Ctx& ctx) {
  LogicalOpPtr op = *node;
  switch (op->kind) {
    case LogicalKind::kScan: {
      int dop = DecideDop(op->table->num_rows(), ctx);
      op->scan_dop = dop;
      if (dop <= 1) {
        op->partition = PartitionKind::kNone;
      } else if (ctx.opts.enable_morsel) {
        // Dynamic morsels by default; ParAggregate may still override to
        // kRangeOnSortPrefix, which needs static group-aligned fractions.
        op->partition = PartitionKind::kMorsel;
        op->morsel_rows = ctx.opts.morsel_rows;
      } else {
        op->partition = PartitionKind::kRandom;
      }
      return dop;
    }
    case LogicalKind::kRleIndexScan: {
      // Matching-row count is unknown until execution; assume the rewrite
      // kept a meaningful fraction of the table. §4.3's caveat — the index
      // join "may also reduce the degree of parallelism" — shows up here:
      // fewer surviving rows means fewer, potentially skewed fractions.
      int64_t guess = op->table->num_rows() / 4;
      int dop = DecideDop(guess, ctx);
      op->scan_dop = dop;
      op->partition = dop > 1 ? PartitionKind::kRandom : PartitionKind::kNone;
      return dop;
    }
    case LogicalKind::kSelect:
    case LogicalKind::kProject: {
      // Flow operators inherit the degree of parallelism from the child.
      return Par(&op->children[0], ctx);
    }
    case LogicalKind::kJoin: {
      // Left sub-tree participates in the main parallelism; the right
      // sub-tree is an independent unit whose materialized table and hash
      // table are shared by all probing threads.
      VIZQ_ASSIGN_OR_RETURN(int left_dop, Par(&op->children[0], ctx));
      VIZQ_ASSIGN_OR_RETURN(int right_dop, Par(&op->children[1], ctx));
      if (right_dop > 1) {
        op->children[1] = MakeExchange(right_dop, op->children[1]);
      }
      // The hash build over the materialized right side fans out on its
      // own (DESIGN.md §12), independent of how the right sub-tree was
      // produced; the runtime row threshold keeps small builds serial.
      op->build_dop = (ctx.opts.enable_parallel && ctx.opts.enable_parallel_build)
                          ? std::max(1, ctx.opts.max_dop)
                          : 1;
      return left_dop;
    }
    case LogicalKind::kAggregate:
      return ParAggregate(node, ctx);
    case LogicalKind::kOrder: {
      VIZQ_ASSIGN_OR_RETURN(int child_dop, Par(&op->children[0], ctx));
      if (child_dop > 1) {
        op->children[0] = MakeExchange(child_dop, op->children[0]);
      }
      return 1;
    }
    case LogicalKind::kTopN: {
      VIZQ_ASSIGN_OR_RETURN(int child_dop, Par(&op->children[0], ctx));
      if (child_dop <= 1) return 1;
      if (ctx.opts.enable_local_global_topn) {
        // Local TopN inside each fraction, global TopN above the Exchange
        // (§4.2.3: "the same approach can also be applied to TopN").
        auto local = std::make_shared<LogicalOp>(*op);
        local->children = {op->children[0]};
        VIZQ_RETURN_IF_ERROR(DeriveOutput(local.get()));
        op->children[0] = MakeExchange(child_dop, local);
      } else {
        op->children[0] = MakeExchange(child_dop, op->children[0]);
      }
      return 1;
    }
    case LogicalKind::kDistinct:
      return Internal("Distinct must be rewritten before parallelization");
    case LogicalKind::kExchange:
      return 1;  // already closed
  }
  return 1;
}

}  // namespace

Status ParallelizePlan(LogicalOpPtr* root, const ParallelOptions& options) {
  if (!(*root)->bound) {
    return FailedPrecondition("ParallelizePlan requires a bound plan");
  }
  Ctx ctx{options, PlanExprCostPerRow(**root)};
  VIZQ_ASSIGN_OR_RETURN(int dop, Par(root, ctx));
  if (dop > 1) {
    *root = MakeExchange(dop, *root);
  }
  return OkStatus();
}

}  // namespace vizq::tde
