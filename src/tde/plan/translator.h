// Physical translation: turns an optimized (possibly parallelized) logical
// plan into a Volcano operator tree.
//
// Exchange nodes are expanded by translating their child subtree once per
// fraction; the fraction's partitioned scan is restricted to its row range
// (random partitioning), its group-aligned range (range partitioning,
// §4.2.3), or its share of the RLE IndexTable's surviving runs (§4.3).
// Join build sides are translated once and shared across fractions through
// SharedBuildState (§4.2.2).

#ifndef VIZQUERY_TDE_PLAN_TRANSLATOR_H_
#define VIZQUERY_TDE_PLAN_TRANSLATOR_H_

#include <memory>
#include <unordered_map>

#include "src/common/exec_context.h"
#include "src/common/scheduler.h"
#include "src/tde/exec/analyze.h"
#include "src/tde/exec/morsel.h"
#include "src/tde/plan/logical.h"

namespace vizq::tde {

// Runtime knobs the translator threads into the physical operators.
struct TranslateOptions {
  // Puts every Exchange — and the join-build / final-merge fan-outs —
  // into serial-measurement mode (see ExchangeOperator).
  bool serial_exchange = false;
  // The query's priority class; producer tasks, build tasks and merge
  // tasks are all submitted under it.
  TaskClass priority = TaskClass::kInteractive;
  // Runtime row thresholds below which the blocking-operator fan-outs
  // (plan annotations build_dop / merge_dop) stay serial.
  int64_t parallel_build_min_rows = 65536;
  int64_t parallel_merge_min_rows = 4096;
};

class Translator {
 public:
  // `stats` may be null. The logical plan must outlive execution of the
  // returned operator tree. Operators receive a copy of `ctx`:
  // Scan/Join/Aggregate poll its cancellation/deadline between batches
  // and record per-operator spans under its parent span. With a non-null
  // `analysis`, every physical operator is wrapped in an AnalyzeOperator
  // accumulating per-logical-node runtime stats (EXPLAIN ANALYZE);
  // `analysis` must outlive execution of the operator tree.
  Translator(ExecStats* stats, const TranslateOptions& options,
             const ExecContext& ctx = ExecContext::Background(),
             PlanAnalysis* analysis = nullptr)
      : stats_(stats), options_(options), ctx_(ctx), analysis_(analysis) {}

  // Legacy convenience: only the serial-measurement switch.
  explicit Translator(ExecStats* stats, bool serial_exchange = false,
                      const ExecContext& ctx = ExecContext::Background(),
                      PlanAnalysis* analysis = nullptr)
      : Translator(stats, MakeSerialOptions(serial_exchange), ctx, analysis) {}

  StatusOr<OperatorPtr> Translate(const LogicalOpPtr& plan);

 private:
  static TranslateOptions MakeSerialOptions(bool serial_exchange) {
    TranslateOptions o;
    o.serial_exchange = serial_exchange;
    return o;
  }

  // Resolves the analysis node for `op`, translates (TranslateNodeImpl)
  // and wraps the result. All fractions of an Exchange share one node.
  StatusOr<OperatorPtr> TranslateNode(const LogicalOp& op, int fraction);
  StatusOr<OperatorPtr> TranslateNodeImpl(const LogicalOp& op, int fraction);
  StatusOr<OperatorPtr> TranslateScan(const LogicalOp& op, int fraction);
  StatusOr<OperatorPtr> TranslateRleScan(const LogicalOp& op, int fraction);
  StatusOr<OperatorPtr> TranslateExchange(const LogicalOp& op);

  // Fraction boundaries / range groups, computed once per scan node.
  StatusOr<const std::vector<int64_t>*> ScanOffsets(const LogicalOp& scan);
  StatusOr<const std::vector<std::vector<RowRange>>*> RleGroups(
      const LogicalOp& scan);

  ExecStats* stats_;
  TranslateOptions options_;
  ExecContext ctx_;
  PlanAnalysis* analysis_ = nullptr;
  PlanNodeStats* analyze_parent_ = nullptr;  // current parent during recursion
  // True while translating a join's build-side subtree: a build-side
  // Exchange tags its fractions with the build stage, not the scan stage.
  bool in_build_side_ = false;
  std::unordered_map<const LogicalOp*, std::shared_ptr<SharedBuildState>>
      builds_;
  std::unordered_map<const LogicalOp*, std::vector<int64_t>> scan_offsets_;
  std::unordered_map<const LogicalOp*, std::vector<std::vector<RowRange>>>
      rle_groups_;
  // One shared morsel queue per kMorsel scan node; all fractions of its
  // Exchange claim row ranges from the same queue.
  std::unordered_map<const LogicalOp*, MorselQueuePtr> morsel_queues_;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_PLAN_TRANSLATOR_H_
