#include "src/tde/plan/translator.h"

#include <algorithm>
#include <unordered_set>

#include "src/tde/exec/exchange.h"
#include "src/tde/exec/scan.h"
#include "src/tde/exec/sort.h"

namespace vizq::tde {

StatusOr<OperatorPtr> Translator::Translate(const LogicalOpPtr& plan) {
  StatusOr<OperatorPtr> root = TranslateNode(*plan, /*fraction=*/-1);
  // Drop the translation-time registries. The operators hold their own
  // references (SharedBuildState, morsel queues), so every per-query
  // structure is owned by the returned tree and freed with it — not by
  // this translator's destructor on the query's response path.
  builds_.clear();
  scan_offsets_.clear();
  rle_groups_.clear();
  morsel_queues_.clear();
  return root;
}

StatusOr<const std::vector<int64_t>*> Translator::ScanOffsets(
    const LogicalOp& scan) {
  auto it = scan_offsets_.find(&scan);
  if (it != scan_offsets_.end()) return &it->second;
  std::vector<int64_t> offsets;
  if (scan.partition == PartitionKind::kRangeOnSortPrefix) {
    offsets = SplitRowsOnSortedPrefix(*scan.table, scan.range_prefix_len,
                                      scan.scan_dop);
  } else {
    offsets = SplitRows(scan.table->num_rows(), scan.scan_dop);
  }
  auto [inserted, ok] = scan_offsets_.emplace(&scan, std::move(offsets));
  return &inserted->second;
}

StatusOr<const std::vector<std::vector<RowRange>>*> Translator::RleGroups(
    const LogicalOp& scan) {
  auto it = rle_groups_.find(&scan);
  if (it != rle_groups_.end()) return &it->second;
  VIZQ_ASSIGN_OR_RETURN(
      std::vector<RowRange> ranges,
      ComputeMatchingRuns(*scan.table, scan.rle_column, scan.run_predicate));
  std::vector<std::vector<RowRange>> groups =
      SplitRanges(ranges, std::max(1, scan.scan_dop));
  if (stats_ != nullptr) stats_->used_rle_index = true;
  auto [inserted, ok] = rle_groups_.emplace(&scan, std::move(groups));
  return &inserted->second;
}

StatusOr<OperatorPtr> Translator::TranslateScan(const LogicalOp& op,
                                                int fraction) {
  if (op.partition == PartitionKind::kMorsel && op.scan_dop > 1 &&
      fraction >= 0) {
    // Every fraction scans the full range but only materializes rows of
    // the morsels it claims from the scan node's shared queue.
    auto it = morsel_queues_.find(&op);
    if (it == morsel_queues_.end()) {
      int64_t rows = op.morsel_rows > 0 ? op.morsel_rows : kDefaultMorselRows;
      it = morsel_queues_
               .emplace(&op, std::make_shared<MorselQueue>(
                                 op.table->num_rows(), rows))
               .first;
    }
    if (stats_ != nullptr) {
      std::lock_guard<std::mutex> lock(stats_->mu);
      stats_->used_morsel_scan = true;
    }
    auto scan = std::make_unique<TableScanOperator>(
        op.table, op.scan_columns, /*row_begin=*/0, /*row_end=*/-1, stats_,
        ctx_);
    scan->SetMorselQueue(it->second);
    scan->SetEmitEncoded(op.emit_encoded);
    return OperatorPtr(std::move(scan));
  }
  int64_t begin = 0;
  int64_t end = -1;
  if (op.scan_dop > 1 && fraction >= 0) {
    VIZQ_ASSIGN_OR_RETURN(const std::vector<int64_t>* offsets,
                          ScanOffsets(op));
    if (fraction + 1 >= static_cast<int>(offsets->size())) {
      // Range partitioning can produce fewer boundaries than requested;
      // surplus fractions scan nothing.
      begin = end = op.table->num_rows();
    } else {
      begin = (*offsets)[fraction];
      end = (*offsets)[fraction + 1];
    }
    if (stats_ != nullptr &&
        op.partition == PartitionKind::kRangeOnSortPrefix) {
      stats_->used_range_partition = true;
    }
  }
  auto scan = std::make_unique<TableScanOperator>(op.table, op.scan_columns,
                                                  begin, end, stats_, ctx_);
  scan->SetEmitEncoded(op.emit_encoded);
  return OperatorPtr(std::move(scan));
}

StatusOr<OperatorPtr> Translator::TranslateRleScan(const LogicalOp& op,
                                                   int fraction) {
  VIZQ_ASSIGN_OR_RETURN(const std::vector<std::vector<RowRange>>* groups,
                        RleGroups(op));
  std::vector<RowRange> ranges;
  if (op.scan_dop > 1 && fraction >= 0) {
    if (fraction < static_cast<int>(groups->size())) {
      ranges = (*groups)[fraction];
    }
  } else {
    for (const auto& g : *groups) {
      ranges.insert(ranges.end(), g.begin(), g.end());
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const RowRange& a, const RowRange& b) {
                return a.start < b.start;
              });
  }
  return OperatorPtr(std::make_unique<RleIndexScanOperator>(
      op.table, op.scan_columns, std::move(ranges), stats_));
}

StatusOr<OperatorPtr> Translator::TranslateExchange(const LogicalOp& op) {
  // The child subtree is translated once per fraction; each translation
  // restricts the partitioned scan(s) to that fraction. The effective
  // input count can shrink when range partitioning found fewer group
  // boundaries than the requested DOP.
  int dop = op.dop;
  std::vector<OperatorPtr> inputs;
  inputs.reserve(dop);
  // Morsel queues created while translating this Exchange's fractions
  // belong to it: the Exchange rewinds them on (re-)Open.
  std::unordered_set<const LogicalOp*> queues_before;
  queues_before.reserve(morsel_queues_.size());
  for (const auto& [node, queue] : morsel_queues_) queues_before.insert(node);
  for (int f = 0; f < dop; ++f) {
    VIZQ_ASSIGN_OR_RETURN(OperatorPtr input,
                          TranslateNode(*op.children[0], f));
    inputs.push_back(std::move(input));
  }
  if (stats_ != nullptr) {
    std::lock_guard<std::mutex> lock(stats_->mu);
    stats_->used_parallel_plan = true;
    stats_->dop = std::max(stats_->dop, dop);
  }
  auto exchange = std::make_unique<ExchangeOperator>(
      std::move(inputs), stats_, options_.serial_exchange, ctx_,
      /*scheduler=*/nullptr, options_.priority,
      in_build_side_ ? ExecStats::kStageBuild : ExecStats::kStageScan);
  for (const auto& [node, queue] : morsel_queues_) {
    if (queues_before.count(node) == 0) exchange->AddMorselQueue(queue);
  }
  return OperatorPtr(std::move(exchange));
}

StatusOr<OperatorPtr> Translator::TranslateNode(const LogicalOp& op,
                                                int fraction) {
  if (analysis_ == nullptr) return TranslateNodeImpl(op, fraction);
  PlanNodeStats* saved_parent = analyze_parent_;
  PlanNodeStats* node = analysis_->NodeFor(op, saved_parent);
  analyze_parent_ = node;
  StatusOr<OperatorPtr> result = TranslateNodeImpl(op, fraction);
  analyze_parent_ = saved_parent;
  if (!result.ok()) return result;
  return OperatorPtr(
      std::make_unique<AnalyzeOperator>(std::move(*result), node));
}

StatusOr<OperatorPtr> Translator::TranslateNodeImpl(const LogicalOp& op,
                                                    int fraction) {
  switch (op.kind) {
    case LogicalKind::kScan:
      return TranslateScan(op, fraction);
    case LogicalKind::kRleIndexScan:
      return TranslateRleScan(op, fraction);
    case LogicalKind::kSelect: {
      VIZQ_ASSIGN_OR_RETURN(OperatorPtr child,
                            TranslateNode(*op.children[0], fraction));
      auto filter =
          std::make_unique<FilterOperator>(std::move(child), op.predicate);
      if (op.encoded_filter) {
        filter->EnableEncodedFilter(op.encoded_conjuncts, stats_);
        if (stats_ != nullptr) stats_->used_encoded_path = true;
      }
      return OperatorPtr(std::move(filter));
    }
    case LogicalKind::kProject: {
      VIZQ_ASSIGN_OR_RETURN(OperatorPtr child,
                            TranslateNode(*op.children[0], fraction));
      std::vector<ProjectOperator::NamedExpr> exprs;
      exprs.reserve(op.projections.size());
      for (const NamedExpr& p : op.projections) {
        exprs.push_back(ProjectOperator::NamedExpr{p.name, p.expr});
      }
      return OperatorPtr(std::make_unique<ProjectOperator>(std::move(child),
                                                           std::move(exprs)));
    }
    case LogicalKind::kJoin: {
      VIZQ_ASSIGN_OR_RETURN(OperatorPtr left,
                            TranslateNode(*op.children[0], fraction));
      auto it = builds_.find(&op);
      std::shared_ptr<SharedBuildState> build;
      if (it != builds_.end()) {
        build = it->second;
      } else {
        // The build side is its own unit (fraction -1): built once, shared
        // by every probing fraction. Its own Exchange (if any) records
        // build-stage fractions.
        bool saved_build_side = in_build_side_;
        in_build_side_ = true;
        StatusOr<OperatorPtr> right = TranslateNode(*op.children[1], -1);
        in_build_side_ = saved_build_side;
        VIZQ_RETURN_IF_ERROR(right.status());
        std::vector<ExprPtr> right_keys;
        for (const auto& [lk, rk] : op.join_keys) right_keys.push_back(rk);
        JoinBuildOptions build_options;
        build_options.build_dop = op.build_dop;
        build_options.min_parallel_rows = options_.parallel_build_min_rows;
        build_options.priority = options_.priority;
        build_options.serial_measurement = options_.serial_exchange;
        build_options.stats = stats_;
        build = std::make_shared<SharedBuildState>(std::move(*right),
                                                   std::move(right_keys),
                                                   build_options);
        builds_.emplace(&op, build);
      }
      std::vector<ExprPtr> left_keys;
      for (const auto& [lk, rk] : op.join_keys) left_keys.push_back(lk);
      return OperatorPtr(std::make_unique<HashJoinOperator>(
          std::move(left), std::move(build), std::move(left_keys),
          op.join_type, ctx_));
    }
    case LogicalKind::kAggregate: {
      VIZQ_ASSIGN_OR_RETURN(OperatorPtr child,
                            TranslateNode(*op.children[0], fraction));
      std::vector<GroupExpr> groups;
      groups.reserve(op.group_by.size());
      for (const NamedExpr& g : op.group_by) {
        groups.push_back(GroupExpr{g.name, g.expr});
      }
      std::vector<AggSpec> specs;
      specs.reserve(op.aggregates.size());
      for (const LogicalAgg& a : op.aggregates) {
        specs.push_back(AggSpec{a.func, a.arg, a.name});
      }
      if (op.agg_phase == AggPhase::kComplete && op.prefer_streaming) {
        if (stats_ != nullptr) stats_->used_streaming_agg = true;
        return OperatorPtr(std::make_unique<StreamingAggregateOperator>(
            std::move(child), std::move(groups), std::move(specs), ctx_));
      }
      AggPhase phase = op.agg_phase;
      if (stats_ != nullptr && phase == AggPhase::kFinal) {
        stats_->used_local_global_agg = true;
      }
      auto agg = std::make_unique<HashAggregateOperator>(
          std::move(child), std::move(groups), std::move(specs), phase, ctx_);
      if (phase == AggPhase::kFinal && op.merge_dop > 1) {
        AggMergeOptions merge_options;
        merge_options.merge_dop = op.merge_dop;
        merge_options.min_parallel_rows = options_.parallel_merge_min_rows;
        merge_options.priority = options_.priority;
        merge_options.serial_measurement = options_.serial_exchange;
        agg->EnableParallelMerge(merge_options, stats_);
      }
      if (op.use_encoded_agg && phase != AggPhase::kFinal) {
        DenseAggConfig config;
        config.enabled = true;
        config.key_columns = op.encoded_key_columns;
        config.key_cards = op.encoded_key_cards;
        config.total_cells = op.encoded_cells;
        agg->EnableDenseGroups(std::move(config), stats_);
        if (stats_ != nullptr) stats_->used_encoded_path = true;
      }
      return OperatorPtr(std::move(agg));
    }
    case LogicalKind::kOrder: {
      VIZQ_ASSIGN_OR_RETURN(OperatorPtr child,
                            TranslateNode(*op.children[0], fraction));
      std::vector<SortKey> keys;
      for (const LogicalSortKey& k : op.order_keys) {
        keys.push_back(SortKey{k.expr, k.ascending});
      }
      return OperatorPtr(
          std::make_unique<SortOperator>(std::move(child), std::move(keys)));
    }
    case LogicalKind::kTopN: {
      VIZQ_ASSIGN_OR_RETURN(OperatorPtr child,
                            TranslateNode(*op.children[0], fraction));
      std::vector<SortKey> keys;
      for (const LogicalSortKey& k : op.order_keys) {
        keys.push_back(SortKey{k.expr, k.ascending});
      }
      return OperatorPtr(std::make_unique<TopNOperator>(
          std::move(child), std::move(keys), op.limit));
    }
    case LogicalKind::kDistinct:
      return Internal("Distinct must be rewritten before translation");
    case LogicalKind::kExchange:
      return TranslateExchange(op);
  }
  return Internal("unhandled logical operator");
}

}  // namespace vizq::tde
