#include "src/tde/plan/rewriter.h"

#include "src/tde/plan/binder.h"

namespace vizq::tde {

namespace {

// DISTINCT -> GROUP BY over every output column (§4.1.2).
Status RewriteDistinct(LogicalOpPtr* node) {
  LogicalOpPtr distinct = *node;
  LogicalOpPtr child = distinct->children[0];
  auto agg = std::make_shared<LogicalOp>();
  agg->kind = LogicalKind::kAggregate;
  agg->children = {child};
  for (size_t i = 0; i < child->output.size(); ++i) {
    agg->group_by.push_back(NamedExpr{
        child->output[i].name,
        ColIdx(static_cast<int>(i), child->output[i].type)});
  }
  agg->bound = true;
  VIZQ_RETURN_IF_ERROR(DeriveOutput(agg.get()));
  *node = agg;
  return OkStatus();
}

Status RewriteNode(LogicalOpPtr* node) {
  for (LogicalOpPtr& c : (*node)->children) {
    VIZQ_RETURN_IF_ERROR(RewriteNode(&c));
  }
  if ((*node)->kind == LogicalKind::kDistinct) {
    VIZQ_RETURN_IF_ERROR(RewriteDistinct(node));
  }
  return OkStatus();
}

}  // namespace

Status RewritePlan(LogicalOpPtr* root) {
  if (!(*root)->bound) {
    return FailedPrecondition("RewritePlan requires a bound plan");
  }
  return RewriteNode(root);
}

}  // namespace vizq::tde
