#include "src/tde/plan/tql_parser.h"

#include <cctype>

#include "src/common/str_util.h"

namespace vizq::tde {

namespace {

// --- s-expression reader ---

struct Sexp {
  // Exactly one of: atom (non-empty) or list.
  std::string atom;
  bool is_string_literal = false;
  bool is_date_literal = false;
  std::vector<Sexp> list;
  bool is_atom() const { return list.empty() && !atom.empty(); }
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  StatusOr<Sexp> ReadSexp() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return InvalidArgument("unexpected end of TQL");
    char ch = text_[pos_];
    if (ch == '(') {
      ++pos_;
      Sexp out;
      out.atom.clear();
      while (true) {
        SkipWhitespace();
        if (pos_ >= text_.size()) {
          return InvalidArgument("unbalanced '(' in TQL");
        }
        if (text_[pos_] == ')') {
          ++pos_;
          return out;
        }
        VIZQ_ASSIGN_OR_RETURN(Sexp child, ReadSexp());
        out.list.push_back(std::move(child));
      }
    }
    if (ch == ')') return InvalidArgument("unexpected ')' in TQL");
    if (ch == '"' || (ch == 'd' && pos_ + 1 < text_.size() &&
                      text_[pos_ + 1] == '"')) {
      Sexp out;
      if (ch == 'd') {
        out.is_date_literal = true;
        ++pos_;
      } else {
        out.is_string_literal = true;
      }
      ++pos_;  // opening quote
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        s += text_[pos_++];
      }
      if (pos_ >= text_.size()) {
        return InvalidArgument("unterminated string literal");
      }
      ++pos_;  // closing quote
      out.atom = std::move(s);
      if (out.atom.empty()) out.atom = "\xff";  // keep atomhood for ""
      return out;
    }
    // Bare atom.
    Sexp out;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')') {
      out.atom += text_[pos_++];
    }
    return out;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char ch = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(ch))) {
        ++pos_;
      } else if (ch == ';') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipWhitespace();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

std::string StringOf(const Sexp& s) {
  return s.atom == "\xff" ? std::string() : s.atom;
}

// --- expression parsing ---

StatusOr<ExprPtr> ParseExprSexp(const Sexp& s);

StatusOr<Value> ParseValueSexp(const Sexp& s) {
  if (!s.is_atom()) return InvalidArgument("expected a literal value");
  if (s.is_string_literal) return Value(StringOf(s));
  if (s.is_date_literal) {
    auto days = ParseDateDays(s.atom);
    if (!days) return InvalidArgument("bad date literal '" + s.atom + "'");
    return Value(*days);
  }
  if (s.atom == "null") return Value::Null();
  if (s.atom == "true") return Value(true);
  if (s.atom == "false") return Value(false);
  if (auto i = ParseInt64(s.atom)) return Value(*i);
  if (auto d = ParseDouble(s.atom)) return Value(*d);
  return InvalidArgument("bad literal '" + s.atom + "'");
}

StatusOr<ExprPtr> ParseExprSexp(const Sexp& s) {
  if (s.is_atom()) {
    if (s.is_string_literal || s.is_date_literal) {
      VIZQ_ASSIGN_OR_RETURN(Value v, ParseValueSexp(s));
      return Lit(std::move(v));
    }
    if (s.atom == "null" || s.atom == "true" || s.atom == "false") {
      VIZQ_ASSIGN_OR_RETURN(Value v, ParseValueSexp(s));
      return Lit(std::move(v));
    }
    if (auto i = ParseInt64(s.atom)) return Lit(Value(*i));
    if (auto d = ParseDouble(s.atom)) return Lit(Value(*d));
    return Col(s.atom);  // identifier
  }
  if (s.list.empty() || !s.list[0].is_atom()) {
    return InvalidArgument("malformed expression");
  }
  const std::string& head = s.list[0].atom;
  auto args = [&](size_t n) -> Status {
    if (s.list.size() != n + 1) {
      return InvalidArgument("'" + head + "' expects " + std::to_string(n) +
                             " arguments");
    }
    return OkStatus();
  };
  auto child = [&](size_t i) { return ParseExprSexp(s.list[i]); };

  static const std::pair<const char*, BinaryOp> kBinaryOps[] = {
      {"+", BinaryOp::kAdd}, {"-", BinaryOp::kSub}, {"*", BinaryOp::kMul},
      {"/", BinaryOp::kDiv}, {"%", BinaryOp::kMod}, {"=", BinaryOp::kEq},
      {"<>", BinaryOp::kNe}, {"<", BinaryOp::kLt},  {"<=", BinaryOp::kLe},
      {">", BinaryOp::kGt},  {">=", BinaryOp::kGe}, {"and", BinaryOp::kAnd},
      {"or", BinaryOp::kOr}};
  for (const auto& [name, op] : kBinaryOps) {
    if (head == name) {
      VIZQ_RETURN_IF_ERROR(args(2));
      VIZQ_ASSIGN_OR_RETURN(ExprPtr a, child(1));
      VIZQ_ASSIGN_OR_RETURN(ExprPtr b, child(2));
      return Binary(op, std::move(a), std::move(b));
    }
  }
  if (head == "not") {
    VIZQ_RETURN_IF_ERROR(args(1));
    VIZQ_ASSIGN_OR_RETURN(ExprPtr a, child(1));
    return Not(std::move(a));
  }
  if (head == "isnull") {
    VIZQ_RETURN_IF_ERROR(args(1));
    VIZQ_ASSIGN_OR_RETURN(ExprPtr a, child(1));
    return IsNull(std::move(a));
  }
  if (head == "in") {
    if (s.list.size() < 2) return InvalidArgument("'in' expects an operand");
    VIZQ_ASSIGN_OR_RETURN(ExprPtr a, child(1));
    std::vector<Value> set;
    for (size_t i = 2; i < s.list.size(); ++i) {
      VIZQ_ASSIGN_OR_RETURN(Value v, ParseValueSexp(s.list[i]));
      set.push_back(std::move(v));
    }
    return In(std::move(a), std::move(set));
  }
  static const std::pair<const char*, ScalarFunc> kFuncs[] = {
      {"abs", ScalarFunc::kAbs},       {"lower", ScalarFunc::kLower},
      {"upper", ScalarFunc::kUpper},   {"strlen", ScalarFunc::kStrLen},
      {"substr", ScalarFunc::kSubstr}, {"year", ScalarFunc::kYear},
      {"month", ScalarFunc::kMonth},   {"weekday", ScalarFunc::kWeekday},
      {"if", ScalarFunc::kIf}};
  for (const auto& [name, f] : kFuncs) {
    if (head == name) {
      std::vector<ExprPtr> fargs;
      for (size_t i = 1; i < s.list.size(); ++i) {
        VIZQ_ASSIGN_OR_RETURN(ExprPtr a, ParseExprSexp(s.list[i]));
        fargs.push_back(std::move(a));
      }
      return Func(f, std::move(fargs));
    }
  }
  return InvalidArgument("unknown expression head '" + head + "'");
}

// --- plan parsing ---

StatusOr<LogicalOpPtr> ParsePlanSexp(const Sexp& s);

StatusOr<std::vector<NamedExpr>> ParseNamedExprList(const Sexp& s) {
  std::vector<NamedExpr> out;
  for (const Sexp& entry : s.list) {
    if (entry.list.size() != 2 || !entry.list[0].is_atom()) {
      return InvalidArgument("expected (name expr) entries");
    }
    VIZQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSexp(entry.list[1]));
    out.push_back(NamedExpr{entry.list[0].atom, std::move(e)});
  }
  return out;
}

StatusOr<std::vector<LogicalSortKey>> ParseSortKeys(const Sexp& s) {
  std::vector<LogicalSortKey> out;
  for (const Sexp& entry : s.list) {
    LogicalSortKey key;
    if (entry.is_atom()) {
      VIZQ_ASSIGN_OR_RETURN(key.expr, ParseExprSexp(entry));
    } else {
      if (entry.list.empty()) return InvalidArgument("empty sort key");
      VIZQ_ASSIGN_OR_RETURN(key.expr, ParseExprSexp(entry.list[0]));
      if (entry.list.size() >= 2 && entry.list[1].is_atom()) {
        if (entry.list[1].atom == "desc") {
          key.ascending = false;
        } else if (entry.list[1].atom != "asc") {
          return InvalidArgument("sort direction must be asc or desc");
        }
      }
    }
    out.push_back(std::move(key));
  }
  return out;
}

StatusOr<AggFunc> ParseAggFunc(const std::string& name) {
  if (name == "sum") return AggFunc::kSum;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "count") return AggFunc::kCount;
  if (name == "count*") return AggFunc::kCountStar;
  if (name == "avg") return AggFunc::kAvg;
  if (name == "countd") return AggFunc::kCountDistinct;
  return InvalidArgument("unknown aggregate function '" + name + "'");
}

StatusOr<LogicalOpPtr> ParsePlanSexp(const Sexp& s) {
  if (s.is_atom() || s.list.empty() || !s.list[0].is_atom()) {
    return InvalidArgument("expected a plan node");
  }
  const std::string& head = s.list[0].atom;

  if (head == "scan") {
    if (s.list.size() != 2 || !s.list[1].is_atom()) {
      return InvalidArgument("(scan <table>)");
    }
    return MakeScan(s.list[1].atom);
  }
  if (head == "select") {
    if (s.list.size() != 3) return InvalidArgument("(select <pred> <node>)");
    VIZQ_ASSIGN_OR_RETURN(ExprPtr pred, ParseExprSexp(s.list[1]));
    VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr c, ParsePlanSexp(s.list[2]));
    return MakeSelect(std::move(pred), std::move(c));
  }
  if (head == "project") {
    if (s.list.size() != 3) {
      return InvalidArgument("(project ((name expr)...) <node>)");
    }
    VIZQ_ASSIGN_OR_RETURN(std::vector<NamedExpr> projections,
                          ParseNamedExprList(s.list[1]));
    VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr c, ParsePlanSexp(s.list[2]));
    return MakeProject(std::move(projections), std::move(c));
  }
  if (head == "join") {
    if (s.list.size() < 5) {
      return InvalidArgument(
          "(join inner|left ((lkey rkey)...) <left> <right> [referential])");
    }
    JoinType jt;
    if (s.list[1].atom == "inner") {
      jt = JoinType::kInner;
    } else if (s.list[1].atom == "left") {
      jt = JoinType::kLeftOuter;
    } else {
      return InvalidArgument("join type must be inner or left");
    }
    std::vector<std::pair<ExprPtr, ExprPtr>> keys;
    for (const Sexp& pair : s.list[2].list) {
      if (pair.list.size() != 2) {
        return InvalidArgument("join keys must be (lkey rkey) pairs");
      }
      VIZQ_ASSIGN_OR_RETURN(ExprPtr lk, ParseExprSexp(pair.list[0]));
      VIZQ_ASSIGN_OR_RETURN(ExprPtr rk, ParseExprSexp(pair.list[1]));
      keys.emplace_back(std::move(lk), std::move(rk));
    }
    VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr left, ParsePlanSexp(s.list[3]));
    VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr right, ParsePlanSexp(s.list[4]));
    bool referential =
        s.list.size() >= 6 && s.list[5].is_atom() &&
        s.list[5].atom == "referential";
    return MakeJoin(jt, std::move(keys), std::move(left), std::move(right),
                    referential);
  }
  if (head == "aggregate") {
    if (s.list.size() != 4) {
      return InvalidArgument(
          "(aggregate ((name expr)...) ((name func [expr])...) <node>)");
    }
    VIZQ_ASSIGN_OR_RETURN(std::vector<NamedExpr> groups,
                          ParseNamedExprList(s.list[1]));
    std::vector<LogicalAgg> aggs;
    for (const Sexp& entry : s.list[2].list) {
      if (entry.list.size() < 2 || !entry.list[0].is_atom() ||
          !entry.list[1].is_atom()) {
        return InvalidArgument("aggregate entries are (name func [expr])");
      }
      LogicalAgg agg;
      agg.name = entry.list[0].atom;
      VIZQ_ASSIGN_OR_RETURN(agg.func, ParseAggFunc(entry.list[1].atom));
      if (entry.list.size() >= 3) {
        VIZQ_ASSIGN_OR_RETURN(agg.arg, ParseExprSexp(entry.list[2]));
      }
      aggs.push_back(std::move(agg));
    }
    VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr c, ParsePlanSexp(s.list[3]));
    return MakeAggregate(std::move(groups), std::move(aggs), std::move(c));
  }
  if (head == "order") {
    if (s.list.size() != 3) return InvalidArgument("(order (keys...) <node>)");
    VIZQ_ASSIGN_OR_RETURN(std::vector<LogicalSortKey> keys,
                          ParseSortKeys(s.list[1]));
    VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr c, ParsePlanSexp(s.list[2]));
    return MakeOrder(std::move(keys), std::move(c));
  }
  if (head == "topn") {
    if (s.list.size() != 4 || !s.list[1].is_atom()) {
      return InvalidArgument("(topn <k> (keys...) <node>)");
    }
    auto k = ParseInt64(s.list[1].atom);
    if (!k || *k < 0) return InvalidArgument("bad topn limit");
    VIZQ_ASSIGN_OR_RETURN(std::vector<LogicalSortKey> keys,
                          ParseSortKeys(s.list[2]));
    VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr c, ParsePlanSexp(s.list[3]));
    return MakeTopN(*k, std::move(keys), std::move(c));
  }
  if (head == "distinct") {
    if (s.list.size() != 2) return InvalidArgument("(distinct <node>)");
    VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr c, ParsePlanSexp(s.list[1]));
    return MakeDistinct(std::move(c));
  }
  return InvalidArgument("unknown plan node '" + head + "'");
}

}  // namespace

StatusOr<LogicalOpPtr> ParseTql(const std::string& text) {
  Tokenizer tok(text);
  VIZQ_ASSIGN_OR_RETURN(Sexp s, tok.ReadSexp());
  if (!tok.AtEnd()) return InvalidArgument("trailing input after TQL query");
  return ParsePlanSexp(s);
}

StatusOr<ExprPtr> ParseTqlExpr(const std::string& text) {
  Tokenizer tok(text);
  VIZQ_ASSIGN_OR_RETURN(Sexp s, tok.ReadSexp());
  if (!tok.AtEnd()) return InvalidArgument("trailing input after expression");
  return ParseExprSexp(s);
}

}  // namespace vizq::tde
