// Binder: resolves table paths against a database, binds expressions
// (names -> column indices), type-checks, and derives output schemas —
// the "binding and semantic analysis" stage of the TQL compiler (§4.1.2).

#ifndef VIZQUERY_TDE_PLAN_BINDER_H_
#define VIZQUERY_TDE_PLAN_BINDER_H_

#include "src/tde/plan/logical.h"

namespace vizq::tde {

// Binds `op` (and its subtree) in place against `db`. Idempotent on
// already-bound trees.
Status BindPlan(const LogicalOpPtr& op, const Database& db);

// Recomputes `op->output` from its bound children and expressions; used by
// optimizer passes after restructuring a node. Children must be bound.
Status DeriveOutput(LogicalOp* op);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_PLAN_BINDER_H_
