#include "src/tde/plan/properties.h"

#include <algorithm>

namespace vizq::tde {

double EstimateSelectivity(const Expr& predicate) {
  switch (predicate.kind) {
    case ExprKind::kBinary:
      switch (predicate.binary_op) {
        case BinaryOp::kEq: return 0.05;
        case BinaryOp::kNe: return 0.95;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return 0.3;
        case BinaryOp::kAnd:
          return EstimateSelectivity(*predicate.children[0]) *
                 EstimateSelectivity(*predicate.children[1]);
        case BinaryOp::kOr: {
          double a = EstimateSelectivity(*predicate.children[0]);
          double b = EstimateSelectivity(*predicate.children[1]);
          return std::min(1.0, a + b - a * b);
        }
        default:
          return 0.5;
      }
    case ExprKind::kIn:
      return std::min(1.0, 0.02 * static_cast<double>(predicate.in_set.size()));
    case ExprKind::kIsNull:
      return 0.05;
    case ExprKind::kUnary:
      if (predicate.unary_op == UnaryOp::kNot) {
        return 1.0 - EstimateSelectivity(*predicate.children[0]);
      }
      return 0.5;
    case ExprKind::kLiteral:
      if (predicate.literal.is_bool()) {
        return predicate.literal.bool_value() ? 1.0 : 0.0;
      }
      return 0.5;
    default:
      return 0.5;
  }
}

PlanProperties DeriveProperties(const LogicalOp& op) {
  PlanProperties props;
  switch (op.kind) {
    case LogicalKind::kScan: {
      props.estimated_rows = static_cast<double>(op.table->num_rows());
      // Map the table's sort columns through the scan's projection while
      // they stay contiguous from the front.
      for (int sc : op.table->sort_columns()) {
        auto it = std::find(op.scan_columns.begin(), op.scan_columns.end(), sc);
        if (it == op.scan_columns.end()) break;
        props.sorted_by.push_back(
            static_cast<int>(it - op.scan_columns.begin()));
      }
      // A partitioned scan feeding an Exchange loses global order, but
      // within a fraction order holds; sortedness here describes the
      // serial stream, and the parallelizer/Exchange clears it when it
      // applies (§4.2.4).
      break;
    }
    case LogicalKind::kRleIndexScan: {
      props.estimated_rows =
          static_cast<double>(op.table->num_rows()) * 0.1;
      for (int sc : op.table->sort_columns()) {
        auto it = std::find(op.scan_columns.begin(), op.scan_columns.end(), sc);
        if (it == op.scan_columns.end()) break;
        props.sorted_by.push_back(
            static_cast<int>(it - op.scan_columns.begin()));
      }
      break;
    }
    case LogicalKind::kSelect: {
      props = DeriveProperties(*op.children[0]);
      props.estimated_rows *= EstimateSelectivity(*op.predicate);
      break;
    }
    case LogicalKind::kProject: {
      PlanProperties child = DeriveProperties(*op.children[0]);
      props.estimated_rows = child.estimated_rows;
      // Keep sort columns that project as pure pass-through refs.
      for (int sc : child.sorted_by) {
        int mapped = -1;
        for (size_t i = 0; i < op.projections.size(); ++i) {
          const Expr& e = *op.projections[i].expr;
          if (e.kind == ExprKind::kColumnRef && e.column_index == sc) {
            mapped = static_cast<int>(i);
            break;
          }
        }
        if (mapped < 0) break;
        props.sorted_by.push_back(mapped);
      }
      break;
    }
    case LogicalKind::kJoin: {
      PlanProperties left = DeriveProperties(*op.children[0]);
      PlanProperties right = DeriveProperties(*op.children[1]);
      // The probe side streams through in order; left columns keep their
      // indices in the join output.
      props.sorted_by = op.referential ? left.sorted_by : std::vector<int>{};
      props.estimated_rows =
          op.referential ? left.estimated_rows
                         : left.estimated_rows *
                               std::max(1.0, right.estimated_rows / 100.0);
      break;
    }
    case LogicalKind::kAggregate: {
      PlanProperties child = DeriveProperties(*op.children[0]);
      props.estimated_rows =
          std::min(child.estimated_rows,
                   std::max(1.0, child.estimated_rows / 16.0));
      if (op.prefer_streaming) {
        // Streaming aggregation emits groups in input order: sorted by the
        // group columns (output indices 0..k-1).
        for (size_t i = 0; i < op.group_by.size(); ++i) {
          props.sorted_by.push_back(static_cast<int>(i));
        }
      }
      break;
    }
    case LogicalKind::kOrder:
    case LogicalKind::kTopN: {
      PlanProperties child = DeriveProperties(*op.children[0]);
      props.estimated_rows =
          op.kind == LogicalKind::kTopN
              ? std::min<double>(child.estimated_rows,
                                 static_cast<double>(op.limit))
              : child.estimated_rows;
      for (const LogicalSortKey& k : op.order_keys) {
        if (!k.ascending) break;  // we only track ascending sortedness
        if (k.expr->kind != ExprKind::kColumnRef) break;
        props.sorted_by.push_back(k.expr->column_index);
      }
      break;
    }
    case LogicalKind::kDistinct: {
      PlanProperties child = DeriveProperties(*op.children[0]);
      props.estimated_rows = std::max(1.0, child.estimated_rows / 16.0);
      break;
    }
    case LogicalKind::kExchange: {
      PlanProperties child = DeriveProperties(*op.children[0]);
      props.estimated_rows = child.estimated_rows;
      // The Exchange operator disturbs the sorting properties (§4.2.4).
      props.sorted_by.clear();
      break;
    }
  }
  return props;
}

bool GroupingSatisfiedBySort(const LogicalOp& aggregate,
                             const PlanProperties& child_props) {
  size_t k = aggregate.group_by.size();
  if (k == 0) return true;  // scalar aggregation streams trivially
  if (child_props.sorted_by.size() < k) return false;
  std::vector<int> group_cols;
  for (const NamedExpr& g : aggregate.group_by) {
    if (g.expr->kind != ExprKind::kColumnRef || g.expr->column_index < 0) {
      return false;
    }
    group_cols.push_back(g.expr->column_index);
  }
  // First k sort columns must be exactly the group column set.
  for (size_t i = 0; i < k; ++i) {
    if (std::find(group_cols.begin(), group_cols.end(),
                  child_props.sorted_by[i]) == group_cols.end()) {
      return false;
    }
  }
  return true;
}

namespace {

// Maps output column `idx` of `op` down to (scan node, table column index),
// passing only through flow operators. Returns nullptr when blocked.
LogicalOp* TraceColumnToScan(const LogicalOp& op, int idx, int* table_col) {
  switch (op.kind) {
    case LogicalKind::kScan:
      if (idx < 0 || idx >= static_cast<int>(op.scan_columns.size())) {
        return nullptr;
      }
      *table_col = op.scan_columns[idx];
      return const_cast<LogicalOp*>(&op);
    case LogicalKind::kSelect:
      return TraceColumnToScan(*op.children[0], idx, table_col);
    case LogicalKind::kProject: {
      const Expr& e = *op.projections[idx].expr;
      if (e.kind != ExprKind::kColumnRef || e.column_index < 0) return nullptr;
      return TraceColumnToScan(*op.children[0], e.column_index, table_col);
    }
    case LogicalKind::kJoin: {
      int nleft = static_cast<int>(op.children[0]->output.size());
      if (idx < nleft) {
        return TraceColumnToScan(*op.children[0], idx, table_col);
      }
      return nullptr;  // right-side columns are materialized by the build
    }
    default:
      return nullptr;
  }
}

}  // namespace

LogicalOp* TraceGroupColumnsToScan(const LogicalOp& aggregate,
                                   std::vector<int>* scan_column_indices) {
  scan_column_indices->clear();
  LogicalOp* scan = nullptr;
  for (const NamedExpr& g : aggregate.group_by) {
    if (g.expr->kind != ExprKind::kColumnRef || g.expr->column_index < 0) {
      return nullptr;
    }
    int table_col = -1;
    LogicalOp* s =
        TraceColumnToScan(*aggregate.children[0], g.expr->column_index,
                          &table_col);
    if (s == nullptr) return nullptr;
    if (scan == nullptr) {
      scan = s;
    } else if (scan != s) {
      return nullptr;  // group columns span multiple scans
    }
    scan_column_indices->push_back(table_col);
  }
  return scan;
}

}  // namespace vizq::tde
