// Classic compiler rewrites (§4.1.2): normalizations applied to the bound
// tree before rule-based optimization. The headline one from the paper is
// expressing SELECT DISTINCT as a GROUP BY query; dictionary decompression
// is likewise modeled with regular logical operators (the planner keeps
// filters in token space — see optimizer.cc's dictionary predicate rewrite).

#ifndef VIZQUERY_TDE_PLAN_REWRITER_H_
#define VIZQUERY_TDE_PLAN_REWRITER_H_

#include "src/tde/plan/logical.h"

namespace vizq::tde {

// Applies normalizing rewrites in place. The plan must be bound.
Status RewritePlan(LogicalOpPtr* root);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_PLAN_REWRITER_H_
