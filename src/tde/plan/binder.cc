#include "src/tde/plan/binder.h"

namespace vizq::tde {

namespace {

Status BindNode(const LogicalOpPtr& op, const Database& db);

Status BindScan(LogicalOp* op, const Database& db) {
  if (op->table == nullptr) {
    VIZQ_ASSIGN_OR_RETURN(op->table, db.GetTable(op->table_path));
  }
  if (op->scan_columns.empty()) {
    op->scan_columns.resize(op->table->num_columns());
    for (int i = 0; i < op->table->num_columns(); ++i) {
      op->scan_columns[i] = i;
    }
  }
  return OkStatus();
}

}  // namespace

Status DeriveOutput(LogicalOp* op) {
  op->output.clear();
  switch (op->kind) {
    case LogicalKind::kScan:
    case LogicalKind::kRleIndexScan:
      for (int ci : op->scan_columns) {
        const ColumnInfo& info = op->table->column_info(ci);
        op->output.push_back(OutputColumn{info.name, info.type});
      }
      break;
    case LogicalKind::kSelect:
    case LogicalKind::kDistinct:
    case LogicalKind::kOrder:
    case LogicalKind::kTopN:
    case LogicalKind::kExchange:
      op->output = op->children[0]->output;
      break;
    case LogicalKind::kProject:
      for (const NamedExpr& p : op->projections) {
        op->output.push_back(OutputColumn{p.name, p.expr->result_type});
      }
      break;
    case LogicalKind::kJoin: {
      const auto& lout = op->children[0]->output;
      const auto& rout = op->children[1]->output;
      op->output = lout;
      for (const OutputColumn& rc : rout) {
        std::string name = rc.name;
        for (const OutputColumn& lc : lout) {
          if (lc.name == name) {
            name = "r." + name;
            break;
          }
        }
        op->output.push_back(OutputColumn{name, rc.type});
      }
      break;
    }
    case LogicalKind::kAggregate: {
      for (const NamedExpr& g : op->group_by) {
        op->output.push_back(OutputColumn{g.name, g.expr->result_type});
      }
      for (const LogicalAgg& a : op->aggregates) {
        DataType arg_type =
            a.arg != nullptr ? a.arg->result_type : DataType::Int64();
        if (op->agg_phase == AggPhase::kPartial) {
          AggSpec spec{a.func, a.arg, a.name};
          for (const ResultColumn& rc : PartialStateColumns(spec)) {
            op->output.push_back(OutputColumn{rc.name, rc.type});
          }
        } else {
          op->output.push_back(
              OutputColumn{a.name, AggResultType(a.func, arg_type)});
        }
      }
      break;
    }
  }
  return OkStatus();
}

namespace {

Status BindNode(const LogicalOpPtr& op, const Database& db) {
  if (op->bound) return OkStatus();
  for (const LogicalOpPtr& c : op->children) {
    VIZQ_RETURN_IF_ERROR(BindNode(c, db));
  }

  switch (op->kind) {
    case LogicalKind::kScan:
      VIZQ_RETURN_IF_ERROR(BindScan(op.get(), db));
      break;
    case LogicalKind::kRleIndexScan:
      // Produced only by the optimizer from an already-bound Select+Scan.
      return Internal("RleIndexScan cannot appear in an unbound plan");
    case LogicalKind::kSelect: {
      BatchSchema child_schema = op->children[0]->OutputBatchSchema();
      VIZQ_ASSIGN_OR_RETURN(op->predicate,
                            BindExpr(op->predicate, child_schema));
      if (op->predicate->result_type.kind != TypeKind::kBool) {
        return InvalidArgument("select predicate must be boolean: " +
                               op->predicate->ToString());
      }
      break;
    }
    case LogicalKind::kProject: {
      BatchSchema child_schema = op->children[0]->OutputBatchSchema();
      for (NamedExpr& p : op->projections) {
        VIZQ_ASSIGN_OR_RETURN(p.expr, BindExpr(p.expr, child_schema));
      }
      break;
    }
    case LogicalKind::kJoin: {
      BatchSchema ls = op->children[0]->OutputBatchSchema();
      BatchSchema rs = op->children[1]->OutputBatchSchema();
      if (op->join_keys.empty()) {
        return InvalidArgument("join requires at least one key pair");
      }
      for (auto& [lk, rk] : op->join_keys) {
        VIZQ_ASSIGN_OR_RETURN(lk, BindExpr(lk, ls));
        VIZQ_ASSIGN_OR_RETURN(rk, BindExpr(rk, rs));
      }
      break;
    }
    case LogicalKind::kAggregate: {
      BatchSchema child_schema = op->children[0]->OutputBatchSchema();
      for (NamedExpr& g : op->group_by) {
        VIZQ_ASSIGN_OR_RETURN(g.expr, BindExpr(g.expr, child_schema));
      }
      for (LogicalAgg& a : op->aggregates) {
        if (a.arg != nullptr) {
          VIZQ_ASSIGN_OR_RETURN(a.arg, BindExpr(a.arg, child_schema));
          if (a.func == AggFunc::kSum || a.func == AggFunc::kAvg) {
            if (!a.arg->result_type.is_numeric()) {
              return InvalidArgument(std::string(AggFuncToString(a.func)) +
                                     " requires a numeric argument");
            }
          }
        } else if (a.func != AggFunc::kCountStar) {
          return InvalidArgument(std::string(AggFuncToString(a.func)) +
                                 " requires an argument");
        }
      }
      break;
    }
    case LogicalKind::kOrder:
    case LogicalKind::kTopN: {
      BatchSchema child_schema = op->children[0]->OutputBatchSchema();
      for (LogicalSortKey& k : op->order_keys) {
        VIZQ_ASSIGN_OR_RETURN(k.expr, BindExpr(k.expr, child_schema));
      }
      if (op->kind == LogicalKind::kTopN && op->limit < 0) {
        return InvalidArgument("topn limit must be non-negative");
      }
      break;
    }
    case LogicalKind::kDistinct:
    case LogicalKind::kExchange:
      break;
  }
  VIZQ_RETURN_IF_ERROR(DeriveOutput(op.get()));
  op->bound = true;
  return OkStatus();
}

}  // namespace

Status BindPlan(const LogicalOpPtr& op, const Database& db) {
  return BindNode(op, db);
}

}  // namespace vizq::tde
