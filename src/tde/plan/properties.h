// Property derivation (§4.1.2, §4.2.4): the optimizer derives sortedness
// and cardinality estimates bottom-up and uses them for streaming-aggregate
// selection, range-partitioning decisions and DOP choices. Following the
// paper, only sorting properties are tracked (sorting is a sufficient but
// not necessary condition for the grouping requirement), and the Exchange
// operator disturbs them.

#ifndef VIZQUERY_TDE_PLAN_PROPERTIES_H_
#define VIZQUERY_TDE_PLAN_PROPERTIES_H_

#include <vector>

#include "src/tde/plan/logical.h"

namespace vizq::tde {

struct PlanProperties {
  // Output column indices the stream is sorted by, major first (ascending).
  std::vector<int> sorted_by;
  // Crude row-count estimate.
  double estimated_rows = 0;
};

// Derives the properties of `op`'s output. Requires a bound plan.
PlanProperties DeriveProperties(const LogicalOp& op);

// True when the first group_by.size() entries of `sorted_by` cover exactly
// the set of group-by column indices — the streaming-aggregate grouping
// requirement. All group exprs must be bound column references; otherwise
// false.
bool GroupingSatisfiedBySort(const LogicalOp& aggregate,
                             const PlanProperties& child_props);

// If every group-by expression of `aggregate` is a pure column reference
// that traces down through flow operators (Select / pass-through Project /
// left side of a join) to columns of a single Scan, returns that scan node
// and fills `scan_column_indices` with the mapped table column indices.
// Used by the parallelizer's range-partitioning rule (§4.2.3): the
// Aggregate pushes its partitioning requirement down to the TableScan.
LogicalOp* TraceGroupColumnsToScan(const LogicalOp& aggregate,
                                   std::vector<int>* scan_column_indices);

// Rough selectivity guess for a predicate (used for row estimates).
double EstimateSelectivity(const Expr& predicate);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_PLAN_PROPERTIES_H_
