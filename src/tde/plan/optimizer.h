// Rule-based optimizer (§4.1.2): filter/project push-down and pull-up,
// removal of unnecessary joins (join culling, including fact-table culling
// for domain queries), removal of unnecessary orderings, constant folding
// and predicate simplification, column pruning, streaming-aggregate
// selection via derived sorting properties, and the RLE IndexTable
// range-skipping rewrite (§4.3).

#ifndef VIZQUERY_TDE_PLAN_OPTIMIZER_H_
#define VIZQUERY_TDE_PLAN_OPTIMIZER_H_

#include "src/tde/plan/logical.h"

namespace vizq::tde {

struct OptimizerOptions {
  bool enable_constant_folding = true;
  bool enable_select_pushdown = true;
  bool enable_join_culling = true;
  bool enable_column_pruning = true;
  bool enable_streaming_agg = true;
  bool enable_order_removal = true;

  // RLE range skipping: kAuto applies it when the column's run table is
  // small relative to the row count (the conservative stance of §4.3);
  // kForce always applies it when structurally possible; kOff never.
  enum class RleIndexMode : uint8_t { kOff, kAuto, kForce };
  RleIndexMode rle_index = RleIndexMode::kAuto;
  // kAuto threshold: apply when runs * kAutoRunFactor <= rows.
  int64_t rle_auto_run_factor = 8;

  // Encoding-aware execution (DESIGN.md §11): run the Scan→Filter→Aggregate
  // hot path on compressed columns (run-encoded batches, per-token /
  // per-run filters, dense token-indexed grouping). The dense accumulator
  // is bounded by encoded_group_cells_max cells (product of key
  // cardinalities + 1); larger key spaces fall back to the hash path.
  bool enable_encoded_exec = true;
  int64_t encoded_group_cells_max = 1 << 16;
};

// Outcome of the encoded-execution decision, for observability counters.
struct EncodedExecDecision {
  int plans = 0;      // pipelines that got the encoded path
  int fallbacks = 0;  // candidate pipelines that failed a gate
};

// Decides, per Scan→[Select]→Aggregate pipeline of the (parallelized) plan,
// whether the encoded path applies, annotating the nodes in place
// (emit_encoded / encoded_filter / use_encoded_agg). Idempotent; walks
// through Exchange into each fragment. The row path stays the correctness
// baseline for everything not annotated.
EncodedExecDecision DecideEncodedExec(const LogicalOpPtr& root,
                                      const OptimizerOptions& options);

// Optimizes the bound plan in place.
Status OptimizePlan(LogicalOpPtr* root, const OptimizerOptions& options);

// --- individual passes, exposed for tests and ablation benches ---
Status FoldConstantsPass(LogicalOpPtr* root);
Status SelectPushdownPass(LogicalOpPtr* root);
Status ColumnPruningPass(LogicalOpPtr* root, bool enable_join_culling);
Status RleIndexPass(LogicalOpPtr* root, const OptimizerOptions& options);
Status StreamingAggPass(LogicalOpPtr* root);
Status OrderRemovalPass(LogicalOpPtr* root);

// Splits a predicate into its top-level conjuncts.
void SplitConjuncts(const ExprPtr& predicate, std::vector<ExprPtr>* out);
// Re-combines conjuncts with AND; a single conjunct returns itself.
// `conjuncts` must be non-empty.
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_PLAN_OPTIMIZER_H_
