#include "src/tde/engine.h"

#include "src/obs/plan_profile.h"
#include "src/tde/plan/binder.h"
#include "src/tde/plan/rewriter.h"
#include "src/tde/plan/tql_parser.h"
#include "src/tde/plan/translator.h"

namespace vizq::tde {

StatusOr<ResultTable> TdeEngine::Query(const std::string& tql) {
  VIZQ_ASSIGN_OR_RETURN(QueryResult result, Execute(tql, QueryOptions()));
  return std::move(result.table);
}

StatusOr<QueryResult> TdeEngine::Execute(const std::string& tql,
                                         const QueryOptions& options) {
  return Execute(tql, options, ExecContext::Background());
}

StatusOr<QueryResult> TdeEngine::Execute(const std::string& tql,
                                         const QueryOptions& options,
                                         const ExecContext& ctx) {
  VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr plan, ParseTql(tql));
  return Execute(plan, options, ctx);
}

StatusOr<LogicalOpPtr> TdeEngine::Compile(const LogicalOpPtr& plan,
                                          const QueryOptions& options) const {
  LogicalOpPtr working = plan->Clone();
  VIZQ_RETURN_IF_ERROR(BindPlan(working, *db_));
  VIZQ_RETURN_IF_ERROR(RewritePlan(&working));
  VIZQ_RETURN_IF_ERROR(OptimizePlan(&working, options.optimizer));
  ParallelOptions parallel = options.parallel;
  if (options.serial_exchange_for_measurement) {
    // Serial measurement runs Exchange inputs one at a time; with a shared
    // morsel queue the first input would claim every morsel and the
    // per-fraction timings would be meaningless. Static fractions instead.
    parallel.enable_morsel = false;
  }
  VIZQ_RETURN_IF_ERROR(ParallelizePlan(&working, parallel));
  // Post-parallelize: the final topology decides where the encoded
  // Scan→Filter→Aggregate path applies (flags on the logical nodes).
  DecideEncodedExec(working, options.optimizer);
  return working;
}

StatusOr<QueryResult> TdeEngine::Execute(const LogicalOpPtr& plan,
                                         const QueryOptions& options) {
  return Execute(plan, options, ExecContext::Background());
}

StatusOr<QueryResult> TdeEngine::Execute(const LogicalOpPtr& plan,
                                         const QueryOptions& options,
                                         const ExecContext& ctx) {
  VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("tde execute"));
  ScopedSpan compile_span(ctx.StartSpan("tde:compile"));
  VIZQ_ASSIGN_OR_RETURN(LogicalOpPtr compiled, Compile(plan, options));
  // Re-derive the encoded-exec decision (idempotent) to capture the
  // plan/fallback counts for this execution's observability.
  EncodedExecDecision encoded =
      DecideEncodedExec(compiled, options.optimizer);
  compile_span.End();

  QueryResult result;
  result.stats = std::make_shared<ExecStats>();
  if (options.collect_analysis) {
    result.analysis = std::make_shared<PlanAnalysis>();
  }
  result.plan_text = compiled->ToString();
  ScopedSpan run_span(ctx.StartSpan("tde:run"));
  ExecContext run_ctx = ctx.WithSpan(run_span.get());
  TranslateOptions translate_options;
  translate_options.serial_exchange = options.serial_exchange_for_measurement;
  translate_options.priority = options.priority;
  translate_options.parallel_build_min_rows =
      options.parallel.parallel_build_min_rows;
  translate_options.parallel_merge_min_rows =
      options.parallel.parallel_merge_min_rows;
  Translator translator(result.stats.get(), translate_options, run_ctx,
                        result.analysis.get());
  VIZQ_ASSIGN_OR_RETURN(OperatorPtr root, translator.Translate(compiled));
  VIZQ_ASSIGN_OR_RETURN(result.table, CollectToResultTable(root.get()));
  // Hand the executed tree to the caller: Execute() responds as soon as
  // the table is collected, and freeing per-query scratch (materialized
  // build sides, partition tables) rides on the result's lifetime. The
  // compiled plan rides along — operators hold expressions bound into it.
  struct Retained {
    OperatorPtr root;
    LogicalOpPtr plan;
  };
  result.pipeline = std::shared_ptr<void>(
      new Retained{std::move(root), std::move(compiled)});
  run_span.End();
  int64_t rows_undecoded = 0;
  {
    std::lock_guard<std::mutex> lock(result.stats->mu);
    result.stats->encoded_plans = encoded.plans;
    result.stats->encoded_fallbacks = encoded.fallbacks;
    rows_undecoded = result.stats->encoded_rows_undecoded;
    ctx.Count("tde.rows_scanned", result.stats->rows_scanned);
    ctx.Count("tde.batches", result.stats->batches);
    if (encoded.plans > 0 || encoded.fallbacks > 0 || rows_undecoded > 0) {
      ctx.Count("tde.encoded.plans", encoded.plans);
      ctx.Count("tde.encoded.fallbacks", encoded.fallbacks);
      ctx.Count("tde.encoded.rows_undecoded", rows_undecoded);
    }
  }
  if (result.analysis != nullptr) {
    // The annotated plan and its root row count ride on the request log,
    // so the PerfRecorder snapshots them with the trace; per-kind wall
    // times feed the "tde.op.<kind>.ms" histograms.
    std::string analyze_text = result.analysis->ToText();
    if (encoded.plans > 0 || encoded.fallbacks > 0) {
      analyze_text += "encoded: plans=" + std::to_string(encoded.plans) +
                      " fallbacks=" + std::to_string(encoded.fallbacks) +
                      " rows_undecoded=" + std::to_string(rows_undecoded) +
                      "\n";
    }
    ctx.Attach("tde.analyze", analyze_text);
    ctx.Attach("tde.analyze.root_rows",
               std::to_string(result.analysis->root_rows()));
    if (ctx.metrics_enabled()) {
      result.analysis->ForEach([&ctx](const PlanNodeStats& node) {
        ctx.Observe("tde.op." + node.metric_key + ".ms", node.wall_ms());
      });
      // Per-plan-shape latency profile: the measured wall time of this
      // execution keyed by the plan's structural signature, the substrate
      // for deadline-aware plan choice.
      if (run_span.get() != nullptr) {
        obs::GlobalPlanProfiles().Record(result.analysis->Signature(),
                                         run_span.get()->duration_ms());
      }
    }
  }
  return result;
}

}  // namespace vizq::tde
