#include "src/tde/exec/rle_index.h"

#include <algorithm>

namespace vizq::tde {

StatusOr<std::vector<RowRange>> ComputeMatchingRuns(const Table& table,
                                                    int rle_column,
                                                    const ExprPtr& predicate) {
  const Column& col = *table.column(rle_column);
  if (!col.is_rle()) {
    return FailedPrecondition("column '" + table.column_info(rle_column).name +
                              "' is not RLE encoded");
  }
  const std::vector<RleRun>& runs = col.rle_runs();

  // Build the IndexTable's value column: one row per run, in the column's
  // decoded representation (dictionary tokens keep their dictionary).
  Batch index_batch;
  ColumnVector values(table.column_info(rle_column).type);
  if (col.is_dictionary_string()) values.dict = col.shared_dictionary();
  values.Reserve(static_cast<int64_t>(runs.size()));
  for (const RleRun& run : runs) {
    // A run of nulls carries value 0 with the null mask set on its rows.
    bool run_is_null = col.IsNull(run.start);
    if (run_is_null) {
      values.AppendNull();
    } else if (values.type.kind == TypeKind::kFloat64) {
      double d;
      static_assert(sizeof(d) == sizeof(run.value));
      __builtin_memcpy(&d, &run.value, sizeof(d));
      values.AppendDouble(d);
    } else {
      values.AppendInt(run.value);
    }
  }
  index_batch.columns.push_back(std::move(values));
  index_batch.num_rows = static_cast<int64_t>(runs.size());

  VIZQ_ASSIGN_OR_RETURN(std::vector<int64_t> selected,
                        EvalPredicate(*predicate, index_batch));
  std::vector<RowRange> ranges;
  ranges.reserve(selected.size());
  for (int64_t run_idx : selected) {
    ranges.push_back(RowRange{runs[run_idx].start, runs[run_idx].count});
  }
  return ranges;
}

std::vector<std::vector<RowRange>> SplitRanges(
    const std::vector<RowRange>& ranges, int dop) {
  if (dop < 1) dop = 1;
  std::vector<std::vector<RowRange>> out(dop);
  // Greedy least-loaded assignment keeps the per-thread row counts close,
  // mitigating (not eliminating) the data-skew concern §4.3 raises.
  std::vector<int64_t> load(dop, 0);
  // Assign big ranges first.
  std::vector<RowRange> sorted = ranges;
  std::sort(sorted.begin(), sorted.end(),
            [](const RowRange& a, const RowRange& b) {
              return a.count > b.count;
            });
  for (const RowRange& r : sorted) {
    int best = 0;
    for (int i = 1; i < dop; ++i) {
      if (load[i] < load[best]) best = i;
    }
    out[best].push_back(r);
    load[best] += r.count;
  }
  // Keep each thread's ranges in ascending row order for locality.
  for (auto& group : out) {
    std::sort(group.begin(), group.end(),
              [](const RowRange& a, const RowRange& b) {
                return a.start < b.start;
              });
  }
  return out;
}

RleIndexScanOperator::RleIndexScanOperator(std::shared_ptr<const Table> table,
                                           std::vector<int> column_indices,
                                           std::vector<RowRange> ranges,
                                           ExecStats* stats)
    : table_(std::move(table)),
      column_indices_(std::move(column_indices)),
      ranges_(std::move(ranges)),
      stats_(stats) {
  for (int ci : column_indices_) {
    const ColumnInfo& info = table_->column_info(ci);
    schema_.names.push_back(info.name);
    ColumnVector proto(info.type);
    if (table_->column(ci)->is_dictionary_string()) {
      proto.dict = table_->column(ci)->shared_dictionary();
    }
    schema_.prototypes.push_back(std::move(proto));
  }
}

Status RleIndexScanOperator::Open() {
  range_idx_ = 0;
  offset_in_range_ = 0;
  return OkStatus();
}

StatusOr<bool> RleIndexScanOperator::Next(Batch* batch) {
  if (range_idx_ >= ranges_.size()) return false;
  const RowRange& range = ranges_[range_idx_];
  int64_t row = range.start + offset_in_range_;
  int64_t remaining = range.count - offset_in_range_;
  int64_t count = std::min(kBatchRows, remaining);

  *batch = schema_.NewBatch();
  for (size_t i = 0; i < column_indices_.size(); ++i) {
    const Column& col = *table_->column(column_indices_[i]);
    ColumnVector& cv = batch->columns[i];
    std::vector<uint8_t> nulls;
    switch (cv.type.kind) {
      case TypeKind::kFloat64:
        col.DecodeDoubles(row, count, &cv.doubles, &nulls);
        break;
      case TypeKind::kString:
        if (cv.dict != nullptr) {
          col.DecodeInts(row, count, &cv.ints, &nulls);
        } else {
          col.DecodeStrings(row, count, &cv.strings, &nulls);
        }
        break;
      default:
        col.DecodeInts(row, count, &cv.ints, &nulls);
        break;
    }
    bool any_null = false;
    for (uint8_t b : nulls) {
      if (b != 0) {
        any_null = true;
        break;
      }
    }
    if (any_null) cv.nulls = std::move(nulls);
  }
  batch->num_rows = count;

  offset_in_range_ += count;
  if (offset_in_range_ >= range.count) {
    ++range_idx_;
    offset_in_range_ = 0;
  }
  if (stats_ != nullptr) {
    std::lock_guard<std::mutex> lock(stats_->mu);
    stats_->rows_scanned += count;
    ++stats_->batches;
  }
  return true;
}

}  // namespace vizq::tde
