// Vectorized Volcano data representation.
//
// Operators exchange Batches of up to kBatchRows rows. A Batch is a set of
// ColumnVectors; each vector is either numeric, float, plain-string, or
// dictionary-string (tokens plus a shared immutable dictionary — the
// execution-time face of the storage layer's dictionary compression, which
// lets filters and group-bys run in token space without materializing
// strings).

#ifndef VIZQUERY_TDE_EXEC_BATCH_H_
#define VIZQUERY_TDE_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/value.h"
#include "src/tde/storage/column.h"

namespace vizq::tde {

// Preferred number of rows per batch.
inline constexpr int64_t kBatchRows = 1024;

// A typed vector of values, one per row of the batch.
struct ColumnVector {
  DataType type;

  // Payloads; which one is active depends on `type` and `dict`:
  //   bool/int64/date        -> ints
  //   float64                -> doubles
  //   string, dict == null   -> strings
  //   string, dict != null   -> ints are tokens into *dict
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  std::shared_ptr<const StringDictionary> dict;
  std::vector<uint8_t> nulls;  // empty means "no nulls in this vector"

  // Optional run-length representation. When `run_encoded` is true the
  // fixed-width payload lives in `runs` (batch-relative starts, contiguous,
  // non-empty, covering [0, size())) and `ints`/`doubles` are empty; double
  // payloads are bit-cast into RleRun::value like the storage layer. The
  // null mask stays flat/positional (never run-compressed). Value-level
  // accessors below resolve through the runs, but bulk consumers
  // (expression eval, plain operators) require flat vectors — the planner
  // only routes run-encoded batches into run-aware operators, and
  // DecodeRuns() flattens as a fallback.
  std::vector<RleRun> runs;
  bool run_encoded = false;

  ColumnVector() = default;
  explicit ColumnVector(DataType t) : type(t) {}

  // Creates an empty vector with the same type/layout (incl. dictionary)
  // as `proto`.
  static ColumnVector LayoutLike(const ColumnVector& proto);

  int64_t size() const;

  bool has_nulls() const { return !nulls.empty(); }
  bool IsNull(int64_t row) const { return !nulls.empty() && nulls[row] != 0; }

  bool is_dict_string() const {
    return type.kind == TypeKind::kString && dict != nullptr;
  }

  bool is_run_encoded() const { return run_encoded; }

  // Raw fixed-width payload of `row` (int/bool/date value, dict token, or
  // bit-cast double), resolving through runs when run-encoded.
  int64_t IntAt(int64_t row) const;
  double DoubleAt(int64_t row) const;

  // Flattens a run-encoded vector into plain ints/doubles (no-op
  // otherwise). Correctness fallback for consumers that index payloads
  // directly.
  void DecodeRuns();

  // Materializes row `row` as a Value (strings resolved through the
  // dictionary).
  Value GetValue(int64_t row) const;

  // String payload of `row` without copying; valid only for string vectors
  // and non-null rows.
  std::string_view GetStringView(int64_t row) const;

  // Hash of row `row` consistent with Value::Hash under the column
  // collation (so mixed dict/plain vectors group correctly).
  uint64_t HashAt(int64_t row) const;

  // Three-way comparison of this vector's row `a` with `other`'s row `b`.
  int CompareAt(int64_t a, const ColumnVector& other, int64_t b) const;

  // --- building ---
  void Reserve(int64_t n);
  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);   // plain-string vectors
  void AppendToken(int64_t token);         // dict-string vectors
  void AppendValue(const Value& v);
  // Appends `src`'s row `row`, preserving tokens when dictionaries match.
  void AppendFrom(const ColumnVector& src, int64_t row);

 private:
  void MarkNull();   // extends nulls lazily and sets the last slot
  void MarkValid();  // extends nulls if they exist
};

// A horizontal slice of rows flowing between operators.
struct Batch {
  std::vector<ColumnVector> columns;
  int64_t num_rows = 0;

  // Optional selection vector: when `has_selection` is true only the rows
  // whose indexes appear in `selection` (sorted ascending) are live; the
  // column payloads are untouched. Lets filters pass encoded batches
  // through without materializing copies. `num_rows` stays the physical
  // row count.
  std::vector<int32_t> selection;
  bool has_selection = false;

  bool empty() const { return num_rows == 0; }
  int num_columns() const { return static_cast<int>(columns.size()); }

  // Rows surviving the selection vector (== num_rows when none).
  int64_t live_rows() const {
    return has_selection ? static_cast<int64_t>(selection.size()) : num_rows;
  }

  void ClearSelection() {
    selection.clear();
    has_selection = false;
  }

  // Materializes the batch row as Values.
  std::vector<Value> GetRow(int64_t row) const;
};

// Output schema of an operator: names + layout prototypes.
struct BatchSchema {
  std::vector<std::string> names;
  std::vector<ColumnVector> prototypes;  // empty vectors carrying type/dict

  int FindColumn(const std::string& name) const;
  int num_columns() const { return static_cast<int>(names.size()); }

  // Creates an empty batch with this schema's layouts.
  Batch NewBatch() const;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_BATCH_H_
