#include "src/tde/exec/analyze.h"

#include <chrono>
#include <sstream>

namespace vizq::tde {

namespace {

// Lowercase per-kind key for the "tde.op.<key>.ms" histograms.
std::string MetricKeyFor(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kScan: return "scan";
    case LogicalKind::kRleIndexScan: return "rle_scan";
    case LogicalKind::kSelect: return "filter";
    case LogicalKind::kProject: return "project";
    case LogicalKind::kJoin: return "join";
    case LogicalKind::kAggregate: return "aggregate";
    case LogicalKind::kOrder: return "sort";
    case LogicalKind::kTopN: return "topn";
    case LogicalKind::kDistinct: return "distinct";
    case LogicalKind::kExchange: return "exchange";
  }
  return "unknown";
}

std::string LabelFor(const LogicalOp& op) {
  std::ostringstream os;
  os << LogicalKindToString(op.kind);
  switch (op.kind) {
    case LogicalKind::kScan:
    case LogicalKind::kRleIndexScan:
      os << " " << op.table_path << " [cols=" << op.scan_columns.size();
      if (op.scan_dop > 1) os << " dop=" << op.scan_dop;
      if (op.emit_encoded) os << " encoded";
      os << "]";
      break;
    case LogicalKind::kSelect:
      if (op.encoded_filter) os << " [encoded]";
      break;
    case LogicalKind::kJoin:
      os << " [keys=" << op.join_keys.size()
         << (op.referential ? " referential" : "") << "]";
      break;
    case LogicalKind::kAggregate:
      os << " [groups=" << op.group_by.size()
         << " aggs=" << op.aggregates.size();
      if (op.agg_phase == AggPhase::kPartial) os << " phase=partial";
      if (op.agg_phase == AggPhase::kFinal) os << " phase=final";
      if (op.prefer_streaming) os << " streaming";
      if (op.use_encoded_agg) os << " dense";
      os << "]";
      break;
    case LogicalKind::kTopN:
      os << " [limit=" << op.limit << "]";
      break;
    case LogicalKind::kExchange:
      os << " [dop=" << op.dop << "]";
      break;
    default:
      break;
  }
  return os.str();
}

std::string FormatRows(int64_t rows) {
  return std::to_string(rows);
}

std::string FormatMs(double ms) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << ms;
  return os.str();
}

void RenderNode(const PlanNodeStats& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.label);
  out->append("  (rows=");
  out->append(FormatRows(node.rows_out.load(std::memory_order_relaxed)));
  if (!node.children.empty()) {
    out->append(" rows_in=");
    out->append(FormatRows(node.rows_in()));
  }
  out->append(" batches=");
  out->append(FormatRows(node.batches.load(std::memory_order_relaxed)));
  int64_t opens = node.opens.load(std::memory_order_relaxed);
  if (opens > 1) {
    out->append(" instances=");
    out->append(FormatRows(opens));
  }
  out->append(" time=");
  out->append(FormatMs(node.wall_ms()));
  out->append("ms)\n");
  for (const PlanNodeStats* child : node.children) {
    RenderNode(*child, depth + 1, out);
  }
}

void Visit(const PlanNodeStats& node,
           const std::function<void(const PlanNodeStats&)>& fn) {
  fn(node);
  for (const PlanNodeStats* child : node.children) Visit(*child, fn);
}

}  // namespace

int64_t PlanNodeStats::rows_in() const {
  int64_t total = 0;
  for (const PlanNodeStats* child : children) {
    total += child->rows_out.load(std::memory_order_relaxed);
  }
  return total;
}

PlanNodeStats* PlanAnalysis::NodeFor(const LogicalOp& op,
                                     PlanNodeStats* parent) {
  auto it = index_.find(&op);
  if (it != index_.end()) return it->second;
  nodes_.push_back(std::make_unique<PlanNodeStats>());
  PlanNodeStats* node = nodes_.back().get();
  node->label = LabelFor(op);
  node->metric_key = MetricKeyFor(op.kind);
  index_.emplace(&op, node);
  if (parent != nullptr) {
    parent->children.push_back(node);
  } else if (root_ == nullptr) {
    root_ = node;
  }
  return node;
}

int64_t PlanAnalysis::root_rows() const {
  return root_ == nullptr ? 0
                          : root_->rows_out.load(std::memory_order_relaxed);
}

std::string PlanAnalysis::ToText() const {
  if (root_ == nullptr) return "(no plan)\n";
  std::string out;
  RenderNode(*root_, 0, &out);
  return out;
}

void PlanAnalysis::ForEach(
    const std::function<void(const PlanNodeStats&)>& fn) const {
  if (root_ != nullptr) Visit(*root_, fn);
}

namespace {

void AppendSignature(const PlanNodeStats& node, std::string* out) {
  out->append(node.label);
  if (node.children.empty()) return;
  out->push_back('(');
  bool first = true;
  for (const PlanNodeStats* child : node.children) {
    if (!first) out->push_back(',');
    first = false;
    AppendSignature(*child, out);
  }
  out->push_back(')');
}

}  // namespace

std::string PlanAnalysis::Signature() const {
  if (root_ == nullptr) return "";
  std::string out;
  AppendSignature(*root_, &out);
  return out;
}

// --- AnalyzeOperator ---

namespace {

class ScopedWall {
 public:
  explicit ScopedWall(std::atomic<int64_t>* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedWall() {
    sink_->fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count(),
                     std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t>* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Status AnalyzeOperator::Open() {
  node_->opens.fetch_add(1, std::memory_order_relaxed);
  ScopedWall wall(&node_->wall_ns);
  return child_->Open();
}

StatusOr<bool> AnalyzeOperator::Next(Batch* batch) {
  ScopedWall wall(&node_->wall_ns);
  StatusOr<bool> more = child_->Next(batch);
  if (more.ok() && *more && batch->num_rows > 0) {
    // Selection-carrying batches (encoded filters) only count live rows.
    node_->rows_out.fetch_add(batch->live_rows(), std::memory_order_relaxed);
    node_->batches.fetch_add(1, std::memory_order_relaxed);
  }
  return more;
}

Status AnalyzeOperator::Close() {
  ScopedWall wall(&node_->wall_ns);
  return child_->Close();
}

}  // namespace vizq::tde
