// Morsel-driven scan scheduling (DESIGN.md §10): instead of carving a
// table into `dop` static fractions up front, the parallelizer can hand
// every Exchange input one *shared* MorselQueue over the table's rows.
// Each producer claims small row ranges ("morsels") from an atomic cursor
// as it goes, so a fraction that hits cheap rows simply claims more work
// instead of idling while a skewed sibling finishes — the dynamic
// counterpart of the paper's static "random partitioning" (§4.2.1).
//
// The queue is a single fetch_add per claim; producers running as
// scheduler tasks (see src/common/scheduler.h) pull from it until it is
// drained. Partial-aggregate/merge plans compose unchanged: each producer
// still feeds its own partial hash aggregate below the Exchange, and the
// final aggregate above merges the partial states.

#ifndef VIZQUERY_TDE_EXEC_MORSEL_H_
#define VIZQUERY_TDE_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

namespace vizq::tde {

// Default morsel size: small enough that 3-4 workers load-balance over
// even modest tables, large enough that the per-claim atomic is noise
// next to decoding kBatchRows-row batches.
inline constexpr int64_t kDefaultMorselRows = 8192;

class MorselQueue {
 public:
  MorselQueue(int64_t num_rows, int64_t morsel_rows)
      : num_rows_(std::max<int64_t>(0, num_rows)),
        morsel_rows_(std::max<int64_t>(1, morsel_rows)) {}

  // Claims the next unclaimed row range into [*begin, *end); false when
  // the table is exhausted. Wait-free; safe from any thread.
  bool Claim(int64_t* begin, int64_t* end) {
    int64_t b = cursor_.fetch_add(morsel_rows_, std::memory_order_relaxed);
    if (b >= num_rows_) return false;
    *begin = b;
    *end = std::min(num_rows_, b + morsel_rows_);
    return true;
  }

  int64_t num_rows() const { return num_rows_; }
  int64_t morsel_rows() const { return morsel_rows_; }

  // Rewinds the claim cursor so the table can be scanned again. Only safe
  // while no producer is claiming — the owning Exchange calls this from
  // Open(), before it spawns producers (a re-open would otherwise see a
  // drained queue and silently scan zero rows).
  void Reset() { cursor_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> cursor_{0};
  int64_t num_rows_;
  int64_t morsel_rows_;
};

using MorselQueuePtr = std::shared_ptr<MorselQueue>;

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_MORSEL_H_
