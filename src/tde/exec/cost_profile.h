// Cost profile for elementary functions (§4.2.2): per-row cost constants,
// obtained by empirical measurement, used by the parallelizer to decide how
// expensive an expression is and hence how aggressively to parallelize.

#ifndef VIZQUERY_TDE_EXEC_COST_PROFILE_H_
#define VIZQUERY_TDE_EXEC_COST_PROFILE_H_

#include "src/tde/exec/expression.h"

namespace vizq::tde {

// Relative per-row cost units. 1.0 ~ one int64 arithmetic op.
struct CostProfile {
  double column_ref = 0.25;
  double literal = 0.05;
  double int_arith = 1.0;
  double float_arith = 1.2;
  double comparison = 1.0;
  double logical = 0.5;
  double string_compare = 6.0;   // string ops are much more expensive
  double string_transform = 12.0;  // lower/upper/substr
  double date_part = 8.0;
  double in_probe = 2.0;
  double is_null = 0.3;

  // The default profile; constants were measured on the evaluator in this
  // repository (see bench_parallel_scan's expression sweep).
  static const CostProfile& Default();
};

// Estimated per-row cost of evaluating `expr` under `profile`.
double EstimateExprCost(const Expr& expr, const CostProfile& profile);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_COST_PROFILE_H_
