// Aggregation operators.
//
// HashAggregateOperator supports three phases, which is how the
// parallelizer expresses §4.2.3's strategies:
//   kComplete — ordinary aggregation (serial plans, or parallel fractions
//               under range partitioning where each group is wholly local).
//   kPartial  — local aggregation below the Exchange; emits re-aggregable
//               partial states (AVG decomposes into SUM and COUNT columns).
//   kFinal    — global aggregation above the Exchange, combining partials.
//
// StreamingAggregateOperator handles input already grouped by the key
// columns (sorted input is the sufficient condition the optimizer tracks,
// §4.2.4); it holds one group at a time.

#ifndef VIZQUERY_TDE_EXEC_AGGREGATE_H_
#define VIZQUERY_TDE_EXEC_AGGREGATE_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/scheduler.h"
#include "src/tde/exec/operators.h"

namespace vizq::tde {

// One aggregate computation: func over arg (arg is null for COUNT(*)).
struct AggSpec {
  AggFunc func = AggFunc::kCountStar;
  ExprPtr arg;  // bound against the child schema; nullptr for COUNT(*)
  std::string output_name;
};

enum class AggPhase : uint8_t { kComplete, kPartial, kFinal };

// A named grouping expression.
struct GroupExpr {
  std::string name;
  ExprPtr expr;  // bound against the child schema
};

// Returns the partial-state column layout of `spec` (1 column for most
// functions, SUM+COUNT for AVG). Used by the parallelizer to wire
// kPartial -> Exchange -> kFinal plans.
std::vector<ResultColumn> PartialStateColumns(const AggSpec& spec);

// Configuration of the dense (token-indexed) grouping path: every group key
// is a bare reference to a dictionary-token child column, so a group's
// identity is a mixed-radix cell index over (token+1) digits — radix
// card+1, digit 0 reserved for NULL — and the usual hash probe becomes one
// array lookup. Decided by the optimizer (DecideEncodedExec, DESIGN.md §11).
struct DenseAggConfig {
  bool enabled = false;
  std::vector<int> key_columns;    // child column index per group key
  std::vector<int64_t> key_cards;  // dictionary size per key column
  int64_t total_cells = 1;         // prod(card + 1), capped by the optimizer
};

// Configuration of the parallel kFinal merge (DESIGN.md §12): partial
// states are partitioned by group-key hash and the partitions merged
// concurrently on a TaskGroup under the query's priority class.
struct AggMergeOptions {
  int merge_dop = 1;                 // >1: partitioned parallel merge
  int64_t min_parallel_rows = 4096;  // serial below this many partial rows
  TaskClass priority = TaskClass::kInteractive;  // the query's class
  // Measurement mode (single-core host): run the merge tasks one at a
  // time and record per-task fraction timings.
  bool serial_measurement = false;
};

class HashAggregateOperator : public Operator {
 public:
  // For kFinal, `child` must produce: group columns (in group_exprs order,
  // referenced by index through the GroupExpr exprs) followed by the
  // concatenated PartialStateColumns of each spec.
  HashAggregateOperator(OperatorPtr child, std::vector<GroupExpr> group_exprs,
                        std::vector<AggSpec> specs, AggPhase phase,
                        const ExecContext& ctx = ExecContext::Background());

  // Switches group lookup to the dense token-indexed path and enables
  // whole-run folding of RLE argument columns (one multiply-add per run).
  // Only valid when the config matches this operator's group exprs; the
  // planner guarantees that. Not supported for kFinal.
  void EnableDenseGroups(DenseAggConfig config, ExecStats* stats);

  // Enables the partitioned parallel merge; only meaningful for kFinal
  // with group keys (scalar finals stay serial — one group, nothing to
  // partition). The row threshold keeps tiny merges off the scheduler.
  void EnableParallelMerge(const AggMergeOptions& options, ExecStats* stats);

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override;

 private:
  struct Accumulator {
    std::vector<double> sum_d;
    std::vector<int64_t> sum_i;
    std::vector<int64_t> count;
    std::vector<Value> extreme;
    std::vector<char> has_value;
    std::vector<std::set<Value>> distinct;
  };

  // One independent group hash table: keys, hash buckets, accumulators.
  // The serial paths use main_; the parallel kFinal merge gives each hash
  // partition its own table so merge tasks never share mutable state.
  struct GroupTable {
    std::vector<ColumnVector> group_store;  // one row per group
    std::unordered_map<uint64_t, std::vector<int64_t>> buckets;
    int64_t num_groups = 0;
    std::vector<Accumulator> accums;  // one per spec
  };

  GroupTable NewGroupTable() const;
  Status Consume(const Batch& in);
  Status ConsumeDense(Batch& in);
  // Buffers the child's partial states, then merges hash partitions
  // concurrently (falls back to serial Consume below the row threshold).
  Status ConsumeFinalParallel();
  int64_t FindOrCreateGroup(GroupTable& gt,
                            const std::vector<ColumnVector>& key_cols,
                            int64_t row);
  int64_t FindOrCreateGroup(GroupTable& gt,
                            const std::vector<ColumnVector>& key_cols,
                            int64_t row, uint64_t hash);
  // Pushes the per-spec accumulator slots of a freshly created group.
  void AppendGroupSlots(GroupTable& gt);
  void UpdateAccumulator(GroupTable& gt, int spec_idx, int64_t group,
                         const ColumnVector& arg_col, int64_t row);
  void UpdateFinalAccumulator(GroupTable& gt, int spec_idx, int64_t group,
                              const Batch& in, int first_col, int64_t row);
  void EmitGroup(const GroupTable& gt, int64_t group, Batch* batch) const;

  OperatorPtr child_;
  std::vector<GroupExpr> group_exprs_;
  std::vector<AggSpec> specs_;
  AggPhase phase_;
  BatchSchema schema_;

  GroupTable main_;
  // Parallel-merge state: one table per hash partition; emission walks
  // emit_tables_ (either {&main_} or the merge partitions) in order.
  AggMergeOptions merge_;
  std::vector<GroupTable> merge_tables_;
  std::vector<const GroupTable*> emit_tables_;
  size_t emit_table_idx_ = 0;
  // Parallel-merge stage 3 pre-materializes the output batches per
  // partition (emission walks every group and is itself worth fanning
  // out); Next() then just hands them over.
  std::vector<Batch> prebuilt_;
  size_t prebuilt_idx_ = 0;
  bool prebuilt_ready_ = false;

  bool consumed_ = false;
  int64_t emit_cursor_ = 0;
  ExecContext ctx_;
  Span* span_ = nullptr;
  int64_t batches_consumed_ = 0;

  // Dense path state: cell index -> compact group id (-1 = unseen), sized
  // lazily to total_cells on first dense batch. Group ids stay compact and
  // first-seen-ordered, so emission is identical to the hash path's.
  DenseAggConfig dense_;
  std::vector<int32_t> cell_to_group_;
  ExecStats* stats_ = nullptr;
};

class StreamingAggregateOperator : public Operator {
 public:
  // Requires the child to deliver rows grouped by the group expressions
  // (e.g. sorted by them). Same output schema as HashAggregate kComplete.
  StreamingAggregateOperator(OperatorPtr child,
                             std::vector<GroupExpr> group_exprs,
                             std::vector<AggSpec> specs,
                             const ExecContext& ctx = ExecContext::Background());

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override;

 private:
  void StartGroup(const std::vector<ColumnVector>& keys, int64_t row);
  void UpdateGroup(int spec_idx, const ColumnVector& arg_col, int64_t row);
  void FlushGroup(Batch* out);

  OperatorPtr child_;
  std::vector<GroupExpr> group_exprs_;
  std::vector<AggSpec> specs_;
  BatchSchema schema_;

  bool in_group_ = false;
  bool done_ = false;
  bool saw_any_row_ = false;
  std::vector<Value> current_key_;
  // single-group accumulators
  std::vector<double> sum_d_;
  std::vector<int64_t> sum_i_;
  std::vector<int64_t> count_;
  std::vector<Value> extreme_;
  std::vector<char> has_value_;
  std::vector<std::set<Value>> distinct_;
  ExecContext ctx_;
  Span* span_ = nullptr;
  int64_t batches_consumed_ = 0;
};

// Output schema shared by both aggregate operators.
BatchSchema MakeAggSchema(const std::vector<GroupExpr>& group_exprs,
                          const std::vector<AggSpec>& specs, AggPhase phase,
                          const BatchSchema& child_schema);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_AGGREGATE_H_
