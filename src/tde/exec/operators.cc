#include "src/tde/exec/operators.h"

#include <algorithm>
#include <map>

namespace vizq::tde {

double ExecStats::MaxFractionSeconds() const {
  double mx = 0;
  for (const FractionStat& f : fractions) mx = std::max(mx, f.seconds);
  return mx;
}

double ExecStats::SumFractionSeconds() const {
  double sum = 0;
  for (const FractionStat& f : fractions) sum += f.seconds;
  return sum;
}

namespace {

// Sum over sections of the slowest matching fraction. `stage` < 0 means all
// stages. Fractions of one section ran concurrently (critical path = their
// max); distinct sections ran back-to-back (sum their maxima).
double SectionedCriticalPath(const std::vector<ExecStats::FractionStat>& fs,
                             int stage) {
  std::map<int, double> max_by_section;
  for (const ExecStats::FractionStat& f : fs) {
    if (stage >= 0 && f.stage != stage) continue;
    double& mx = max_by_section[f.section];
    mx = std::max(mx, f.seconds);
  }
  double total = 0;
  for (const auto& [section, mx] : max_by_section) total += mx;
  return total;
}

}  // namespace

double ExecStats::CriticalPathSeconds() const {
  return SectionedCriticalPath(fractions, /*stage=*/-1);
}

double ExecStats::StageCriticalPathSeconds(int stage) const {
  return SectionedCriticalPath(fractions, stage);
}

FilterOperator::FilterOperator(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

void FilterOperator::EnableEncodedFilter(std::vector<EncodedConjunct> conjuncts,
                                         ExecStats* stats) {
  encoded_ = true;
  conjuncts_ = std::move(conjuncts);
  stats_ = stats;
}

Status FilterOperator::Open() {
  VIZQ_RETURN_IF_ERROR(child_->Open());
  if (!encoded_) return OkStatus();
  bitmaps_.clear();
  bitmaps_.resize(conjuncts_.size());
  const BatchSchema& in = child_->schema();
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    const EncodedConjunct& c = conjuncts_[i];
    if (c.kind != EncodedConjunct::Kind::kTokenBitmap) continue;
    VIZQ_ASSIGN_OR_RETURN(bitmaps_[i],
                          BuildTokenMatchBitmap(*c.expr, c.column_index,
                                                in.prototypes[c.column_index]));
  }
  return OkStatus();
}

StatusOr<bool> FilterOperator::NextEncoded(Batch* batch) {
  Batch in;
  while (true) {
    VIZQ_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    if (in.num_rows == 0) continue;
    // Live mask over physical rows, seeded from any incoming selection.
    std::vector<uint8_t> live;
    if (in.has_selection) {
      live.assign(in.num_rows, 0);
      for (int32_t r : in.selection) live[r] = 1;
    } else {
      live.assign(in.num_rows, 1);
    }
    for (size_t i = 0; i < conjuncts_.size(); ++i) {
      const EncodedConjunct& c = conjuncts_[i];
      ColumnVector* cv =
          c.column_index >= 0 ? &in.columns[c.column_index] : nullptr;
      switch (c.kind) {
        case EncodedConjunct::Kind::kTokenBitmap: {
          const TokenMatchBitmap& bm = bitmaps_[i];
          if (cv->is_run_encoded()) {
            for (const RleRun& r : cv->runs) {
              bool ok = cv->IsNull(r.start) ? bm.null_matches
                                            : bm.match[r.value] != 0;
              if (ok) continue;
              std::fill(live.begin() + r.start,
                        live.begin() + r.start + r.count, 0);
            }
          } else {
            for (int64_t r = 0; r < in.num_rows; ++r) {
              if (!live[r]) continue;
              bool ok = cv->IsNull(r) ? bm.null_matches
                                      : bm.match[cv->ints[r]] != 0;
              if (!ok) live[r] = 0;
            }
          }
          break;
        }
        case EncodedConjunct::Kind::kPerRun: {
          if (cv->is_run_encoded()) {
            VIZQ_ASSIGN_OR_RETURN(
                std::vector<uint8_t> verdicts,
                EvalPredicatePerRun(*c.expr, c.column_index, *cv));
            for (size_t k = 0; k < cv->runs.size(); ++k) {
              if (verdicts[k]) continue;
              const RleRun& r = cv->runs[k];
              std::fill(live.begin() + r.start,
                        live.begin() + r.start + r.count, 0);
            }
            break;
          }
          [[fallthrough]];  // batch arrived flat: evaluate per row
        }
        case EncodedConjunct::Kind::kPerRow: {
          // The planner only classifies kPerRow for conjuncts over flat
          // columns; flatten defensively in case a run reached us anyway.
          std::vector<int> refs;
          c.expr->CollectColumnIndices(&refs);
          for (int col : refs) in.columns[col].DecodeRuns();
          VIZQ_ASSIGN_OR_RETURN(std::vector<int64_t> sel,
                                EvalPredicate(*c.expr, in));
          std::vector<uint8_t> match(in.num_rows, 0);
          for (int64_t r : sel) match[r] = 1;
          for (int64_t r = 0; r < in.num_rows; ++r) {
            if (live[r] && !match[r]) live[r] = 0;
          }
          break;
        }
      }
    }
    int64_t survivors = 0;
    for (int64_t r = 0; r < in.num_rows; ++r) survivors += live[r];
    if (survivors == 0) {
      *batch = Batch{};
      return true;  // empty batch; caller loops
    }
    *batch = std::move(in);
    if (survivors == batch->num_rows) {
      batch->ClearSelection();
      return true;
    }
    batch->selection.clear();
    batch->selection.reserve(survivors);
    for (int64_t r = 0; r < batch->num_rows; ++r) {
      if (live[r]) batch->selection.push_back(static_cast<int32_t>(r));
    }
    batch->has_selection = true;
    return true;
  }
}

StatusOr<bool> FilterOperator::Next(Batch* batch) {
  if (encoded_) return NextEncoded(batch);
  Batch in;
  while (true) {
    VIZQ_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    if (in.num_rows == 0) continue;
    VIZQ_ASSIGN_OR_RETURN(std::vector<int64_t> selected,
                          EvalPredicate(*predicate_, in));
    *batch = schema().NewBatch();
    for (size_t c = 0; c < in.columns.size(); ++c) {
      // Keep the input's layout (e.g. dictionary) on the way through.
      batch->columns[c] = ColumnVector::LayoutLike(in.columns[c]);
      batch->columns[c].Reserve(static_cast<int64_t>(selected.size()));
      for (int64_t row : selected) {
        batch->columns[c].AppendFrom(in.columns[c], row);
      }
    }
    batch->num_rows = static_cast<int64_t>(selected.size());
    return true;  // possibly-empty batch; caller loops
  }
}

ProjectOperator::ProjectOperator(OperatorPtr child,
                                 std::vector<NamedExpr> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  for (const NamedExpr& ne : exprs_) {
    schema_.names.push_back(ne.name);
    ColumnVector proto(ne.expr->result_type);
    // A bare column reference keeps its dictionary layout.
    if (ne.expr->kind == ExprKind::kColumnRef &&
        ne.expr->column_index >= 0 &&
        ne.expr->column_index < child_->schema().num_columns()) {
      proto.dict = child_->schema().prototypes[ne.expr->column_index].dict;
    }
    schema_.prototypes.push_back(std::move(proto));
  }
}

StatusOr<bool> ProjectOperator::Next(Batch* batch) {
  Batch in;
  VIZQ_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  batch->columns.clear();
  batch->columns.reserve(exprs_.size());
  for (const NamedExpr& ne : exprs_) {
    VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(*ne.expr, in));
    batch->columns.push_back(std::move(v));
  }
  batch->num_rows = in.num_rows;
  return true;
}

StatusOr<ResultTable> CollectToResultTable(Operator* op) {
  const BatchSchema& schema = op->schema();
  std::vector<ResultColumn> cols;
  cols.reserve(schema.names.size());
  for (int i = 0; i < schema.num_columns(); ++i) {
    cols.push_back(ResultColumn{schema.names[i], schema.prototypes[i].type});
  }
  ResultTable out(std::move(cols));
  VIZQ_RETURN_IF_ERROR(op->Open());
  Batch batch;
  while (true) {
    VIZQ_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (!more) break;
    // Batches from selection-aware operators carry dead physical rows.
    const int64_t live = batch.has_selection
                             ? static_cast<int64_t>(batch.selection.size())
                             : batch.num_rows;
    for (int64_t i = 0; i < live; ++i) {
      const int64_t r = batch.has_selection ? batch.selection[i] : i;
      out.AddRow(batch.GetRow(r));
    }
  }
  VIZQ_RETURN_IF_ERROR(op->Close());
  return out;
}

StatusOr<int64_t> CollectToBatch(Operator* op, Batch* out) {
  *out = op->schema().NewBatch();
  VIZQ_RETURN_IF_ERROR(op->Open());
  Batch batch;
  int64_t total = 0;
  while (true) {
    VIZQ_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (!more) break;
    const int64_t live = batch.has_selection
                             ? static_cast<int64_t>(batch.selection.size())
                             : batch.num_rows;
    for (size_t c = 0; c < out->columns.size(); ++c) {
      for (int64_t i = 0; i < live; ++i) {
        const int64_t r = batch.has_selection ? batch.selection[i] : i;
        out->columns[c].AppendFrom(batch.columns[c], r);
      }
    }
    total += live;
  }
  out->num_rows = total;
  VIZQ_RETURN_IF_ERROR(op->Close());
  return total;
}

}  // namespace vizq::tde
