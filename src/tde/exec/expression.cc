#include "src/tde/exec/expression.h"

#include <unordered_set>

#include "src/common/rng.h"
#include "src/common/str_util.h"

namespace vizq::tde {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

const char* ScalarFuncToString(ScalarFunc f) {
  switch (f) {
    case ScalarFunc::kAbs: return "abs";
    case ScalarFunc::kLower: return "lower";
    case ScalarFunc::kUpper: return "upper";
    case ScalarFunc::kStrLen: return "strlen";
    case ScalarFunc::kSubstr: return "substr";
    case ScalarFunc::kYear: return "year";
    case ScalarFunc::kMonth: return "month";
    case ScalarFunc::kWeekday: return "weekday";
    case ScalarFunc::kIf: return "if";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      if (!column_name.empty()) return column_name;
      return "$" + std::to_string(column_index);
    case ExprKind::kLiteral:
      if (literal.is_string()) return "\"" + literal.ToString() + "\"";
      return literal.ToString();
    case ExprKind::kBinary:
      return "(" + std::string(BinaryOpToString(binary_op)) + " " +
             children[0]->ToString() + " " + children[1]->ToString() + ")";
    case ExprKind::kUnary:
      return std::string("(") + (unary_op == UnaryOp::kNot ? "not " : "neg ") +
             children[0]->ToString() + ")";
    case ExprKind::kFunc: {
      std::string out = "(";
      out += ScalarFuncToString(func);
      for (const ExprPtr& c : children) {
        out += " ";
        out += c->ToString();
      }
      out += ")";
      return out;
    }
    case ExprKind::kIn: {
      std::string out = "(in " + children[0]->ToString();
      for (const Value& v : in_set) {
        out += " ";
        out += v.is_string() ? "\"" + v.ToString() + "\"" : v.ToString();
      }
      out += ")";
      return out;
    }
    case ExprKind::kIsNull:
      return "(isnull " + children[0]->ToString() + ")";
  }
  return "?";
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::kColumnRef:
      if (bound && other.bound) return column_index == other.column_index;
      return column_name == other.column_name &&
             column_index == other.column_index;
    case ExprKind::kLiteral:
      return literal.Equals(other.literal);
    case ExprKind::kBinary:
      if (binary_op != other.binary_op) return false;
      break;
    case ExprKind::kUnary:
      if (unary_op != other.unary_op) return false;
      break;
    case ExprKind::kFunc:
      if (func != other.func) return false;
      break;
    case ExprKind::kIn:
      if (in_set.size() != other.in_set.size()) return false;
      for (size_t i = 0; i < in_set.size(); ++i) {
        if (!in_set[i].Equals(other.in_set[i])) return false;
      }
      break;
    case ExprKind::kIsNull:
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

uint64_t Expr::Hash() const {
  uint64_t h = static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ULL;
  switch (kind) {
    case ExprKind::kColumnRef:
      h = HashCombine(h, bound ? static_cast<uint64_t>(column_index)
                               : CollatedHash(column_name, Collation::kBinary));
      break;
    case ExprKind::kLiteral:
      h = HashCombine(h, literal.Hash());
      break;
    case ExprKind::kBinary:
      h = HashCombine(h, static_cast<uint64_t>(binary_op));
      break;
    case ExprKind::kUnary:
      h = HashCombine(h, static_cast<uint64_t>(unary_op));
      break;
    case ExprKind::kFunc:
      h = HashCombine(h, static_cast<uint64_t>(func));
      break;
    case ExprKind::kIn:
      for (const Value& v : in_set) h = HashCombine(h, v.Hash());
      break;
    case ExprKind::kIsNull:
      break;
  }
  for (const ExprPtr& c : children) h = HashCombine(h, c->Hash());
  return h;
}

void Expr::CollectColumnIndices(std::vector<int>* out) const {
  if (kind == ExprKind::kColumnRef && column_index >= 0) {
    out->push_back(column_index);
  }
  for (const ExprPtr& c : children) c->CollectColumnIndices(out);
}

void Expr::CollectColumnNames(std::vector<std::string>* out) const {
  if (kind == ExprKind::kColumnRef && !column_name.empty()) {
    out->push_back(column_name);
  }
  for (const ExprPtr& c : children) c->CollectColumnNames(out);
}

// --- factories ---

namespace {
std::shared_ptr<Expr> NewExpr(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr Col(std::string name) {
  auto e = NewExpr(ExprKind::kColumnRef);
  e->column_name = std::move(name);
  return e;
}

ExprPtr ColIdx(int index, DataType type) {
  auto e = NewExpr(ExprKind::kColumnRef);
  e->column_index = index;
  e->result_type = type;
  e->bound = true;
  return e;
}

ExprPtr Lit(Value v) {
  auto e = NewExpr(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}
ExprPtr Lit(int64_t v) { return Lit(Value(v)); }
ExprPtr Lit(double v) { return Lit(Value(v)); }
ExprPtr Lit(const char* v) { return Lit(Value(v)); }
ExprPtr Lit(bool v) { return Lit(Value(v)); }

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr(ExprKind::kBinary);
  e->binary_op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Eq(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kEq, std::move(a), std::move(b)); }
ExprPtr Ne(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kNe, std::move(a), std::move(b)); }
ExprPtr Lt(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kLt, std::move(a), std::move(b)); }
ExprPtr Le(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kLe, std::move(a), std::move(b)); }
ExprPtr Gt(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kGt, std::move(a), std::move(b)); }
ExprPtr Ge(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kGe, std::move(a), std::move(b)); }
ExprPtr And(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kAnd, std::move(a), std::move(b)); }
ExprPtr Or(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kOr, std::move(a), std::move(b)); }
ExprPtr Add(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kAdd, std::move(a), std::move(b)); }
ExprPtr Sub(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kSub, std::move(a), std::move(b)); }
ExprPtr Mul(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kMul, std::move(a), std::move(b)); }
ExprPtr Div(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kDiv, std::move(a), std::move(b)); }

ExprPtr Not(ExprPtr operand) {
  auto e = NewExpr(ExprKind::kUnary);
  e->unary_op = UnaryOp::kNot;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr Func(ScalarFunc f, std::vector<ExprPtr> args) {
  auto e = NewExpr(ExprKind::kFunc);
  e->func = f;
  e->children = std::move(args);
  return e;
}

ExprPtr In(ExprPtr operand, std::vector<Value> set) {
  auto e = NewExpr(ExprKind::kIn);
  e->children = {std::move(operand)};
  e->in_set = std::move(set);
  return e;
}

ExprPtr IsNull(ExprPtr operand) {
  auto e = NewExpr(ExprKind::kIsNull);
  e->children = {std::move(operand)};
  return e;
}

// --- binding ---

namespace {

DataType LiteralType(const Value& v) {
  if (v.is_bool()) return DataType::Bool();
  if (v.is_double()) return DataType::Float64();
  if (v.is_string()) return DataType::String();
  return DataType::Int64();  // ints and nulls
}

bool KindsComparable(const DataType& a, const DataType& b) {
  if (a.is_numeric() && b.is_numeric()) return true;
  if (a.kind == TypeKind::kString && b.kind == TypeKind::kString) return true;
  // dates compare with dates and with ints (epoch-day literals)
  auto date_like = [](const DataType& t) {
    return t.kind == TypeKind::kDate || t.kind == TypeKind::kInt64;
  };
  if (date_like(a) && date_like(b)) return true;
  if (a.kind == TypeKind::kBool && b.kind == TypeKind::kBool) return true;
  return false;
}

Collation PickCollation(const DataType& a, const DataType& b) {
  if (a.kind == TypeKind::kString && a.collation != Collation::kBinary) {
    return a.collation;
  }
  if (b.kind == TypeKind::kString) return b.collation;
  return Collation::kBinary;
}

}  // namespace

StatusOr<ExprPtr> BindExpr(const ExprPtr& expr, const BatchSchema& schema) {
  auto out = std::make_shared<Expr>(*expr);
  out->children.clear();
  for (const ExprPtr& c : expr->children) {
    VIZQ_ASSIGN_OR_RETURN(ExprPtr bc, BindExpr(c, schema));
    out->children.push_back(std::move(bc));
  }
  switch (expr->kind) {
    case ExprKind::kColumnRef: {
      int idx = expr->column_index;
      if (idx < 0) {
        idx = schema.FindColumn(expr->column_name);
        if (idx < 0) {
          return NotFound("column '" + expr->column_name + "' not found");
        }
      }
      if (idx >= schema.num_columns()) {
        return InvalidArgument("column index out of range");
      }
      out->column_index = idx;
      out->result_type = schema.prototypes[idx].type;
      break;
    }
    case ExprKind::kLiteral:
      out->result_type = LiteralType(expr->literal);
      break;
    case ExprKind::kBinary: {
      const DataType& lt = out->children[0]->result_type;
      const DataType& rt = out->children[1]->result_type;
      switch (expr->binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
          if (!lt.is_numeric() || !rt.is_numeric()) {
            // Date arithmetic: date +- int stays a date.
            if ((lt.kind == TypeKind::kDate && rt.kind == TypeKind::kInt64) ||
                (rt.kind == TypeKind::kDate && lt.kind == TypeKind::kInt64)) {
              out->result_type = DataType::Date();
              break;
            }
            return InvalidArgument("arithmetic requires numeric operands: " +
                                   expr->ToString());
          }
          out->result_type = (lt.kind == TypeKind::kFloat64 ||
                              rt.kind == TypeKind::kFloat64)
                                 ? DataType::Float64()
                                 : DataType::Int64();
          break;
        case BinaryOp::kDiv:
          if (!lt.is_numeric() || !rt.is_numeric()) {
            return InvalidArgument("division requires numeric operands");
          }
          out->result_type = DataType::Float64();
          break;
        case BinaryOp::kMod:
          if (lt.kind != TypeKind::kInt64 || rt.kind != TypeKind::kInt64) {
            return InvalidArgument("mod requires integer operands");
          }
          out->result_type = DataType::Int64();
          break;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          if (!KindsComparable(lt, rt)) {
            return InvalidArgument("incomparable operand types in " +
                                   expr->ToString());
          }
          out->result_type = DataType::Bool();
          break;
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if (lt.kind != TypeKind::kBool || rt.kind != TypeKind::kBool) {
            return InvalidArgument("and/or require boolean operands");
          }
          out->result_type = DataType::Bool();
          break;
      }
      break;
    }
    case ExprKind::kUnary:
      if (expr->unary_op == UnaryOp::kNot) {
        if (out->children[0]->result_type.kind != TypeKind::kBool) {
          return InvalidArgument("not requires a boolean operand");
        }
        out->result_type = DataType::Bool();
      } else {
        if (!out->children[0]->result_type.is_numeric()) {
          return InvalidArgument("negation requires a numeric operand");
        }
        out->result_type = out->children[0]->result_type;
      }
      break;
    case ExprKind::kFunc: {
      auto arg_type = [&](size_t i) { return out->children[i]->result_type; };
      auto require_args = [&](size_t n) -> Status {
        if (out->children.size() != n) {
          return InvalidArgument(std::string(ScalarFuncToString(expr->func)) +
                                 " expects " + std::to_string(n) + " args");
        }
        return OkStatus();
      };
      switch (expr->func) {
        case ScalarFunc::kAbs:
          VIZQ_RETURN_IF_ERROR(require_args(1));
          if (!arg_type(0).is_numeric()) {
            return InvalidArgument("abs requires a numeric argument");
          }
          out->result_type = arg_type(0);
          break;
        case ScalarFunc::kLower:
        case ScalarFunc::kUpper:
          VIZQ_RETURN_IF_ERROR(require_args(1));
          if (!arg_type(0).is_string()) {
            return InvalidArgument("lower/upper require a string argument");
          }
          out->result_type = arg_type(0);
          break;
        case ScalarFunc::kStrLen:
          VIZQ_RETURN_IF_ERROR(require_args(1));
          if (!arg_type(0).is_string()) {
            return InvalidArgument("strlen requires a string argument");
          }
          out->result_type = DataType::Int64();
          break;
        case ScalarFunc::kSubstr:
          VIZQ_RETURN_IF_ERROR(require_args(3));
          if (!arg_type(0).is_string()) {
            return InvalidArgument("substr requires a string argument");
          }
          out->result_type = DataType::String(arg_type(0).collation);
          break;
        case ScalarFunc::kYear:
        case ScalarFunc::kMonth:
        case ScalarFunc::kWeekday:
          VIZQ_RETURN_IF_ERROR(require_args(1));
          if (arg_type(0).kind != TypeKind::kDate) {
            return InvalidArgument("date function requires a date argument");
          }
          out->result_type = DataType::Int64();
          break;
        case ScalarFunc::kIf: {
          VIZQ_RETURN_IF_ERROR(require_args(3));
          if (arg_type(0).kind != TypeKind::kBool) {
            return InvalidArgument("if() requires a boolean condition");
          }
          DataType a = arg_type(1);
          DataType b = arg_type(2);
          if (a.kind == b.kind) {
            out->result_type = a;
          } else if (a.is_numeric() && b.is_numeric()) {
            out->result_type = DataType::Float64();
          } else {
            return InvalidArgument("if() branches have incompatible types");
          }
          break;
        }
      }
      break;
    }
    case ExprKind::kIn:
      out->result_type = DataType::Bool();
      break;
    case ExprKind::kIsNull:
      out->result_type = DataType::Bool();
      break;
  }
  out->bound = true;
  return ExprPtr(out);
}

ExprPtr RemapColumns(const ExprPtr& expr, const std::vector<int>& mapping) {
  auto out = std::make_shared<Expr>(*expr);
  if (out->kind == ExprKind::kColumnRef && out->column_index >= 0 &&
      out->column_index < static_cast<int>(mapping.size())) {
    out->column_index = mapping[out->column_index];
  }
  out->children.clear();
  for (const ExprPtr& c : expr->children) {
    out->children.push_back(RemapColumns(c, mapping));
  }
  return out;
}

// --- evaluation ---

namespace {

// Null-aware fetch of operand row as double (numeric/bool/date payloads).
inline double NumAt(const ColumnVector& v, int64_t i) {
  return v.type.kind == TypeKind::kFloat64 ? v.doubles[i]
                                           : static_cast<double>(v.ints[i]);
}

inline int64_t IntAt(const ColumnVector& v, int64_t i) {
  return v.type.kind == TypeKind::kFloat64 ? static_cast<int64_t>(v.doubles[i])
                                           : v.ints[i];
}

StatusOr<ColumnVector> EvalBinary(const Expr& expr, const Batch& batch);
StatusOr<ColumnVector> EvalFunc(const Expr& expr, const Batch& batch);
StatusOr<ColumnVector> EvalIn(const Expr& expr, const Batch& batch);

}  // namespace

StatusOr<ColumnVector> EvalExpr(const Expr& expr, const Batch& batch) {
  if (!expr.bound) return Internal("evaluating unbound expression");
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return batch.columns[expr.column_index];
    case ExprKind::kLiteral: {
      ColumnVector out(expr.result_type);
      out.Reserve(batch.num_rows);
      for (int64_t i = 0; i < batch.num_rows; ++i) {
        out.AppendValue(expr.literal);
      }
      return out;
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, batch);
    case ExprKind::kUnary: {
      VIZQ_ASSIGN_OR_RETURN(ColumnVector in, EvalExpr(*expr.children[0], batch));
      ColumnVector out(expr.result_type);
      out.Reserve(batch.num_rows);
      for (int64_t i = 0; i < batch.num_rows; ++i) {
        if (in.IsNull(i)) {
          out.AppendNull();
        } else if (expr.unary_op == UnaryOp::kNot) {
          out.AppendInt(in.ints[i] != 0 ? 0 : 1);
        } else if (expr.result_type.kind == TypeKind::kFloat64) {
          out.AppendDouble(-in.doubles[i]);
        } else {
          out.AppendInt(-in.ints[i]);
        }
      }
      return out;
    }
    case ExprKind::kFunc:
      return EvalFunc(expr, batch);
    case ExprKind::kIn:
      return EvalIn(expr, batch);
    case ExprKind::kIsNull: {
      VIZQ_ASSIGN_OR_RETURN(ColumnVector in, EvalExpr(*expr.children[0], batch));
      ColumnVector out(DataType::Bool());
      out.Reserve(batch.num_rows);
      for (int64_t i = 0; i < batch.num_rows; ++i) {
        out.AppendInt(in.IsNull(i) ? 1 : 0);
      }
      return out;
    }
  }
  return Internal("unhandled expression kind");
}

namespace {

StatusOr<ColumnVector> EvalBinary(const Expr& expr, const Batch& batch) {
  VIZQ_ASSIGN_OR_RETURN(ColumnVector lhs, EvalExpr(*expr.children[0], batch));
  VIZQ_ASSIGN_OR_RETURN(ColumnVector rhs, EvalExpr(*expr.children[1], batch));
  int64_t n = batch.num_rows;
  ColumnVector out(expr.result_type);
  out.Reserve(n);

  BinaryOp op = expr.binary_op;
  // Logical ops use Kleene three-valued logic; everything else propagates
  // nulls.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    for (int64_t i = 0; i < n; ++i) {
      bool ln = lhs.IsNull(i);
      bool rn = rhs.IsNull(i);
      bool lv = !ln && lhs.ints[i] != 0;
      bool rv = !rn && rhs.ints[i] != 0;
      if (op == BinaryOp::kAnd) {
        if ((!ln && !lv) || (!rn && !rv)) {
          out.AppendInt(0);
        } else if (ln || rn) {
          out.AppendNull();
        } else {
          out.AppendInt(1);
        }
      } else {
        if ((!ln && lv) || (!rn && rv)) {
          out.AppendInt(1);
        } else if (ln || rn) {
          out.AppendNull();
        } else {
          out.AppendInt(0);
        }
      }
    }
    return out;
  }

  bool is_comparison = op == BinaryOp::kEq || op == BinaryOp::kNe ||
                       op == BinaryOp::kLt || op == BinaryOp::kLe ||
                       op == BinaryOp::kGt || op == BinaryOp::kGe;

  if (is_comparison) {
    bool strings = lhs.type.kind == TypeKind::kString;
    Collation collation = PickCollation(lhs.type, rhs.type);
    // Token fast path for equality over the same dictionary.
    bool token_eq = strings && lhs.dict != nullptr && lhs.dict == rhs.dict &&
                    (op == BinaryOp::kEq || op == BinaryOp::kNe);
    for (int64_t i = 0; i < n; ++i) {
      if (lhs.IsNull(i) || rhs.IsNull(i)) {
        out.AppendNull();
        continue;
      }
      int cmp;
      if (token_eq) {
        cmp = lhs.ints[i] == rhs.ints[i] ? 0 : 1;
        if (op == BinaryOp::kEq) {
          out.AppendInt(cmp == 0 ? 1 : 0);
        } else {
          out.AppendInt(cmp == 0 ? 0 : 1);
        }
        continue;
      }
      if (strings) {
        cmp = CollatedCompare(lhs.GetStringView(i), rhs.GetStringView(i),
                              collation);
      } else if (lhs.type.kind != TypeKind::kFloat64 &&
                 rhs.type.kind != TypeKind::kFloat64) {
        int64_t a = lhs.ints[i];
        int64_t b = rhs.ints[i];
        cmp = a < b ? -1 : (a > b ? 1 : 0);
      } else {
        double a = NumAt(lhs, i);
        double b = NumAt(rhs, i);
        cmp = a < b ? -1 : (a > b ? 1 : 0);
      }
      bool result = false;
      switch (op) {
        case BinaryOp::kEq: result = cmp == 0; break;
        case BinaryOp::kNe: result = cmp != 0; break;
        case BinaryOp::kLt: result = cmp < 0; break;
        case BinaryOp::kLe: result = cmp <= 0; break;
        case BinaryOp::kGt: result = cmp > 0; break;
        case BinaryOp::kGe: result = cmp >= 0; break;
        default: break;
      }
      out.AppendInt(result ? 1 : 0);
    }
    return out;
  }

  // Arithmetic.
  bool float_result = expr.result_type.kind == TypeKind::kFloat64;
  for (int64_t i = 0; i < n; ++i) {
    if (lhs.IsNull(i) || rhs.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    if (float_result) {
      double a = NumAt(lhs, i);
      double b = NumAt(rhs, i);
      double r = 0;
      switch (op) {
        case BinaryOp::kAdd: r = a + b; break;
        case BinaryOp::kSub: r = a - b; break;
        case BinaryOp::kMul: r = a * b; break;
        case BinaryOp::kDiv:
          if (b == 0) {
            out.AppendNull();
            continue;
          }
          r = a / b;
          break;
        default: break;
      }
      out.AppendDouble(r);
    } else {
      int64_t a = IntAt(lhs, i);
      int64_t b = IntAt(rhs, i);
      int64_t r = 0;
      switch (op) {
        case BinaryOp::kAdd: r = a + b; break;
        case BinaryOp::kSub: r = a - b; break;
        case BinaryOp::kMul: r = a * b; break;
        case BinaryOp::kMod:
          if (b == 0) {
            out.AppendNull();
            continue;
          }
          r = a % b;
          break;
        default: break;
      }
      out.AppendInt(r);
    }
  }
  return out;
}

StatusOr<ColumnVector> EvalFunc(const Expr& expr, const Batch& batch) {
  int64_t n = batch.num_rows;
  ColumnVector out(expr.result_type);
  out.Reserve(n);

  if (expr.func == ScalarFunc::kIf) {
    VIZQ_ASSIGN_OR_RETURN(ColumnVector cond, EvalExpr(*expr.children[0], batch));
    VIZQ_ASSIGN_OR_RETURN(ColumnVector then_v, EvalExpr(*expr.children[1], batch));
    VIZQ_ASSIGN_OR_RETURN(ColumnVector else_v, EvalExpr(*expr.children[2], batch));
    for (int64_t i = 0; i < n; ++i) {
      if (cond.IsNull(i)) {
        out.AppendNull();
        continue;
      }
      const ColumnVector& src = cond.ints[i] != 0 ? then_v : else_v;
      if (src.IsNull(i)) {
        out.AppendNull();
      } else if (expr.result_type.kind == TypeKind::kFloat64) {
        out.AppendDouble(NumAt(src, i));
      } else if (expr.result_type.kind == TypeKind::kString) {
        out.AppendValue(src.GetValue(i));
      } else {
        out.AppendInt(src.ints[i]);
      }
    }
    return out;
  }

  VIZQ_ASSIGN_OR_RETURN(ColumnVector a, EvalExpr(*expr.children[0], batch));
  ColumnVector b, c;
  if (expr.children.size() > 1) {
    VIZQ_ASSIGN_OR_RETURN(b, EvalExpr(*expr.children[1], batch));
  }
  if (expr.children.size() > 2) {
    VIZQ_ASSIGN_OR_RETURN(c, EvalExpr(*expr.children[2], batch));
  }

  for (int64_t i = 0; i < n; ++i) {
    if (a.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    switch (expr.func) {
      case ScalarFunc::kAbs:
        if (expr.result_type.kind == TypeKind::kFloat64) {
          out.AppendDouble(a.doubles[i] < 0 ? -a.doubles[i] : a.doubles[i]);
        } else {
          out.AppendInt(a.ints[i] < 0 ? -a.ints[i] : a.ints[i]);
        }
        break;
      case ScalarFunc::kLower: {
        std::string s(a.GetStringView(i));
        for (char& ch : s) {
          if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
        }
        out.AppendValue(Value(std::move(s)));
        break;
      }
      case ScalarFunc::kUpper: {
        std::string s(a.GetStringView(i));
        for (char& ch : s) {
          if (ch >= 'a' && ch <= 'z') ch = static_cast<char>(ch - 'a' + 'A');
        }
        out.AppendValue(Value(std::move(s)));
        break;
      }
      case ScalarFunc::kStrLen:
        out.AppendInt(static_cast<int64_t>(a.GetStringView(i).size()));
        break;
      case ScalarFunc::kSubstr: {
        if (b.IsNull(i) || c.IsNull(i)) {
          out.AppendNull();
          break;
        }
        std::string_view s = a.GetStringView(i);
        int64_t start = b.ints[i] - 1;  // 1-based
        int64_t len = c.ints[i];
        if (start < 0) start = 0;
        if (start > static_cast<int64_t>(s.size())) start = s.size();
        if (len < 0) len = 0;
        out.AppendValue(Value(std::string(s.substr(start, len))));
        break;
      }
      case ScalarFunc::kYear: {
        std::string d = FormatDateDays(a.ints[i]);
        out.AppendInt(*ParseInt64(std::string_view(d).substr(0, 4)));
        break;
      }
      case ScalarFunc::kMonth: {
        std::string d = FormatDateDays(a.ints[i]);
        out.AppendInt(*ParseInt64(std::string_view(d).substr(5, 2)));
        break;
      }
      case ScalarFunc::kWeekday:
        out.AppendInt(DayOfWeek(a.ints[i]));
        break;
      case ScalarFunc::kIf:
        break;  // handled above
    }
  }
  return out;
}

StatusOr<ColumnVector> EvalIn(const Expr& expr, const Batch& batch) {
  VIZQ_ASSIGN_OR_RETURN(ColumnVector in, EvalExpr(*expr.children[0], batch));
  int64_t n = batch.num_rows;
  ColumnVector out(DataType::Bool());
  out.Reserve(n);

  if (in.type.kind == TypeKind::kString) {
    if (in.dict != nullptr) {
      // Token fast path: translate the literal set once.
      std::unordered_set<int64_t> tokens;
      for (const Value& v : expr.in_set) {
        if (!v.is_string()) continue;
        int64_t t = in.dict->Find(v.string_value());
        if (t >= 0) tokens.insert(t);
      }
      for (int64_t i = 0; i < n; ++i) {
        if (in.IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendInt(tokens.count(in.ints[i]) != 0 ? 1 : 0);
        }
      }
      return out;
    }
    std::unordered_set<std::string> keys;
    for (const Value& v : expr.in_set) {
      if (v.is_string()) {
        keys.insert(CollationKey(v.string_value(), in.type.collation));
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      if (in.IsNull(i)) {
        out.AppendNull();
      } else {
        out.AppendInt(
            keys.count(CollationKey(in.GetStringView(i), in.type.collation)) !=
                    0
                ? 1
                : 0);
      }
    }
    return out;
  }

  // Numeric membership via double widening (safe for this domain's ranges).
  std::unordered_set<int64_t> int_set;
  std::unordered_set<double> dbl_set;
  bool all_int = in.type.kind != TypeKind::kFloat64;
  for (const Value& v : expr.in_set) {
    if (v.is_null() || v.is_string()) continue;
    if (all_int && v.is_int()) {
      int_set.insert(v.int_value());
    } else {
      all_int = false;
    }
    dbl_set.insert(v.AsDouble());
  }
  for (int64_t i = 0; i < n; ++i) {
    if (in.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    bool member = all_int ? int_set.count(in.ints[i]) != 0
                          : dbl_set.count(NumAt(in, i)) != 0;
    out.AppendInt(member ? 1 : 0);
  }
  return out;
}

}  // namespace

StatusOr<std::vector<int64_t>> EvalPredicate(const Expr& expr,
                                             const Batch& batch) {
  VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(expr, batch));
  if (v.type.kind != TypeKind::kBool) {
    return Internal("predicate did not evaluate to a boolean");
  }
  std::vector<int64_t> selected;
  selected.reserve(batch.num_rows);
  for (int64_t i = 0; i < batch.num_rows; ++i) {
    if (!v.IsNull(i) && v.ints[i] != 0) selected.push_back(i);
  }
  return selected;
}

StatusOr<TokenMatchBitmap> BuildTokenMatchBitmap(const Expr& expr,
                                                 int column_index,
                                                 const ColumnVector& proto) {
  if (proto.dict == nullptr) {
    return Internal("token bitmap requires a dictionary column");
  }
  TokenMatchBitmap out;
  int64_t n = proto.dict->size();
  out.match.assign(n, 0);

  // One synthetic row per distinct token, evaluated by the normal path.
  Batch tokens;
  tokens.columns.resize(column_index + 1);
  ColumnVector cv = ColumnVector::LayoutLike(proto);
  cv.Reserve(n);
  for (int64_t t = 0; t < n; ++t) cv.AppendToken(t);
  tokens.columns[column_index] = std::move(cv);
  tokens.num_rows = n;
  VIZQ_ASSIGN_OR_RETURN(std::vector<int64_t> sel, EvalPredicate(expr, tokens));
  for (int64_t row : sel) out.match[row] = 1;

  // And one NULL row for the null verdict (IS NULL predicates etc.).
  Batch null_row;
  null_row.columns.resize(column_index + 1);
  ColumnVector nv = ColumnVector::LayoutLike(proto);
  nv.AppendNull();
  null_row.columns[column_index] = std::move(nv);
  null_row.num_rows = 1;
  VIZQ_ASSIGN_OR_RETURN(std::vector<int64_t> nsel,
                        EvalPredicate(expr, null_row));
  out.null_matches = !nsel.empty();
  return out;
}

StatusOr<std::vector<uint8_t>> EvalPredicatePerRun(const Expr& expr,
                                                   int column_index,
                                                   const ColumnVector& cv) {
  if (!cv.is_run_encoded()) {
    return Internal("per-run predicate requires a run-encoded vector");
  }
  int64_t n = static_cast<int64_t>(cv.runs.size());
  // One synthetic row per run. Runs never straddle a null/non-null boundary
  // (storage invariant), so the run's first row carries its null status.
  Batch synth;
  synth.columns.resize(column_index + 1);
  ColumnVector one(cv.type);
  one.dict = cv.dict;
  one.Reserve(n);
  for (const RleRun& r : cv.runs) {
    if (cv.IsNull(r.start)) {
      one.AppendNull();
    } else if (cv.type.kind == TypeKind::kFloat64) {
      one.AppendDouble(cv.DoubleAt(r.start));
    } else if (one.dict != nullptr) {
      one.AppendToken(r.value);
    } else {
      one.AppendInt(r.value);
    }
  }
  synth.columns[column_index] = std::move(one);
  synth.num_rows = n;
  VIZQ_ASSIGN_OR_RETURN(std::vector<int64_t> sel, EvalPredicate(expr, synth));
  std::vector<uint8_t> verdicts(n, 0);
  for (int64_t row : sel) verdicts[row] = 1;
  return verdicts;
}

}  // namespace vizq::tde
