#include "src/tde/exec/join.h"

#include "src/common/rng.h"

namespace vizq::tde {

// Deadline/cancel poll frequency for the probe side.
constexpr int64_t kCtxPollBatches = 4;

SharedBuildState::SharedBuildState(OperatorPtr right,
                                   std::vector<ExprPtr> right_keys)
    : right_(std::move(right)), right_keys_(std::move(right_keys)) {}

Status SharedBuildState::EnsureBuilt() {
  std::lock_guard<std::mutex> lock(mu_);
  if (built_) return OkStatus();
  VIZQ_ASSIGN_OR_RETURN(int64_t rows, CollectToBatch(right_.get(), &build_));
  key_cols_.clear();
  key_cols_.reserve(right_keys_.size());
  for (const ExprPtr& k : right_keys_) {
    VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(*k, build_));
    key_cols_.push_back(std::move(v));
  }
  for (int64_t r = 0; r < rows; ++r) {
    bool has_null_key = false;
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const ColumnVector& kc : key_cols_) {
      if (kc.IsNull(r)) {
        has_null_key = true;
        break;
      }
      h = HashCombine(h, kc.HashAt(r));
    }
    if (has_null_key) continue;  // null keys never match
    table_[h].push_back(r);
  }
  built_ = true;
  return OkStatus();
}

const std::vector<int64_t>* SharedBuildState::Probe(uint64_t h) const {
  auto it = table_.find(h);
  return it == table_.end() ? nullptr : &it->second;
}

HashJoinOperator::HashJoinOperator(OperatorPtr left,
                                   std::shared_ptr<SharedBuildState> build,
                                   std::vector<ExprPtr> left_keys,
                                   JoinType join_type, const ExecContext& ctx)
    : left_(std::move(left)),
      build_(std::move(build)),
      left_keys_(std::move(left_keys)),
      join_type_(join_type),
      ctx_(ctx) {
  // Output schema: left columns, then right columns (renamed on collision).
  const BatchSchema& ls = left_->schema();
  const BatchSchema& rs = build_->right_schema();
  schema_.names = ls.names;
  schema_.prototypes = ls.prototypes;
  for (int i = 0; i < rs.num_columns(); ++i) {
    std::string name = rs.names[i];
    if (schema_.FindColumn(name) >= 0) name = "r." + name;
    schema_.names.push_back(std::move(name));
    schema_.prototypes.push_back(ColumnVector::LayoutLike(rs.prototypes[i]));
  }
}

Status HashJoinOperator::Open() {
  batches_probed_ = 0;
  span_ = ctx_.StartSpan("op:hash-join");
  VIZQ_RETURN_IF_ERROR(build_->EnsureBuilt());
  return left_->Open();
}

Status HashJoinOperator::Close() {
  if (span_ != nullptr) {
    span_->End();
    span_ = nullptr;
  }
  return left_->Close();
}

StatusOr<bool> HashJoinOperator::Next(Batch* batch) {
  if (batches_probed_ % kCtxPollBatches == 0) {
    VIZQ_RETURN_IF_ERROR(ctx_.CheckContinue("hash join"));
  }
  ++batches_probed_;
  Batch in;
  VIZQ_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
  if (!more) return false;

  std::vector<ColumnVector> probe_keys;
  probe_keys.reserve(left_keys_.size());
  for (const ExprPtr& k : left_keys_) {
    VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(*k, in));
    probe_keys.push_back(std::move(v));
  }

  const std::vector<ColumnVector>& build_keys = build_->key_columns();
  const Batch& build_batch = build_->build_batch();
  int nleft = static_cast<int>(in.columns.size());

  *batch = schema_.NewBatch();
  int64_t out_rows = 0;
  for (int64_t r = 0; r < in.num_rows; ++r) {
    bool null_key = false;
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const ColumnVector& pk : probe_keys) {
      if (pk.IsNull(r)) {
        null_key = true;
        break;
      }
      h = HashCombine(h, pk.HashAt(r));
    }
    bool matched = false;
    if (!null_key) {
      const std::vector<int64_t>* bucket = build_->Probe(h);
      if (bucket != nullptr) {
        for (int64_t br : *bucket) {
          bool equal = true;
          for (size_t k = 0; k < probe_keys.size(); ++k) {
            if (probe_keys[k].CompareAt(r, build_keys[k], br) != 0) {
              equal = false;
              break;
            }
          }
          if (!equal) continue;
          matched = true;
          for (int c = 0; c < nleft; ++c) {
            batch->columns[c].AppendFrom(in.columns[c], r);
          }
          for (size_t c = 0; c < build_batch.columns.size(); ++c) {
            batch->columns[nleft + c].AppendFrom(build_batch.columns[c], br);
          }
          ++out_rows;
        }
      }
    }
    if (!matched && join_type_ == JoinType::kLeftOuter) {
      for (int c = 0; c < nleft; ++c) {
        batch->columns[c].AppendFrom(in.columns[c], r);
      }
      for (size_t c = 0; c < build_batch.columns.size(); ++c) {
        batch->columns[nleft + c].AppendNull();
      }
      ++out_rows;
    }
  }
  batch->num_rows = out_rows;
  return true;
}

}  // namespace vizq::tde
