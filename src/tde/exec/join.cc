#include "src/tde/exec/join.h"

#include <chrono>

#include "src/common/rng.h"
#include "src/tde/exec/morsel.h"

namespace vizq::tde {

namespace {

// Deadline/cancel poll frequency for the probe side (batches) and the
// serial build / partition-insert loops (rows).
constexpr int64_t kCtxPollBatches = 4;
constexpr int64_t kBuildPollRows = 4096;
// Build-side morsel size for the parallel hash stage.
constexpr int64_t kBuildMorselRows = 8192;
// Partition-count ceiling; partitions are a power of two >= build_dop.
constexpr int kMaxBuildPartitions = 64;

// Combined key hash of build/probe row `r`; true when any key is null
// (null keys never match, §4.2.2).
inline bool HashKeysAt(const std::vector<ColumnVector>& key_cols, int64_t r,
                       uint64_t* h) {
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (const ColumnVector& kc : key_cols) {
    if (kc.IsNull(r)) return true;
    acc = HashCombine(acc, kc.HashAt(r));
  }
  *h = acc;
  return false;
}

inline double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SharedBuildState::SharedBuildState(OperatorPtr right,
                                   std::vector<ExprPtr> right_keys,
                                   JoinBuildOptions options)
    : right_(std::move(right)),
      right_keys_(std::move(right_keys)),
      options_(options) {}

Status SharedBuildState::EnsureBuilt(const ExecContext& ctx) {
  std::unique_lock<std::mutex> lock(mu_);
  while (phase_ == BuildPhase::kBuilding) {
    // Another fraction is building. Wait without holding the builder
    // hostage, polling our own context so a cancelled waiter leaves even
    // if the builder is long-running.
    VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("hash join build (waiting)"));
    build_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
  if (phase_ == BuildPhase::kDone) return OkStatus();
  phase_ = BuildPhase::kBuilding;
  lock.unlock();

  Status s = Build(ctx);

  lock.lock();
  // Success latches kDone (build-once); failure returns to kIdle so a
  // later Open() — e.g. with a fresh context — may retry from scratch.
  phase_ = s.ok() ? BuildPhase::kDone : BuildPhase::kIdle;
  build_cv_.notify_all();
  return s;
}

Status SharedBuildState::Build(const ExecContext& ctx) {
  VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("hash join build"));
  ScopedSpan span(ctx.StartSpan("op:join-build"));
  // Reset in case a previous attempt failed partway through.
  build_ = Batch{};
  key_cols_.clear();
  partitions_.clear();
  partition_mask_ = 0;

  // Materialize the build side. Batches drain serially (cheap moves);
  // the per-column appends fan out — output columns are independent — so
  // a wide or large build side materializes at column parallelism under
  // the same task policy as the hash/insert stages instead of serially.
  build_ = right_->schema().NewBatch();
  VIZQ_RETURN_IF_ERROR(right_->Open());
  std::vector<Batch> staged;
  int64_t rows = 0;
  {
    Batch b;
    while (true) {
      VIZQ_ASSIGN_OR_RETURN(bool more, right_->Next(&b));
      if (!more) break;
      if ((staged.size() % 16) == 0) {
        VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("hash join build"));
      }
      rows += b.has_selection ? static_cast<int64_t>(b.selection.size())
                              : b.num_rows;
      staged.push_back(std::move(b));
      b = Batch{};
    }
  }
  VIZQ_RETURN_IF_ERROR(right_->Close());
  const int ncols = static_cast<int>(build_.columns.size());
  if (ncols > 0 && rows > 0) {
    std::vector<Status> mat_status(ncols);
    const int mat_section = options_.stats ? options_.stats->NewSection() : 0;
    auto mat_task = [&](int c) {
      auto t0 = std::chrono::steady_clock::now();
      Status s;
      for (const Batch& b : staged) {
        s = ctx.CheckContinue("hash join build");
        if (!s.ok()) break;
        const int64_t live = b.has_selection
                                 ? static_cast<int64_t>(b.selection.size())
                                 : b.num_rows;
        for (int64_t i = 0; i < live; ++i) {
          const int64_t r = b.has_selection ? b.selection[i] : i;
          build_.columns[c].AppendFrom(b.columns[c], r);
        }
      }
      mat_status[c] = s;
      if (options_.stats != nullptr) {
        options_.stats->AddFraction(SecondsSince(t0), rows, mat_section,
                                    ExecStats::kStageBuild);
      }
    };
    if (options_.build_dop > 1) {
      RunBuildTasks(ncols, ctx, mat_task);
    } else {
      for (int c = 0; c < ncols; ++c) mat_task(c);
    }
    for (const Status& s : mat_status) {
      VIZQ_RETURN_IF_ERROR(s);
    }
  }
  build_.num_rows = rows;
  staged.clear();
  key_cols_.reserve(right_keys_.size());
  for (const ExprPtr& k : right_keys_) {
    VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(*k, build_));
    key_cols_.push_back(std::move(v));
  }

  if (options_.build_dop > 1 && rows >= options_.min_parallel_rows) {
    return BuildPartitioned(ctx, rows);
  }
  return BuildSerial(ctx, rows);
}

Status SharedBuildState::BuildSerial(const ExecContext& ctx, int64_t rows) {
  partitions_.resize(1);
  partition_mask_ = 0;
  auto& table = partitions_[0];
  for (int64_t r = 0; r < rows; ++r) {
    if ((r % kBuildPollRows) == 0) {
      VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("hash join build"));
    }
    uint64_t h = 0;
    if (HashKeysAt(key_cols_, r, &h)) continue;  // null keys never match
    table[h].push_back(r);
  }
  return OkStatus();
}

void SharedBuildState::RunBuildTasks(int n, const ExecContext& ctx,
                                     const std::function<void(int)>& fn) {
  if (options_.serial_measurement || n <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // The TaskGroup inherits the query's priority class; Wait() on a worker
  // thread steals queued build tasks instead of parking (scheduler.h).
  TaskGroup group(&Scheduler::Global(), options_.priority, ctx);
  for (int i = 0; i < n; ++i) {
    group.Spawn([&fn, i] { fn(i); }, "join-build");
  }
  group.Wait();
}

Status SharedBuildState::BuildPartitioned(const ExecContext& ctx,
                                          int64_t rows) {
  const int dop = std::min(options_.build_dop, kMaxBuildPartitions);
  int parts = 1;
  while (parts < dop) parts <<= 1;
  partitions_.assign(parts, {});
  partition_mask_ = static_cast<uint64_t>(parts - 1);
  hashes_.assign(rows, 0);
  null_key_.assign(rows, 0);

  // Stage 1 — morsel-parallel key hashing: dop tasks claim row ranges and
  // fill hashes_/null_key_ over disjoint ranges (no locking).
  MorselQueue queue(rows, kBuildMorselRows);
  std::vector<Status> task_status(dop);
  const int hash_section = options_.stats ? options_.stats->NewSection() : 0;
  RunBuildTasks(dop, ctx, [&](int t) {
    auto t0 = std::chrono::steady_clock::now();
    int64_t task_rows = 0;
    int64_t morsels = 0;
    int64_t begin = 0, end = 0;
    Status s;
    while (queue.Claim(&begin, &end)) {
      s = ctx.CheckContinue("hash join build");
      if (!s.ok()) break;
      ++morsels;
      for (int64_t r = begin; r < end; ++r) {
        uint64_t h = 0;
        null_key_[r] = HashKeysAt(key_cols_, r, &h) ? 1 : 0;
        hashes_[r] = h;
      }
      task_rows += end - begin;
    }
    task_status[t] = s;
    ctx.Count("tde.join.build_morsels", morsels);
    if (options_.stats != nullptr) {
      options_.stats->AddFraction(SecondsSince(t0), task_rows, hash_section,
                                  ExecStats::kStageBuild);
      std::lock_guard<std::mutex> lock(options_.stats->mu);
      options_.stats->join_build_morsels += morsels;
    }
  });
  for (const Status& s : task_status) {
    VIZQ_RETURN_IF_ERROR(s);
  }

  // Stage 2 — partitioned insert: one task per partition scans the hash
  // array and inserts only its own rows ((h & mask) == p), so each
  // partition map has a single writer and needs no lock. The result is
  // sealed read-only before any probe starts.
  std::vector<Status> insert_status(parts);
  const int insert_section = options_.stats ? options_.stats->NewSection() : 0;
  RunBuildTasks(parts, ctx, [&](int p) {
    auto t0 = std::chrono::steady_clock::now();
    auto& part = partitions_[p];
    const uint64_t want = static_cast<uint64_t>(p);
    int64_t inserted = 0;
    Status s;
    for (int64_t r = 0; r < rows; ++r) {
      if ((r % kBuildPollRows) == 0) {
        s = ctx.CheckContinue("hash join build");
        if (!s.ok()) break;
      }
      if (null_key_[r]) continue;
      const uint64_t h = hashes_[r];
      if ((h & partition_mask_) != want) continue;
      part[h].push_back(r);
      ++inserted;
    }
    insert_status[p] = s;
    if (options_.stats != nullptr) {
      options_.stats->AddFraction(SecondsSince(t0), inserted, insert_section,
                                  ExecStats::kStageBuild);
    }
  });
  for (const Status& s : insert_status) {
    VIZQ_RETURN_IF_ERROR(s);
  }

  hashes_.clear();
  hashes_.shrink_to_fit();
  null_key_.clear();
  null_key_.shrink_to_fit();
  if (options_.stats != nullptr) {
    std::lock_guard<std::mutex> lock(options_.stats->mu);
    options_.stats->used_parallel_build = true;
  }
  return OkStatus();
}

HashJoinOperator::HashJoinOperator(OperatorPtr left,
                                   std::shared_ptr<SharedBuildState> build,
                                   std::vector<ExprPtr> left_keys,
                                   JoinType join_type, const ExecContext& ctx)
    : left_(std::move(left)),
      build_(std::move(build)),
      left_keys_(std::move(left_keys)),
      join_type_(join_type),
      ctx_(ctx) {
  // Output schema: left columns, then right columns (renamed on collision).
  const BatchSchema& ls = left_->schema();
  const BatchSchema& rs = build_->right_schema();
  schema_.names = ls.names;
  schema_.prototypes = ls.prototypes;
  for (int i = 0; i < rs.num_columns(); ++i) {
    std::string name = rs.names[i];
    if (schema_.FindColumn(name) >= 0) name = "r." + name;
    schema_.names.push_back(std::move(name));
    schema_.prototypes.push_back(ColumnVector::LayoutLike(rs.prototypes[i]));
  }
}

Status HashJoinOperator::Open() {
  batches_probed_ = 0;
  span_ = ctx_.StartSpan("op:hash-join");
  VIZQ_RETURN_IF_ERROR(build_->EnsureBuilt(ctx_));
  return left_->Open();
}

Status HashJoinOperator::Close() {
  if (span_ != nullptr) {
    span_->End();
    span_ = nullptr;
  }
  return left_->Close();
}

StatusOr<bool> HashJoinOperator::Next(Batch* batch) {
  if (batches_probed_ % kCtxPollBatches == 0) {
    VIZQ_RETURN_IF_ERROR(ctx_.CheckContinue("hash join"));
  }
  ++batches_probed_;
  Batch in;
  VIZQ_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
  if (!more) return false;

  // Probe keys may arrive run-encoded (an encoded scan feeding the join
  // directly); EvalExpr's bulk path indexes flat payloads, so flatten the
  // referenced columns first. Payload columns stay as-is — AppendFrom
  // resolves runs itself.
  for (const ExprPtr& k : left_keys_) {
    std::vector<int> refs;
    k->CollectColumnIndices(&refs);
    for (int c : refs) in.columns[c].DecodeRuns();
  }

  std::vector<ColumnVector> probe_keys;
  probe_keys.reserve(left_keys_.size());
  for (const ExprPtr& k : left_keys_) {
    VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(*k, in));
    probe_keys.push_back(std::move(v));
  }

  const std::vector<ColumnVector>& build_keys = build_->key_columns();
  const Batch& build_batch = build_->build_batch();
  int nleft = static_cast<int>(in.columns.size());

  // A selection vector marks the dead physical rows; probe only the live
  // ones. (The output is materialized densely either way.)
  const int64_t live = in.has_selection
                           ? static_cast<int64_t>(in.selection.size())
                           : in.num_rows;

  *batch = schema_.NewBatch();
  int64_t out_rows = 0;
  for (int64_t i = 0; i < live; ++i) {
    const int64_t r = in.has_selection ? in.selection[i] : i;
    uint64_t h = 0;
    const bool null_key = HashKeysAt(probe_keys, r, &h);
    bool matched = false;
    if (!null_key) {
      const std::vector<int64_t>* bucket = build_->Probe(h);
      if (bucket != nullptr) {
        for (int64_t br : *bucket) {
          bool equal = true;
          for (size_t k = 0; k < probe_keys.size(); ++k) {
            if (probe_keys[k].CompareAt(r, build_keys[k], br) != 0) {
              equal = false;
              break;
            }
          }
          if (!equal) continue;
          matched = true;
          for (int c = 0; c < nleft; ++c) {
            batch->columns[c].AppendFrom(in.columns[c], r);
          }
          for (size_t c = 0; c < build_batch.columns.size(); ++c) {
            batch->columns[nleft + c].AppendFrom(build_batch.columns[c], br);
          }
          ++out_rows;
        }
      }
    }
    if (!matched && join_type_ == JoinType::kLeftOuter) {
      for (int c = 0; c < nleft; ++c) {
        batch->columns[c].AppendFrom(in.columns[c], r);
      }
      for (size_t c = 0; c < build_batch.columns.size(); ++c) {
        batch->columns[nleft + c].AppendNull();
      }
      ++out_rows;
    }
  }
  batch->num_rows = out_rows;
  return true;
}

}  // namespace vizq::tde
