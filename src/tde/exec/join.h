// Hash join (§4.2.2, Fig. 4): the right side is built into a hash table;
// the left side probes. In parallel plans the right sub-tree forms its own
// independent unit whose result — the SharedTable — and the single hash
// table built from it are shared by every left-hand fraction. That sharing
// is implemented by SharedBuildState: all per-fraction HashJoinOperator
// instances hold the same state and the first Open() performs the build.
//
// The build itself fans out (DESIGN.md §12): build rows are consumed
// morsel-wise by a TaskGroup that inherits the query's priority class,
// hashed in parallel, then inserted into hash partitions (partitioned by
// key hash, one owning task per partition — no insert locking). The sealed
// partitions form a read-only probe table; probe fractions are unchanged.

#ifndef VIZQUERY_TDE_EXEC_JOIN_H_
#define VIZQUERY_TDE_EXEC_JOIN_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/scheduler.h"
#include "src/tde/exec/operators.h"

namespace vizq::tde {

enum class JoinType : uint8_t { kInner, kLeftOuter };

// One equi-join condition left_key = right_key.
struct JoinKey {
  ExprPtr left;   // bound against the left schema
  ExprPtr right;  // bound against the right schema
};

// How a SharedBuildState builds its probe table.
struct JoinBuildOptions {
  int build_dop = 1;                  // >1: partitioned parallel build
  int64_t min_parallel_rows = 65536;  // serial below this many build rows
  TaskClass priority = TaskClass::kInteractive;  // the query's class
  // Measurement mode (single-core host): run the build tasks one at a time
  // and record per-task fraction timings instead of spawning a TaskGroup.
  bool serial_measurement = false;
  ExecStats* stats = nullptr;  // optional; fraction timings + counters
};

// The materialized right side plus its hash-partitioned table; build-once.
class SharedBuildState {
 public:
  // Takes ownership of the right-side plan. `right_keys` are bound against
  // right->schema().
  SharedBuildState(OperatorPtr right, std::vector<ExprPtr> right_keys,
                   JoinBuildOptions options = {});

  // Runs the build if nobody has; concurrency-safe build-once. Concurrent
  // callers wait for the builder without blocking it, polling their own
  // `ctx` so a cancelled waiter exits promptly; the builder polls
  // CheckContinue throughout the build (every morsel / every
  // kBuildPollRows rows), so cancelling the query aborts a large build
  // mid-flight. A failed build releases the built-once latch so a later
  // Open() may retry.
  Status EnsureBuilt(const ExecContext& ctx);

  const BatchSchema& right_schema() const { return right_->schema(); }
  const Batch& build_batch() const { return build_; }
  const std::vector<ColumnVector>& key_columns() const { return key_cols_; }

  // Row indices of build rows whose key hash is `h`. Only valid after a
  // successful EnsureBuilt; the table is read-only from then on.
  const std::vector<int64_t>* Probe(uint64_t h) const {
    const auto& part = partitions_[h & partition_mask_];
    auto it = part.find(h);
    return it == part.end() ? nullptr : &it->second;
  }

  int num_partitions() const { return static_cast<int>(partitions_.size()); }

 private:
  enum class BuildPhase { kIdle, kBuilding, kDone };

  // The build body; runs outside mu_ (the phase latch serializes builders).
  Status Build(const ExecContext& ctx);
  Status BuildSerial(const ExecContext& ctx, int64_t rows);
  Status BuildPartitioned(const ExecContext& ctx, int64_t rows);
  // Runs fn(0..n-1): on a TaskGroup under options_.priority, or
  // sequentially in serial-measurement mode.
  void RunBuildTasks(int n, const ExecContext& ctx,
                     const std::function<void(int)>& fn);

  std::mutex mu_;
  std::condition_variable build_cv_;
  BuildPhase phase_ = BuildPhase::kIdle;

  OperatorPtr right_;
  std::vector<ExprPtr> right_keys_;
  JoinBuildOptions options_;

  Batch build_;
  std::vector<ColumnVector> key_cols_;
  // Scratch shared by the two parallel build stages: per-row key hashes
  // and null-key flags, written by morsel tasks over disjoint row ranges.
  std::vector<uint64_t> hashes_;
  std::vector<uint8_t> null_key_;
  // The sealed probe table: hash partitions, selected by h & partition_mask_.
  // The serial build uses a single partition (mask 0).
  std::vector<std::unordered_map<uint64_t, std::vector<int64_t>>> partitions_;
  uint64_t partition_mask_ = 0;
};

class HashJoinOperator : public Operator {
 public:
  // `left_keys` bound against left->schema(); paired positionally with the
  // build state's right keys. Output schema: left columns then right
  // columns (right column names prefixed with `right_prefix` when a name
  // collision would result). Probing polls `ctx` between batches.
  HashJoinOperator(OperatorPtr left, std::shared_ptr<SharedBuildState> build,
                   std::vector<ExprPtr> left_keys, JoinType join_type,
                   const ExecContext& ctx = ExecContext::Background());

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override;

 private:
  OperatorPtr left_;
  std::shared_ptr<SharedBuildState> build_;
  std::vector<ExprPtr> left_keys_;
  JoinType join_type_;
  BatchSchema schema_;
  ExecContext ctx_;
  Span* span_ = nullptr;
  int64_t batches_probed_ = 0;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_JOIN_H_
