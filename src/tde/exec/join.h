// Hash join (§4.2.2, Fig. 4): the right side is built into a hash table;
// the left side probes. In parallel plans the right sub-tree forms its own
// independent unit whose result — the SharedTable — and the single hash
// table built from it are shared by every left-hand fraction. That sharing
// is implemented by SharedBuildState: all per-fraction HashJoinOperator
// instances hold the same state and the first Open() performs the build.

#ifndef VIZQUERY_TDE_EXEC_JOIN_H_
#define VIZQUERY_TDE_EXEC_JOIN_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/tde/exec/operators.h"

namespace vizq::tde {

enum class JoinType : uint8_t { kInner, kLeftOuter };

// One equi-join condition left_key = right_key.
struct JoinKey {
  ExprPtr left;   // bound against the left schema
  ExprPtr right;  // bound against the right schema
};

// The materialized right side plus its hash table; thread-safe build-once.
class SharedBuildState {
 public:
  // Takes ownership of the right-side plan. `right_keys` are bound against
  // right->schema().
  SharedBuildState(OperatorPtr right, std::vector<ExprPtr> right_keys);

  // Runs the build if nobody has; concurrency-safe.
  Status EnsureBuilt();

  const BatchSchema& right_schema() const { return right_->schema(); }
  const Batch& build_batch() const { return build_; }
  const std::vector<ColumnVector>& key_columns() const { return key_cols_; }

  // Row indices of build rows whose key hash is `h`.
  const std::vector<int64_t>* Probe(uint64_t h) const;

 private:
  std::mutex mu_;
  bool built_ = false;
  OperatorPtr right_;
  std::vector<ExprPtr> right_keys_;
  Batch build_;
  std::vector<ColumnVector> key_cols_;
  std::unordered_map<uint64_t, std::vector<int64_t>> table_;
};

class HashJoinOperator : public Operator {
 public:
  // `left_keys` bound against left->schema(); paired positionally with the
  // build state's right keys. Output schema: left columns then right
  // columns (right column names prefixed with `right_prefix` when a name
  // collision would result). Probing polls `ctx` between batches.
  HashJoinOperator(OperatorPtr left, std::shared_ptr<SharedBuildState> build,
                   std::vector<ExprPtr> left_keys, JoinType join_type,
                   const ExecContext& ctx = ExecContext::Background());

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override;

 private:
  OperatorPtr left_;
  std::shared_ptr<SharedBuildState> build_;
  std::vector<ExprPtr> left_keys_;
  JoinType join_type_;
  BatchSchema schema_;
  ExecContext ctx_;
  Span* span_ = nullptr;
  int64_t batches_probed_ = 0;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_JOIN_H_
