#include "src/tde/exec/sort.h"

#include <algorithm>

namespace vizq::tde {

StatusOr<std::vector<int64_t>> ComputeSortOrder(
    const Batch& batch, const std::vector<SortKey>& keys) {
  // Evaluate every key expression once over the whole materialized input.
  std::vector<ColumnVector> key_cols;
  key_cols.reserve(keys.size());
  for (const SortKey& k : keys) {
    VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(*k.expr, batch));
    key_cols.push_back(std::move(v));
  }
  std::vector<int64_t> order(batch.num_rows);
  for (int64_t i = 0; i < batch.num_rows; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](int64_t a, int64_t b) {
                     for (size_t k = 0; k < keys.size(); ++k) {
                       int cmp = key_cols[k].CompareAt(a, key_cols[k], b);
                       if (cmp != 0) {
                         return keys[k].ascending ? cmp < 0 : cmp > 0;
                       }
                     }
                     return false;
                   });
  return order;
}

namespace {

// Emits rows `order[cursor..cursor+n)` of `all` into `batch`.
void EmitRows(const Batch& all, const std::vector<int64_t>& order,
              int64_t cursor, int64_t n, const BatchSchema& schema,
              Batch* batch) {
  *batch = schema.NewBatch();
  for (size_t c = 0; c < all.columns.size(); ++c) {
    batch->columns[c] = ColumnVector::LayoutLike(all.columns[c]);
    batch->columns[c].Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      batch->columns[c].AppendFrom(all.columns[c], order[cursor + i]);
    }
  }
  batch->num_rows = n;
}

}  // namespace

SortOperator::SortOperator(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortOperator::Open() {
  materialized_ = false;
  cursor_ = 0;
  return child_->Open();
}

Status SortOperator::Materialize() {
  all_ = child_->schema().NewBatch();
  Batch in;
  while (true) {
    VIZQ_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) break;
    for (size_t c = 0; c < all_.columns.size(); ++c) {
      for (int64_t r = 0; r < in.num_rows; ++r) {
        all_.columns[c].AppendFrom(in.columns[c], r);
      }
    }
    all_.num_rows += in.num_rows;
  }
  VIZQ_ASSIGN_OR_RETURN(order_, ComputeSortOrder(all_, keys_));
  materialized_ = true;
  return OkStatus();
}

StatusOr<bool> SortOperator::Next(Batch* batch) {
  if (!materialized_) VIZQ_RETURN_IF_ERROR(Materialize());
  if (cursor_ >= all_.num_rows) return false;
  int64_t n = std::min(kBatchRows, all_.num_rows - cursor_);
  EmitRows(all_, order_, cursor_, n, child_->schema(), batch);
  cursor_ += n;
  return true;
}

TopNOperator::TopNOperator(OperatorPtr child, std::vector<SortKey> keys,
                           int64_t limit)
    : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {}

Status TopNOperator::Open() {
  materialized_ = false;
  cursor_ = 0;
  return child_->Open();
}

Status TopNOperator::PruneTo(int64_t n) {
  VIZQ_ASSIGN_OR_RETURN(std::vector<int64_t> order,
                        ComputeSortOrder(buffer_, keys_));
  int64_t keep = std::min(n, buffer_.num_rows);
  Batch pruned;
  EmitRows(buffer_, order, 0, keep, child_->schema(), &pruned);
  buffer_ = std::move(pruned);
  return OkStatus();
}

Status TopNOperator::Materialize() {
  buffer_ = child_->schema().NewBatch();
  Batch in;
  while (true) {
    VIZQ_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) break;
    for (size_t c = 0; c < buffer_.columns.size(); ++c) {
      for (int64_t r = 0; r < in.num_rows; ++r) {
        buffer_.columns[c].AppendFrom(in.columns[c], r);
      }
    }
    buffer_.num_rows += in.num_rows;
    if (buffer_.num_rows > 4 * limit_ + kBatchRows) {
      VIZQ_RETURN_IF_ERROR(PruneTo(limit_));
    }
  }
  VIZQ_RETURN_IF_ERROR(PruneTo(limit_));
  materialized_ = true;
  return OkStatus();
}

StatusOr<bool> TopNOperator::Next(Batch* batch) {
  if (!materialized_) VIZQ_RETURN_IF_ERROR(Materialize());
  if (cursor_ >= buffer_.num_rows) return false;
  int64_t n = std::min(kBatchRows, buffer_.num_rows - cursor_);
  // buffer_ is already in sorted order after the final prune.
  std::vector<int64_t> identity(n);
  for (int64_t i = 0; i < n; ++i) identity[i] = cursor_ + i;
  EmitRows(buffer_, identity, 0, n, child_->schema(), batch);
  cursor_ += n;
  return true;
}

}  // namespace vizq::tde
