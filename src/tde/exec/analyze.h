// Operator-level EXPLAIN ANALYZE (the observability layer's per-operator
// runtime accounting).
//
// The Translator (when handed a PlanAnalysis) wraps every physical
// operator in an AnalyzeOperator decorator that accumulates rows-out,
// batches, open count and wall time into a PlanNodeStats node. Nodes are
// keyed by *logical* plan node, so the per-fraction operator instances an
// Exchange expansion creates all feed one node: counts are totals across
// fractions, and wall time is cumulative (inclusive of children; with DOP
// > 1 it can exceed the query's elapsed time — it is work, not makespan).
//
// After execution, PlanAnalysis::ToText() renders the logical tree
// annotated with the measured numbers, and root_rows() exposes the
// invariant the fuzzer checks: the root's rows-out equals the returned
// row count.

#ifndef VIZQUERY_TDE_EXEC_ANALYZE_H_
#define VIZQUERY_TDE_EXEC_ANALYZE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/tde/exec/operators.h"
#include "src/tde/plan/logical.h"

namespace vizq::tde {

// Accumulated runtime numbers for one logical plan node. Counters are
// atomics because Exchange fractions execute sibling instances of the
// same node concurrently.
struct PlanNodeStats {
  std::string label;       // e.g. "Scan flights_star [cols=4]"
  std::string metric_key;  // e.g. "scan" — per-kind histogram suffix

  std::atomic<int64_t> rows_out{0};
  std::atomic<int64_t> batches{0};
  std::atomic<int64_t> opens{0};  // #operator instances that ran
  std::atomic<int64_t> wall_ns{0};

  std::vector<PlanNodeStats*> children;  // fixed after translation

  double wall_ms() const {
    return static_cast<double>(wall_ns.load(std::memory_order_relaxed)) / 1e6;
  }
  // Rows entering this node = sum of the children's rows-out.
  int64_t rows_in() const;
};

// Owns the node tree for one executed query. Built single-threaded during
// translation; updated lock-free during execution; read after.
class PlanAnalysis {
 public:
  PlanAnalysis() = default;
  PlanAnalysis(const PlanAnalysis&) = delete;
  PlanAnalysis& operator=(const PlanAnalysis&) = delete;

  // Resolve-or-create the node for `op` (translation is single-threaded).
  // The first call for a given `op` links it under `parent` (null for the
  // root) and derives its label from the logical node.
  PlanNodeStats* NodeFor(const LogicalOp& op, PlanNodeStats* parent);

  const PlanNodeStats* root() const { return root_; }
  // Rows the root operator emitted — must equal the result row count.
  int64_t root_rows() const;

  // Annotated plan, e.g.
  //   Aggregate [groups=1 aggs=2]  (rows=12 rows_in=8k batches=3 time=1.2ms)
  //     Scan flights_star [cols=3]  (rows=8k batches=8 time=0.9ms)
  std::string ToText() const;

  // Stable structural key for this plan's *shape*: the pre-order join of
  // node labels, e.g.
  //   "Aggregate [groups=1 aggs=2](Scan flights_star [cols=3])".
  // Labels carry structural parameters (column/predicate counts) but no
  // runtime numbers, so two executions of the same logical plan always
  // produce the same signature — the key for per-plan-shape latency
  // profiles (obs::PlanProfileRegistry). Empty for an empty analysis.
  std::string Signature() const;

  // Visits every node (pre-order).
  void ForEach(const std::function<void(const PlanNodeStats&)>& fn) const;

 private:
  std::unordered_map<const LogicalOp*, PlanNodeStats*> index_;
  std::vector<std::unique_ptr<PlanNodeStats>> nodes_;
  PlanNodeStats* root_ = nullptr;
};

// The decorator. Transparent pass-through (schema, error propagation)
// that times Open/Next/Close into `node` and counts the rows and batches
// it forwards.
class AnalyzeOperator : public Operator {
 public:
  AnalyzeOperator(OperatorPtr child, PlanNodeStats* node)
      : child_(std::move(child)), node_(node) {}

  const BatchSchema& schema() const override { return child_->schema(); }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override;

 private:
  OperatorPtr child_;
  PlanNodeStats* node_;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_ANALYZE_H_
