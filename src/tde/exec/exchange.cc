#include "src/tde/exec/exchange.h"

#include <chrono>

namespace vizq::tde {

ExchangeOperator::ExchangeOperator(std::vector<OperatorPtr> inputs,
                                   ExecStats* stats, bool serial_measurement)
    : inputs_(std::move(inputs)),
      stats_(stats),
      serial_measurement_(serial_measurement) {}

ExchangeOperator::~ExchangeOperator() { StopThreads(); }

Status ExchangeOperator::Open() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.clear();
    cancelled_ = false;
    first_error_ = OkStatus();
    live_producers_ = static_cast<int>(inputs_.size());
    serial_done_ = false;
  }
  if (serial_measurement_) {
    opened_ = true;
    return OkStatus();  // inputs run lazily on first Next()
  }
  threads_.reserve(inputs_.size());
  for (size_t i = 0; i < inputs_.size(); ++i) {
    threads_.emplace_back([this, i] { ProducerLoop(static_cast<int>(i)); });
  }
  opened_ = true;
  return OkStatus();
}

Status ExchangeOperator::RunInputsSerially() {
  // Contention-free per-fraction timing: one input at a time, all batches
  // buffered. max_queue_ does not apply in this mode.
  for (size_t i = 0; i < inputs_.size(); ++i) {
    auto started = std::chrono::steady_clock::now();
    Operator* input = inputs_[i].get();
    int64_t rows = 0;
    VIZQ_RETURN_IF_ERROR(input->Open());
    Batch batch;
    while (true) {
      VIZQ_ASSIGN_OR_RETURN(bool more, input->Next(&batch));
      if (!more) break;
      rows += batch.num_rows;
      queue_.push_back(std::move(batch));
    }
    VIZQ_RETURN_IF_ERROR(input->Close());
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    if (stats_ != nullptr) stats_->AddFraction(seconds, rows);
  }
  live_producers_ = 0;
  serial_done_ = true;
  return OkStatus();
}

void ExchangeOperator::ProducerLoop(int input_index) {
  auto started = std::chrono::steady_clock::now();
  Operator* input = inputs_[input_index].get();
  int64_t rows = 0;
  Status status = input->Open();
  if (status.ok()) {
    Batch batch;
    while (true) {
      StatusOr<bool> more = input->Next(&batch);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!*more) break;
      rows += batch.num_rows;
      std::unique_lock<std::mutex> lock(mu_);
      can_push_.wait(lock, [this] {
        return cancelled_ || queue_.size() < max_queue_;
      });
      if (cancelled_) break;
      queue_.push_back(std::move(batch));
      can_pop_.notify_one();
    }
    Status close_status = input->Close();
    if (status.ok()) status = close_status;
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (stats_ != nullptr) stats_->AddFraction(seconds, rows);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && first_error_.ok()) first_error_ = status;
    --live_producers_;
  }
  can_pop_.notify_all();
}

StatusOr<bool> ExchangeOperator::Next(Batch* batch) {
  if (serial_measurement_) {
    if (!serial_done_) VIZQ_RETURN_IF_ERROR(RunInputsSerially());
    if (queue_.empty()) return false;
    *batch = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [this] {
    return !queue_.empty() || live_producers_ == 0;
  });
  if (!queue_.empty()) {
    *batch = std::move(queue_.front());
    queue_.pop_front();
    can_push_.notify_one();
    return true;
  }
  if (!first_error_.ok()) return first_error_;
  return false;
}

void ExchangeOperator::StopThreads() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
  }
  can_push_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

Status ExchangeOperator::Close() {
  StopThreads();
  std::lock_guard<std::mutex> lock(mu_);
  opened_ = false;
  return first_error_;
}

}  // namespace vizq::tde
