#include "src/tde/exec/exchange.h"

#include <chrono>

namespace vizq::tde {

ExchangeOperator::ExchangeOperator(std::vector<OperatorPtr> inputs,
                                   ExecStats* stats, bool serial_measurement,
                                   const ExecContext& ctx,
                                   Scheduler* scheduler, TaskClass priority,
                                   int stage)
    : inputs_(std::move(inputs)),
      stats_(stats),
      ctx_(ctx),
      scheduler_(scheduler != nullptr ? scheduler : &Scheduler::Global()),
      priority_(priority),
      stage_(stage),
      serial_measurement_(serial_measurement) {}

ExchangeOperator::~ExchangeOperator() { StopProducers(); }

Status ExchangeOperator::Open() {
  // A re-open without an intervening Close() must not leave the previous
  // producers racing the reset below: stop and join them first.
  StopProducers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.clear();
    cancelled_ = false;
    first_error_ = OkStatus();
    live_producers_ = static_cast<int>(inputs_.size());
    serial_done_ = false;
  }
  // Re-opening re-scans: rewind the shared morsel cursors before any
  // producer starts claiming (a second Open would otherwise silently
  // return zero rows from the drained queues).
  for (const MorselQueuePtr& q : morsel_queues_) q->Reset();
  consumer_tid_ = std::this_thread::get_id();
  // This fan-out is one parallel section of the plan's timeline.
  section_ = stats_ != nullptr ? stats_->NewSection() : 0;
  if (serial_measurement_) {
    opened_ = true;
    return OkStatus();  // inputs run lazily on first Next()
  }
  const int n = static_cast<int>(inputs_.size());
  // Zero-initialized: all inputs unclaimed.
  claimed_ = std::make_unique<std::atomic<bool>[]>(n);
  group_ = std::make_unique<TaskGroup>(scheduler_, priority_, ctx_);
  for (int i = 0; i < n; ++i) {
    group_->Spawn(
        [this, i] {
          // The consumer may have run this input inline already (scheduler
          // saturation); whoever wins the claim runs it exactly once.
          if (!ClaimProducer(i)) return;
          // Bounded is a run-time property: when the scheduler sheds this
          // wrapper (or Wait() steals it) it executes on the consumer
          // thread, which cannot simultaneously drain queue_ — respecting
          // max_queue_ there would deadlock against ourselves, exactly
          // like RunOneProducerInline.
          ProducerLoop(i,
                       /*bounded=*/std::this_thread::get_id() !=
                           consumer_tid_);
        },
        "exchange-producer");
  }
  opened_ = true;
  return OkStatus();
}

bool ExchangeOperator::ClaimProducer(int input_index) {
  return !claimed_[input_index].exchange(true, std::memory_order_acq_rel);
}

Status ExchangeOperator::RunInputsSerially() {
  // Contention-free per-fraction timing: one input at a time, all batches
  // buffered. max_queue_ does not apply in this mode. All Opens run first,
  // untimed: a blocking hash-join build in the first input's Open is
  // accounted by its own kStageBuild fractions (and the build side's
  // serial consume by the wall-minus-fractions remainder), not smeared
  // into that input's probe fraction.
  for (auto& input : inputs_) {
    VIZQ_RETURN_IF_ERROR(input->Open());
  }
  for (size_t i = 0; i < inputs_.size(); ++i) {
    auto started = std::chrono::steady_clock::now();
    Operator* input = inputs_[i].get();
    int64_t rows = 0;
    Batch batch;
    while (true) {
      VIZQ_ASSIGN_OR_RETURN(bool more, input->Next(&batch));
      if (!more) break;
      rows += batch.num_rows;
      queue_.push_back(std::move(batch));
    }
    VIZQ_RETURN_IF_ERROR(input->Close());
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    if (stats_ != nullptr) stats_->AddFraction(seconds, rows, section_, stage_);
  }
  live_producers_ = 0;
  serial_done_ = true;
  return OkStatus();
}

void ExchangeOperator::ProducerLoop(int input_index, bool bounded) {
  auto started = std::chrono::steady_clock::now();
  Operator* input = inputs_[input_index].get();
  int64_t rows = 0;
  Status status;
  bool stopped_before_start;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_before_start = cancelled_;
  }
  if (!stopped_before_start) {
    status = input->Open();
    if (status.ok()) {
      Batch batch;
      while (true) {
        StatusOr<bool> more = input->Next(&batch);
        if (!more.ok()) {
          status = more.status();
          break;
        }
        if (!*more) break;
        rows += batch.num_rows;
        std::unique_lock<std::mutex> lock(mu_);
        // The context cannot signal this CV, so a producer blocked on a
        // full queue waits in timed slices and polls it: a cancel or an
        // expired deadline wakes the producer instead of leaving it
        // parked until the consumer drains (which it may never do).
        while (bounded && !cancelled_ && queue_.size() >= max_queue_ &&
               !ctx_.cancelled()) {
          can_push_.wait_for(lock, std::chrono::milliseconds(2));
        }
        if (cancelled_) break;  // consumer-side stop: not an error
        if (Status cont = ctx_.CheckContinue("exchange producer");
            !cont.ok()) {
          // Record the typed error so the consumer surfaces
          // kDeadlineExceeded/kAborted, never a truncated OK stream.
          status = cont;
          break;
        }
        queue_.push_back(std::move(batch));
        can_pop_.notify_one();
      }
      Status close_status = input->Close();
      if (status.ok()) status = close_status;
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    if (stats_ != nullptr) stats_->AddFraction(seconds, rows, section_, stage_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && first_error_.ok()) first_error_ = status;
    --live_producers_;
  }
  can_pop_.notify_all();
}

bool ExchangeOperator::RunOneProducerInline() {
  for (int i = 0; i < static_cast<int>(inputs_.size()); ++i) {
    if (ClaimProducer(i)) {
      // Unbounded: the consumer cannot simultaneously drain the queue, so
      // respecting max_queue_ here would deadlock against ourselves.
      // Memory stays bounded by the input's size, like serial mode.
      ProducerLoop(i, /*bounded=*/false);
      return true;
    }
  }
  return false;
}

StatusOr<bool> ExchangeOperator::Next(Batch* batch) {
  if (serial_measurement_) {
    if (!serial_done_) VIZQ_RETURN_IF_ERROR(RunInputsSerially());
    if (queue_.empty()) return false;
    *batch = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }
  std::unique_lock<std::mutex> lock(mu_);
  int idle_spins = 0;
  while (true) {
    if (!queue_.empty()) {
      *batch = std::move(queue_.front());
      queue_.pop_front();
      can_push_.notify_one();
      return true;
    }
    if (live_producers_ == 0) break;
    VIZQ_RETURN_IF_ERROR(ctx_.CheckContinue("exchange consumer"));
    can_pop_.wait_for(lock, std::chrono::milliseconds(2));
    if (queue_.empty() && live_producers_ > 0 && ++idle_spins >= 5) {
      // ~10ms with nothing to read: the scheduler may be saturated and
      // our producers still queued. Help out by running an unstarted
      // input inline — the Exchange drains even with zero free workers.
      idle_spins = 0;
      lock.unlock();
      RunOneProducerInline();
      lock.lock();
    }
  }
  if (!first_error_.ok()) return first_error_;
  return false;
}

void ExchangeOperator::StopProducers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
  }
  can_push_.notify_all();
  if (group_ != nullptr) {
    group_->Wait();
    group_.reset();
  }
}

Status ExchangeOperator::Close() {
  StopProducers();
  std::lock_guard<std::mutex> lock(mu_);
  opened_ = false;
  return first_error_;
}

}  // namespace vizq::tde
