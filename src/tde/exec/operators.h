// The Volcano execution framework (§4.1.3): every physical operator
// implements Open/Next/Close and pulls Batches from its children. Streaming
// operators (Filter, Project, Scan) emit rows as they consume them;
// stop-and-go operators (Aggregate, Sort, TopN, the build side of HashJoin)
// consume their whole input first.

#ifndef VIZQUERY_TDE_EXEC_OPERATORS_H_
#define VIZQUERY_TDE_EXEC_OPERATORS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/result_table.h"
#include "src/common/status.h"
#include "src/tde/exec/batch.h"
#include "src/tde/exec/expression.h"

namespace vizq::tde {

// Execution statistics collected while a plan runs. Fraction timings are
// appended by the parallel workers (Exchange producers, join-build tasks,
// final-merge tasks); on a single-core host they let benches compute the
// modeled parallel makespan that a multi-core host would realize (see
// EXPERIMENTS.md).
//
// A plan may contain several *parallel sections* that run back-to-back
// (scan fractions, then the join-build fan-out, then the final-merge
// fan-out). Each section allocates an id with NewSection() and tags its
// fractions with it, so the modeled critical path is the sum over sections
// of the slowest fraction in that section — not one global max, which
// would undercount sequential sections.
struct ExecStats {
  // What kind of parallel section a fraction belongs to (reporting only).
  static constexpr int kStageScan = 0;   // Exchange producers (scan/probe)
  static constexpr int kStageBuild = 1;  // hash-join build tasks (§4.2.2)
  static constexpr int kStageMerge = 2;  // kFinal aggregate merge tasks

  struct FractionStat {
    double seconds = 0;
    int64_t rows = 0;
    int section = 0;  // NewSection() id; same id = ran concurrently
    int stage = kStageScan;
  };

  std::mutex mu;
  std::vector<FractionStat> fractions;
  int64_t rows_scanned = 0;
  int64_t batches = 0;
  int64_t morsels_claimed = 0;     // row ranges claimed from MorselQueues
  int64_t join_build_morsels = 0;  // build-side morsels hashed in parallel
  int64_t merge_partitions = 0;    // kFinal merge partitions fanned out
  int dop = 1;                     // degree of parallelism of the plan
  bool used_parallel_plan = false;
  bool used_local_global_agg = false;
  bool used_range_partition = false;
  bool used_rle_index = false;
  bool used_streaming_agg = false;
  bool used_morsel_scan = false;
  bool used_encoded_path = false;
  bool used_parallel_build = false;  // partitioned hash-join build ran
  bool used_parallel_merge = false;  // partitioned kFinal merge ran
  // Encoding-aware execution (DESIGN.md §11): rows that crossed the
  // storage→exec boundary without being decoded to flat vectors, and
  // encoded-path candidates that had to fall back to the row path.
  int64_t encoded_rows_undecoded = 0;
  int64_t encoded_fallbacks = 0;
  int64_t encoded_plans = 0;

  // Allocates the id of the next parallel section (thread-safe).
  int NewSection() {
    return next_section_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void AddFraction(double seconds, int64_t rows, int section = 0,
                   int stage = kStageScan) {
    std::lock_guard<std::mutex> lock(mu);
    fractions.push_back(FractionStat{seconds, rows, section, stage});
  }

  // Slowest single fraction across all sections.
  double MaxFractionSeconds() const;
  // Total work across fractions.
  double SumFractionSeconds() const;
  // Modeled critical path of the parallel work: sum over sections of the
  // slowest fraction in that section (sections run back-to-back).
  double CriticalPathSeconds() const;
  // Critical-path contribution of sections with the given stage tag.
  double StageCriticalPathSeconds(int stage) const;

 private:
  std::atomic<int> next_section_{0};
};

// Base class of all physical operators.
class Operator {
 public:
  virtual ~Operator() = default;

  // Output schema (valid after construction, before Open).
  virtual const BatchSchema& schema() const = 0;

  virtual Status Open() = 0;

  // Produces the next batch into *batch (overwritten). Returns false at end
  // of stream; a true return may carry an empty batch (callers skip those).
  virtual StatusOr<bool> Next(Batch* batch) = 0;

  virtual Status Close() = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

// One conjunct of an encoded filter, classified by how the encoded path
// evaluates it (classification happens in the optimizer's
// DecideEncodedExec; see DESIGN.md §11).
struct EncodedConjunct {
  enum class Kind : uint8_t {
    kTokenBitmap,  // single dict-string column: eval once per distinct token
    kPerRun,       // single run-encoded fixed-width column: eval once per run
    kPerRow,       // anything else: normal vectorized per-row evaluation
                   // (must only touch flat, non-run-encoded columns)
  };
  ExprPtr expr;           // bound against the filter's child schema
  int column_index = -1;  // the column driving kTokenBitmap / kPerRun
  Kind kind = Kind::kPerRow;
};

// --- Filter (the TQL Select operator): streaming predicate evaluation ---
class FilterOperator : public Operator {
 public:
  // `predicate` must be bound against child->schema().
  FilterOperator(OperatorPtr child, ExprPtr predicate);

  // Switches to encoded mode: instead of materializing the surviving rows,
  // Next() moves the child batch through with a selection vector attached,
  // evaluating each conjunct once per dictionary token (kTokenBitmap), once
  // per RLE run (kPerRun), or per row (kPerRow). The downstream operator
  // must be selection-aware (the planner guarantees this).
  void EnableEncodedFilter(std::vector<EncodedConjunct> conjuncts,
                           ExecStats* stats);

  const BatchSchema& schema() const override { return child_->schema(); }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override { return child_->Close(); }

 private:
  StatusOr<bool> NextEncoded(Batch* batch);

  OperatorPtr child_;
  ExprPtr predicate_;
  bool encoded_ = false;
  std::vector<EncodedConjunct> conjuncts_;
  // Parallel to conjuncts_; populated at Open for kTokenBitmap entries.
  std::vector<TokenMatchBitmap> bitmaps_;
  ExecStats* stats_ = nullptr;
};

// --- Project: computes named expressions over the child ---
class ProjectOperator : public Operator {
 public:
  struct NamedExpr {
    std::string name;
    ExprPtr expr;  // bound against the child schema
  };

  ProjectOperator(OperatorPtr child, std::vector<NamedExpr> exprs);

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override { return child_->Open(); }
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override { return child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<NamedExpr> exprs_;
  BatchSchema schema_;
};

// Runs `op` to completion and materializes everything into a ResultTable.
StatusOr<ResultTable> CollectToResultTable(Operator* op);

// Runs `op` to completion, appending all batches into one big Batch with
// `schema` layouts. Returns total rows.
StatusOr<int64_t> CollectToBatch(Operator* op, Batch* out);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_OPERATORS_H_
