// Scalar expression trees, shared by TQL plans, the optimizer and the
// vectorized evaluator.
//
// Expressions are immutable and shared (ExprPtr); the binder produces new
// trees with column indices and result types resolved. Evaluation is
// column-at-a-time over Batches ("the engine employs vectorization in
// expression evaluation", §4.2.2).

#ifndef VIZQUERY_TDE_EXEC_EXPRESSION_H_
#define VIZQUERY_TDE_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/tde/exec/batch.h"

namespace vizq::tde {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// Expression node kinds.
enum class ExprKind : uint8_t {
  kColumnRef,  // named (unbound) or indexed (bound) input column
  kLiteral,    // constant Value
  kBinary,     // arithmetic / comparison / logical with two operands
  kUnary,      // NOT, negation
  kFunc,       // scalar function call
  kIn,         // operand IN (literal set)
  kIsNull,     // operand IS NULL
};

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp : uint8_t { kNot, kNeg };

// Scalar functions; the cost profile assigns each a per-row cost constant
// (string manipulation is much more expensive than arithmetic, §4.2.2).
enum class ScalarFunc : uint8_t {
  kAbs,
  kLower,
  kUpper,
  kStrLen,
  kSubstr,   // substr(s, start, len) — 1-based start
  kYear,     // of a date column (days since epoch)
  kMonth,    // 1..12
  kWeekday,  // 0 = Monday .. 6 = Sunday
  kIf,       // if(cond, then, else)
};

const char* BinaryOpToString(BinaryOp op);
const char* ScalarFuncToString(ScalarFunc f);

// One expression node. Treat instances as immutable once built.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kColumnRef
  std::string column_name;  // as written (unbound form)
  int column_index = -1;    // >= 0 once bound

  // kLiteral
  Value literal;

  // kBinary / kUnary / kFunc
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNot;
  ScalarFunc func = ScalarFunc::kAbs;

  // kIn
  std::vector<Value> in_set;

  std::vector<ExprPtr> children;

  // Set by the binder.
  bool bound = false;
  DataType result_type;

  // --- structural helpers ---
  std::string ToString() const;
  bool Equals(const Expr& other) const;
  uint64_t Hash() const;

  // Column indices referenced anywhere in this tree (bound exprs).
  void CollectColumnIndices(std::vector<int>* out) const;
  // Column names referenced anywhere in this tree (unbound exprs).
  void CollectColumnNames(std::vector<std::string>* out) const;
};

// --- factories (unbound) ---
ExprPtr Col(std::string name);
ExprPtr ColIdx(int index, DataType type);  // pre-bound reference
ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Lit(bool v);
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);
ExprPtr Func(ScalarFunc f, std::vector<ExprPtr> args);
ExprPtr In(ExprPtr operand, std::vector<Value> set);
ExprPtr IsNull(ExprPtr operand);

// Binds `expr` against `schema`, resolving column names to indices and
// type-checking the tree. Returns a new, fully-bound tree.
StatusOr<ExprPtr> BindExpr(const ExprPtr& expr, const BatchSchema& schema);

// Rewrites bound column indices through `mapping` (old index -> new index);
// used when operators reorder/prune their input columns. mapping[i] == -1
// is an error surfaced at evaluation time.
ExprPtr RemapColumns(const ExprPtr& expr, const std::vector<int>& mapping);

// Evaluates a bound expression over `batch`; the result has batch.num_rows
// rows. Comparison/logical results are kBool vectors with SQL three-valued
// null semantics.
StatusOr<ColumnVector> EvalExpr(const Expr& expr, const Batch& batch);

// Evaluates a bound expression as a selection vector: row indices of
// `batch` where the (boolean) expression is true (nulls excluded).
StatusOr<std::vector<int64_t>> EvalPredicate(const Expr& expr,
                                             const Batch& batch);

// Per-token verdicts of a single-column predicate over a dictionary column:
// match[t] is the predicate's result for token t, null_matches its result
// for a NULL input. Built by running the normal vectorized evaluator over a
// synthetic one-row-per-token batch, so the semantics are exactly
// EvalPredicate's.
struct TokenMatchBitmap {
  std::vector<uint8_t> match;
  bool null_matches = false;
};

// Builds the token bitmap for `expr` (a predicate referencing only column
// `column_index`) against dict-string layout `proto`.
StatusOr<TokenMatchBitmap> BuildTokenMatchBitmap(const Expr& expr,
                                                 int column_index,
                                                 const ColumnVector& proto);

// Evaluates `expr` (a predicate referencing only column `column_index`)
// once per run of run-encoded vector `cv`: out[i] is the verdict for
// cv.runs[i]. Null runs evaluate with a NULL input (exact three-valued
// semantics via the normal evaluator).
StatusOr<std::vector<uint8_t>> EvalPredicatePerRun(const Expr& expr,
                                                   int column_index,
                                                   const ColumnVector& cv);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_EXPRESSION_H_
