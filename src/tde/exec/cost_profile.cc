#include "src/tde/exec/cost_profile.h"

namespace vizq::tde {

const CostProfile& CostProfile::Default() {
  static const CostProfile kProfile;
  return kProfile;
}

double EstimateExprCost(const Expr& expr, const CostProfile& profile) {
  double cost = 0;
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      cost = profile.column_ref;
      break;
    case ExprKind::kLiteral:
      cost = profile.literal;
      break;
    case ExprKind::kBinary:
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          cost = expr.result_type.kind == TypeKind::kFloat64
                     ? profile.float_arith
                     : profile.int_arith;
          break;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          cost = (!expr.children.empty() &&
                  expr.children[0]->result_type.is_string())
                     ? profile.string_compare
                     : profile.comparison;
          break;
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          cost = profile.logical;
          break;
      }
      break;
    case ExprKind::kUnary:
      cost = profile.logical;
      break;
    case ExprKind::kFunc:
      switch (expr.func) {
        case ScalarFunc::kAbs:
          cost = profile.int_arith;
          break;
        case ScalarFunc::kLower:
        case ScalarFunc::kUpper:
        case ScalarFunc::kSubstr:
          cost = profile.string_transform;
          break;
        case ScalarFunc::kStrLen:
          cost = profile.string_compare;
          break;
        case ScalarFunc::kYear:
        case ScalarFunc::kMonth:
        case ScalarFunc::kWeekday:
          cost = profile.date_part;
          break;
        case ScalarFunc::kIf:
          cost = profile.logical;
          break;
      }
      break;
    case ExprKind::kIn:
      cost = profile.in_probe +
             (!expr.children.empty() &&
                      expr.children[0]->result_type.is_string()
                  ? profile.string_compare
                  : 0);
      break;
    case ExprKind::kIsNull:
      cost = profile.is_null;
      break;
  }
  for (const ExprPtr& c : expr.children) {
    cost += EstimateExprCost(*c, profile);
  }
  return cost;
}

}  // namespace vizq::tde
