// Order and TopN operators (stop-and-go).

#ifndef VIZQUERY_TDE_EXEC_SORT_H_
#define VIZQUERY_TDE_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "src/tde/exec/operators.h"

namespace vizq::tde {

// One ordering key.
struct SortKey {
  ExprPtr expr;  // bound against the input schema
  bool ascending = true;
};

class SortOperator : public Operator {
 public:
  SortOperator(OperatorPtr child, std::vector<SortKey> keys);

  const BatchSchema& schema() const override { return child_->schema(); }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override { return child_->Close(); }

 private:
  Status Materialize();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  Batch all_;
  std::vector<int64_t> order_;
  bool materialized_ = false;
  int64_t cursor_ = 0;
};

// TopN: the first `limit` rows under the ordering. Keeps at most ~4*limit
// rows materialized by periodically pruning.
class TopNOperator : public Operator {
 public:
  TopNOperator(OperatorPtr child, std::vector<SortKey> keys, int64_t limit);

  const BatchSchema& schema() const override { return child_->schema(); }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override { return child_->Close(); }

 private:
  Status Materialize();
  Status PruneTo(int64_t n);

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  int64_t limit_;
  Batch buffer_;
  bool materialized_ = false;
  int64_t cursor_ = 0;
};

// Computes the permutation of rows of `batch` ordered by `keys`.
StatusOr<std::vector<int64_t>> ComputeSortOrder(const Batch& batch,
                                                const std::vector<SortKey>& keys);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_SORT_H_
