// RLE IndexTable range skipping (§4.3).
//
// For a run-length encoded column the optimizer can build an IndexTable of
// (value, count, start) runs, push the filter onto it, and turn the
// surviving runs into direct range accesses on the main table — "range
// skipping expressed as a join in the query plan". Parallel execution
// distributes the surviving ranges across threads.

#ifndef VIZQUERY_TDE_EXEC_RLE_INDEX_H_
#define VIZQUERY_TDE_EXEC_RLE_INDEX_H_

#include <memory>
#include <vector>

#include "src/tde/exec/operators.h"
#include "src/tde/storage/table.h"

namespace vizq::tde {

// A contiguous row range [start, start + count) of the main table.
struct RowRange {
  int64_t start = 0;
  int64_t count = 0;
};

// Evaluates `predicate` once per run of the RLE column `rle_column` of
// `table` (the operator-pushdown step: the filter runs over the IndexTable,
// typically a few rows, instead of over every tuple). `predicate` must be
// bound against a single-column schema holding that column. Returns the
// row ranges of the runs whose value satisfies the predicate. Runs whose
// value is null never match.
StatusOr<std::vector<RowRange>> ComputeMatchingRuns(const Table& table,
                                                    int rle_column,
                                                    const ExprPtr& predicate);

// Splits `ranges` into `dop` groups balanced by total row count.
std::vector<std::vector<RowRange>> SplitRanges(
    const std::vector<RowRange>& ranges, int dop);

// Scans only the given ranges of `table`, producing `column_indices`.
class RleIndexScanOperator : public Operator {
 public:
  RleIndexScanOperator(std::shared_ptr<const Table> table,
                       std::vector<int> column_indices,
                       std::vector<RowRange> ranges,
                       ExecStats* stats = nullptr);

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override { return OkStatus(); }

 private:
  std::shared_ptr<const Table> table_;
  std::vector<int> column_indices_;
  std::vector<RowRange> ranges_;
  size_t range_idx_ = 0;
  int64_t offset_in_range_ = 0;
  BatchSchema schema_;
  ExecStats* stats_;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_RLE_INDEX_H_
