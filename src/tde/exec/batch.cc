#include "src/tde/exec/batch.h"

#include <cstring>

namespace vizq::tde {

namespace {

inline double RunBitsToDouble(int64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

// Finds the run containing `row` by binary search on run starts.
inline const RleRun* FindBatchRun(const std::vector<RleRun>& runs,
                                  int64_t row) {
  int64_t lo = 0, hi = static_cast<int64_t>(runs.size()) - 1;
  while (lo <= hi) {
    int64_t mid = (lo + hi) / 2;
    const RleRun& r = runs[mid];
    if (row < r.start) {
      hi = mid - 1;
    } else if (row >= r.start + r.count) {
      lo = mid + 1;
    } else {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

ColumnVector ColumnVector::LayoutLike(const ColumnVector& proto) {
  ColumnVector out(proto.type);
  out.dict = proto.dict;
  return out;
}

int64_t ColumnVector::size() const {
  if (run_encoded) {
    if (runs.empty()) return 0;
    return runs.back().start + runs.back().count;
  }
  switch (type.kind) {
    case TypeKind::kFloat64:
      return static_cast<int64_t>(doubles.size());
    case TypeKind::kString:
      if (dict != nullptr) return static_cast<int64_t>(ints.size());
      return static_cast<int64_t>(strings.size());
    default:
      return static_cast<int64_t>(ints.size());
  }
}

int64_t ColumnVector::IntAt(int64_t row) const {
  if (run_encoded) {
    const RleRun* r = FindBatchRun(runs, row);
    if (r == nullptr) return 0;
    // Run values of float64 columns hold the double's bit pattern.
    if (type.kind == TypeKind::kFloat64) {
      return static_cast<int64_t>(RunBitsToDouble(r->value));
    }
    return r->value;
  }
  if (type.kind == TypeKind::kFloat64) {
    return static_cast<int64_t>(doubles[row]);
  }
  return ints[row];
}

double ColumnVector::DoubleAt(int64_t row) const {
  if (run_encoded) {
    const RleRun* r = FindBatchRun(runs, row);
    if (r == nullptr) return 0.0;
    if (type.kind == TypeKind::kFloat64) return RunBitsToDouble(r->value);
    return static_cast<double>(r->value);
  }
  if (type.kind == TypeKind::kFloat64) return doubles[row];
  return static_cast<double>(ints[row]);
}

void ColumnVector::DecodeRuns() {
  if (!run_encoded) return;
  int64_t n = size();
  if (type.kind == TypeKind::kFloat64) {
    doubles.resize(n);
    for (const RleRun& r : runs) {
      double v = RunBitsToDouble(r.value);
      for (int64_t i = 0; i < r.count; ++i) doubles[r.start + i] = v;
    }
  } else {
    ints.resize(n);
    for (const RleRun& r : runs) {
      for (int64_t i = 0; i < r.count; ++i) ints[r.start + i] = r.value;
    }
  }
  runs.clear();
  run_encoded = false;
}

Value ColumnVector::GetValue(int64_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type.kind) {
    case TypeKind::kBool:
      return Value(IntAt(row) != 0);
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return Value(IntAt(row));
    case TypeKind::kFloat64:
      return Value(DoubleAt(row));
    case TypeKind::kString:
      if (dict != nullptr) return Value(dict->value(IntAt(row)));
      return Value(strings[row]);
  }
  return Value::Null();
}

std::string_view ColumnVector::GetStringView(int64_t row) const {
  if (dict != nullptr) return dict->value(IntAt(row));
  return strings[row];
}

uint64_t ColumnVector::HashAt(int64_t row) const {
  if (IsNull(row)) return 0x9e3779b97f4a7c15ULL;
  if (type.kind == TypeKind::kString) {
    return CollatedHash(GetStringView(row), type.collation);
  }
  return GetValue(row).Hash();
}

int ColumnVector::CompareAt(int64_t a, const ColumnVector& other,
                            int64_t b) const {
  bool an = IsNull(a);
  bool bn = other.IsNull(b);
  if (an || bn) {
    if (an && bn) return 0;
    return an ? -1 : 1;
  }
  if (type.kind == TypeKind::kString && other.type.kind == TypeKind::kString) {
    // Token fast path: same dictionary implies interning by collation key,
    // so equal tokens mean collated-equal strings.
    if (dict != nullptr && dict == other.dict && IntAt(a) == other.IntAt(b)) {
      return 0;
    }
    return CollatedCompare(GetStringView(a), other.GetStringView(b),
                           type.collation);
  }
  if (type.kind == TypeKind::kFloat64 ||
      other.type.kind == TypeKind::kFloat64) {
    double x = DoubleAt(a);
    double y = other.DoubleAt(b);
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  int64_t x = IntAt(a);
  int64_t y = other.IntAt(b);
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

void ColumnVector::Reserve(int64_t n) {
  switch (type.kind) {
    case TypeKind::kFloat64:
      doubles.reserve(n);
      break;
    case TypeKind::kString:
      if (dict != nullptr) {
        ints.reserve(n);
      } else {
        strings.reserve(n);
      }
      break;
    default:
      ints.reserve(n);
      break;
  }
}

void ColumnVector::MarkNull() {
  int64_t n = size();
  if (nulls.empty()) nulls.assign(n, 0);
  nulls.resize(n, 0);
  nulls.back() = 1;
}

void ColumnVector::MarkValid() {
  if (!nulls.empty()) nulls.push_back(0);
}

void ColumnVector::AppendNull() {
  switch (type.kind) {
    case TypeKind::kFloat64:
      doubles.push_back(0);
      break;
    case TypeKind::kString:
      if (dict != nullptr) {
        ints.push_back(0);
      } else {
        strings.emplace_back();
      }
      break;
    default:
      ints.push_back(0);
      break;
  }
  MarkNull();
}

void ColumnVector::AppendInt(int64_t v) {
  ints.push_back(v);
  MarkValid();
}

void ColumnVector::AppendDouble(double v) {
  doubles.push_back(v);
  MarkValid();
}

void ColumnVector::AppendString(std::string_view v) {
  strings.emplace_back(v);
  MarkValid();
}

void ColumnVector::AppendToken(int64_t token) {
  ints.push_back(token);
  MarkValid();
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type.kind) {
    case TypeKind::kBool:
      AppendInt(v.is_bool() ? (v.bool_value() ? 1 : 0)
                            : (v.AsDouble() != 0 ? 1 : 0));
      break;
    case TypeKind::kInt64:
    case TypeKind::kDate:
      AppendInt(v.is_int() ? v.int_value()
                           : static_cast<int64_t>(v.AsDouble()));
      break;
    case TypeKind::kFloat64:
      AppendDouble(v.AsDouble());
      break;
    case TypeKind::kString:
      if (dict != nullptr) {
        // Appending an arbitrary string into a dict vector requires the
        // token to exist; fall back to materializing as plain otherwise.
        int64_t token = dict->Find(v.string_value());
        if (token >= 0) {
          AppendToken(token);
        } else {
          // Demote to plain-string representation.
          std::vector<std::string> materialized;
          materialized.reserve(ints.size() + 1);
          for (size_t i = 0; i < ints.size(); ++i) {
            materialized.push_back(dict->value(ints[i]));
          }
          materialized.push_back(v.string_value());
          strings = std::move(materialized);
          ints.clear();
          dict = nullptr;
          MarkValid();
        }
      } else {
        AppendString(v.string_value());
      }
      break;
  }
}

void ColumnVector::AppendFrom(const ColumnVector& src, int64_t row) {
  if (src.IsNull(row)) {
    AppendNull();
    return;
  }
  if (type.kind == TypeKind::kString) {
    if (dict != nullptr && dict == src.dict) {
      AppendToken(src.IntAt(row));
      return;
    }
    if (dict != nullptr && src.dict == nullptr) {
      AppendValue(Value(std::string(src.GetStringView(row))));
      return;
    }
    if (dict == nullptr) {
      AppendString(src.GetStringView(row));
      return;
    }
    // Different dictionaries: translate through the value.
    AppendValue(Value(std::string(src.GetStringView(row))));
    return;
  }
  if (type.kind == TypeKind::kFloat64) {
    AppendDouble(src.DoubleAt(row));
    return;
  }
  AppendInt(src.type.kind == TypeKind::kFloat64
                ? static_cast<int64_t>(src.DoubleAt(row))
                : src.IntAt(row));
}

std::vector<Value> Batch::GetRow(int64_t row) const {
  std::vector<Value> out;
  out.reserve(columns.size());
  for (const ColumnVector& c : columns) out.push_back(c.GetValue(row));
  return out;
}

int BatchSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Batch BatchSchema::NewBatch() const {
  Batch b;
  b.columns.reserve(prototypes.size());
  for (const ColumnVector& proto : prototypes) {
    b.columns.push_back(ColumnVector::LayoutLike(proto));
  }
  return b;
}

}  // namespace vizq::tde
