#include "src/tde/exec/aggregate.h"

#include <algorithm>
#include <chrono>

#include "src/common/rng.h"

namespace vizq::tde {

// Deadline/cancel poll frequency while consuming input batches.
constexpr int64_t kCtxPollBatches = 4;
// Merge-partition ceiling; partitions are a power of two >= merge_dop.
constexpr int kMaxMergePartitions = 64;

namespace {

// True when this spec's running sum is integral.
bool SumIsIntegral(const AggSpec& spec) {
  return spec.arg == nullptr ||
         spec.arg->result_type.kind != TypeKind::kFloat64;
}

DataType AggOutputType(const AggSpec& spec) {
  DataType arg_type =
      spec.arg != nullptr ? spec.arg->result_type : DataType::Int64();
  return AggResultType(spec.func, arg_type);
}

}  // namespace

std::vector<ResultColumn> PartialStateColumns(const AggSpec& spec) {
  std::vector<ResultColumn> out;
  switch (spec.func) {
    case AggFunc::kAvg:
      out.push_back({spec.output_name + "$sum", DataType::Float64()});
      out.push_back({spec.output_name + "$cnt", DataType::Int64()});
      break;
    case AggFunc::kSum:
      out.push_back({spec.output_name,
                     SumIsIntegral(spec) ? DataType::Int64()
                                         : DataType::Float64()});
      break;
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      out.push_back({spec.output_name, DataType::Int64()});
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      out.push_back({spec.output_name, spec.arg->result_type});
      break;
    case AggFunc::kCountDistinct:
      // Not re-aggregable; the parallelizer never asks for a partial here.
      out.push_back({spec.output_name, DataType::Int64()});
      break;
  }
  return out;
}

BatchSchema MakeAggSchema(const std::vector<GroupExpr>& group_exprs,
                          const std::vector<AggSpec>& specs, AggPhase phase,
                          const BatchSchema& child_schema) {
  BatchSchema schema;
  for (const GroupExpr& g : group_exprs) {
    schema.names.push_back(g.name);
    ColumnVector proto(g.expr->result_type);
    if (g.expr->kind == ExprKind::kColumnRef && g.expr->column_index >= 0 &&
        g.expr->column_index < child_schema.num_columns()) {
      proto.dict = child_schema.prototypes[g.expr->column_index].dict;
    }
    schema.prototypes.push_back(std::move(proto));
  }
  for (const AggSpec& spec : specs) {
    if (phase == AggPhase::kPartial) {
      for (const ResultColumn& rc : PartialStateColumns(spec)) {
        schema.names.push_back(rc.name);
        schema.prototypes.emplace_back(rc.type);
      }
    } else {
      schema.names.push_back(spec.output_name);
      schema.prototypes.emplace_back(AggOutputType(spec));
    }
  }
  return schema;
}

HashAggregateOperator::HashAggregateOperator(OperatorPtr child,
                                             std::vector<GroupExpr> group_exprs,
                                             std::vector<AggSpec> specs,
                                             AggPhase phase,
                                             const ExecContext& ctx)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      specs_(std::move(specs)),
      phase_(phase),
      ctx_(ctx) {
  schema_ = MakeAggSchema(group_exprs_, specs_, phase_, child_->schema());
  main_ = NewGroupTable();
}

HashAggregateOperator::GroupTable HashAggregateOperator::NewGroupTable()
    const {
  GroupTable gt;
  gt.group_store.reserve(group_exprs_.size());
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    gt.group_store.push_back(ColumnVector::LayoutLike(schema_.prototypes[i]));
  }
  gt.accums.resize(specs_.size());
  return gt;
}

void HashAggregateOperator::EnableDenseGroups(DenseAggConfig config,
                                              ExecStats* stats) {
  dense_ = std::move(config);
  stats_ = stats;
}

void HashAggregateOperator::EnableParallelMerge(const AggMergeOptions& options,
                                                ExecStats* stats) {
  merge_ = options;
  stats_ = stats;
}

Status HashAggregateOperator::Open() {
  consumed_ = false;
  emit_cursor_ = 0;
  emit_table_idx_ = 0;
  batches_consumed_ = 0;
  cell_to_group_.clear();
  main_ = NewGroupTable();
  merge_tables_.clear();
  emit_tables_.clear();
  span_ = ctx_.StartSpan("op:aggregate");
  return child_->Open();
}

Status HashAggregateOperator::Close() {
  if (span_ != nullptr) {
    span_->End();
    span_ = nullptr;
  }
  return child_->Close();
}

int64_t HashAggregateOperator::FindOrCreateGroup(
    GroupTable& gt, const std::vector<ColumnVector>& key_cols, int64_t row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const ColumnVector& kc : key_cols) {
    h = HashCombine(h, kc.HashAt(row));
  }
  return FindOrCreateGroup(gt, key_cols, row, h);
}

int64_t HashAggregateOperator::FindOrCreateGroup(
    GroupTable& gt, const std::vector<ColumnVector>& key_cols, int64_t row,
    uint64_t hash) {
  auto& bucket = gt.buckets[hash];
  for (int64_t candidate : bucket) {
    bool equal = true;
    for (size_t k = 0; k < key_cols.size(); ++k) {
      if (gt.group_store[k].CompareAt(candidate, key_cols[k], row) != 0) {
        equal = false;
        break;
      }
    }
    if (equal) return candidate;
  }
  // New group.
  int64_t g = gt.num_groups++;
  for (size_t k = 0; k < key_cols.size(); ++k) {
    gt.group_store[k].AppendFrom(key_cols[k], row);
  }
  AppendGroupSlots(gt);
  bucket.push_back(g);
  return g;
}

void HashAggregateOperator::AppendGroupSlots(GroupTable& gt) {
  for (size_t s = 0; s < specs_.size(); ++s) {
    Accumulator& acc = gt.accums[s];
    acc.sum_d.push_back(0);
    acc.sum_i.push_back(0);
    acc.count.push_back(0);
    acc.extreme.emplace_back();
    acc.has_value.push_back(0);
    if (specs_[s].func == AggFunc::kCountDistinct) {
      acc.distinct.emplace_back();
    }
  }
}

void HashAggregateOperator::UpdateAccumulator(GroupTable& gt, int spec_idx,
                                              int64_t group,
                                              const ColumnVector& arg_col,
                                              int64_t row) {
  const AggSpec& spec = specs_[spec_idx];
  Accumulator& acc = gt.accums[spec_idx];
  if (spec.func == AggFunc::kCountStar) {
    ++acc.count[group];
    return;
  }
  if (arg_col.IsNull(row)) return;  // aggregates skip nulls
  switch (spec.func) {
    case AggFunc::kSum:
      if (SumIsIntegral(spec)) {
        acc.sum_i[group] += arg_col.IntAt(row);
      } else {
        acc.sum_d[group] += arg_col.DoubleAt(row);
      }
      acc.has_value[group] = 1;
      break;
    case AggFunc::kAvg:
      acc.sum_d[group] += arg_col.DoubleAt(row);
      ++acc.count[group];
      break;
    case AggFunc::kCount:
      ++acc.count[group];
      break;
    case AggFunc::kMin:
    case AggFunc::kMax: {
      Value v = arg_col.GetValue(row);
      if (acc.has_value[group] == 0) {
        acc.extreme[group] = std::move(v);
        acc.has_value[group] = 1;
      } else {
        int cmp = v.Compare(acc.extreme[group], arg_col.type.collation);
        if ((spec.func == AggFunc::kMin && cmp < 0) ||
            (spec.func == AggFunc::kMax && cmp > 0)) {
          acc.extreme[group] = std::move(v);
        }
      }
      break;
    }
    case AggFunc::kCountDistinct:
      acc.distinct[group].insert(arg_col.GetValue(row));
      break;
    case AggFunc::kCountStar:
      break;  // handled above
  }
}

void HashAggregateOperator::UpdateFinalAccumulator(GroupTable& gt,
                                                   int spec_idx, int64_t group,
                                                   const Batch& in,
                                                   int first_col,
                                                   int64_t row) {
  const AggSpec& spec = specs_[spec_idx];
  Accumulator& acc = gt.accums[spec_idx];
  const ColumnVector& c0 = in.columns[first_col];
  switch (spec.func) {
    case AggFunc::kSum:
      if (c0.IsNull(row)) break;
      if (SumIsIntegral(spec)) {
        acc.sum_i[group] += c0.ints[row];
      } else {
        acc.sum_d[group] += c0.doubles[row];
      }
      acc.has_value[group] = 1;
      break;
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      if (!c0.IsNull(row)) acc.count[group] += c0.ints[row];
      break;
    case AggFunc::kAvg: {
      const ColumnVector& c1 = in.columns[first_col + 1];
      if (!c0.IsNull(row)) acc.sum_d[group] += c0.doubles[row];
      if (!c1.IsNull(row)) acc.count[group] += c1.ints[row];
      break;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (c0.IsNull(row)) break;
      Value v = c0.GetValue(row);
      if (acc.has_value[group] == 0) {
        acc.extreme[group] = std::move(v);
        acc.has_value[group] = 1;
      } else {
        int cmp = v.Compare(acc.extreme[group], c0.type.collation);
        if ((spec.func == AggFunc::kMin && cmp < 0) ||
            (spec.func == AggFunc::kMax && cmp > 0)) {
          acc.extreme[group] = std::move(v);
        }
      }
      break;
    }
    case AggFunc::kCountDistinct:
      // Partial COUNTD is not combinable; the planner never builds this.
      break;
  }
}

Status HashAggregateOperator::Consume(const Batch& in) {
  // Evaluate group keys.
  std::vector<ColumnVector> key_cols;
  key_cols.reserve(group_exprs_.size());
  for (const GroupExpr& g : group_exprs_) {
    VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(*g.expr, in));
    key_cols.push_back(std::move(v));
  }

  if (phase_ == AggPhase::kFinal) {
    int first_col = static_cast<int>(group_exprs_.size());
    for (int64_t r = 0; r < in.num_rows; ++r) {
      int64_t g = FindOrCreateGroup(main_, key_cols, r);
      int col = first_col;
      for (size_t s = 0; s < specs_.size(); ++s) {
        UpdateFinalAccumulator(main_, static_cast<int>(s), g, in, col, r);
        col += static_cast<int>(PartialStateColumns(specs_[s]).size());
      }
    }
    return OkStatus();
  }

  // Evaluate agg args once per batch.
  std::vector<ColumnVector> arg_cols(specs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s].arg != nullptr) {
      VIZQ_ASSIGN_OR_RETURN(arg_cols[s], EvalExpr(*specs_[s].arg, in));
    }
  }
  for (int64_t r = 0; r < in.num_rows; ++r) {
    int64_t g = FindOrCreateGroup(main_, key_cols, r);
    for (size_t s = 0; s < specs_.size(); ++s) {
      UpdateAccumulator(main_, static_cast<int>(s), g, arg_cols[s], r);
    }
  }
  return OkStatus();
}

Status HashAggregateOperator::ConsumeFinalParallel() {
  // Buffer the partial states first. They are bounded by groups ×
  // fractions — far smaller than the input the kPartial lanes consumed —
  // so materializing them is cheap relative to the merge itself.
  std::vector<Batch> buffered;
  int64_t total_rows = 0;
  Batch in;
  while (true) {
    if (batches_consumed_ % kCtxPollBatches == 0) {
      VIZQ_RETURN_IF_ERROR(ctx_.CheckContinue("hash aggregate"));
    }
    ++batches_consumed_;
    VIZQ_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) break;
    if (in.num_rows == 0) continue;
    total_rows += in.num_rows;
    buffered.push_back(std::move(in));
    in = Batch{};
  }
  if (total_rows < merge_.min_parallel_rows) {
    for (const Batch& b : buffered) {
      VIZQ_RETURN_IF_ERROR(Consume(b));
    }
    return OkStatus();
  }

  const int dop = std::min(merge_.merge_dop, kMaxMergePartitions);
  int parts = 1;
  while (parts < dop) parts <<= 1;
  const uint64_t mask = static_cast<uint64_t>(parts - 1);

  // Per-batch group keys and combined key hashes (the hash both routes a
  // row to its partition and seeds the partition's bucket lookup).
  // Batches are independent, so the precompute fans out too — over the
  // inner aggregate of a large local/global plan this pass touches every
  // partial row and would otherwise be the merge's serial Amdahl term.
  struct Prepared {
    const Batch* batch = nullptr;
    std::vector<ColumnVector> keys;
    std::vector<uint64_t> hashes;
  };
  std::vector<Prepared> prepared(buffered.size());
  const int prep_tasks =
      static_cast<int>(std::min<size_t>(dop, buffered.size()));
  std::vector<Status> prep_status(std::max(prep_tasks, 1));
  const int prep_section = stats_ != nullptr ? stats_->NewSection() : 0;
  auto prep_task = [&](int t) {
    auto t0 = std::chrono::steady_clock::now();
    int64_t rows = 0;
    Status s;
    for (size_t b = t; b < buffered.size();
         b += static_cast<size_t>(prep_tasks)) {
      s = ctx_.CheckContinue("final merge prepare");
      if (!s.ok()) break;
      Prepared& p = prepared[b];
      p.batch = &buffered[b];
      p.keys.reserve(group_exprs_.size());
      for (const GroupExpr& g : group_exprs_) {
        StatusOr<ColumnVector> v = EvalExpr(*g.expr, buffered[b]);
        if (!v.ok()) {
          s = v.status();
          break;
        }
        p.keys.push_back(std::move(*v));
      }
      if (!s.ok()) break;
      p.hashes.resize(buffered[b].num_rows);
      for (int64_t r = 0; r < buffered[b].num_rows; ++r) {
        uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (const ColumnVector& kc : p.keys) {
          h = HashCombine(h, kc.HashAt(r));
        }
        p.hashes[r] = h;
      }
      rows += buffered[b].num_rows;
    }
    prep_status[t] = s;
    if (stats_ != nullptr) {
      double seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      stats_->AddFraction(seconds, rows, prep_section,
                          ExecStats::kStageMerge);
    }
  };
  if (merge_.serial_measurement || prep_tasks <= 1) {
    for (int t = 0; t < prep_tasks; ++t) prep_task(t);
  } else {
    TaskGroup group(&Scheduler::Global(), merge_.priority, ctx_);
    for (int t = 0; t < prep_tasks; ++t) {
      group.Spawn([&prep_task, t] { prep_task(t); }, "final-merge-prep");
    }
    group.Wait();
  }
  for (const Status& s : prep_status) {
    VIZQ_RETURN_IF_ERROR(s);
  }
  merge_tables_.clear();
  merge_tables_.resize(parts);

  const int first_col = static_cast<int>(group_exprs_.size());
  std::vector<int> widths(specs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    widths[s] = static_cast<int>(PartialStateColumns(specs_[s]).size());
  }

  // One task per partition; each merges only the rows whose key hash
  // falls in its partition, into its own GroupTable — no shared mutable
  // state, no locking.
  std::vector<Status> task_status(parts);
  const int section = stats_ != nullptr ? stats_->NewSection() : 0;
  auto merge_task = [&](int p) {
    auto t0 = std::chrono::steady_clock::now();
    // Constructing (and, in the emit task, freeing) the partition table is
    // real per-partition work; doing it here keeps it on the task's clock.
    merge_tables_[p] = NewGroupTable();
    GroupTable& gt = merge_tables_[p];
    const uint64_t want = static_cast<uint64_t>(p);
    int64_t merged = 0;
    Status s;
    for (const Prepared& pb : prepared) {
      s = ctx_.CheckContinue("final merge");
      if (!s.ok()) break;
      for (int64_t r = 0; r < pb.batch->num_rows; ++r) {
        if ((pb.hashes[r] & mask) != want) continue;
        int64_t g = FindOrCreateGroup(gt, pb.keys, r, pb.hashes[r]);
        int col = first_col;
        for (size_t sp = 0; sp < specs_.size(); ++sp) {
          UpdateFinalAccumulator(gt, static_cast<int>(sp), g, *pb.batch, col,
                                 r);
          col += widths[sp];
        }
        ++merged;
      }
    }
    task_status[p] = s;
    if (stats_ != nullptr) {
      double seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      stats_->AddFraction(seconds, merged, section, ExecStats::kStageMerge);
    }
  };
  if (merge_.serial_measurement) {
    for (int p = 0; p < parts; ++p) merge_task(p);
  } else {
    TaskGroup group(&Scheduler::Global(), merge_.priority, ctx_);
    for (int p = 0; p < parts; ++p) {
      group.Spawn([&merge_task, p] { merge_task(p); }, "final-merge");
    }
    group.Wait();
  }
  for (const Status& s : task_status) {
    VIZQ_RETURN_IF_ERROR(s);
  }
  // Stage 3 — per-partition emission: building the output batches walks
  // every merged group and appends into column vectors, which for a large
  // group count (the inner aggregate of a local/global plan) costs as
  // much as the merge itself. Partitions materialize their own batches.
  std::vector<std::vector<Batch>> emitted(parts);
  std::vector<Status> emit_status(parts);
  const int emit_section = stats_ != nullptr ? stats_->NewSection() : 0;
  auto emit_task = [&](int p) {
    auto t0 = std::chrono::steady_clock::now();
    const GroupTable& gt = merge_tables_[p];
    Status s;
    int64_t g = 0;
    while (g < gt.num_groups) {
      s = ctx_.CheckContinue("final merge emit");
      if (!s.ok()) break;
      const int64_t end = std::min(gt.num_groups, g + kBatchRows);
      Batch out = schema_.NewBatch();
      for (int64_t i = g; i < end; ++i) EmitGroup(gt, i, &out);
      out.num_rows = end - g;
      emitted[p].push_back(std::move(out));
      g = end;
    }
    emit_status[p] = s;
    const int64_t emitted_groups = gt.num_groups;
    // Free this partition's table here: a couple hundred thousand bucket
    // vectors take real time to release, and each partition's are
    // independent — parallel teardown, on this task's clock.
    merge_tables_[p] = GroupTable{};
    if (stats_ != nullptr) {
      double seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      stats_->AddFraction(seconds, emitted_groups, emit_section,
                          ExecStats::kStageMerge);
    }
  };
  if (merge_.serial_measurement || parts <= 1) {
    for (int p = 0; p < parts; ++p) emit_task(p);
  } else {
    TaskGroup group(&Scheduler::Global(), merge_.priority, ctx_);
    for (int p = 0; p < parts; ++p) {
      group.Spawn([&emit_task, p] { emit_task(p); }, "final-merge-emit");
    }
    group.Wait();
  }
  for (const Status& s : emit_status) {
    VIZQ_RETURN_IF_ERROR(s);
  }
  for (std::vector<Batch>& part : emitted) {
    for (Batch& b : part) prebuilt_.push_back(std::move(b));
  }
  merge_tables_.clear();  // group state is spent; output lives in prebuilt_
  prebuilt_ready_ = true;

  if (stats_ != nullptr) {
    std::lock_guard<std::mutex> lock(stats_->mu);
    stats_->used_parallel_merge = true;
    stats_->merge_partitions += parts;
  }
  return OkStatus();
}

Status HashAggregateOperator::ConsumeDense(Batch& in) {
  if (in.num_rows == 0) return OkStatus();
  const int64_t n = in.num_rows;
  if (cell_to_group_.empty() && dense_.total_cells > 0) {
    cell_to_group_.assign(dense_.total_cells, -1);
  }

  std::vector<const ColumnVector*> keys;
  keys.reserve(dense_.key_columns.size());
  for (int c : dense_.key_columns) keys.push_back(&in.columns[c]);
  std::vector<size_t> key_run(keys.size(), 0);

  // Resolve agg args. Bare column refs stay as-is (possibly run-encoded,
  // folded below); computed args evaluate through the normal vectorized
  // path over flat columns. `owned` also provides the COUNT(*) dummy.
  std::vector<const ColumnVector*> args(specs_.size(), nullptr);
  std::vector<ColumnVector> owned(specs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    const AggSpec& spec = specs_[s];
    if (spec.arg == nullptr) {
      args[s] = &owned[s];
      continue;
    }
    if (spec.arg->kind == ExprKind::kColumnRef && spec.arg->column_index >= 0) {
      args[s] = &in.columns[spec.arg->column_index];
      continue;
    }
    // The planner only admits computed args over flat columns; flatten
    // defensively in case a run-encoded one reached us anyway.
    std::vector<int> refs;
    spec.arg->CollectColumnIndices(&refs);
    for (int c : refs) in.columns[c].DecodeRuns();
    VIZQ_ASSIGN_OR_RETURN(owned[s], EvalExpr(*spec.arg, in));
    args[s] = &owned[s];
  }
  std::vector<size_t> arg_run(specs_.size(), 0);

  const int32_t* sel = in.has_selection ? in.selection.data() : nullptr;
  const size_t sel_n = in.selection.size();
  size_t sel_idx = 0;

  int64_t pos = 0;
  while (pos < n) {
    // Maximal segment [pos, seg_end) on which every key column is constant:
    // bounded by the enclosing run of each run-encoded key, one row for
    // flat keys. Cell digit 0 encodes NULL (runs never straddle null
    // boundaries, so the run's first row carries its null status).
    int64_t seg_end = n;
    int64_t cell = 0;
    for (size_t k = 0; k < keys.size(); ++k) {
      const ColumnVector& kc = *keys[k];
      int64_t token;
      if (kc.is_run_encoded()) {
        while (kc.runs[key_run[k]].start + kc.runs[key_run[k]].count <= pos) {
          ++key_run[k];
        }
        const RleRun& r = kc.runs[key_run[k]];
        token = kc.IsNull(pos) ? -1 : r.value;
        seg_end = std::min(seg_end, r.start + r.count);
      } else {
        token = kc.IsNull(pos) ? -1 : kc.ints[pos];
        seg_end = std::min(seg_end, pos + 1);
      }
      cell = cell * (dense_.key_cards[k] + 1) + (token + 1);
    }

    if (sel != nullptr) {
      // Selection path: update per live row (accessors are run-aware).
      // Segments with no survivors must not create their group.
      size_t first = sel_idx;
      while (sel_idx < sel_n && sel[sel_idx] < seg_end) ++sel_idx;
      if (sel_idx == first) {
        pos = seg_end;
        continue;
      }
      int64_t g = cell_to_group_[cell];
      if (g < 0) {
        g = main_.num_groups++;
        for (size_t k = 0; k < keys.size(); ++k) {
          main_.group_store[k].AppendFrom(*keys[k], pos);
        }
        AppendGroupSlots(main_);
        cell_to_group_[cell] = static_cast<int32_t>(g);
      }
      for (size_t i = first; i < sel_idx; ++i) {
        int64_t r = sel[i];
        for (size_t s = 0; s < specs_.size(); ++s) {
          UpdateAccumulator(main_, static_cast<int>(s), g, *args[s], r);
        }
      }
      pos = seg_end;
      continue;
    }

    int64_t g = cell_to_group_[cell];
    if (g < 0) {
      g = main_.num_groups++;
      for (size_t k = 0; k < keys.size(); ++k) {
        main_.group_store[k].AppendFrom(*keys[k], pos);
      }
      AppendGroupSlots(main_);
      cell_to_group_[cell] = static_cast<int32_t>(g);
    }
    int64_t seg_len = seg_end - pos;
    for (size_t s = 0; s < specs_.size(); ++s) {
      const AggSpec& spec = specs_[s];
      Accumulator& acc = main_.accums[s];
      if (spec.arg == nullptr) {  // COUNT(*)
        acc.count[g] += seg_len;
        continue;
      }
      const ColumnVector& a = *args[s];
      if (a.is_run_encoded()) {
        // Fold whole runs: one multiply-add per run instead of per row.
        while (a.runs[arg_run[s]].start + a.runs[arg_run[s]].count <= pos) {
          ++arg_run[s];
        }
        for (size_t ri = arg_run[s]; ri < a.runs.size(); ++ri) {
          const RleRun& r = a.runs[ri];
          int64_t f = std::max(pos, r.start);
          int64_t t = std::min(seg_end, r.start + r.count);
          if (f >= t) break;
          if (a.IsNull(f)) continue;  // null run: aggregates skip nulls
          int64_t len = t - f;
          switch (spec.func) {
            case AggFunc::kSum:
              if (SumIsIntegral(spec)) {
                acc.sum_i[g] += r.value * len;
              } else {
                acc.sum_d[g] += a.DoubleAt(f) * len;
              }
              acc.has_value[g] = 1;
              break;
            case AggFunc::kAvg:
              acc.sum_d[g] += a.DoubleAt(f) * len;
              acc.count[g] += len;
              break;
            case AggFunc::kCount:
              acc.count[g] += len;
              break;
            case AggFunc::kMin:
            case AggFunc::kMax:
            case AggFunc::kCountDistinct:
              // Constant within the run: one per-row update suffices.
              UpdateAccumulator(main_, static_cast<int>(s), g, a, f);
              break;
            case AggFunc::kCountStar:
              break;  // handled above
          }
        }
      } else {
        for (int64_t r = pos; r < seg_end; ++r) {
          UpdateAccumulator(main_, static_cast<int>(s), g, a, r);
        }
      }
    }
    pos = seg_end;
  }
  return OkStatus();
}

void HashAggregateOperator::EmitGroup(const GroupTable& gt, int64_t group,
                                      Batch* batch) const {
  for (size_t k = 0; k < group_exprs_.size(); ++k) {
    batch->columns[k].AppendFrom(gt.group_store[k], group);
  }
  int col = static_cast<int>(group_exprs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    const AggSpec& spec = specs_[s];
    const Accumulator& acc = gt.accums[s];
    if (phase_ == AggPhase::kPartial && spec.func == AggFunc::kAvg) {
      batch->columns[col].AppendDouble(acc.sum_d[group]);
      batch->columns[col + 1].AppendInt(acc.count[group]);
      col += 2;
      continue;
    }
    ColumnVector& out = batch->columns[col++];
    switch (spec.func) {
      case AggFunc::kSum:
        if (acc.has_value[group] == 0) {
          out.AppendNull();
        } else if (SumIsIntegral(spec)) {
          out.AppendInt(acc.sum_i[group]);
        } else {
          out.AppendDouble(acc.sum_d[group]);
        }
        break;
      case AggFunc::kCount:
      case AggFunc::kCountStar:
        out.AppendInt(acc.count[group]);
        break;
      case AggFunc::kAvg:
        if (acc.count[group] == 0) {
          out.AppendNull();
        } else {
          out.AppendDouble(acc.sum_d[group] /
                           static_cast<double>(acc.count[group]));
        }
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        if (acc.has_value[group] == 0) {
          out.AppendNull();
        } else {
          out.AppendValue(acc.extreme[group]);
        }
        break;
      case AggFunc::kCountDistinct:
        out.AppendInt(static_cast<int64_t>(acc.distinct[group].size()));
        break;
    }
  }
}

StatusOr<bool> HashAggregateOperator::Next(Batch* batch) {
  if (!consumed_) {
    if (phase_ == AggPhase::kFinal && merge_.merge_dop > 1 &&
        !group_exprs_.empty()) {
      VIZQ_RETURN_IF_ERROR(ConsumeFinalParallel());
    } else {
      Batch in;
      while (true) {
        if (batches_consumed_ % kCtxPollBatches == 0) {
          VIZQ_RETURN_IF_ERROR(ctx_.CheckContinue("hash aggregate"));
        }
        ++batches_consumed_;
        VIZQ_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
        if (!more) break;
        if (dense_.enabled && phase_ != AggPhase::kFinal) {
          VIZQ_RETURN_IF_ERROR(ConsumeDense(in));
        } else {
          VIZQ_RETURN_IF_ERROR(Consume(in));
        }
      }
    }
    consumed_ = true;
    // Scalar aggregation over an empty input still yields one row
    // (complete/final phases only; empty partials are correct as empty).
    // Scalar finals never take the parallel path, so main_ is the table.
    if (group_exprs_.empty() && main_.num_groups == 0 &&
        phase_ != AggPhase::kPartial) {
      std::vector<ColumnVector> no_keys;
      FindOrCreateGroup(main_, no_keys, 0);
    }
    if (prebuilt_ready_) {
      emit_tables_.clear();
    } else if (merge_tables_.empty()) {
      emit_tables_ = {&main_};
    } else {
      emit_tables_.clear();
      for (const GroupTable& gt : merge_tables_) emit_tables_.push_back(&gt);
    }
  }
  if (prebuilt_ready_) {
    if (prebuilt_idx_ >= prebuilt_.size()) return false;
    *batch = std::move(prebuilt_[prebuilt_idx_++]);
    return true;
  }
  // Emit from one table per batch; partitions follow each other in order
  // (output order across partitions is unspecified, like any hash agg).
  while (emit_table_idx_ < emit_tables_.size() &&
         emit_cursor_ >= emit_tables_[emit_table_idx_]->num_groups) {
    ++emit_table_idx_;
    emit_cursor_ = 0;
  }
  if (emit_table_idx_ >= emit_tables_.size()) return false;
  const GroupTable& gt = *emit_tables_[emit_table_idx_];
  *batch = schema_.NewBatch();
  int64_t end = std::min(gt.num_groups, emit_cursor_ + kBatchRows);
  for (int64_t g = emit_cursor_; g < end; ++g) EmitGroup(gt, g, batch);
  batch->num_rows = end - emit_cursor_;
  emit_cursor_ = end;
  return true;
}

// --- streaming aggregate ---

StreamingAggregateOperator::StreamingAggregateOperator(
    OperatorPtr child, std::vector<GroupExpr> group_exprs,
    std::vector<AggSpec> specs, const ExecContext& ctx)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      specs_(std::move(specs)),
      ctx_(ctx) {
  schema_ = MakeAggSchema(group_exprs_, specs_, AggPhase::kComplete,
                          child_->schema());
}

Status StreamingAggregateOperator::Open() {
  in_group_ = false;
  done_ = false;
  saw_any_row_ = false;
  batches_consumed_ = 0;
  span_ = ctx_.StartSpan("op:streaming-aggregate");
  return child_->Open();
}

Status StreamingAggregateOperator::Close() {
  if (span_ != nullptr) {
    span_->End();
    span_ = nullptr;
  }
  return child_->Close();
}

void StreamingAggregateOperator::StartGroup(
    const std::vector<ColumnVector>& keys, int64_t row) {
  current_key_.clear();
  for (const ColumnVector& k : keys) current_key_.push_back(k.GetValue(row));
  sum_d_.assign(specs_.size(), 0);
  sum_i_.assign(specs_.size(), 0);
  count_.assign(specs_.size(), 0);
  extreme_.assign(specs_.size(), Value());
  has_value_.assign(specs_.size(), 0);
  distinct_.assign(specs_.size(), {});
  in_group_ = true;
}

void StreamingAggregateOperator::UpdateGroup(int spec_idx,
                                             const ColumnVector& arg_col,
                                             int64_t row) {
  const AggSpec& spec = specs_[spec_idx];
  if (spec.func == AggFunc::kCountStar) {
    ++count_[spec_idx];
    return;
  }
  if (arg_col.IsNull(row)) return;
  switch (spec.func) {
    case AggFunc::kSum:
      if (SumIsIntegral(spec)) {
        sum_i_[spec_idx] += arg_col.ints[row];
      } else {
        sum_d_[spec_idx] += arg_col.doubles[row];
      }
      has_value_[spec_idx] = 1;
      break;
    case AggFunc::kAvg:
      sum_d_[spec_idx] += arg_col.type.kind == TypeKind::kFloat64
                              ? arg_col.doubles[row]
                              : static_cast<double>(arg_col.ints[row]);
      ++count_[spec_idx];
      break;
    case AggFunc::kCount:
      ++count_[spec_idx];
      break;
    case AggFunc::kMin:
    case AggFunc::kMax: {
      Value v = arg_col.GetValue(row);
      if (has_value_[spec_idx] == 0) {
        extreme_[spec_idx] = std::move(v);
        has_value_[spec_idx] = 1;
      } else {
        int cmp = v.Compare(extreme_[spec_idx], arg_col.type.collation);
        if ((spec.func == AggFunc::kMin && cmp < 0) ||
            (spec.func == AggFunc::kMax && cmp > 0)) {
          extreme_[spec_idx] = std::move(v);
        }
      }
      break;
    }
    case AggFunc::kCountDistinct:
      distinct_[spec_idx].insert(arg_col.GetValue(row));
      break;
    case AggFunc::kCountStar:
      break;
  }
}

void StreamingAggregateOperator::FlushGroup(Batch* out) {
  for (size_t k = 0; k < group_exprs_.size(); ++k) {
    out->columns[k].AppendValue(current_key_[k]);
  }
  int col = static_cast<int>(group_exprs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    ColumnVector& o = out->columns[col++];
    switch (specs_[s].func) {
      case AggFunc::kSum:
        if (has_value_[s] == 0) {
          o.AppendNull();
        } else if (SumIsIntegral(specs_[s])) {
          o.AppendInt(sum_i_[s]);
        } else {
          o.AppendDouble(sum_d_[s]);
        }
        break;
      case AggFunc::kCount:
      case AggFunc::kCountStar:
        o.AppendInt(count_[s]);
        break;
      case AggFunc::kAvg:
        if (count_[s] == 0) {
          o.AppendNull();
        } else {
          o.AppendDouble(sum_d_[s] / static_cast<double>(count_[s]));
        }
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        if (has_value_[s] == 0) {
          o.AppendNull();
        } else {
          o.AppendValue(extreme_[s]);
        }
        break;
      case AggFunc::kCountDistinct:
        o.AppendInt(static_cast<int64_t>(distinct_[s].size()));
        break;
    }
  }
  ++out->num_rows;
}

StatusOr<bool> StreamingAggregateOperator::Next(Batch* batch) {
  if (done_) return false;
  *batch = schema_.NewBatch();
  Batch in;
  while (batch->num_rows < kBatchRows) {
    if (batches_consumed_ % kCtxPollBatches == 0) {
      VIZQ_RETURN_IF_ERROR(ctx_.CheckContinue("streaming aggregate"));
    }
    ++batches_consumed_;
    VIZQ_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) {
      if (in_group_) {
        FlushGroup(batch);
        in_group_ = false;
      } else if (!saw_any_row_ && group_exprs_.empty()) {
        // Scalar aggregate over empty input: one default row.
        std::vector<ColumnVector> no_keys;
        StartGroup(no_keys, 0);
        FlushGroup(batch);
        in_group_ = false;
      }
      done_ = true;
      return batch->num_rows > 0;
    }
    if (in.num_rows == 0) continue;
    saw_any_row_ = true;

    std::vector<ColumnVector> key_cols;
    key_cols.reserve(group_exprs_.size());
    for (const GroupExpr& g : group_exprs_) {
      VIZQ_ASSIGN_OR_RETURN(ColumnVector v, EvalExpr(*g.expr, in));
      key_cols.push_back(std::move(v));
    }
    std::vector<ColumnVector> arg_cols(specs_.size());
    for (size_t s = 0; s < specs_.size(); ++s) {
      if (specs_[s].arg != nullptr) {
        VIZQ_ASSIGN_OR_RETURN(arg_cols[s], EvalExpr(*specs_[s].arg, in));
      }
    }
    for (int64_t r = 0; r < in.num_rows; ++r) {
      bool same_group = in_group_;
      if (in_group_) {
        for (size_t k = 0; k < key_cols.size(); ++k) {
          Value v = key_cols[k].GetValue(r);
          if (v.Compare(current_key_[k], key_cols[k].type.collation) != 0) {
            same_group = false;
            break;
          }
        }
      }
      if (!same_group) {
        if (in_group_) FlushGroup(batch);
        StartGroup(key_cols, r);
      }
      for (size_t s = 0; s < specs_.size(); ++s) {
        UpdateGroup(static_cast<int>(s), arg_cols[s], r);
      }
    }
  }
  return true;
}

}  // namespace vizq::tde
