// TableScan and FractionTable (§4.2.1): scans a stored table, optionally
// restricted to a row range. The parallelizer partitions a table into N
// fractions and gives each Exchange input a FractionTable-style scan over
// its own range — random (contiguous) partitioning — or range partitioning
// aligned to group boundaries when the sort order allows (§4.2.3).

#ifndef VIZQUERY_TDE_EXEC_SCAN_H_
#define VIZQUERY_TDE_EXEC_SCAN_H_

#include <memory>
#include <vector>

#include "src/tde/exec/morsel.h"
#include "src/tde/exec/operators.h"
#include "src/tde/storage/table.h"

namespace vizq::tde {

class TableScanOperator : public Operator {
 public:
  // Scans rows [row_begin, row_end) of `table`, producing the columns in
  // `column_indices` (in that order). row_end == -1 means "to the end".
  // The scan polls `ctx` every few batches, so a deadline or cancellation
  // actually stops the work mid-scan.
  TableScanOperator(std::shared_ptr<const Table> table,
                    std::vector<int> column_indices, int64_t row_begin = 0,
                    int64_t row_end = -1, ExecStats* stats = nullptr,
                    const ExecContext& ctx = ExecContext::Background());

  // Morsel mode (§10): instead of the fixed [row_begin, row_end) range,
  // the scan claims row-range morsels from `queue` until it is drained.
  // Sibling scans of one Exchange share the queue, so work distributes
  // dynamically. Overrides the constructor's range.
  void SetMorselQueue(MorselQueuePtr queue) { morsels_ = std::move(queue); }

  // Encoded emission (DESIGN.md §11): kRle columns are emitted as
  // run-encoded ColumnVectors (clipped, batch-relative runs over the raw
  // payload / dict tokens) instead of being flattened. Only enabled by the
  // planner when every downstream operator on the path is run-aware.
  void SetEmitEncoded(bool v) { emit_encoded_ = v; }

  const BatchSchema& schema() const override { return schema_; }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override;

 private:
  std::shared_ptr<const Table> table_;
  std::vector<int> column_indices_;
  int64_t row_begin_;
  int64_t row_end_;
  int64_t cursor_ = 0;
  int64_t morsel_end_ = 0;  // end of the currently claimed morsel
  MorselQueuePtr morsels_;
  bool emit_encoded_ = false;
  // Per-output-column resume cursors so kDelta scans are O(n), not O(n^2).
  std::vector<Column::DecodeCursor> delta_cursors_;
  BatchSchema schema_;
  ExecStats* stats_;
  ExecContext ctx_;
  Span* span_ = nullptr;
  int64_t batches_emitted_ = 0;
};

// Computes contiguous fraction boundaries for `num_rows` split `dop` ways:
// dop+1 offsets, first 0, last num_rows.
std::vector<int64_t> SplitRows(int64_t num_rows, int dop);

// Range partitioning (§4.2.3): splits `table` into at most `dop` fractions
// at boundaries where the value of the leading `prefix_len` sort columns
// changes, guaranteeing every group (w.r.t. those columns) lands in exactly
// one fraction. Returns dop'+1 offsets with dop' <= dop.
std::vector<int64_t> SplitRowsOnSortedPrefix(const Table& table,
                                             int prefix_len, int dop);

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_SCAN_H_
