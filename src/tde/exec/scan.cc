#include "src/tde/exec/scan.h"

#include <algorithm>

namespace vizq::tde {

// Deadline/cancel poll frequency: every batch is cheap enough (an atomic
// load plus, on deadline contexts, one clock read per kCtxPollBatches).
constexpr int64_t kCtxPollBatches = 4;

TableScanOperator::TableScanOperator(std::shared_ptr<const Table> table,
                                     std::vector<int> column_indices,
                                     int64_t row_begin, int64_t row_end,
                                     ExecStats* stats, const ExecContext& ctx)
    : table_(std::move(table)),
      column_indices_(std::move(column_indices)),
      row_begin_(row_begin),
      row_end_(row_end < 0 ? table_->num_rows() : row_end),
      stats_(stats),
      ctx_(ctx) {
  for (int ci : column_indices_) {
    const ColumnInfo& info = table_->column_info(ci);
    schema_.names.push_back(info.name);
    ColumnVector proto(info.type);
    if (table_->column(ci)->is_dictionary_string()) {
      proto.dict = table_->column(ci)->shared_dictionary();
    }
    schema_.prototypes.push_back(std::move(proto));
  }
}

Status TableScanOperator::Open() {
  cursor_ = row_begin_;
  batches_emitted_ = 0;
  delta_cursors_.assign(column_indices_.size(), Column::DecodeCursor{});
  // Morsel mode: an empty current morsel forces a claim on first Next().
  morsel_end_ = cursor_;
  span_ = ctx_.StartSpan("op:scan(" + table_->name() + ")");
  return OkStatus();
}

Status TableScanOperator::Close() {
  if (span_ != nullptr) {
    span_->End();
    span_ = nullptr;
  }
  return OkStatus();
}

StatusOr<bool> TableScanOperator::Next(Batch* batch) {
  if (batches_emitted_ % kCtxPollBatches == 0) {
    VIZQ_RETURN_IF_ERROR(ctx_.CheckContinue("table scan"));
  }
  ++batches_emitted_;
  int64_t limit = row_end_;
  if (morsels_ != nullptr) {
    if (cursor_ >= morsel_end_) {
      if (!morsels_->Claim(&cursor_, &morsel_end_)) return false;
      if (stats_ != nullptr) {
        std::lock_guard<std::mutex> lock(stats_->mu);
        ++stats_->morsels_claimed;
        stats_->used_morsel_scan = true;
      }
    }
    limit = morsel_end_;
  }
  if (cursor_ >= limit) return false;
  int64_t count = std::min(kBatchRows, limit - cursor_);
  *batch = schema_.NewBatch();
  int64_t encoded_rows = 0;
  for (size_t i = 0; i < column_indices_.size(); ++i) {
    const Column& col = *table_->column(column_indices_[i]);
    ColumnVector& cv = batch->columns[i];
    if (emit_encoded_ && col.is_rle()) {
      // Keep the runs: emit the payload (ints, dict tokens, or bit-cast
      // doubles) run-length encoded; the null mask stays flat.
      col.EmitRuns(cursor_, count, &cv.runs);
      cv.run_encoded = true;
      col.DecodeNulls(cursor_, count, &cv.nulls);
      encoded_rows += count;
      continue;
    }
    std::vector<uint8_t> nulls;
    switch (cv.type.kind) {
      case TypeKind::kFloat64:
        col.DecodeDoubles(cursor_, count, &cv.doubles, &nulls);
        break;
      case TypeKind::kString:
        if (cv.dict != nullptr) {
          col.DecodeIntsResumable(&delta_cursors_[i], cursor_, count,
                                  &cv.ints, &nulls);
        } else {
          col.DecodeStrings(cursor_, count, &cv.strings, &nulls);
        }
        break;
      default:
        col.DecodeIntsResumable(&delta_cursors_[i], cursor_, count, &cv.ints,
                                &nulls);
        break;
    }
    bool any_null = false;
    for (uint8_t b : nulls) {
      if (b != 0) {
        any_null = true;
        break;
      }
    }
    if (any_null) cv.nulls = std::move(nulls);
  }
  batch->num_rows = count;
  cursor_ += count;
  if (stats_ != nullptr) {
    std::lock_guard<std::mutex> lock(stats_->mu);
    stats_->rows_scanned += count;
    stats_->encoded_rows_undecoded += encoded_rows;
    ++stats_->batches;
  }
  return true;
}

std::vector<int64_t> SplitRows(int64_t num_rows, int dop) {
  if (dop < 1) dop = 1;
  std::vector<int64_t> offsets;
  offsets.reserve(dop + 1);
  for (int i = 0; i <= dop; ++i) {
    offsets.push_back(num_rows * i / dop);
  }
  return offsets;
}

std::vector<int64_t> SplitRowsOnSortedPrefix(const Table& table,
                                             int prefix_len, int dop) {
  const std::vector<int>& sort_cols = table.sort_columns();
  std::vector<int> keys(sort_cols.begin(), sort_cols.begin() + prefix_len);
  int64_t n = table.num_rows();
  std::vector<int64_t> offsets{0};
  if (n == 0 || dop <= 1) {
    offsets.push_back(n);
    return offsets;
  }

  // Encoding-aware comparison: adjacent rows in the same RLE run or with
  // equal dict tokens compare equal without materializing Values.
  auto keys_equal = [&](int64_t a, int64_t b) {
    for (int k : keys) {
      if (table.column(k)->CompareRows(a, b) != 0) return false;
    }
    return true;
  };

  // Start from even split points and push each forward to the next group
  // boundary so no group straddles a fraction.
  for (int i = 1; i < dop; ++i) {
    int64_t b = std::max(n * i / dop, offsets.back() + 1);
    while (b < n && keys_equal(b - 1, b)) ++b;
    if (b < n && b > offsets.back()) offsets.push_back(b);
  }
  offsets.push_back(n);
  return offsets;
}

}  // namespace vizq::tde
