// The Exchange operator (§4.2.1): takes N inputs and produces one output,
// running each input as a producer task — exactly the restricted N-to-1
// form shipped in Tableau 9.0 (no repartitioning, no order preservation;
// §4.2.2 explains the restriction and its consequence: everything above
// the Exchange runs serially).
//
// Producers are kInteractive tasks on the process-wide Scheduler
// (src/common/scheduler.h), not raw threads. Three consequences:
//
//   * cooperative cancellation: a producer blocked on the full output
//     queue wakes on the ExecContext's cancellation/deadline, records the
//     context's typed error and exits — the consumer surfaces
//     kDeadlineExceeded/kAborted, never a silently truncated OK result;
//   * saturation robustness: every producer input is guarded by a claim
//     flag. When the scheduler is saturated (queued producers not yet
//     dispatched) and the consumer has nothing to read, the consumer
//     claims an unstarted input and runs it inline (unbounded buffering,
//     like serial-measurement mode), so an Exchange can always drain even
//     with zero available workers;
//   * observability: producer wait/run times land in the sched.* metrics
//     and scheduler spans like every other task.
//
// Each producer's wall-clock time and row count are recorded into
// ExecStats; on a single-core host these per-fraction timings let benches
// report the modeled multi-core makespan (max over fractions) alongside
// the measured single-core total.

#ifndef VIZQUERY_TDE_EXEC_EXCHANGE_H_
#define VIZQUERY_TDE_EXEC_EXCHANGE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/scheduler.h"
#include "src/tde/exec/morsel.h"
#include "src/tde/exec/operators.h"

namespace vizq::tde {

class ExchangeOperator : public Operator {
 public:
  // All inputs must share one output schema. `stats` may be null.
  // With `serial_measurement` set, inputs are executed one after another
  // on the consumer thread (buffering their batches) instead of as
  // producer tasks: results are identical, but each fraction's recorded
  // time is contention-free, which is what the modeled-makespan reporting
  // on single-core hosts needs (see bench/bench_util.h).
  // `scheduler` defaults to Scheduler::Global(). Producers are submitted
  // under `priority` — the query's class, threaded in by the translator.
  // `stage` tags this Exchange's fraction timings (probe-side scans vs a
  // build-side Exchange, ExecStats::kStage*).
  ExchangeOperator(std::vector<OperatorPtr> inputs, ExecStats* stats,
                   bool serial_measurement = false,
                   const ExecContext& ctx = ExecContext::Background(),
                   Scheduler* scheduler = nullptr,
                   TaskClass priority = TaskClass::kInteractive,
                   int stage = 0 /* ExecStats::kStageScan */);
  ~ExchangeOperator() override;

  const BatchSchema& schema() const override { return inputs_[0]->schema(); }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override;

  int num_inputs() const { return static_cast<int>(inputs_.size()); }

  // Registers a morsel queue shared by this Exchange's scan inputs. Open()
  // rewinds every registered queue before producers start, so re-opening
  // the operator tree re-scans instead of seeing drained cursors.
  void AddMorselQueue(MorselQueuePtr queue) {
    morsel_queues_.push_back(std::move(queue));
  }

 private:
  // Runs input `input_index` to completion, pushing batches. `bounded`
  // producers respect max_queue_; the consumer's inline fallback runs
  // unbounded (buffering everything) to avoid blocking on itself.
  void ProducerLoop(int input_index, bool bounded);
  // Atomically claims an input; false when someone else already ran it.
  bool ClaimProducer(int input_index);
  // Consumer-side help under scheduler saturation: claim one unstarted
  // input and run it inline. False when every input is claimed.
  bool RunOneProducerInline();
  void StopProducers();
  Status RunInputsSerially();

  std::vector<OperatorPtr> inputs_;
  ExecStats* stats_;
  ExecContext ctx_;
  Scheduler* scheduler_;
  TaskClass priority_;
  int stage_;
  // Parallel-section id of the current Open()'s producer fan-out.
  int section_ = 0;

  std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Batch> queue_;
  size_t max_queue_ = 8;
  int live_producers_ = 0;
  bool cancelled_ = false;
  Status first_error_;
  std::unique_ptr<TaskGroup> group_;
  std::unique_ptr<std::atomic<bool>[]> claimed_;
  std::vector<MorselQueuePtr> morsel_queues_;
  // The thread that called Open() — the consumer. A producer wrapper
  // executing on it (shed or stolen) must run unbounded: the consumer
  // cannot drain its own queue while inside the producer.
  std::thread::id consumer_tid_;
  bool opened_ = false;
  bool serial_measurement_ = false;
  bool serial_done_ = false;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_EXCHANGE_H_
