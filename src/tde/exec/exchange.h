// The Exchange operator (§4.2.1): takes N inputs and produces one output,
// running each input on its own thread — exactly the restricted N-to-1
// form shipped in Tableau 9.0 (no repartitioning, no order preservation;
// §4.2.2 explains the restriction and its consequence: everything above
// the Exchange runs serially).
//
// Each producer thread's wall-clock time and row count are recorded into
// ExecStats; on a single-core host these per-fraction timings let benches
// report the modeled multi-core makespan (max over fractions) alongside
// the measured single-core total.

#ifndef VIZQUERY_TDE_EXEC_EXCHANGE_H_
#define VIZQUERY_TDE_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/tde/exec/operators.h"

namespace vizq::tde {

class ExchangeOperator : public Operator {
 public:
  // All inputs must share one output schema. `stats` may be null.
  // With `serial_measurement` set, inputs are executed one after another
  // on the consumer thread (buffering their batches) instead of on
  // producer threads: results are identical, but each fraction's recorded
  // time is contention-free, which is what the modeled-makespan reporting
  // on single-core hosts needs (see bench/bench_util.h).
  ExchangeOperator(std::vector<OperatorPtr> inputs, ExecStats* stats,
                   bool serial_measurement = false);
  ~ExchangeOperator() override;

  const BatchSchema& schema() const override { return inputs_[0]->schema(); }
  Status Open() override;
  StatusOr<bool> Next(Batch* batch) override;
  Status Close() override;

  int num_inputs() const { return static_cast<int>(inputs_.size()); }

 private:
  void ProducerLoop(int input_index);
  void StopThreads();
  Status RunInputsSerially();

  std::vector<OperatorPtr> inputs_;
  ExecStats* stats_;

  std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Batch> queue_;
  size_t max_queue_ = 8;
  int live_producers_ = 0;
  bool cancelled_ = false;
  Status first_error_;
  std::vector<std::thread> threads_;
  bool opened_ = false;
  bool serial_measurement_ = false;
  bool serial_done_ = false;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_EXEC_EXCHANGE_H_
