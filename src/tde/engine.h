// TdeEngine: the public facade of the Tableau-Data-Engine-style column
// store. Owns a Database; compiles and executes TQL queries (text or
// logical trees) through the full pipeline:
//
//   parse -> bind -> rewrite -> optimize -> parallelize -> translate -> run
//
// Execution knobs (parallelism, local/global aggregation, range
// partitioning, RLE range skipping, streaming aggregates) are exposed via
// QueryOptions so benches can ablate each §4.2/§4.3 technique.

#ifndef VIZQUERY_TDE_ENGINE_H_
#define VIZQUERY_TDE_ENGINE_H_

#include <memory>
#include <string>

#include "src/common/exec_context.h"
#include "src/common/result_table.h"
#include "src/common/scheduler.h"
#include "src/tde/exec/analyze.h"
#include "src/tde/plan/logical.h"
#include "src/tde/plan/optimizer.h"
#include "src/tde/plan/parallelizer.h"
#include "src/tde/storage/database.h"

namespace vizq::tde {

struct QueryOptions {
  OptimizerOptions optimizer;
  ParallelOptions parallel;

  // Benchmarking aid: run Exchange inputs serially with per-fraction
  // timing (identical results; contention-free fraction times for the
  // modeled-makespan reporting on single-core hosts — bench/bench_util.h).
  bool serial_exchange_for_measurement = false;

  // Collect operator-level EXPLAIN ANALYZE stats (rows/batches/wall time
  // per plan node) into QueryResult::analysis. Cheap (a few atomic adds
  // and two clock reads per batch per operator); benches that want the
  // bare pipeline can switch it off.
  bool collect_analysis = true;

  // The scheduler class every task of this query — Exchange producers,
  // join-build tasks, final-merge tasks — is submitted under.
  TaskClass priority = TaskClass::kInteractive;

  // A convenient all-serial baseline.
  static QueryOptions Serial() {
    QueryOptions o;
    o.parallel.enable_parallel = false;
    return o;
  }
};

// Execution outcome: the rows, the optimized plan (for tests / debugging)
// and the collected runtime statistics.
struct QueryResult {
  ResultTable table;
  std::string plan_text;
  std::shared_ptr<ExecStats> stats;
  // Per-operator runtime accounting (null when collect_analysis is off).
  // analysis->ToText() is the annotated EXPLAIN ANALYZE plan; the same
  // text is attached to the request log as "tde.analyze".
  std::shared_ptr<PlanAnalysis> analysis;
  // The executed operator tree, kept alive until the caller drops the
  // result. Execute() returns as soon as the table is collected; freeing
  // per-query scratch (materialized join build sides, partition hash
  // tables) rides on the result's lifetime instead of the response path,
  // like a real cursor. Opaque: nothing should reach back into it.
  std::shared_ptr<void> pipeline;
};

class TdeEngine {
 public:
  explicit TdeEngine(std::shared_ptr<Database> db) : db_(std::move(db)) {}

  Database& database() { return *db_; }
  const Database& database() const { return *db_; }
  std::shared_ptr<Database> shared_database() const { return db_; }

  // Compiles and runs a TQL text query with default options.
  StatusOr<ResultTable> Query(const std::string& tql);

  // Full-control entry points. The ExecContext overloads honor the
  // context's deadline/cancellation (operators poll it between batches)
  // and record "tde:*" spans; the context-less forms delegate to
  // ExecContext::Background().
  StatusOr<QueryResult> Execute(const std::string& tql,
                                const QueryOptions& options);
  StatusOr<QueryResult> Execute(const std::string& tql,
                                const QueryOptions& options,
                                const ExecContext& ctx);
  // Takes any (possibly unbound) logical plan; the plan is cloned, so the
  // caller's tree is not mutated.
  StatusOr<QueryResult> Execute(const LogicalOpPtr& plan,
                                const QueryOptions& options);
  StatusOr<QueryResult> Execute(const LogicalOpPtr& plan,
                                const QueryOptions& options,
                                const ExecContext& ctx);

  // Compiles without running; returns the optimized + parallelized plan.
  StatusOr<LogicalOpPtr> Compile(const LogicalOpPtr& plan,
                                 const QueryOptions& options) const;

 private:
  std::shared_ptr<Database> db_;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_ENGINE_H_
