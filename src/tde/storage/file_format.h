// Single-file database format (§4.1.1): the directory-shaped namespace
// (database/schema/table/column) is packed into one little-endian file so
// extracts can be moved, shared and published as a unit.
//
// Layout: header magic + version, then the schema tree with each column's
// encoding payload serialized verbatim (runs for RLE, deltas for delta,
// dictionary + tokens for dictionary columns). SYS metadata — sort columns
// and column stats — is embedded so a reopened extract optimizes exactly
// like the original.

#ifndef VIZQUERY_TDE_STORAGE_FILE_FORMAT_H_
#define VIZQUERY_TDE_STORAGE_FILE_FORMAT_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/tde/storage/database.h"

namespace vizq::tde {

class DatabaseSerializer {
 public:
  // Serializes `db` into a byte string (the single-file image).
  static std::string Pack(const Database& db);

  // Reconstructs a database from a single-file image.
  static StatusOr<std::shared_ptr<Database>> Unpack(const std::string& bytes);

  // File-system conveniences.
  static Status PackToFile(const Database& db, const std::string& path);
  static StatusOr<std::shared_ptr<Database>> UnpackFromFile(
      const std::string& path);
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_STORAGE_FILE_FORMAT_H_
