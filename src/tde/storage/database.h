// Database: the TDE's three-layer namespace — database > schema > table >
// column (§4.1.1). Metadata lives in the reserved SYS schema; the whole
// database can be packed into a single file (see file_format.h), the
// paper's key convenience feature for moving/sharing/publishing extracts.

#ifndef VIZQUERY_TDE_STORAGE_DATABASE_H_
#define VIZQUERY_TDE_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/tde/storage/table.h"

namespace vizq::tde {

// Name of the default user schema.
inline constexpr char kDefaultSchema[] = "Extract";
// Reserved metadata schema (not user-writable).
inline constexpr char kSysSchema[] = "SYS";
// Conventional schema for session-scoped temporary tables.
inline constexpr char kTempSchema[] = "temp";

class Database {
 public:
  explicit Database(std::string name = "db") : name_(std::move(name)) {
    schemas_[kDefaultSchema];  // default schema always exists
  }

  const std::string& name() const { return name_; }

  Status CreateSchema(const std::string& schema);

  // Registers `table` under `schema`.`table->name()`. Fails on duplicates
  // and on writes to SYS.
  Status AddTable(const std::string& schema, std::shared_ptr<Table> table);

  // Adds to the default schema.
  Status AddTable(std::shared_ptr<Table> table) {
    return AddTable(kDefaultSchema, std::move(table));
  }

  Status DropTable(const std::string& schema, const std::string& table);

  // Resolves "schema.table" or bare "table" (searched in the default
  // schema).
  StatusOr<std::shared_ptr<Table>> GetTable(const std::string& path) const;
  StatusOr<std::shared_ptr<Table>> GetTable(const std::string& schema,
                                            const std::string& table) const;

  std::vector<std::string> ListSchemas() const;
  std::vector<std::string> ListTables(const std::string& schema) const;

  int64_t ApproxBytes() const;

 private:
  friend class DatabaseSerializer;

  std::string name_;
  std::map<std::string, std::map<std::string, std::shared_ptr<Table>>>
      schemas_;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_STORAGE_DATABASE_H_
