// Table: an immutable, named collection of equally-sized columns, with the
// SYS-style metadata the optimizer consumes — row count, per-column stats,
// and the ordered list of sort columns ("most tables are sorted according
// to one or more columns", §4.2.3).

#ifndef VIZQUERY_TDE_STORAGE_TABLE_H_
#define VIZQUERY_TDE_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result_table.h"
#include "src/common/status.h"
#include "src/tde/storage/column.h"

namespace vizq::tde {

// Schema entry of a stored column.
struct ColumnInfo {
  std::string name;
  DataType type;
};

class Table {
 public:
  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const std::vector<ColumnInfo>& schema() const { return schema_; }
  const ColumnInfo& column_info(int i) const { return schema_[i]; }
  const std::shared_ptr<Column>& column(int i) const { return columns_[i]; }

  // Index of the column named `name`, or -1.
  int FindColumn(const std::string& name) const;

  // Ordered column indices the physical data is sorted by (major first);
  // empty when unsorted. This is metadata declared at build time and
  // validated by TableBuilder.
  const std::vector<int>& sort_columns() const { return sort_columns_; }

  // True when a permutation of some subset of `columns` forms a prefix of
  // sort_columns() — the §4.2.3 Lemma 3 precondition for removing the
  // global aggregate via range partitioning. When true, `prefix_len` is set
  // to the length of the matched prefix.
  bool SubsetMatchesSortPrefix(const std::vector<int>& columns,
                               int* prefix_len) const;

  // Materializes rows [start, start+count) of the given columns into a
  // ResultTable (API-boundary convenience used by tests and small scans).
  ResultTable Slice(int64_t start, int64_t count,
                    const std::vector<int>& column_indices) const;

  int64_t ApproxBytes() const;

 private:
  friend class TableBuilder;
  friend class DatabaseSerializer;

  std::string name_;
  int64_t num_rows_ = 0;
  std::vector<ColumnInfo> schema_;
  std::vector<std::shared_ptr<Column>> columns_;
  std::vector<int> sort_columns_;
};

// Builds a Table row-by-row or column-by-column.
class TableBuilder {
 public:
  TableBuilder(std::string name, std::vector<ColumnInfo> schema);

  // Appends one row; `row` arity must match the schema.
  Status AddRow(const std::vector<Value>& row);

  // Per-column encoding override (defaults to kAuto).
  void SetEncodingChoice(int column, EncodingChoice choice);

  // Declares that the appended data is sorted by these columns (major
  // first). Verified during Finish; an incorrect declaration is an error —
  // the parallelizer's correctness depends on it (§4.2.3).
  void DeclareSorted(std::vector<int> sort_columns);

  int64_t num_rows() const { return num_rows_; }

  StatusOr<std::shared_ptr<Table>> Finish();

 private:
  std::string name_;
  std::vector<ColumnInfo> schema_;
  std::vector<ColumnBuilder> builders_;
  std::vector<EncodingChoice> choices_;
  std::vector<int> sort_columns_;
  int64_t num_rows_ = 0;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_STORAGE_TABLE_H_
