#include "src/tde/storage/column.h"

#include <algorithm>
#include <cstring>

namespace vizq::tde {

const char* EncodingToString(Encoding e) {
  switch (e) {
    case Encoding::kPlain: return "plain";
    case Encoding::kDictionary: return "dictionary";
    case Encoding::kRle: return "rle";
    case Encoding::kDelta: return "delta";
  }
  return "unknown";
}

int64_t StringDictionary::Intern(std::string_view s) {
  std::string key = CollationKey(s, collation_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  int64_t token = static_cast<int64_t>(values_.size());
  values_.emplace_back(s);
  index_.emplace(std::move(key), token);
  return token;
}

int64_t StringDictionary::Find(std::string_view s) const {
  std::string key = CollationKey(s, collation_);
  auto it = index_.find(key);
  return it == index_.end() ? -1 : it->second;
}

namespace {

// Finds the run containing `row` by binary search on run starts.
const RleRun* FindRun(const std::vector<RleRun>& runs, int64_t row) {
  int64_t lo = 0, hi = static_cast<int64_t>(runs.size()) - 1;
  while (lo <= hi) {
    int64_t mid = (lo + hi) / 2;
    const RleRun& r = runs[mid];
    if (row < r.start) {
      hi = mid - 1;
    } else if (row >= r.start + r.count) {
      lo = mid + 1;
    } else {
      return &r;
    }
  }
  return nullptr;
}

inline double BitsToDouble(int64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

Value Column::GetValue(int64_t row) const {
  if (IsNull(row)) return Value::Null();
  // Resolve the raw int payload for fixed-width encodings.
  auto raw_int = [&](int64_t r) -> int64_t {
    switch (encoding_) {
      case Encoding::kPlain:
      case Encoding::kDictionary:
        return ints_[r];
      case Encoding::kRle: {
        const RleRun* run = FindRun(runs_, r);
        return run ? run->value : 0;
      }
      case Encoding::kDelta: {
        int64_t v = delta_base_;
        for (int64_t i = 0; i < r; ++i) v += deltas_[i];
        return v;
      }
    }
    return 0;
  };

  switch (type_.kind) {
    case TypeKind::kBool:
      return Value(raw_int(row) != 0);
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return Value(raw_int(row));
    case TypeKind::kFloat64:
      if (encoding_ == Encoding::kPlain) return Value(doubles_[row]);
      return Value(BitsToDouble(raw_int(row)));
    case TypeKind::kString:
      if (dictionary_ != nullptr) return Value(dictionary_->value(raw_int(row)));
      return Value(strings_[row]);
  }
  return Value::Null();
}

void Column::DecodeInts(int64_t start, int64_t count,
                        std::vector<int64_t>* out,
                        std::vector<uint8_t>* null_mask) const {
  out->resize(count);
  if (null_mask != nullptr) {
    null_mask->assign(count, 0);
    if (!nulls_.empty()) {
      for (int64_t i = 0; i < count; ++i) (*null_mask)[i] = nulls_[start + i];
    }
  }
  switch (encoding_) {
    case Encoding::kPlain:
    case Encoding::kDictionary:
      std::memcpy(out->data(), ints_.data() + start, count * sizeof(int64_t));
      break;
    case Encoding::kRle: {
      // Locate the first overlapping run, then emit run-by-run.
      const RleRun* run = FindRun(runs_, start);
      int64_t idx = run != nullptr ? run - runs_.data() : 0;
      int64_t produced = 0;
      while (produced < count &&
             idx < static_cast<int64_t>(runs_.size())) {
        const RleRun& r = runs_[idx];
        int64_t from = std::max(start + produced, r.start);
        int64_t to = std::min(start + count, r.start + r.count);
        for (int64_t row = from; row < to; ++row) {
          (*out)[produced++] = r.value;
        }
        ++idx;
      }
      break;
    }
    case Encoding::kDelta: {
      int64_t v = delta_base_;
      for (int64_t i = 0; i < start; ++i) v += deltas_[i];
      for (int64_t i = 0; i < count; ++i) {
        (*out)[i] = v;
        if (start + i < static_cast<int64_t>(deltas_.size())) {
          v += deltas_[start + i];
        }
      }
      break;
    }
  }
}

void Column::DecodeDoubles(int64_t start, int64_t count,
                           std::vector<double>* out,
                           std::vector<uint8_t>* null_mask) const {
  out->resize(count);
  if (null_mask != nullptr) {
    null_mask->assign(count, 0);
    if (!nulls_.empty()) {
      for (int64_t i = 0; i < count; ++i) (*null_mask)[i] = nulls_[start + i];
    }
  }
  if (encoding_ == Encoding::kPlain) {
    std::memcpy(out->data(), doubles_.data() + start, count * sizeof(double));
    return;
  }
  // RLE/delta doubles travel through the int payload as bit patterns.
  std::vector<int64_t> raw;
  DecodeInts(start, count, &raw, nullptr);
  for (int64_t i = 0; i < count; ++i) (*out)[i] = BitsToDouble(raw[i]);
}

void Column::DecodeStrings(int64_t start, int64_t count,
                           std::vector<std::string>* out,
                           std::vector<uint8_t>* null_mask) const {
  out->resize(count);
  if (null_mask != nullptr) {
    null_mask->assign(count, 0);
    if (!nulls_.empty()) {
      for (int64_t i = 0; i < count; ++i) (*null_mask)[i] = nulls_[start + i];
    }
  }
  if (dictionary_ != nullptr) {
    std::vector<int64_t> tokens;
    DecodeInts(start, count, &tokens, nullptr);
    for (int64_t i = 0; i < count; ++i) {
      if (nulls_.empty() || nulls_[start + i] == 0) {
        (*out)[i] = dictionary_->value(tokens[i]);
      }
    }
    return;
  }
  for (int64_t i = 0; i < count; ++i) (*out)[i] = strings_[start + i];
}

int64_t Column::ApproxBytes() const {
  int64_t bytes = 64 + static_cast<int64_t>(nulls_.size());
  bytes += static_cast<int64_t>(ints_.size()) * 8;
  bytes += static_cast<int64_t>(doubles_.size()) * 8;
  bytes += static_cast<int64_t>(runs_.size()) * 24;
  bytes += static_cast<int64_t>(deltas_.size()) * 4;
  for (const std::string& s : strings_) bytes += 24 + static_cast<int64_t>(s.size());
  if (dictionary_ != nullptr) {
    for (const std::string& s : dictionary_->values()) {
      bytes += 24 + static_cast<int64_t>(s.size());
    }
  }
  return bytes;
}

}  // namespace vizq::tde
