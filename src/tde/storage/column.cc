#include "src/tde/storage/column.h"

#include <algorithm>
#include <cstring>

namespace vizq::tde {

const char* EncodingToString(Encoding e) {
  switch (e) {
    case Encoding::kPlain: return "plain";
    case Encoding::kDictionary: return "dictionary";
    case Encoding::kRle: return "rle";
    case Encoding::kDelta: return "delta";
  }
  return "unknown";
}

int64_t StringDictionary::Intern(std::string_view s) {
  std::string key = CollationKey(s, collation_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  int64_t token = static_cast<int64_t>(values_.size());
  values_.emplace_back(s);
  index_.emplace(std::move(key), token);
  return token;
}

int64_t StringDictionary::Find(std::string_view s) const {
  std::string key = CollationKey(s, collation_);
  auto it = index_.find(key);
  return it == index_.end() ? -1 : it->second;
}

namespace {

// Finds the run containing `row` by binary search on run starts.
const RleRun* FindRun(const std::vector<RleRun>& runs, int64_t row) {
  int64_t lo = 0, hi = static_cast<int64_t>(runs.size()) - 1;
  while (lo <= hi) {
    int64_t mid = (lo + hi) / 2;
    const RleRun& r = runs[mid];
    if (row < r.start) {
      hi = mid - 1;
    } else if (row >= r.start + r.count) {
      lo = mid + 1;
    } else {
      return &r;
    }
  }
  return nullptr;
}

inline double BitsToDouble(int64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

Value Column::GetValue(int64_t row) const {
  if (IsNull(row)) return Value::Null();
  // Resolve the raw int payload for fixed-width encodings.
  auto raw_int = [&](int64_t r) -> int64_t {
    switch (encoding_) {
      case Encoding::kPlain:
      case Encoding::kDictionary:
        return ints_[r];
      case Encoding::kRle: {
        const RleRun* run = FindRun(runs_, r);
        return run ? run->value : 0;
      }
      case Encoding::kDelta: {
        int64_t v = delta_base_;
        for (int64_t i = 0; i < r; ++i) v += deltas_[i];
        return v;
      }
    }
    return 0;
  };

  switch (type_.kind) {
    case TypeKind::kBool:
      return Value(raw_int(row) != 0);
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return Value(raw_int(row));
    case TypeKind::kFloat64:
      if (encoding_ == Encoding::kPlain) return Value(doubles_[row]);
      return Value(BitsToDouble(raw_int(row)));
    case TypeKind::kString:
      if (dictionary_ != nullptr) return Value(dictionary_->value(raw_int(row)));
      return Value(strings_[row]);
  }
  return Value::Null();
}

void Column::DecodeInts(int64_t start, int64_t count,
                        std::vector<int64_t>* out,
                        std::vector<uint8_t>* null_mask) const {
  out->resize(count);
  if (null_mask != nullptr) {
    null_mask->assign(count, 0);
    if (!nulls_.empty()) {
      for (int64_t i = 0; i < count; ++i) (*null_mask)[i] = nulls_[start + i];
    }
  }
  switch (encoding_) {
    case Encoding::kPlain:
    case Encoding::kDictionary:
      std::memcpy(out->data(), ints_.data() + start, count * sizeof(int64_t));
      break;
    case Encoding::kRle: {
      // Locate the first overlapping run, then emit run-by-run.
      const RleRun* run = FindRun(runs_, start);
      int64_t idx = run != nullptr ? run - runs_.data() : 0;
      int64_t produced = 0;
      while (produced < count &&
             idx < static_cast<int64_t>(runs_.size())) {
        const RleRun& r = runs_[idx];
        int64_t from = std::max(start + produced, r.start);
        int64_t to = std::min(start + count, r.start + r.count);
        for (int64_t row = from; row < to; ++row) {
          (*out)[produced++] = r.value;
        }
        ++idx;
      }
      break;
    }
    case Encoding::kDelta: {
      int64_t v = delta_base_;
      for (int64_t i = 0; i < start; ++i) v += deltas_[i];
      for (int64_t i = 0; i < count; ++i) {
        (*out)[i] = v;
        if (start + i < static_cast<int64_t>(deltas_.size())) {
          v += deltas_[start + i];
        }
      }
      break;
    }
  }
}

void Column::DecodeDoubles(int64_t start, int64_t count,
                           std::vector<double>* out,
                           std::vector<uint8_t>* null_mask) const {
  out->resize(count);
  if (null_mask != nullptr) {
    null_mask->assign(count, 0);
    if (!nulls_.empty()) {
      for (int64_t i = 0; i < count; ++i) (*null_mask)[i] = nulls_[start + i];
    }
  }
  if (encoding_ == Encoding::kPlain) {
    std::memcpy(out->data(), doubles_.data() + start, count * sizeof(double));
    return;
  }
  // RLE/delta doubles travel through the int payload as bit patterns.
  std::vector<int64_t> raw;
  DecodeInts(start, count, &raw, nullptr);
  for (int64_t i = 0; i < count; ++i) (*out)[i] = BitsToDouble(raw[i]);
}

void Column::DecodeStrings(int64_t start, int64_t count,
                           std::vector<std::string>* out,
                           std::vector<uint8_t>* null_mask) const {
  out->resize(count);
  if (null_mask != nullptr) {
    null_mask->assign(count, 0);
    if (!nulls_.empty()) {
      for (int64_t i = 0; i < count; ++i) (*null_mask)[i] = nulls_[start + i];
    }
  }
  if (dictionary_ != nullptr) {
    std::vector<int64_t> tokens;
    DecodeInts(start, count, &tokens, nullptr);
    for (int64_t i = 0; i < count; ++i) {
      if (nulls_.empty() || nulls_[start + i] == 0) {
        (*out)[i] = dictionary_->value(tokens[i]);
      }
    }
    return;
  }
  for (int64_t i = 0; i < count; ++i) (*out)[i] = strings_[start + i];
}

void Column::DecodeNulls(int64_t start, int64_t count,
                         std::vector<uint8_t>* out) const {
  out->clear();
  if (nulls_.empty()) return;
  bool any = false;
  for (int64_t i = 0; i < count; ++i) {
    if (nulls_[start + i] != 0) {
      any = true;
      break;
    }
  }
  if (!any) return;
  out->assign(nulls_.begin() + start, nulls_.begin() + start + count);
}

void Column::DecodeIntsResumable(DecodeCursor* cursor, int64_t start,
                                 int64_t count, std::vector<int64_t>* out,
                                 std::vector<uint8_t>* null_mask) const {
  if (encoding_ != Encoding::kDelta || cursor == nullptr ||
      cursor->next_row != start) {
    DecodeInts(start, count, out, null_mask);
    if (cursor != nullptr && encoding_ == Encoding::kDelta && count > 0) {
      cursor->next_row = start + count;
      cursor->acc = (*out)[count - 1];
      if (start + count - 1 < static_cast<int64_t>(deltas_.size())) {
        cursor->acc += deltas_[start + count - 1];
      }
    }
    return;
  }
  out->resize(count);
  if (null_mask != nullptr) {
    null_mask->assign(count, 0);
    if (!nulls_.empty()) {
      for (int64_t i = 0; i < count; ++i) (*null_mask)[i] = nulls_[start + i];
    }
  }
  // A fresh cursor ({0, 0}) matches start == 0 but was never seeded:
  // row 0 of a delta column is delta_base_, not the zero-initialized acc.
  if (start == 0) cursor->acc = delta_base_;
  int64_t v = cursor->acc;
  for (int64_t i = 0; i < count; ++i) {
    (*out)[i] = v;
    if (start + i < static_cast<int64_t>(deltas_.size())) {
      v += deltas_[start + i];
    }
  }
  cursor->next_row = start + count;
  cursor->acc = v;
}

int64_t Column::EmitRuns(int64_t start, int64_t count,
                         std::vector<RleRun>* out) const {
  if (count <= 0) return 0;
  const RleRun* run = FindRun(runs_, start);
  int64_t idx = run != nullptr ? run - runs_.data() : 0;
  int64_t emitted = 0;
  int64_t end = start + count;
  while (idx < static_cast<int64_t>(runs_.size())) {
    const RleRun& r = runs_[idx];
    int64_t from = std::max(start, r.start);
    int64_t to = std::min(end, r.start + r.count);
    if (from >= to) break;
    out->push_back(RleRun{r.value, from - start, to - from});
    ++emitted;
    ++idx;
  }
  return emitted;
}

int Column::CompareRows(int64_t a, int64_t b) const {
  if (a == b) return 0;
  bool an = IsNull(a);
  bool bn = IsNull(b);
  if (an || bn) {
    if (an && bn) return 0;
    return an ? -1 : 1;
  }
  auto compare_payload = [&](int64_t x, int64_t y) -> int {
    if (type_.kind == TypeKind::kFloat64) {
      double dx = BitsToDouble(x), dy = BitsToDouble(y);
      if (dx < dy) return -1;
      if (dx > dy) return 1;
      return 0;
    }
    if (dictionary_ != nullptr) {
      // Equal tokens intern to the same collation key; unequal tokens need
      // a collated compare (token order is first-appearance, not sorted).
      if (x == y) return 0;
      return CollatedCompare(dictionary_->value(x), dictionary_->value(y),
                             type_.collation);
    }
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  };
  switch (encoding_) {
    case Encoding::kPlain:
      if (type_.kind == TypeKind::kString) {
        return CollatedCompare(strings_[a], strings_[b], type_.collation);
      }
      if (type_.kind == TypeKind::kFloat64) {
        if (doubles_[a] < doubles_[b]) return -1;
        if (doubles_[a] > doubles_[b]) return 1;
        return 0;
      }
      return compare_payload(ints_[a], ints_[b]);
    case Encoding::kDictionary:
      return compare_payload(ints_[a], ints_[b]);
    case Encoding::kRle: {
      const RleRun* ra = FindRun(runs_, a);
      const RleRun* rb = FindRun(runs_, b);
      if (ra == rb) return 0;  // same run => same value
      return compare_payload(ra != nullptr ? ra->value : 0,
                             rb != nullptr ? rb->value : 0);
    }
    case Encoding::kDelta: {
      // Delta columns are sorted ascending and null-free by construction:
      // rows a < b are equal iff every delta in (a, b] is zero.
      int64_t lo = std::min(a, b), hi = std::max(a, b);
      for (int64_t i = lo; i < hi; ++i) {
        if (deltas_[i] != 0) return a < b ? -1 : 1;
      }
      return 0;
    }
  }
  return 0;
}

int64_t Column::ApproxBytes() const {
  int64_t bytes = 64 + static_cast<int64_t>(nulls_.size());
  bytes += static_cast<int64_t>(ints_.size()) * 8;
  bytes += static_cast<int64_t>(doubles_.size()) * 8;
  bytes += static_cast<int64_t>(runs_.size()) * 24;
  bytes += static_cast<int64_t>(deltas_.size()) * 4;
  for (const std::string& s : strings_) bytes += 24 + static_cast<int64_t>(s.size());
  if (dictionary_ != nullptr) {
    for (const std::string& s : dictionary_->values()) {
      bytes += 24 + static_cast<int64_t>(s.size());
    }
  }
  return bytes;
}

}  // namespace vizq::tde
