// ColumnBuilder: accumulation and encoding selection.
//
// The heuristics here mirror what §4.1.1 describes: dictionary compression
// for strings, lightweight run-length / delta encodings for fixed-width
// data, chosen when they actually compress.

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "src/tde/storage/column.h"

namespace vizq::tde {

namespace {

inline int64_t DoubleToBits(double d) {
  int64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Builds RLE runs over an int payload (nulls break runs so that the null
// mask stays positionally exact).
std::vector<RleRun> BuildRuns(const std::vector<int64_t>& ints,
                              const std::vector<uint8_t>& nulls) {
  std::vector<RleRun> runs;
  int64_t n = static_cast<int64_t>(ints.size());
  int64_t i = 0;
  while (i < n) {
    int64_t v = ints[i];
    uint8_t is_null = nulls.empty() ? 0 : nulls[i];
    int64_t j = i + 1;
    while (j < n && ints[j] == v &&
           (nulls.empty() ? 0 : nulls[j]) == is_null) {
      ++j;
    }
    runs.push_back(RleRun{v, i, j - i});
    i = j;
  }
  return runs;
}

bool IsSortedAscending(const std::vector<int64_t>& ints) {
  for (size_t i = 1; i < ints.size(); ++i) {
    if (ints[i] < ints[i - 1]) return false;
  }
  return true;
}

bool DeltasFitInt32(const std::vector<int64_t>& ints) {
  for (size_t i = 1; i < ints.size(); ++i) {
    int64_t d = ints[i] - ints[i - 1];
    if (d > INT32_MAX || d < INT32_MIN) return false;
  }
  return true;
}

}  // namespace

ColumnBuilder::ColumnBuilder(DataType type) : type_(type) {}

void ColumnBuilder::AppendNull() {
  any_null_ = true;
  nulls_.resize(size_, 0);
  nulls_.push_back(1);
  if (type_.kind == TypeKind::kFloat64) {
    doubles_.push_back(0);
  } else if (type_.kind == TypeKind::kString) {
    strings_.emplace_back();
  } else {
    ints_.push_back(0);
  }
  ++size_;
}

void ColumnBuilder::AppendInt(int64_t v) {
  if (any_null_) nulls_.push_back(0);
  ints_.push_back(v);
  ++size_;
}

void ColumnBuilder::AppendDouble(double v) {
  if (any_null_) nulls_.push_back(0);
  doubles_.push_back(v);
  ++size_;
}

void ColumnBuilder::AppendString(std::string_view v) {
  if (any_null_) nulls_.push_back(0);
  strings_.emplace_back(v);
  ++size_;
}

void ColumnBuilder::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_.kind) {
    case TypeKind::kBool:
      AppendInt(v.bool_value() ? 1 : 0);
      break;
    case TypeKind::kInt64:
    case TypeKind::kDate:
      AppendInt(v.is_double() ? static_cast<int64_t>(v.double_value())
                              : v.int_value());
      break;
    case TypeKind::kFloat64:
      AppendDouble(v.AsDouble());
      break;
    case TypeKind::kString:
      AppendString(v.string_value());
      break;
  }
}

StatusOr<std::shared_ptr<Column>> ColumnBuilder::Finish(
    EncodingChoice choice) {
  auto col = std::make_shared<Column>();
  col->type_ = type_;
  col->size_ = size_;
  if (any_null_) {
    nulls_.resize(size_, 0);
    col->nulls_ = std::move(nulls_);
  }

  // --- stats ---
  ColumnStats stats;
  stats.null_count = 0;
  for (uint8_t b : col->nulls_) stats.null_count += b;

  // --- strings: plain or dictionary ---
  if (type_.kind == TypeKind::kString) {
    // Count distinct (bounded effort) to decide on dictionary compression.
    bool force_plain = choice == EncodingChoice::kForcePlain;
    bool force_dict = choice == EncodingChoice::kForceDictionary;
    if (choice == EncodingChoice::kForceRle ||
        choice == EncodingChoice::kForceDelta) {
      return InvalidArgument("rle/delta encodings apply to fixed-width data; "
                             "string columns use plain or dictionary");
    }
    auto dict = std::make_shared<StringDictionary>(type_.collation);
    std::vector<int64_t> tokens;
    tokens.reserve(strings_.size());
    for (size_t i = 0; i < strings_.size(); ++i) {
      tokens.push_back(dict->Intern(strings_[i]));
    }
    stats.distinct_estimate = dict->size();
    bool use_dict =
        force_dict ||
        (!force_plain &&
         dict->size() * 4 <= static_cast<int64_t>(strings_.size()) + 4);
    if (use_dict) {
      col->encoding_ = Encoding::kDictionary;
      col->dictionary_ = std::move(dict);
      // Consider RLE over the tokens when runs compress well.
      std::vector<RleRun> runs = BuildRuns(tokens, col->nulls_);
      if (choice == EncodingChoice::kAuto &&
          runs.size() * 2 <= tokens.size() / 2) {
        col->encoding_ = Encoding::kRle;
        col->runs_ = std::move(runs);
      } else {
        col->ints_ = std::move(tokens);
      }
    } else {
      col->encoding_ = Encoding::kPlain;
      if (!strings_.empty()) {
        // min/max over non-null strings
        stats.has_min_max = true;
        std::string mn = strings_[0], mx = strings_[0];
        for (const std::string& s : strings_) {
          if (CollatedCompare(s, mn, type_.collation) < 0) mn = s;
          if (CollatedCompare(s, mx, type_.collation) > 0) mx = s;
        }
        stats.min = Value(mn);
        stats.max = Value(mx);
      }
      col->strings_ = std::move(strings_);
    }
    col->stats_ = stats;
    size_ = 0;
    return col;
  }

  // --- fixed-width: move doubles through the int payload for encodings ---
  std::vector<int64_t> payload;
  if (type_.kind == TypeKind::kFloat64) {
    if (choice == EncodingChoice::kForcePlain ||
        (choice == EncodingChoice::kAuto)) {
      // Plain doubles by default; RLE doubles only when forced (rare in
      // practice and the bit-cast payload makes runs unlikely).
      col->encoding_ = Encoding::kPlain;
      if (!doubles_.empty()) {
        stats.has_min_max = true;
        double mn = doubles_[0], mx = doubles_[0];
        for (double d : doubles_) {
          mn = std::min(mn, d);
          mx = std::max(mx, d);
        }
        stats.min = Value(mn);
        stats.max = Value(mx);
      }
      col->doubles_ = std::move(doubles_);
      col->stats_ = stats;
      size_ = 0;
      return col;
    }
    payload.reserve(doubles_.size());
    for (double d : doubles_) payload.push_back(DoubleToBits(d));
  } else {
    payload = std::move(ints_);
  }

  // min/max/distinct on the int payload (not meaningful for bit-cast
  // doubles; skipped there).
  if (type_.kind != TypeKind::kFloat64 && !payload.empty()) {
    stats.has_min_max = true;
    int64_t mn = payload[0], mx = payload[0];
    for (int64_t v : payload) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    stats.min = Value(mn);
    stats.max = Value(mx);
    std::unordered_set<int64_t> distinct;
    // Bounded-effort distinct estimate.
    size_t probe = std::min<size_t>(payload.size(), 65536);
    for (size_t i = 0; i < probe; ++i) distinct.insert(payload[i]);
    if (probe == payload.size()) {
      stats.distinct_estimate = static_cast<int64_t>(distinct.size());
    } else {
      // Linear extrapolation, capped by row count.
      stats.distinct_estimate =
          std::min<int64_t>(static_cast<int64_t>(payload.size()),
                            static_cast<int64_t>(distinct.size()) *
                                static_cast<int64_t>(payload.size() / probe));
    }
  }

  std::vector<RleRun> runs = BuildRuns(payload, col->nulls_);
  bool rle_wins = runs.size() * 4 <= payload.size();

  // An empty column is trivially sorted and null-free; kForceDelta on it
  // must not error (encoded-exec tests build empty fixtures this way).
  bool sorted = type_.kind != TypeKind::kFloat64 && IsSortedAscending(payload);
  bool delta_ok = sorted && col->nulls_.empty() && DeltasFitInt32(payload);

  Encoding enc = Encoding::kPlain;
  switch (choice) {
    case EncodingChoice::kAuto:
      if (rle_wins) {
        enc = Encoding::kRle;
      } else if (delta_ok && payload.size() >= 64) {
        enc = Encoding::kDelta;
      }
      break;
    case EncodingChoice::kForcePlain:
      enc = Encoding::kPlain;
      break;
    case EncodingChoice::kForceRle:
      enc = Encoding::kRle;
      break;
    case EncodingChoice::kForceDelta:
      if (!delta_ok) {
        return InvalidArgument(
            "delta encoding requires sorted, null-free int data with "
            "int32-range deltas");
      }
      enc = Encoding::kDelta;
      break;
    case EncodingChoice::kForceDictionary:
      return InvalidArgument("dictionary encoding applies to string columns");
  }

  col->encoding_ = enc;
  switch (enc) {
    case Encoding::kPlain:
      col->ints_ = std::move(payload);
      break;
    case Encoding::kRle:
      col->runs_ = std::move(runs);
      break;
    case Encoding::kDelta:
      if (!payload.empty()) {
        col->delta_base_ = payload[0];
        col->deltas_.reserve(payload.size() - 1);
        for (size_t i = 1; i < payload.size(); ++i) {
          col->deltas_.push_back(
              static_cast<int32_t>(payload[i] - payload[i - 1]));
        }
      }
      break;
    case Encoding::kDictionary:
      break;  // unreachable
  }
  col->stats_ = stats;
  size_ = 0;
  return col;
}

}  // namespace vizq::tde
