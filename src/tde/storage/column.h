// Column storage for the TDE (§4.1.1 of the paper).
//
// A column stores values of one DataType plus a null mask. Four physical
// layouts are implemented:
//
//   * kPlain       — uncompressed fixed-width data (or raw strings).
//   * kDictionary  — fixed tokens stored in the column, with an associated
//                    dictionary of the original values ("array compression"
//                    for fixed-width values, "heap compression" for
//                    strings). Dictionary compression is visible outside the
//                    storage layer: the planner models decompression as a
//                    join and rewrites predicates into token space.
//   * kRle         — run-length encoding of fixed-width data (including
//                    dictionary tokens). An *encoding* in TDE terms: a
//                    storage format normally invisible outside this layer,
//                    except that the optimizer may exploit it via the
//                    IndexTable range-skipping join (§4.3).
//   * kDelta       — delta encoding for sorted integer data; invisible
//                    outside the layer.
//
// Numeric payloads: bool/int64/date values live in int64 storage; float64 in
// double storage. String columns are either kPlain (raw strings) or
// kDictionary (tokens + string dictionary).

#ifndef VIZQUERY_TDE_STORAGE_COLUMN_H_
#define VIZQUERY_TDE_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/value.h"

namespace vizq::tde {

// Physical layout of a column.
enum class Encoding : uint8_t {
  kPlain = 0,
  kDictionary = 1,
  kRle = 2,
  kDelta = 3,
};

const char* EncodingToString(Encoding e);

// One run of an RLE-encoded column: `count` copies of `value` starting at
// row `start`. Exactly the (value, count, start) triple the paper's
// IndexTable exposes (§4.3).
struct RleRun {
  int64_t value = 0;  // payload (or dictionary token); doubles are bit-cast
  int64_t start = 0;
  int64_t count = 0;
};

// Shared, immutable string dictionary. Tokens are indexes into `values`,
// assigned in first-appearance order. Lookup honors the column collation.
class StringDictionary {
 public:
  explicit StringDictionary(Collation collation) : collation_(collation) {}

  // Returns the token for `s`, inserting it if absent.
  int64_t Intern(std::string_view s);

  // Returns the token of `s` or -1 when not present (no insertion).
  int64_t Find(std::string_view s) const;

  const std::string& value(int64_t token) const { return values_[token]; }
  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  Collation collation() const { return collation_; }
  const std::vector<std::string>& values() const { return values_; }

 private:
  Collation collation_;
  std::vector<std::string> values_;
  // Canonical collation key -> token.
  std::unordered_map<std::string, int64_t> index_;
};

// Aggregate statistics kept in SYS metadata and used by the optimizer
// (cardinality, domains, sortedness — §3.1, §4.2.2).
struct ColumnStats {
  bool has_min_max = false;
  Value min;
  Value max;
  int64_t distinct_estimate = 0;
  int64_t null_count = 0;
};

// An immutable column. Construct through ColumnBuilder.
class Column {
 public:
  const DataType& type() const { return type_; }
  Encoding encoding() const { return encoding_; }
  int64_t size() const { return size_; }
  const ColumnStats& stats() const { return stats_; }

  bool IsNull(int64_t row) const {
    return !nulls_.empty() && nulls_[row] != 0;
  }
  int64_t null_count() const { return stats_.null_count; }

  // Random access as a dynamic Value (API-boundary convenience; scans use
  // the bulk decoders below).
  Value GetValue(int64_t row) const;

  // Bulk-decodes rows [start, start+count) of the int64 payload
  // (bool/int64/date columns, or dictionary *tokens* for encoded strings).
  // `out` is resized to count. Null rows decode to 0 with the null mask set.
  void DecodeInts(int64_t start, int64_t count, std::vector<int64_t>* out,
                  std::vector<uint8_t>* null_mask) const;

  // Bulk-decodes float64 payload rows.
  void DecodeDoubles(int64_t start, int64_t count, std::vector<double>* out,
                     std::vector<uint8_t>* null_mask) const;

  // Bulk-decodes string rows (plain string columns only; dictionary string
  // columns should be scanned as tokens + dictionary()).
  void DecodeStrings(int64_t start, int64_t count,
                     std::vector<std::string>* out,
                     std::vector<uint8_t>* null_mask) const;

  // Decodes only the null mask of rows [start, start+count). `out` is
  // cleared when the range has no nulls (the "no nulls" convention of
  // ColumnVector); otherwise it holds `count` flags.
  void DecodeNulls(int64_t start, int64_t count,
                   std::vector<uint8_t>* out) const;

  // Streaming decode state for DecodeIntsResumable: carries the delta
  // prefix sum across consecutive batch decodes so a full-column scan is
  // O(n) instead of O(n^2) (DecodeInts recomputes the prefix from row 0 on
  // every call).
  struct DecodeCursor {
    int64_t next_row = 0;
    int64_t acc = 0;  // value of row next_row (kDelta only)
  };

  // DecodeInts with a resume cursor. Equivalent output; when `start`
  // matches cursor->next_row on a kDelta column the prefix sum continues
  // incrementally. Any other encoding (or a non-contiguous start, e.g. a
  // morsel jump) delegates to DecodeInts and re-seeds the cursor.
  void DecodeIntsResumable(DecodeCursor* cursor, int64_t start, int64_t count,
                           std::vector<int64_t>* out,
                           std::vector<uint8_t>* null_mask) const;

  // Emits the kRle runs overlapping rows [start, start+count), clipped to
  // the range and rebased so run starts are relative to `start`. Runs are
  // contiguous, non-empty, and cover [0, count). Returns the number of
  // runs appended. Valid only for is_rle() columns.
  int64_t EmitRuns(int64_t start, int64_t count,
                   std::vector<RleRun>* out) const;

  // Encoding-aware three-way comparison of rows `a` and `b` without
  // materializing Values: equal dictionary tokens and same-run RLE rows
  // compare equal in O(log runs); kDelta rows compare by scanning the
  // deltas between them (O(|b-a|), O(1) for neighbors) instead of the
  // O(row) per-row prefix sum of GetValue. Nulls sort first.
  int CompareRows(int64_t a, int64_t b) const;

  // Dictionary of a kDictionary column; nullptr otherwise.
  const StringDictionary* dictionary() const { return dictionary_.get(); }
  std::shared_ptr<const StringDictionary> shared_dictionary() const {
    return dictionary_;
  }

  // The IndexTable view of a kRle column (§4.3): one entry per run.
  // Empty for other encodings.
  const std::vector<RleRun>& rle_runs() const { return runs_; }

  // True when this column's int payload is physically RLE encoded.
  bool is_rle() const { return encoding_ == Encoding::kRle; }

  // True if the column is a string column stored as dictionary tokens.
  bool is_dictionary_string() const {
    return type_.kind == TypeKind::kString && dictionary_ != nullptr;
  }

  // Approximate on-disk / in-memory bytes (for DOP decisions and packing).
  int64_t ApproxBytes() const;

 private:
  friend class ColumnBuilder;
  friend class ColumnSerializer;

  DataType type_;
  Encoding encoding_ = Encoding::kPlain;
  int64_t size_ = 0;
  ColumnStats stats_;

  std::vector<uint8_t> nulls_;      // empty when no nulls
  std::vector<int64_t> ints_;       // plain int payload or dict tokens
  std::vector<double> doubles_;     // plain float payload
  std::vector<std::string> strings_;// plain string payload
  std::vector<RleRun> runs_;        // kRle payload
  int64_t delta_base_ = 0;          // kDelta: first value
  std::vector<int32_t> deltas_;     // kDelta: value[i] - value[i-1]
  std::shared_ptr<StringDictionary> dictionary_;
};

// How a builder chooses the physical layout.
enum class EncodingChoice : uint8_t {
  kAuto = 0,        // heuristic: dictionary for low-cardinality strings,
                    // RLE when runs compress >2x, delta for sorted ints
  kForcePlain,
  kForceDictionary,
  kForceRle,
  kForceDelta,
};

// Accumulates values then freezes them into an immutable Column.
class ColumnBuilder {
 public:
  explicit ColumnBuilder(DataType type);

  void Append(const Value& v);
  void AppendNull();
  void AppendInt(int64_t v);     // bool/int64/date fast path
  void AppendDouble(double v);
  void AppendString(std::string_view v);

  int64_t size() const { return size_; }

  // Freezes into a Column. The builder is left empty.
  StatusOr<std::shared_ptr<Column>> Finish(
      EncodingChoice choice = EncodingChoice::kAuto);

 private:
  DataType type_;
  int64_t size_ = 0;
  bool any_null_ = false;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace vizq::tde

#endif  // VIZQUERY_TDE_STORAGE_COLUMN_H_
