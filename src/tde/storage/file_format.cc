#include "src/tde/storage/file_format.h"

#include <cstring>
#include <fstream>

namespace vizq::tde {

namespace {

constexpr uint32_t kMagic = 0x56514445;  // 'VQDE'
constexpr uint32_t kVersion = 1;

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }
void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}
void PutDouble(std::string* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  PutU64(out, bits);
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : data_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t n;
    if (!GetU32(&n)) return false;
    if (pos_ + n > data_.size()) return false;
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

  // Upper bound on how many `elem_bytes`-sized elements can still follow;
  // guards resize() calls against corrupt length fields.
  bool Fits(uint64_t count, size_t elem_bytes) const {
    return count <= (data_.size() - pos_) / elem_bytes;
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, 0);
  } else if (v.is_bool()) {
    PutU8(out, 1);
    PutU8(out, v.bool_value() ? 1 : 0);
  } else if (v.is_int()) {
    PutU8(out, 2);
    PutI64(out, v.int_value());
  } else if (v.is_double()) {
    PutU8(out, 3);
    PutDouble(out, v.double_value());
  } else {
    PutU8(out, 4);
    PutString(out, v.string_value());
  }
}

bool GetValue(Reader* r, Value* v) {
  uint8_t tag;
  if (!r->GetU8(&tag)) return false;
  switch (tag) {
    case 0: *v = Value::Null(); return true;
    case 1: {
      uint8_t b;
      if (!r->GetU8(&b)) return false;
      *v = Value(b != 0);
      return true;
    }
    case 2: {
      int64_t i;
      if (!r->GetI64(&i)) return false;
      *v = Value(i);
      return true;
    }
    case 3: {
      double d;
      if (!r->GetDouble(&d)) return false;
      *v = Value(d);
      return true;
    }
    case 4: {
      std::string s;
      if (!r->GetString(&s)) return false;
      *v = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

// Serializes Column internals; a friend of Column.
class ColumnSerializer {
 public:
  static void Pack(const Column& col, std::string* out) {
    PutU8(out, static_cast<uint8_t>(col.type_.kind));
    PutU8(out, static_cast<uint8_t>(col.type_.collation));
    PutU8(out, static_cast<uint8_t>(col.encoding_));
    PutI64(out, col.size_);
    // stats
    PutU8(out, col.stats_.has_min_max ? 1 : 0);
    PutValue(out, col.stats_.min);
    PutValue(out, col.stats_.max);
    PutI64(out, col.stats_.distinct_estimate);
    PutI64(out, col.stats_.null_count);
    // null mask
    PutU64(out, col.nulls_.size());
    out->append(reinterpret_cast<const char*>(col.nulls_.data()),
                col.nulls_.size());
    // payloads
    PutU64(out, col.ints_.size());
    for (int64_t v : col.ints_) PutI64(out, v);
    PutU64(out, col.doubles_.size());
    for (double v : col.doubles_) PutDouble(out, v);
    PutU64(out, col.strings_.size());
    for (const std::string& s : col.strings_) PutString(out, s);
    PutU64(out, col.runs_.size());
    for (const RleRun& run : col.runs_) {
      PutI64(out, run.value);
      PutI64(out, run.start);
      PutI64(out, run.count);
    }
    PutI64(out, col.delta_base_);
    PutU64(out, col.deltas_.size());
    for (int32_t d : col.deltas_) PutU32(out, static_cast<uint32_t>(d));
    // dictionary
    if (col.dictionary_ != nullptr) {
      PutU8(out, 1);
      PutU8(out, static_cast<uint8_t>(col.dictionary_->collation()));
      PutU64(out, col.dictionary_->values().size());
      for (const std::string& s : col.dictionary_->values()) PutString(out, s);
    } else {
      PutU8(out, 0);
    }
  }

  static StatusOr<std::shared_ptr<Column>> Unpack(Reader* r) {
    auto col = std::make_shared<Column>();
    uint8_t kind, collation, encoding;
    if (!r->GetU8(&kind) || !r->GetU8(&collation) || !r->GetU8(&encoding)) {
      return DataLoss("column header truncated");
    }
    col->type_.kind = static_cast<TypeKind>(kind);
    col->type_.collation = static_cast<Collation>(collation);
    col->encoding_ = static_cast<Encoding>(encoding);
    if (!r->GetI64(&col->size_)) return DataLoss("column size truncated");
    uint8_t has_mm;
    if (!r->GetU8(&has_mm)) return DataLoss("column stats truncated");
    col->stats_.has_min_max = has_mm != 0;
    if (!GetValue(r, &col->stats_.min) || !GetValue(r, &col->stats_.max) ||
        !r->GetI64(&col->stats_.distinct_estimate) ||
        !r->GetI64(&col->stats_.null_count)) {
      return DataLoss("column stats truncated");
    }
    uint64_t n;
    if (!r->GetU64(&n) || !r->Fits(n, 1)) {
      return DataLoss("null mask truncated");
    }
    col->nulls_.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (!r->GetU8(&col->nulls_[i])) return DataLoss("null mask truncated");
    }
    if (!r->GetU64(&n) || !r->Fits(n, 8)) {
      return DataLoss("int payload truncated");
    }
    col->ints_.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (!r->GetI64(&col->ints_[i])) return DataLoss("int payload truncated");
    }
    if (!r->GetU64(&n) || !r->Fits(n, 8)) {
      return DataLoss("double payload truncated");
    }
    col->doubles_.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (!r->GetDouble(&col->doubles_[i])) {
        return DataLoss("double payload truncated");
      }
    }
    if (!r->GetU64(&n) || !r->Fits(n, 4)) {
      return DataLoss("string payload truncated");
    }
    col->strings_.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (!r->GetString(&col->strings_[i])) {
        return DataLoss("string payload truncated");
      }
    }
    if (!r->GetU64(&n) || !r->Fits(n, 24)) {
      return DataLoss("runs truncated");
    }
    col->runs_.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      RleRun& run = col->runs_[i];
      if (!r->GetI64(&run.value) || !r->GetI64(&run.start) ||
          !r->GetI64(&run.count)) {
        return DataLoss("runs truncated");
      }
    }
    if (!r->GetI64(&col->delta_base_)) return DataLoss("delta truncated");
    if (!r->GetU64(&n) || !r->Fits(n, 4)) {
      return DataLoss("delta truncated");
    }
    col->deltas_.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t d;
      if (!r->GetU32(&d)) return DataLoss("delta truncated");
      col->deltas_[i] = static_cast<int32_t>(d);
    }
    uint8_t has_dict;
    if (!r->GetU8(&has_dict)) return DataLoss("dictionary flag truncated");
    if (has_dict != 0) {
      uint8_t dict_collation;
      uint64_t entries;
      if (!r->GetU8(&dict_collation) || !r->GetU64(&entries)) {
        return DataLoss("dictionary header truncated");
      }
      auto dict = std::make_shared<StringDictionary>(
          static_cast<Collation>(dict_collation));
      for (uint64_t i = 0; i < entries; ++i) {
        std::string s;
        if (!r->GetString(&s)) return DataLoss("dictionary truncated");
        dict->Intern(s);
      }
      col->dictionary_ = std::move(dict);
    }
    return col;
  }
};

std::string DatabaseSerializer::Pack(const Database& db) {
  std::string out;
  PutU32(&out, kMagic);
  PutU32(&out, kVersion);
  PutString(&out, db.name_);
  PutU32(&out, static_cast<uint32_t>(db.schemas_.size()));
  for (const auto& [sname, tables] : db.schemas_) {
    PutString(&out, sname);
    PutU32(&out, static_cast<uint32_t>(tables.size()));
    for (const auto& [tname, table] : tables) {
      PutString(&out, tname);
      PutI64(&out, table->num_rows_);
      PutU32(&out, static_cast<uint32_t>(table->schema_.size()));
      for (size_t i = 0; i < table->schema_.size(); ++i) {
        PutString(&out, table->schema_[i].name);
        ColumnSerializer::Pack(*table->columns_[i], &out);
      }
      PutU32(&out, static_cast<uint32_t>(table->sort_columns_.size()));
      for (int sc : table->sort_columns_) PutU32(&out, static_cast<uint32_t>(sc));
    }
  }
  return out;
}

StatusOr<std::shared_ptr<Database>> DatabaseSerializer::Unpack(
    const std::string& bytes) {
  Reader r(bytes);
  uint32_t magic, version;
  if (!r.GetU32(&magic) || magic != kMagic) {
    return DataLoss("not a VizQuery extract file");
  }
  if (!r.GetU32(&version) || version != kVersion) {
    return DataLoss("unsupported extract version");
  }
  std::string db_name;
  if (!r.GetString(&db_name)) return DataLoss("truncated header");
  auto db = std::make_shared<Database>(db_name);
  db->schemas_.clear();
  uint32_t nschemas;
  if (!r.GetU32(&nschemas)) return DataLoss("truncated schema count");
  for (uint32_t s = 0; s < nschemas; ++s) {
    std::string sname;
    uint32_t ntables;
    if (!r.GetString(&sname) || !r.GetU32(&ntables)) {
      return DataLoss("truncated schema");
    }
    auto& tables = db->schemas_[sname];
    for (uint32_t t = 0; t < ntables; ++t) {
      std::string tname;
      if (!r.GetString(&tname)) return DataLoss("truncated table name");
      auto table = std::make_shared<Table>();
      table->name_ = tname;
      if (!r.GetI64(&table->num_rows_)) return DataLoss("truncated rows");
      uint32_t ncols;
      if (!r.GetU32(&ncols)) return DataLoss("truncated columns");
      for (uint32_t c = 0; c < ncols; ++c) {
        ColumnInfo ci;
        if (!r.GetString(&ci.name)) return DataLoss("truncated column name");
        VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<Column> col,
                              ColumnSerializer::Unpack(&r));
        ci.type = col->type();
        table->schema_.push_back(std::move(ci));
        table->columns_.push_back(std::move(col));
      }
      uint32_t nsort;
      if (!r.GetU32(&nsort)) return DataLoss("truncated sort metadata");
      for (uint32_t i = 0; i < nsort; ++i) {
        uint32_t sc;
        if (!r.GetU32(&sc)) return DataLoss("truncated sort metadata");
        table->sort_columns_.push_back(static_cast<int>(sc));
      }
      tables.emplace(tname, std::move(table));
    }
  }
  if (!r.AtEnd()) return DataLoss("trailing bytes in extract file");
  return db;
}

Status DatabaseSerializer::PackToFile(const Database& db,
                                      const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return InvalidArgument("cannot open '" + path + "' for writing");
  std::string bytes = Pack(db);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) return Internal("write to '" + path + "' failed");
  return OkStatus();
}

StatusOr<std::shared_ptr<Database>> DatabaseSerializer::UnpackFromFile(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return NotFound("cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return Unpack(bytes);
}

}  // namespace vizq::tde
