#include "src/tde/storage/database.h"

namespace vizq::tde {

Status Database::CreateSchema(const std::string& schema) {
  if (schema == kSysSchema) {
    return InvalidArgument("SYS is a reserved schema");
  }
  auto [it, inserted] = schemas_.try_emplace(schema);
  if (!inserted) return AlreadyExists("schema '" + schema + "' exists");
  return OkStatus();
}

Status Database::AddTable(const std::string& schema,
                          std::shared_ptr<Table> table) {
  if (schema == kSysSchema) {
    return InvalidArgument("SYS is a reserved schema");
  }
  auto it = schemas_.find(schema);
  if (it == schemas_.end()) {
    return NotFound("schema '" + schema + "' not found");
  }
  const std::string& name = table->name();
  auto [tit, inserted] = it->second.try_emplace(name, std::move(table));
  if (!inserted) {
    return AlreadyExists("table '" + schema + "." + name + "' exists");
  }
  return OkStatus();
}

Status Database::DropTable(const std::string& schema,
                           const std::string& table) {
  auto it = schemas_.find(schema);
  if (it == schemas_.end()) {
    return NotFound("schema '" + schema + "' not found");
  }
  if (it->second.erase(table) == 0) {
    return NotFound("table '" + schema + "." + table + "' not found");
  }
  return OkStatus();
}

StatusOr<std::shared_ptr<Table>> Database::GetTable(
    const std::string& path) const {
  size_t dot = path.find('.');
  if (dot == std::string::npos) return GetTable(kDefaultSchema, path);
  return GetTable(path.substr(0, dot), path.substr(dot + 1));
}

StatusOr<std::shared_ptr<Table>> Database::GetTable(
    const std::string& schema, const std::string& table) const {
  auto it = schemas_.find(schema);
  if (it == schemas_.end()) {
    return NotFound("schema '" + schema + "' not found");
  }
  auto tit = it->second.find(table);
  if (tit == it->second.end()) {
    return NotFound("table '" + schema + "." + table + "' not found");
  }
  return tit->second;
}

std::vector<std::string> Database::ListSchemas() const {
  std::vector<std::string> out;
  out.reserve(schemas_.size());
  for (const auto& [name, tables] : schemas_) out.push_back(name);
  return out;
}

std::vector<std::string> Database::ListTables(const std::string& schema) const {
  std::vector<std::string> out;
  auto it = schemas_.find(schema);
  if (it == schemas_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [name, table] : it->second) out.push_back(name);
  return out;
}

int64_t Database::ApproxBytes() const {
  int64_t bytes = 0;
  for (const auto& [sname, tables] : schemas_) {
    for (const auto& [tname, table] : tables) bytes += table->ApproxBytes();
  }
  return bytes;
}

}  // namespace vizq::tde
