#include "src/tde/storage/table.h"

#include <algorithm>

namespace vizq::tde {

int Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Table::SubsetMatchesSortPrefix(const std::vector<int>& columns,
                                    int* prefix_len) const {
  if (sort_columns_.empty() || columns.empty()) return false;
  // Greedily match the longest sort prefix whose members are all in
  // `columns` (a permutation of a subset of the group-by columns).
  int matched = 0;
  for (int sc : sort_columns_) {
    if (std::find(columns.begin(), columns.end(), sc) == columns.end()) break;
    ++matched;
  }
  if (matched == 0) return false;
  if (prefix_len != nullptr) *prefix_len = matched;
  return true;
}

ResultTable Table::Slice(int64_t start, int64_t count,
                         const std::vector<int>& column_indices) const {
  std::vector<ResultColumn> cols;
  cols.reserve(column_indices.size());
  for (int ci : column_indices) {
    cols.push_back(ResultColumn{schema_[ci].name, schema_[ci].type});
  }
  ResultTable out(std::move(cols));
  int64_t end = std::min(start + count, num_rows_);
  for (int64_t r = start; r < end; ++r) {
    ResultTable::Row row;
    row.reserve(column_indices.size());
    for (int ci : column_indices) row.push_back(columns_[ci]->GetValue(r));
    out.AddRow(std::move(row));
  }
  return out;
}

int64_t Table::ApproxBytes() const {
  int64_t bytes = 0;
  for (const auto& c : columns_) bytes += c->ApproxBytes();
  return bytes;
}

TableBuilder::TableBuilder(std::string name, std::vector<ColumnInfo> schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  builders_.reserve(schema_.size());
  for (const ColumnInfo& ci : schema_) {
    builders_.emplace_back(ci.type);
    choices_.push_back(EncodingChoice::kAuto);
  }
}

Status TableBuilder::AddRow(const std::vector<Value>& row) {
  if (row.size() != schema_.size()) {
    return InvalidArgument("row arity " + std::to_string(row.size()) +
                           " does not match schema arity " +
                           std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) builders_[i].Append(row[i]);
  ++num_rows_;
  return OkStatus();
}

void TableBuilder::SetEncodingChoice(int column, EncodingChoice choice) {
  choices_[column] = choice;
}

void TableBuilder::DeclareSorted(std::vector<int> sort_columns) {
  sort_columns_ = std::move(sort_columns);
}

StatusOr<std::shared_ptr<Table>> TableBuilder::Finish() {
  auto table = std::make_shared<Table>();
  table->name_ = name_;
  table->schema_ = schema_;
  table->num_rows_ = num_rows_;
  table->columns_.reserve(builders_.size());
  for (size_t i = 0; i < builders_.size(); ++i) {
    VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<Column> col,
                          builders_[i].Finish(choices_[i]));
    table->columns_.push_back(std::move(col));
  }

  // Validate the declared sort order before trusting it.
  if (!sort_columns_.empty()) {
    for (int sc : sort_columns_) {
      if (sc < 0 || sc >= static_cast<int>(schema_.size())) {
        return InvalidArgument("sort column index out of range");
      }
    }
    for (int64_t r = 1; r < num_rows_; ++r) {
      for (int sc : sort_columns_) {
        Value prev = table->columns_[sc]->GetValue(r - 1);
        Value cur = table->columns_[sc]->GetValue(r);
        int cmp = prev.Compare(cur, schema_[sc].type.collation);
        if (cmp < 0) break;
        if (cmp > 0) {
          return InvalidArgument("table '" + name_ +
                                 "' is not sorted as declared at row " +
                                 std::to_string(r));
        }
      }
    }
    table->sort_columns_ = sort_columns_;
  }
  return table;
}

}  // namespace vizq::tde
