// Connection pooling (§3.5): "The process of opening a connection,
// retrieving configuration information and metadata are costly, therefore,
// connections are pooled and kept around even if idle. In addition,
// connection pooling plays an important role in preserving and reusing
// temporary structures stored in remote sessions. ... An age-wise eviction
// policy is used in case of local memory pressure or to release remote
// resources unused for longer periods of time."
//
// Acquisition is ExecContext-aware: a blocked Acquire honors the caller's
// deadline (kDeadlineExceeded) and cancellation (kAborted), and is bounded
// by the pool's own `max_wait_ms` even for callers without a deadline
// (kResourceExhausted) — a saturated pool can no longer wedge a request
// forever.

#ifndef VIZQUERY_FEDERATION_CONNECTION_POOL_H_
#define VIZQUERY_FEDERATION_CONNECTION_POOL_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/exec_context.h"
#include "src/federation/data_source.h"

namespace vizq::federation {

class ConnectionPool;

// RAII lease of a pooled connection; returns it on destruction.
class PooledConnection {
 public:
  PooledConnection() = default;
  PooledConnection(PooledConnection&& other) noexcept;
  PooledConnection& operator=(PooledConnection&& other) noexcept;
  PooledConnection(const PooledConnection&) = delete;
  PooledConnection& operator=(const PooledConnection&) = delete;
  ~PooledConnection();

  Connection* operator->() { return conn_; }
  Connection& operator*() { return *conn_; }
  Connection* get() { return conn_; }
  bool valid() const { return conn_ != nullptr; }

  void Release();  // early return to the pool

 private:
  friend class ConnectionPool;
  PooledConnection(ConnectionPool* pool, Connection* conn, int slot)
      : pool_(pool), conn_(conn), slot_(slot) {}

  ConnectionPool* pool_ = nullptr;
  Connection* conn_ = nullptr;
  int slot_ = -1;
};

struct PoolStats {
  int64_t opened = 0;        // physical connections created
  int64_t reused = 0;        // acquisitions served by an idle connection
  int64_t waits = 0;         // acquisitions that had to block at the cap
  int64_t timeouts = 0;      // acquisitions abandoned (deadline/max_wait)
  int64_t temp_affinity = 0; // acquisitions steered by temp-table affinity
  int64_t evicted = 0;       // idle connections closed by age
};

struct PoolOptions {
  // Maximum pooled connections; 0 means the source's connection cap.
  int max_size = 0;
  // Upper bound on how long an Acquire may block at the cap even when the
  // caller's ExecContext has no deadline; <= 0 disables the bound.
  double max_wait_ms = 30000;
};

class ConnectionPool {
 public:
  // `max_size` defaults to the source's connection cap.
  explicit ConnectionPool(std::shared_ptr<DataSource> source,
                          int max_size = 0);
  ConnectionPool(std::shared_ptr<DataSource> source, PoolOptions options);
  ~ConnectionPool();

  // Acquires a connection: an idle one when available, otherwise a new one
  // (below the cap), otherwise blocks until a release — bounded by the
  // context deadline, cancellation, and the pool's max_wait_ms.
  StatusOr<PooledConnection> Acquire(const ExecContext& ctx);
  StatusOr<PooledConnection> Acquire() {
    return Acquire(ExecContext::Background());
  }

  // Acquire, preferring an idle connection that already holds the given
  // temp table — the §3.5 "preserving and reusing temporary structures"
  // path. Falls back to plain Acquire behaviour.
  StatusOr<PooledConnection> AcquirePreferring(
      const ExecContext& ctx, const std::vector<std::string>& temp_tables);
  StatusOr<PooledConnection> AcquirePreferring(
      const std::vector<std::string>& temp_tables) {
    return AcquirePreferring(ExecContext::Background(), temp_tables);
  }

  // Age-wise eviction: closes idle connections not used for at least
  // `max_idle_acquisitions` pool operations.
  void EvictIdle(int64_t max_idle_acquisitions);

  // Closes every connection (data-source refresh semantics; callers also
  // invalidate their caches, §3.2).
  void CloseAll();

  const PoolStats& stats() const { return stats_; }
  const PoolOptions& options() const { return options_; }
  int size() const;
  int idle() const;

 private:
  friend class PooledConnection;

  struct Slot {
    std::unique_ptr<Connection> conn;
    bool in_use = false;
    int64_t last_used_op = 0;
  };

  void ReturnSlot(int slot);

  std::shared_ptr<DataSource> source_;
  PoolOptions options_;
  int max_size_;

  mutable std::mutex mu_;
  std::condition_variable available_cv_;
  std::vector<Slot> slots_;
  int64_t op_counter_ = 0;
  PoolStats stats_;
};

}  // namespace vizq::federation

#endif  // VIZQUERY_FEDERATION_CONNECTION_POOL_H_
