// SimulatedDataSource: a stand-in for the commercial backends Tableau
// talks to (SQL Server, MySQL-likes, MPP warehouses, throttled cloud
// sources...). See DESIGN.md "Substitutions".
//
// The simulator executes queries *correctly* against an in-process TDE
// database, then imposes the timing behaviour of the modeled architecture
// (§3.5): connection-open cost, per-query dispatch overhead, CPU-bound
// work proportional to rows scanned, a CPU pool shared by concurrent
// queries (single-thread-per-query engines can't use more than one slot
// per query; parallel-plan engines can), a server-side admission throttle,
// a connection cap, and network transfer of the result rows. Waits are
// real (sleeps), so wall-clock measurements over this source reproduce
// the paper's concurrency effects even on a single-core host.

#ifndef VIZQUERY_FEDERATION_SIMULATED_SOURCE_H_
#define VIZQUERY_FEDERATION_SIMULATED_SOURCE_H_

#include <condition_variable>
#include <memory>
#include <mutex>

#include "src/common/scheduler.h"
#include "src/federation/data_source.h"

namespace vizq::federation {

// Architecture/latency model knobs. Times are kept small so benches finish
// quickly; ratios are what matter.
struct PerformanceModel {
  double connect_ms = 12.0;       // opening a session + metadata retrieval
  double dispatch_ms = 1.0;       // per-query parse/plan/dispatch overhead
  double rows_per_ms = 3000.0;    // scan speed of one CPU slot
  int cpu_slots = 8;              // CPUs available on the backend
  int max_parallel_per_query = 8; // intra-query parallelism cap (1 for
                                  // single-thread-per-query engines)
  double network_rtt_ms = 0.8;    // per request/response
  double rows_per_ms_network = 5000.0;  // result streaming speed
  double temp_table_row_ms = 0.002;     // temp-table upload per value
  double session_ddl_lock_ms = 0.0;     // serialized DDL (§3.5's high-level
                                        // lock pathology), charged globally
};

class SimulatedDataSource : public DataSource {
 public:
  // The `db` is the backend's data; `model` the timing behaviour;
  // `capabilities` the functional/concurrency envelope (the admission
  // throttle uses capabilities().max_concurrent_queries).
  SimulatedDataSource(std::string name, std::shared_ptr<tde::Database> db,
                      PerformanceModel model, query::Capabilities capabilities,
                      query::SqlDialect dialect);

  const std::string& name() const override { return name_; }
  const query::Capabilities& capabilities() const override {
    return capabilities_;
  }
  const query::SqlDialect& dialect() const override { return dialect_; }
  const tde::Database& catalog() const override { return *db_; }
  StatusOr<std::unique_ptr<Connection>> Connect() override;

  const PerformanceModel& model() const { return model_; }

  // Live connections (enforces capabilities().max_connections).
  int open_connections() const;

  // Establishes up to `count` warm sessions in the background (kBackground
  // scheduler tasks): each pays the connect handshake up front so a later
  // Connect() can adopt it and skip the handshake sleep. Warm sessions
  // beyond the connection cap are discarded. `scheduler` defaults to the
  // process-wide one.
  void PrewarmAsync(int count, Scheduler* scheduler = nullptr);
  // Joins outstanding prewarm work (tests / shutdown).
  void WaitForPrewarm();
  int warm_sessions() const;

  // Total queries executed (across all connections).
  int64_t queries_executed() const { return queries_executed_; }

  // --- presets matching the §3.5 architecture discussion ---
  static std::shared_ptr<SimulatedDataSource> SingleThreadedSql(
      std::string name, std::shared_ptr<tde::Database> db);
  static std::shared_ptr<SimulatedDataSource> ParallelWarehouse(
      std::string name, std::shared_ptr<tde::Database> db);
  static std::shared_ptr<SimulatedDataSource> ThrottledCloud(
      std::string name, std::shared_ptr<tde::Database> db);

  // --- backend internals, used by SimulatedConnection ---

  // Backend-side CPU accounting: a query asking for `want` slots receives
  // between 1 and `want` depending on idle capacity; slots are released
  // when the work sleep finishes.
  int AcquireCpuSlots(int want);
  void ReleaseCpuSlots(int slots);

  // Server-side admission control; returns queue wait in ms. The wait is
  // bounded by `ctx`: an expired deadline or a cancellation aborts the
  // queue wait instead of blocking until a slot frees up.
  StatusOr<double> AdmitQuery(
      const ExecContext& ctx = ExecContext::Background());
  void FinishQuery();

  void ConnectionClosed();

 private:
  std::string name_;
  std::shared_ptr<tde::Database> db_;
  PerformanceModel model_;
  query::Capabilities capabilities_;
  query::SqlDialect dialect_;

  mutable std::mutex mu_;
  std::condition_variable admission_cv_;
  int running_queries_ = 0;
  int used_cpu_slots_ = 0;
  int open_connections_ = 0;
  int warm_sessions_ = 0;
  int64_t queries_executed_ = 0;
  // Last member: its destructor joins in-flight prewarm tasks while the
  // rest of the object is still alive.
  std::unique_ptr<TaskGroup> prewarm_group_;
};

// Precise-enough sleep helper shared by the simulation layers.
void SleepMs(double ms);

// Sleeps `ms`, waking every couple of milliseconds to poll `ctx`; returns
// early with the context's error when the deadline expires or the request
// is cancelled mid-"network". `what` labels the error message.
Status SleepMsCancellable(double ms, const ExecContext& ctx,
                          const std::string& what);

}  // namespace vizq::federation

#endif  // VIZQUERY_FEDERATION_SIMULATED_SOURCE_H_
