#include "src/federation/simulated_source.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

namespace vizq::federation {

void SleepMs(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
}

Status SleepMsCancellable(double ms, const ExecContext& ctx,
                          const std::string& what) {
  constexpr double kSliceMs = 2.0;
  double left = ms;
  while (left > 0) {
    VIZQ_RETURN_IF_ERROR(ctx.CheckContinue(what.c_str()));
    double slice = std::min(left, kSliceMs);
    SleepMs(slice);
    left -= slice;
  }
  return ctx.CheckContinue(what.c_str());
}

namespace {

class SimulatedConnection : public Connection {
 public:
  SimulatedConnection(SimulatedDataSource* source,
                      std::shared_ptr<tde::Database> base)
      : source_(source),
        session_db_(std::make_shared<tde::Database>(*base)),
        engine_(session_db_) {
    (void)session_db_->CreateSchema(tde::kTempSchema);
  }

  ~SimulatedConnection() override { Close(); }

  using Connection::Execute;

  StatusOr<ResultTable> Execute(const query::CompiledQuery& cq,
                                ExecutionInfo* info,
                                const ExecContext& ctx) override {
    if (closed_) return FailedPrecondition("connection is closed");
    auto started = std::chrono::steady_clock::now();
    const PerformanceModel& m = source_->model();
    ScopedSpan span(ctx.StartSpan("remote:" + source_->name()));
    ExecContext remote_ctx = ctx.WithSpan(span.get());

    // Temp tables required by this query (created lazily, reused when the
    // session already holds them — the §3.5 pooling benefit).
    for (const query::TempTableSpec& spec : cq.temp_tables) {
      if (HasTempTable(spec.name)) {
        if (info != nullptr) info->reused_temp_table = true;
      } else {
        VIZQ_RETURN_IF_ERROR(CreateTempTable(spec));
      }
    }

    // Request travels to the server.
    VIZQ_RETURN_IF_ERROR(
        SleepMsCancellable(m.network_rtt_ms, ctx, "simulated request send"));

    // Server-side admission throttle (§3.5: "the database is likely to
    // throttle them based on available resources or a hard-coded
    // threshold").
    VIZQ_ASSIGN_OR_RETURN(double queue_ms, source_->AdmitQuery(ctx));
    ctx.Observe("remote.queue_ms", queue_ms);
    if (queue_ms >= 1.0 && ctx.log_enabled()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", queue_ms);
      ctx.LogEvent("remote", "admission-queued source=" + source_->name() +
                                 " wait_ms=" + buf);
    }

    // Execute for real (serially; the timing model below charges the
    // architecture-dependent cost).
    tde::QueryOptions exec = tde::QueryOptions::Serial();
    auto result = engine_.Execute(cq.plan, exec, remote_ctx);
    if (!result.ok()) {
      source_->FinishQuery();
      return result.status();
    }

    // CPU-bound work: rows scanned divided by the CPU slots this query
    // obtains. A single-thread-per-query engine gets exactly one slot;
    // parallel-plan engines get up to max_parallel_per_query idle slots.
    int want = source_->capabilities().single_thread_per_query
                   ? 1
                   : m.max_parallel_per_query;
    int got = source_->AcquireCpuSlots(want);
    double work_ms =
        m.dispatch_ms +
        static_cast<double>(result->stats->rows_scanned) /
            (m.rows_per_ms * static_cast<double>(got));
    Status worked = SleepMsCancellable(work_ms, ctx, "simulated query work");
    source_->ReleaseCpuSlots(got);
    source_->FinishQuery();
    VIZQ_RETURN_IF_ERROR(worked);

    // Results stream back.
    double transfer_ms =
        m.network_rtt_ms + static_cast<double>(result->table.num_rows()) /
                               m.rows_per_ms_network;
    VIZQ_RETURN_IF_ERROR(
        SleepMsCancellable(transfer_ms, ctx, "simulated result transfer"));

    if (info != nullptr) {
      info->total_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - started)
              .count();
      info->queue_ms = queue_ms;
      info->rows_returned = result->table.num_rows();
    }
    return std::move(result->table);
  }

  Status CreateTempTable(const query::TempTableSpec& spec) override {
    if (closed_) return FailedPrecondition("connection is closed");
    const PerformanceModel& m = source_->model();
    // Upload the enumeration + session DDL.
    SleepMs(m.network_rtt_ms + m.session_ddl_lock_ms +
            m.temp_table_row_ms * static_cast<double>(spec.values.size()));
    tde::TableBuilder builder(spec.name,
                              {tde::ColumnInfo{spec.column, spec.type}});
    for (const Value& v : spec.values) {
      VIZQ_RETURN_IF_ERROR(builder.AddRow({v}));
    }
    VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<tde::Table> table, builder.Finish());
    return session_db_->AddTable(tde::kTempSchema, std::move(table));
  }

  bool HasTempTable(const std::string& name) const override {
    return session_db_->GetTable(tde::kTempSchema, name).ok();
  }

  Status DropTempTable(const std::string& name) override {
    return session_db_->DropTable(tde::kTempSchema, name);
  }

  std::vector<std::string> TempTableNames() const override {
    return session_db_->ListTables(tde::kTempSchema);
  }

  void Close() override {
    if (!closed_) {
      closed_ = true;
      source_->ConnectionClosed();
    }
  }

 private:
  SimulatedDataSource* source_;
  std::shared_ptr<tde::Database> session_db_;
  tde::TdeEngine engine_;
  bool closed_ = false;
};

}  // namespace

SimulatedDataSource::SimulatedDataSource(std::string name,
                                         std::shared_ptr<tde::Database> db,
                                         PerformanceModel model,
                                         query::Capabilities capabilities,
                                         query::SqlDialect dialect)
    : name_(std::move(name)),
      db_(std::move(db)),
      model_(model),
      capabilities_(std::move(capabilities)),
      dialect_(std::move(dialect)) {}

StatusOr<std::unique_ptr<Connection>> SimulatedDataSource::Connect() {
  bool adopt_warm = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (open_connections_ >= capabilities_.max_connections) {
      return ResourceExhausted("data source '" + name_ +
                               "' is at its connection limit (" +
                               std::to_string(capabilities_.max_connections) +
                               ")");
    }
    ++open_connections_;
    if (warm_sessions_ > 0) {
      --warm_sessions_;
      adopt_warm = true;  // handshake already paid by the prewarm task
    }
  }
  if (!adopt_warm) SleepMs(model_.connect_ms);
  return std::unique_ptr<Connection>(
      std::make_unique<SimulatedConnection>(this, db_));
}

void SimulatedDataSource::PrewarmAsync(int count, Scheduler* scheduler) {
  if (count <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (prewarm_group_ == nullptr) {
      prewarm_group_ = std::make_unique<TaskGroup>(
          scheduler != nullptr ? scheduler : &Scheduler::Global(),
          TaskClass::kBackground);
    }
  }
  for (int i = 0; i < count; ++i) {
    prewarm_group_->Spawn(
        [this] {
          SleepMs(model_.connect_ms);
          std::lock_guard<std::mutex> lock(mu_);
          // A warm session only helps if a future Connect() can use it
          // within the connection cap; surplus handshakes are discarded.
          if (warm_sessions_ + open_connections_ <
              capabilities_.max_connections) {
            ++warm_sessions_;
          }
        },
        "prewarm-connect");
  }
}

void SimulatedDataSource::WaitForPrewarm() {
  TaskGroup* group = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    group = prewarm_group_.get();
  }
  if (group != nullptr) group->Wait();
}

int SimulatedDataSource::warm_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warm_sessions_;
}

int SimulatedDataSource::open_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_connections_;
}

void SimulatedDataSource::ConnectionClosed() {
  std::lock_guard<std::mutex> lock(mu_);
  --open_connections_;
}

StatusOr<double> SimulatedDataSource::AdmitQuery(const ExecContext& ctx) {
  auto started = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  // Timed slices: cancellation cannot signal the CV, so wake periodically
  // to poll the context.
  while (running_queries_ >= capabilities_.max_concurrent_queries) {
    VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("backend admission queue"));
    admission_cv_.wait_for(lock, std::chrono::milliseconds(2), [this] {
      return running_queries_ < capabilities_.max_concurrent_queries;
    });
  }
  ++running_queries_;
  ++queries_executed_;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - started)
      .count();
}

void SimulatedDataSource::FinishQuery() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_queries_;
  }
  admission_cv_.notify_one();
}

int SimulatedDataSource::AcquireCpuSlots(int want) {
  std::lock_guard<std::mutex> lock(mu_);
  int idle = model_.cpu_slots - used_cpu_slots_;
  int got = std::max(1, std::min(want, idle));
  used_cpu_slots_ += got;  // may oversubscribe by design: everyone gets >=1
  return got;
}

void SimulatedDataSource::ReleaseCpuSlots(int slots) {
  std::lock_guard<std::mutex> lock(mu_);
  used_cpu_slots_ -= slots;
}

std::shared_ptr<SimulatedDataSource> SimulatedDataSource::SingleThreadedSql(
    std::string name, std::shared_ptr<tde::Database> db) {
  PerformanceModel m;
  m.connect_ms = 15;
  m.max_parallel_per_query = 1;
  return std::make_shared<SimulatedDataSource>(
      std::move(name), std::move(db), m,
      query::Capabilities::SingleThreadedSql(), query::SqlDialect::MssqlLike());
}

std::shared_ptr<SimulatedDataSource> SimulatedDataSource::ParallelWarehouse(
    std::string name, std::shared_ptr<tde::Database> db) {
  PerformanceModel m;
  m.connect_ms = 25;
  m.cpu_slots = 8;
  m.max_parallel_per_query = 8;
  return std::make_shared<SimulatedDataSource>(
      std::move(name), std::move(db), m,
      query::Capabilities::ParallelWarehouse(),
      query::SqlDialect::BigWarehouse());
}

std::shared_ptr<SimulatedDataSource> SimulatedDataSource::ThrottledCloud(
    std::string name, std::shared_ptr<tde::Database> db) {
  PerformanceModel m;
  m.connect_ms = 40;
  m.network_rtt_ms = 4.0;
  m.max_parallel_per_query = 1;
  m.cpu_slots = 4;
  return std::make_shared<SimulatedDataSource>(
      std::move(name), std::move(db), m, query::Capabilities::ThrottledCloud(),
      query::SqlDialect::MysqlLike());
}

}  // namespace vizq::federation
