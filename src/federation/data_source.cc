#include "src/federation/data_source.h"

#include <chrono>

namespace vizq::federation {

namespace {

// Session over the in-process TDE. Temp tables live in a session-private
// copy of the database map (tables themselves are shared, immutable).
class TdeConnection : public Connection {
 public:
  TdeConnection(std::shared_ptr<tde::Database> base,
                tde::QueryOptions options)
      : session_db_(std::make_shared<tde::Database>(*base)),
        engine_(session_db_),
        options_(options) {
    (void)session_db_->CreateSchema(tde::kTempSchema);
  }

  using Connection::Execute;
  StatusOr<ResultTable> Execute(const query::CompiledQuery& cq,
                                ExecutionInfo* info,
                                const ExecContext& ctx) override {
    if (closed_) return FailedPrecondition("connection is closed");
    VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("tde connection execute"));
    auto started = std::chrono::steady_clock::now();
    for (const query::TempTableSpec& spec : cq.temp_tables) {
      if (!HasTempTable(spec.name)) {
        VIZQ_RETURN_IF_ERROR(CreateTempTable(spec));
      } else if (info != nullptr) {
        info->reused_temp_table = true;
      }
    }
    VIZQ_ASSIGN_OR_RETURN(tde::QueryResult result,
                          engine_.Execute(cq.plan, options_, ctx));
    if (info != nullptr) {
      info->total_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - started)
              .count();
      info->rows_returned = result.table.num_rows();
    }
    return std::move(result.table);
  }

  Status CreateTempTable(const query::TempTableSpec& spec) override {
    if (closed_) return FailedPrecondition("connection is closed");
    tde::TableBuilder builder(spec.name,
                              {tde::ColumnInfo{spec.column, spec.type}});
    for (const Value& v : spec.values) {
      VIZQ_RETURN_IF_ERROR(builder.AddRow({v}));
    }
    VIZQ_ASSIGN_OR_RETURN(std::shared_ptr<tde::Table> table, builder.Finish());
    return session_db_->AddTable(tde::kTempSchema, std::move(table));
  }

  bool HasTempTable(const std::string& name) const override {
    return session_db_->GetTable(tde::kTempSchema, name).ok();
  }

  Status DropTempTable(const std::string& name) override {
    return session_db_->DropTable(tde::kTempSchema, name);
  }

  std::vector<std::string> TempTableNames() const override {
    return session_db_->ListTables(tde::kTempSchema);
  }

  void Close() override { closed_ = true; }

 private:
  std::shared_ptr<tde::Database> session_db_;
  tde::TdeEngine engine_;
  tde::QueryOptions options_;
  bool closed_ = false;
};

}  // namespace

TdeDataSource::TdeDataSource(std::string name,
                             std::shared_ptr<tde::Database> db,
                             tde::QueryOptions exec_options)
    : name_(std::move(name)),
      db_(std::move(db)),
      exec_options_(exec_options),
      capabilities_(query::Capabilities::Tde()),
      dialect_(query::SqlDialect::Ansi()) {
  dialect_.name = "tql";
}

StatusOr<std::unique_ptr<Connection>> TdeDataSource::Connect() {
  return std::unique_ptr<Connection>(
      std::make_unique<TdeConnection>(db_, exec_options_));
}

}  // namespace vizq::federation
