#include "src/federation/connection_pool.h"

#include <algorithm>
#include <chrono>

namespace vizq::federation {

PooledConnection::PooledConnection(PooledConnection&& other) noexcept
    : pool_(other.pool_), conn_(other.conn_), slot_(other.slot_) {
  other.pool_ = nullptr;
  other.conn_ = nullptr;
  other.slot_ = -1;
}

PooledConnection& PooledConnection::operator=(
    PooledConnection&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    conn_ = other.conn_;
    slot_ = other.slot_;
    other.pool_ = nullptr;
    other.conn_ = nullptr;
    other.slot_ = -1;
  }
  return *this;
}

PooledConnection::~PooledConnection() { Release(); }

void PooledConnection::Release() {
  if (pool_ != nullptr) {
    pool_->ReturnSlot(slot_);
    pool_ = nullptr;
    conn_ = nullptr;
    slot_ = -1;
  }
}

ConnectionPool::ConnectionPool(std::shared_ptr<DataSource> source,
                               int max_size)
    : ConnectionPool(std::move(source), PoolOptions{max_size, 30000}) {}

ConnectionPool::ConnectionPool(std::shared_ptr<DataSource> source,
                               PoolOptions options)
    : source_(std::move(source)),
      options_(options),
      max_size_(options.max_size > 0
                    ? options.max_size
                    : source_->capabilities().max_connections) {}

ConnectionPool::~ConnectionPool() { CloseAll(); }

StatusOr<PooledConnection> ConnectionPool::Acquire(const ExecContext& ctx) {
  return AcquirePreferring(ctx, {});
}

StatusOr<PooledConnection> ConnectionPool::AcquirePreferring(
    const ExecContext& ctx, const std::vector<std::string>& temp_tables) {
  using Clock = std::chrono::steady_clock;
  // Total acquisition latency (contended or not) — unlike pool.wait_ms,
  // which only fires when the caller actually blocked, pool.acquire_us is
  // observed on every successful acquire so dashboards always see it.
  const bool timing = ctx.metrics_enabled();
  const Clock::time_point acquire_started =
      timing ? Clock::now() : Clock::time_point{};
  std::unique_lock<std::mutex> lock(mu_);
  ++op_counter_;

  bool waited = false;
  Clock::time_point wait_started{};
  // The pool's own bound: even deadline-less callers cannot block forever.
  const bool has_cap = options_.max_wait_ms > 0;
  const Clock::time_point wait_cap =
      has_cap ? Clock::now() + std::chrono::microseconds(static_cast<int64_t>(
                                   options_.max_wait_ms * 1000))
              : Clock::time_point::max();

  // Called on every successful acquisition path.
  auto record_acquired = [&] {
    if (waited) {
      ctx.Observe("pool.wait_ms",
                  std::chrono::duration<double, std::milli>(Clock::now() -
                                                            wait_started)
                      .count());
    }
    if (timing) {
      ctx.Observe("pool.acquire_us",
                  std::chrono::duration<double, std::micro>(Clock::now() -
                                                            acquire_started)
                      .count());
    }
  };

  while (true) {
    Status alive = ctx.CheckContinue("connection pool acquire");
    if (!alive.ok()) {
      if (alive.code() == StatusCode::kDeadlineExceeded) {
        ++stats_.timeouts;
        ctx.Count("pool.timeouts");
      }
      return alive;
    }
    // 1. Idle connection holding a wanted temp table?
    if (!temp_tables.empty()) {
      for (size_t i = 0; i < slots_.size(); ++i) {
        Slot& s = slots_[i];
        if (s.in_use || s.conn == nullptr) continue;
        for (const std::string& t : temp_tables) {
          if (s.conn->HasTempTable(t)) {
            s.in_use = true;
            s.last_used_op = op_counter_;
            ++stats_.reused;
            ++stats_.temp_affinity;
            record_acquired();
            return PooledConnection(this, s.conn.get(), static_cast<int>(i));
          }
        }
      }
    }
    // 2. Any idle connection.
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (!s.in_use && s.conn != nullptr) {
        s.in_use = true;
        s.last_used_op = op_counter_;
        ++stats_.reused;
        record_acquired();
        return PooledConnection(this, s.conn.get(), static_cast<int>(i));
      }
    }
    // 3. Room to open a new one: an evicted (empty) slot, else a fresh
    // one below the cap.
    int slot_idx = -1;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].in_use && slots_[i].conn == nullptr) {
        slot_idx = static_cast<int>(i);
        break;
      }
    }
    if (slot_idx < 0 && static_cast<int>(slots_.size()) < max_size_) {
      slot_idx = static_cast<int>(slots_.size());
      slots_.emplace_back();
    }
    if (slot_idx >= 0) {
      slots_[slot_idx].in_use = true;
      slots_[slot_idx].last_used_op = op_counter_;
      lock.unlock();
      auto conn = source_->Connect();
      lock.lock();
      if (!conn.ok()) {
        slots_[slot_idx].in_use = false;
        available_cv_.notify_one();
        return conn.status();
      }
      slots_[slot_idx].conn = std::move(*conn);
      ++stats_.opened;
      record_acquired();
      return PooledConnection(this, slots_[slot_idx].conn.get(), slot_idx);
    }
    // 4. Wait for a release. Short timed slices keep the wait responsive
    // to cancellation (which does not signal the pool's CV) while the
    // predicate handles normal releases promptly.
    if (!waited) {
      waited = true;
      wait_started = Clock::now();
      ++stats_.waits;
      ctx.Count("pool.waits");
      if (ctx.log_enabled()) {
        ctx.LogEvent("pool", "wait all " + std::to_string(max_size_) +
                                 " connections busy");
      }
    }
    if (has_cap && Clock::now() >= wait_cap) {
      ++stats_.timeouts;
      ctx.Count("pool.timeouts");
      return ResourceExhausted(
          "connection pool acquire timed out after " +
          std::to_string(options_.max_wait_ms) + " ms (" +
          std::to_string(max_size_) + " connections all busy)");
    }
    Clock::time_point slice =
        Clock::now() + std::chrono::milliseconds(5);
    slice = std::min(slice, wait_cap);
    if (ctx.has_deadline()) slice = std::min(slice, ctx.deadline());
    available_cv_.wait_until(lock, slice, [this] {
      for (const Slot& s : slots_) {
        if (!s.in_use && s.conn != nullptr) return true;
      }
      return false;
    });
  }
}

void ConnectionPool::ReturnSlot(int slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[slot].in_use = false;
    slots_[slot].last_used_op = op_counter_;
  }
  available_cv_.notify_one();
}

void ConnectionPool::EvictIdle(int64_t max_idle_acquisitions) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_) {
    if (s.conn != nullptr && !s.in_use &&
        op_counter_ - s.last_used_op >= max_idle_acquisitions) {
      s.conn->Close();
      s.conn.reset();
      ++stats_.evicted;
    }
  }
  // Compact trailing empty slots so the pool can re-open later.
  while (!slots_.empty() && slots_.back().conn == nullptr &&
         !slots_.back().in_use) {
    slots_.pop_back();
  }
}

void ConnectionPool::CloseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_) {
    if (s.conn != nullptr) s.conn->Close();
  }
  slots_.clear();
}

int ConnectionPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(slots_.size());
}

int ConnectionPool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const Slot& s : slots_) {
    if (!s.in_use && s.conn != nullptr) ++n;
  }
  return n;
}

}  // namespace vizq::federation
