// Connections and data sources (§3.1, §3.5).
//
// "Tableau communicates with remote data sources by means of connections.
// Most often a connection maps to a database server connection maintained
// over a network stack." A Connection executes compiled queries and holds
// remote session state — notably the temporary tables created for large
// filters, which connection pooling deliberately preserves and reuses.

#ifndef VIZQUERY_FEDERATION_DATA_SOURCE_H_
#define VIZQUERY_FEDERATION_DATA_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/result_table.h"
#include "src/common/status.h"
#include "src/query/compiler.h"
#include "src/tde/engine.h"

namespace vizq::federation {

// Per-execution observability.
struct ExecutionInfo {
  double total_ms = 0;          // end-to-end time inside the connection
  double queue_ms = 0;          // time waiting for backend admission
  int64_t rows_returned = 0;
  bool reused_temp_table = false;
};

// A live session against one data source. Thread-compatible: callers
// serialize use of a single connection (concurrency comes from using
// multiple connections, §3.5).
class Connection {
 public:
  virtual ~Connection() = default;

  // Runs a compiled query and streams back the tabular result. Required
  // temp tables (cq.temp_tables) must have been created on this session.
  // Implementations honor the context: they stop at the deadline /
  // cancellation and attach spans under the context's current parent.
  virtual StatusOr<ResultTable> Execute(const query::CompiledQuery& cq,
                                        ExecutionInfo* info,
                                        const ExecContext& ctx) = 0;

  // Context-less convenience for incremental migration of call sites.
  StatusOr<ResultTable> Execute(const query::CompiledQuery& cq,
                                ExecutionInfo* info = nullptr) {
    return Execute(cq, info, ExecContext::Background());
  }

  // Session temp-table state (§3.1, §5.3–5.4).
  virtual Status CreateTempTable(const query::TempTableSpec& spec) = 0;
  virtual bool HasTempTable(const std::string& name) const = 0;
  virtual Status DropTempTable(const std::string& name) = 0;
  virtual std::vector<std::string> TempTableNames() const = 0;

  // Closing reclaims all remote session state.
  virtual void Close() = 0;
};

// A backend plus its descriptive metadata.
class DataSource {
 public:
  virtual ~DataSource() = default;

  virtual const std::string& name() const = 0;
  virtual const query::Capabilities& capabilities() const = 0;
  virtual const query::SqlDialect& dialect() const = 0;

  // Schema catalog for query compilation.
  virtual const tde::Database& catalog() const = 0;

  // Opens a new session. Expensive (configuration/metadata retrieval) —
  // which is exactly why connections are pooled.
  virtual StatusOr<std::unique_ptr<Connection>> Connect() = 0;
};

// The in-process TDE as a data source: zero network cost, parallel plans.
class TdeDataSource : public DataSource {
 public:
  TdeDataSource(std::string name, std::shared_ptr<tde::Database> db,
                tde::QueryOptions exec_options = {});

  const std::string& name() const override { return name_; }
  const query::Capabilities& capabilities() const override {
    return capabilities_;
  }
  const query::SqlDialect& dialect() const override { return dialect_; }
  const tde::Database& catalog() const override { return *db_; }
  StatusOr<std::unique_ptr<Connection>> Connect() override;

 private:
  friend class TdeConnection;

  std::string name_;
  std::shared_ptr<tde::Database> db_;
  tde::QueryOptions exec_options_;
  query::Capabilities capabilities_;
  query::SqlDialect dialect_;
};

}  // namespace vizq::federation

#endif  // VIZQUERY_FEDERATION_DATA_SOURCE_H_
