#include "src/common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vizq {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty() || s.size() > 20) return std::nullopt;
  char buf[24];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size() || end == buf) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty() || s.size() > 40) return std::nullopt;
  char buf[44];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size() || end == buf) return std::nullopt;
  return v;
}

std::optional<bool> ParseBool(std::string_view s) {
  s = StripWhitespace(s);
  if (EqualsIgnoreCase(s, "true") || s == "1") return true;
  if (EqualsIgnoreCase(s, "false") || s == "0") return false;
  return std::nullopt;
}

namespace {

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

// Days from 1970-01-01 to the first day of year y (may be negative).
int64_t DaysToYear(int y) {
  // Count days in [1970, y) or -(days in [y, 1970)).
  int64_t days = 0;
  if (y >= 1970) {
    for (int i = 1970; i < y; ++i) days += IsLeap(i) ? 366 : 365;
  } else {
    for (int i = y; i < 1970; ++i) days -= IsLeap(i) ? 366 : 365;
  }
  return days;
}

const int kMonthDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

int DaysInMonth(int y, int m) {
  if (m == 2 && IsLeap(y)) return 29;
  return kMonthDays[m - 1];
}

}  // namespace

std::optional<int64_t> ParseDateDays(std::string_view s) {
  s = StripWhitespace(s);
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return std::nullopt;
  auto year = ParseInt64(s.substr(0, 4));
  auto month = ParseInt64(s.substr(5, 2));
  auto day = ParseInt64(s.substr(8, 2));
  if (!year || !month || !day) return std::nullopt;
  int y = static_cast<int>(*year);
  int m = static_cast<int>(*month);
  int d = static_cast<int>(*day);
  if (y < 1600 || y > 3000 || m < 1 || m > 12 || d < 1 ||
      d > DaysInMonth(y, m)) {
    return std::nullopt;
  }
  int64_t days = DaysToYear(y);
  for (int i = 1; i < m; ++i) days += DaysInMonth(y, i);
  days += d - 1;
  return days;
}

std::string FormatDateDays(int64_t days) {
  int y = 1970;
  // Walk years; dates in this codebase span decades, not megayears.
  while (true) {
    int len = IsLeap(y) ? 366 : 365;
    if (days >= len) {
      days -= len;
      ++y;
    } else if (days < 0) {
      --y;
      days += IsLeap(y) ? 366 : 365;
    } else {
      break;
    }
  }
  int m = 1;
  while (days >= DaysInMonth(y, m)) {
    days -= DaysInMonth(y, m);
    ++m;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m,
                static_cast<int>(days + 1));
  return buf;
}

int DayOfWeek(int64_t days) {
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  int64_t dow = (days + 3) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& ch : out) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return out;
}

}  // namespace vizq
