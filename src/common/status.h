// Error-handling primitives for VizQuery.
//
// The library does not use exceptions. Every operation that can fail returns
// a `Status`, or a `StatusOr<T>` when it also produces a value. The design
// follows the familiar absl::Status shape, reduced to what this codebase
// needs.

#ifndef VIZQUERY_COMMON_STATUS_H_
#define VIZQUERY_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace vizq {

// Canonical error space. Kept small on purpose; subsystems attach detail via
// the message string rather than by minting new codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named object (table, column, cache entry) absent
  kAlreadyExists,     // creation collided with an existing object
  kFailedPrecondition,// object in the wrong state for the operation
  kUnimplemented,     // capability not supported by this backend/dialect
  kInternal,          // invariant violation inside the library
  kResourceExhausted, // pool/queue/limit saturated
  kAborted,           // operation cancelled (connection closed, shutdown)
  kDataLoss,          // corrupt file / failed deserialization
  kDeadlineExceeded,  // ExecContext deadline passed before completion
};

// Returns the canonical spelling of `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeToString(StatusCode code);

// Value type describing the outcome of an operation. Cheap to copy when OK
// (no allocation); error statuses carry a message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable rendering, e.g. "INVALID_ARGUMENT: bad column".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors mirroring absl's.
Status OkStatus();
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status ResourceExhausted(std::string message);
Status Aborted(std::string message);
Status DataLoss(std::string message);
Status DeadlineExceeded(std::string message);

// Holds either a value of type T or an error Status. Accessing the value of
// an errored StatusOr is a programming error (checked in debug builds via
// the std::optional it wraps).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so that `return value;` and `return status;`
  // both work from functions returning StatusOr<T>.
  StatusOr(const T& value) : value_(value) {}
  StatusOr(T&& value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status from an expression to the caller.
#define VIZQ_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::vizq::Status vizq_status_ = (expr);           \
    if (!vizq_status_.ok()) return vizq_status_;    \
  } while (false)

// Evaluates a StatusOr expression; on error returns the status, otherwise
// moves the value into `lhs` (a declaration or assignable lvalue).
#define VIZQ_ASSIGN_OR_RETURN(lhs, expr)            \
  VIZQ_ASSIGN_OR_RETURN_IMPL(                       \
      VIZQ_STATUS_CONCAT(vizq_statusor_, __LINE__), lhs, expr)

#define VIZQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define VIZQ_STATUS_CONCAT_INNER(a, b) a##b
#define VIZQ_STATUS_CONCAT(a, b) VIZQ_STATUS_CONCAT_INNER(a, b)

}  // namespace vizq

#endif  // VIZQUERY_COMMON_STATUS_H_
