#include "src/common/scheduler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <thread>

namespace vizq {

namespace {

// Set while a worker of some scheduler is running a task; lets Submit
// detect nested spawns (which bypass the class caps, see scheduler.h).
thread_local const Scheduler* tls_worker_of = nullptr;

}  // namespace

const char* TaskClassName(TaskClass c) {
  switch (c) {
    case TaskClass::kInteractive:
      return "interactive";
    case TaskClass::kBatch:
      return "batch";
    case TaskClass::kBackground:
      return "background";
  }
  return "unknown";
}

// Earliest deadline first; deadline-free tasks sort after all deadlined
// ones; ties break FIFO by submit sequence. std::push_heap keeps the
// "best" task at front under this ordering.
bool Scheduler::Worse(const Task& a, const Task& b) {
  auto key = [](const Task& t) {
    return t.has_deadline ? t.deadline
                          : std::chrono::steady_clock::time_point::max();
  };
  auto ka = key(a);
  auto kb = key(b);
  if (ka != kb) return ka > kb;
  return a.seq > b.seq;
}

namespace {

// Metric names are fixed per (prefix, class); intern them once so the hot
// path does no string concatenation.
const std::string& ClassMetricName(const char* prefix, int ci) {
  static std::mutex mu;
  static std::map<std::pair<std::string, int>, std::string>* names =
      new std::map<std::pair<std::string, int>, std::string>();
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(std::string(prefix), ci);
  auto it = names->find(key);
  if (it == names->end()) {
    it = names
             ->emplace(key, std::string("sched.") + prefix + "." +
                                TaskClassName(static_cast<TaskClass>(ci)))
             .first;
  }
  return it->second;
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {
  int n = options_.num_threads;
  if (n <= 0) {
    // Oversubscribed on purpose: tasks in this codebase mostly sleep on
    // simulated I/O, so workers spend their time blocked, not computing.
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    n = std::clamp(2 * std::max(hw, 1), 8, 32);
  }
  num_threads_ = n;
  double share = std::clamp(options_.non_interactive_share, 0.0, 1.0);
  max_non_interactive_running_ =
      std::clamp(static_cast<int>(std::lround(n * share)), 1, n);
  max_background_running_ = std::max(1, max_non_interactive_running_ / 2);
  pool_ = std::make_unique<ThreadPool>(n);
  for (int i = 0; i < n; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  pool_->Shutdown();
}

bool Scheduler::OnWorkerThread() const { return tls_worker_of == this; }

Status Scheduler::Submit(TaskClass cls, std::function<void()> fn,
                         const ExecContext& ctx, SubmitOptions opts) {
  const int ci = static_cast<int>(cls);
  Task t;
  t.fn = std::move(fn);
  t.ctx = ctx;
  t.name = std::move(opts.name);
  t.cls = cls;
  t.skip_if_cancelled = opts.skip_if_cancelled;
  t.session_id = opts.session_id;
  t.nested = OnWorkerThread();
  t.enqueued = std::chrono::steady_clock::now();
  if (options_.prioritize && ctx.has_deadline()) {
    t.has_deadline = true;
    t.deadline = ctx.deadline();
  }

  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return FailedPrecondition("scheduler is shut down");
    }
    // Without priorities everything shares one FIFO (queue 0) whose
    // capacity is the sum of the per-class bounds.
    const int qi = options_.prioritize ? ci : 0;
    int64_t capacity;
    if (options_.prioritize) {
      capacity = cls == TaskClass::kInteractive ? options_.max_queued_interactive
                 : cls == TaskClass::kBatch     ? options_.max_queued_batch
                                                : options_.max_queued_background;
    } else {
      capacity = static_cast<int64_t>(options_.max_queued_interactive) +
                 options_.max_queued_batch + options_.max_queued_background;
    }
    std::vector<Task>& q = queues_[qi];
    if (static_cast<int64_t>(q.size()) >= capacity) {
      ++shed_[ci];
      if (GlobalMetricsSink* sink = GetGlobalMetricsSink(); sink != nullptr) {
        sink->Add(ClassMetricName("shed", ci), 1);
      }
      return ResourceExhausted(std::string("scheduler ") +
                               TaskClassName(cls) +
                               " queue is full (admission control)");
    }
    // Per-session fair admission: one session may only occupy a bounded
    // slice of the queues, so a hot session's flood sheds its own work.
    if (t.session_id != 0 && options_.max_queued_per_session > 0) {
      int64_t& queued = session_queued_[t.session_id];
      if (queued >= options_.max_queued_per_session) {
        ++shed_[ci];
        ++session_shed_;
        if (GlobalMetricsSink* sink = GetGlobalMetricsSink();
            sink != nullptr) {
          sink->Add(ClassMetricName("shed", ci), 1);
          static const std::string* kSessionShed =
              new std::string("sched.session_shed");
          sink->Add(*kSessionShed, 1);
        }
        return ResourceExhausted(
            "scheduler per-session queue cap reached for session " +
            std::to_string(t.session_id));
      }
      ++queued;
    }
    t.seq = next_seq_++;
    q.push_back(std::move(t));
    std::push_heap(q.begin(), q.end(), Worse);
    ++submitted_[ci];
    depth = q.size();
  }
  if (GlobalMetricsSink* sink = GetGlobalMetricsSink(); sink != nullptr) {
    sink->Add(ClassMetricName("submitted", ci), 1);
  }
  PublishDepthGauge(cls, depth);
  work_cv_.notify_one();
  return OkStatus();
}

int64_t Scheduler::TotalQueuedLocked() const {
  int64_t total = 0;
  for (const std::vector<Task>& q : queues_) {
    total += static_cast<int64_t>(q.size());
  }
  return total;
}

bool Scheduler::PickTaskLocked(Task* out) {
  auto pop = [&](std::vector<Task>& q) {
    std::pop_heap(q.begin(), q.end(), Worse);
    *out = std::move(q.back());
    q.pop_back();
  };
  // A dequeued task stops counting against its session's queue slice.
  auto release_session = [&] {
    if (out->session_id == 0) return;
    auto it = session_queued_.find(out->session_id);
    if (it != session_queued_.end() && --it->second <= 0) {
      session_queued_.erase(it);
    }
  };

  if (!options_.prioritize) {
    std::vector<Task>& q = queues_[0];
    if (q.empty()) return false;
    pop(q);
    release_session();
    ++dispatches_;
    return true;
  }

  const bool boost =
      options_.starvation_boost_period > 0 &&
      (dispatches_ % options_.starvation_boost_period) ==
          static_cast<uint64_t>(options_.starvation_boost_period) - 1;
  static constexpr TaskClass kHighFirst[] = {
      TaskClass::kInteractive, TaskClass::kBatch, TaskClass::kBackground};
  static constexpr TaskClass kLowFirst[] = {
      TaskClass::kBackground, TaskClass::kBatch, TaskClass::kInteractive};
  for (TaskClass c : boost ? kLowFirst : kHighFirst) {
    std::vector<Task>& q = queues_[static_cast<int>(c)];
    if (q.empty()) continue;
    // Class caps keep reserve workers for interactive arrivals. Nested
    // tasks (spawned from inside a worker) bypass the caps: their parent
    // already holds a slot and may be blocked waiting on them.
    const bool capped =
        c != TaskClass::kInteractive &&
        (running_non_interactive_ >= max_non_interactive_running_ ||
         (c == TaskClass::kBackground &&
          running_background_ >= max_background_running_));
    if (!capped) {
      pop(q);
    } else if (!PopNestedLocked(q, out)) {
      continue;  // capped and no nested task anywhere in the class
    }
    release_session();
    ++dispatches_;
    if (c != TaskClass::kInteractive) {
      ++running_non_interactive_;
      if (c == TaskClass::kBackground) ++running_background_;
    }
    return true;
  }
  return false;
}

bool Scheduler::PopNestedLocked(std::vector<Task>& q, Task* out) {
  // The cap-bypassing nested task may sit anywhere in the heap behind
  // non-nested tasks — a front-only check would skip the class while a
  // capped parent blocks on its buried child (permanent deadlock). Scan
  // for the best nested task by dispatch order; this path only runs when
  // the class is capped, so the O(n) scan + re-heapify is off the common
  // dispatch path.
  int best = -1;
  for (int i = 0; i < static_cast<int>(q.size()); ++i) {
    if (q[i].nested && (best < 0 || Worse(q[best], q[i]))) best = i;
  }
  if (best < 0) return false;
  *out = std::move(q[best]);
  q[best] = std::move(q.back());
  q.pop_back();
  std::make_heap(q.begin(), q.end(), Worse);
  return true;
}

void Scheduler::PublishDepthGauge(TaskClass cls, size_t depth) const {
  GlobalMetricsSink* sink = GetGlobalMetricsSink();
  if (sink == nullptr) return;
  if (options_.prioritize) {
    sink->SetGauge(ClassMetricName("queue_depth", static_cast<int>(cls)),
                   static_cast<double>(depth));
  } else {
    // One undifferentiated FIFO: publishing it under a class name (the
    // shared queue holds every class) would misreport the baseline.
    static const std::string* kShared =
        new std::string("sched.queue_depth.shared");
    sink->SetGauge(*kShared, static_cast<double>(depth));
  }
}

void Scheduler::RunTask(Task task) {
  const int ci = static_cast<int>(task.cls);
  GlobalMetricsSink* sink = GetGlobalMetricsSink();
  auto started = std::chrono::steady_clock::now();
  auto wait = started - task.enqueued;
  if (sink != nullptr) {
    double wait_us = std::chrono::duration<double, std::micro>(wait).count();
    sink->Observe(ClassMetricName("wait_us", ci), wait_us);
  }
  // Charge the queue wait to the owning request's per-class detail phase.
  // Detail phases are additive (a request's tasks wait concurrently on
  // many workers), so this is a plain Add, not a PhaseScope.
  if (PhaseTimeline* tl = task.ctx.timeline()) {
    static constexpr Phase kQueuePhase[] = {
        Phase::kQueueInteractive, Phase::kQueueBatch, Phase::kQueueBackground};
    if (ci >= 0 && ci < 3) {
      tl->Add(kQueuePhase[ci],
              std::chrono::duration_cast<std::chrono::nanoseconds>(wait)
                  .count());
    }
  }

  if (task.skip_if_cancelled && task.ctx.cancelled()) {
    if (sink != nullptr) sink->Add(ClassMetricName("skipped_cancelled", ci), 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++skipped_cancelled_[ci];
      ++completed_[ci];
    }
    completed_cv_.notify_all();
    return;
  }

  {
    ScopedSpan span(task.ctx.StartSpan(
        "sched:" + (task.name.empty() ? TaskClassName(task.cls) : task.name)));
    task.fn();
  }

  if (sink != nullptr) {
    double run_us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - started)
                        .count();
    sink->Observe(ClassMetricName("run_us", ci), run_us);
    sink->Add(ClassMetricName("completed", ci), 1);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_[ci];
  }
  completed_cv_.notify_all();
}

void Scheduler::WorkerLoop() {
  const Scheduler* saved = tls_worker_of;
  tls_worker_of = this;
  while (true) {
    Task task;
    size_t depth = 0;
    TaskClass depth_cls = TaskClass::kInteractive;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return stop_ || TotalQueuedLocked() > 0; });
      if (TotalQueuedLocked() == 0) {
        if (stop_) break;
        continue;
      }
      if (!PickTaskLocked(&task)) {
        // Everything queued is capped; wake when capacity frees (or poll,
        // against missed wakeups).
        work_cv_.wait_for(lock, std::chrono::milliseconds(2));
        continue;
      }
      depth_cls = task.cls;
      depth = queues_[options_.prioritize ? static_cast<int>(task.cls) : 0]
                  .size();
    }
    PublishDepthGauge(depth_cls, depth);
    const TaskClass cls = task.cls;
    RunTask(std::move(task));
    if (options_.prioritize && cls != TaskClass::kInteractive) {
      std::lock_guard<std::mutex> lock(mu_);
      --running_non_interactive_;
      if (cls == TaskClass::kBackground) --running_background_;
    }
    // A completion may unblock a capped class or a Wait()ing joiner.
    work_cv_.notify_one();
  }
  tls_worker_of = saved;
}

int64_t Scheduler::queue_depth(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int qi = options_.prioritize ? static_cast<int>(cls) : 0;
  return static_cast<int64_t>(queues_[qi].size());
}

int64_t Scheduler::submitted(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_[static_cast<int>(cls)];
}

int64_t Scheduler::completed(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_[static_cast<int>(cls)];
}

int64_t Scheduler::shed(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_[static_cast<int>(cls)];
}

int64_t Scheduler::skipped_cancelled(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_cancelled_[static_cast<int>(cls)];
}

int64_t Scheduler::session_shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_shed_;
}

int64_t Scheduler::session_queued(uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = session_queued_.find(session_id);
  return it == session_queued_.end() ? 0 : it->second;
}

bool Scheduler::WaitForCompleted(TaskClass cls, int64_t n,
                                 std::chrono::milliseconds timeout) {
  const int ci = static_cast<int>(cls);
  std::unique_lock<std::mutex> lock(mu_);
  return completed_cv_.wait_for(lock, timeout,
                                [&] { return completed_[ci] >= n; });
}

Scheduler& Scheduler::Global() {
  // Leaked, like obs::GlobalMetrics(): worker threads must stay valid for
  // any static-destruction-order stragglers.
  static Scheduler* global = new Scheduler();
  return *global;
}

// --- TaskGroup ---

TaskGroup::TaskGroup(Scheduler* scheduler, TaskClass cls,
                     const ExecContext& ctx, int max_concurrency,
                     uint64_t session_id)
    : state_(std::make_shared<State>()) {
  state_->scheduler = scheduler;
  state_->cls = cls;
  state_->ctx = ctx;
  state_->max_concurrency = max_concurrency;
  state_->session_id = session_id;
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Spawn(std::function<void()> fn, std::string name) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->pending.push_back(Pending{std::move(fn), std::move(name)});
    ++state_->outstanding;
    ++state_->spawned;
  }
  Pump(state_, 0);
}

void TaskGroup::RunClaimed(const std::shared_ptr<State>& s,
                           const std::shared_ptr<Submitted>& task) {
  task->fn();
  {
    std::lock_guard<std::mutex> lock(s->mu);
    --s->in_flight;
  }
  Pump(s, 1);  // applies this task's completion on its exit path
}

std::shared_ptr<TaskGroup::Submitted> TaskGroup::StealLocked(State& s) {
  while (!s.submitted.empty()) {
    std::shared_ptr<Submitted> task = std::move(s.submitted.front());
    s.submitted.pop_front();
    if (!task->claimed.exchange(true, std::memory_order_acq_rel)) {
      return task;
    }
  }
  return nullptr;
}

void TaskGroup::Pump(const std::shared_ptr<State>& s, int64_t finished) {
  while (true) {
    std::shared_ptr<Submitted> task;
    std::string name;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      // Trim wrappers that already dispatched (or were stolen) off the
      // steal window so it tracks in-flight work, not group history.
      while (!s->submitted.empty() &&
             s->submitted.front()->claimed.load(std::memory_order_acquire)) {
        s->submitted.pop_front();
      }
      if (s->pending.empty() ||
          (s->max_concurrency > 0 && s->in_flight >= s->max_concurrency)) {
        // Completions are applied (and waiters notified) as this call's
        // last touch of the counters, so Wait() cannot observe
        // outstanding == 0 while a finishing task is mid-bookkeeping.
        s->outstanding -= finished;
        if (finished > 0 && s->outstanding == 0) s->done_cv.notify_all();
        return;
      }
      task = std::make_shared<Submitted>();
      task->fn = std::move(s->pending.front().fn);
      name = std::move(s->pending.front().name);
      s->pending.pop_front();
      ++s->in_flight;
      s->submitted.push_back(task);
      // A new steal target exists: wake any worker parked in Wait().
      s->done_cv.notify_all();
    }
    // The claim flag picks exactly one runner for the task: the
    // dispatched wrapper, a Wait()ing worker that stole it, or (on a
    // failed submit) this pumping thread. The wrapper captures the shared
    // state, so a wrapper that loses its claim no-ops safely even after
    // the TaskGroup object itself is gone.
    Status submitted = s->scheduler->Submit(
        s->cls,
        [s, task] {
          if (task->claimed.exchange(true, std::memory_order_acq_rel)) return;
          RunClaimed(s, task);
        },
        s->ctx, SubmitOptions{std::move(name), false, s->session_id});
    if (!submitted.ok()) {
      // Load shed (admission control) or shutdown: run inline on the
      // spawning/pumping thread — the group never loses work. The
      // completion is deferred into `finished` so it, too, is applied
      // only on the exit path.
      if (!task->claimed.exchange(true, std::memory_order_acq_rel)) {
        task->fn();
        {
          std::lock_guard<std::mutex> lock(s->mu);
          ++s->ran_inline;
          --s->in_flight;
        }
        ++finished;
      }
    }
  }
}

void TaskGroup::Wait() {
  std::shared_ptr<State> s = state_;
  // A scheduler worker parked here holds a worker slot while the group's
  // queued wrappers wait for a worker — circular under saturation (every
  // worker inside some group's Wait() and nobody left to dispatch).
  // Workers therefore help instead of parking: claim still-queued
  // wrappers out of the scheduler and run them inline; the dispatched
  // wrapper later no-ops. Non-worker threads park normally, so Wait()
  // from a test or service thread does not change dispatch order.
  const bool help = s->scheduler->OnWorkerThread();
  std::unique_lock<std::mutex> lock(s->mu);
  while (s->outstanding > 0) {
    if (help) {
      if (std::shared_ptr<Submitted> task = StealLocked(*s);
          task != nullptr) {
        ++s->stolen;
        lock.unlock();
        RunClaimed(s, task);
        lock.lock();
        continue;
      }
    }
    s->done_cv.wait(lock);
  }
}

int64_t TaskGroup::spawned() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->spawned;
}

int64_t TaskGroup::ran_inline() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->ran_inline;
}

int64_t TaskGroup::stolen() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stolen;
}

}  // namespace vizq
