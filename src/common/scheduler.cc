#include "src/common/scheduler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <thread>

namespace vizq {

namespace {

// Set while a worker of some scheduler is running a task; lets Submit
// detect nested spawns (which bypass the class caps, see scheduler.h).
thread_local const Scheduler* tls_worker_of = nullptr;

}  // namespace

const char* TaskClassName(TaskClass c) {
  switch (c) {
    case TaskClass::kInteractive:
      return "interactive";
    case TaskClass::kBatch:
      return "batch";
    case TaskClass::kBackground:
      return "background";
  }
  return "unknown";
}

// Earliest deadline first; deadline-free tasks sort after all deadlined
// ones; ties break FIFO by submit sequence. std::push_heap keeps the
// "best" task at front under this ordering.
bool Scheduler::Worse(const Task& a, const Task& b) {
  auto key = [](const Task& t) {
    return t.has_deadline ? t.deadline
                          : std::chrono::steady_clock::time_point::max();
  };
  auto ka = key(a);
  auto kb = key(b);
  if (ka != kb) return ka > kb;
  return a.seq > b.seq;
}

namespace {

// Metric names are fixed per (prefix, class); intern them once so the hot
// path does no string concatenation.
const std::string& ClassMetricName(const char* prefix, int ci) {
  static std::mutex mu;
  static std::map<std::pair<std::string, int>, std::string>* names =
      new std::map<std::pair<std::string, int>, std::string>();
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(std::string(prefix), ci);
  auto it = names->find(key);
  if (it == names->end()) {
    it = names
             ->emplace(key, std::string("sched.") + prefix + "." +
                                TaskClassName(static_cast<TaskClass>(ci)))
             .first;
  }
  return it->second;
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {
  int n = options_.num_threads;
  if (n <= 0) {
    // Oversubscribed on purpose: tasks in this codebase mostly sleep on
    // simulated I/O, so workers spend their time blocked, not computing.
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    n = std::clamp(2 * std::max(hw, 1), 8, 32);
  }
  num_threads_ = n;
  double share = std::clamp(options_.non_interactive_share, 0.0, 1.0);
  max_non_interactive_running_ =
      std::clamp(static_cast<int>(std::lround(n * share)), 1, n);
  max_background_running_ = std::max(1, max_non_interactive_running_ / 2);
  pool_ = std::make_unique<ThreadPool>(n);
  for (int i = 0; i < n; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  pool_->Shutdown();
}

bool Scheduler::OnWorkerThread() const { return tls_worker_of == this; }

Status Scheduler::Submit(TaskClass cls, std::function<void()> fn,
                         const ExecContext& ctx, SubmitOptions opts) {
  const int ci = static_cast<int>(cls);
  Task t;
  t.fn = std::move(fn);
  t.ctx = ctx;
  t.name = std::move(opts.name);
  t.cls = cls;
  t.skip_if_cancelled = opts.skip_if_cancelled;
  t.nested = OnWorkerThread();
  t.enqueued = std::chrono::steady_clock::now();
  if (options_.prioritize && ctx.has_deadline()) {
    t.has_deadline = true;
    t.deadline = ctx.deadline();
  }

  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return FailedPrecondition("scheduler is shut down");
    }
    // Without priorities everything shares one FIFO (queue 0) whose
    // capacity is the sum of the per-class bounds.
    const int qi = options_.prioritize ? ci : 0;
    int64_t capacity;
    if (options_.prioritize) {
      capacity = cls == TaskClass::kInteractive ? options_.max_queued_interactive
                 : cls == TaskClass::kBatch     ? options_.max_queued_batch
                                                : options_.max_queued_background;
    } else {
      capacity = static_cast<int64_t>(options_.max_queued_interactive) +
                 options_.max_queued_batch + options_.max_queued_background;
    }
    std::vector<Task>& q = queues_[qi];
    if (static_cast<int64_t>(q.size()) >= capacity) {
      ++shed_[ci];
      if (GlobalMetricsSink* sink = GetGlobalMetricsSink(); sink != nullptr) {
        sink->Add(ClassMetricName("shed", ci), 1);
      }
      return ResourceExhausted(std::string("scheduler ") +
                               TaskClassName(cls) +
                               " queue is full (admission control)");
    }
    t.seq = next_seq_++;
    q.push_back(std::move(t));
    std::push_heap(q.begin(), q.end(), Worse);
    ++submitted_[ci];
    depth = q.size();
  }
  if (GlobalMetricsSink* sink = GetGlobalMetricsSink(); sink != nullptr) {
    sink->Add(ClassMetricName("submitted", ci), 1);
  }
  PublishDepthGauge(options_.prioritize ? cls : TaskClass::kInteractive,
                    depth);
  work_cv_.notify_one();
  return OkStatus();
}

int64_t Scheduler::TotalQueuedLocked() const {
  int64_t total = 0;
  for (const std::vector<Task>& q : queues_) {
    total += static_cast<int64_t>(q.size());
  }
  return total;
}

bool Scheduler::PickTaskLocked(Task* out) {
  auto pop = [&](std::vector<Task>& q) {
    std::pop_heap(q.begin(), q.end(), Worse);
    *out = std::move(q.back());
    q.pop_back();
  };

  if (!options_.prioritize) {
    std::vector<Task>& q = queues_[0];
    if (q.empty()) return false;
    pop(q);
    ++dispatches_;
    return true;
  }

  const bool boost =
      options_.starvation_boost_period > 0 &&
      (dispatches_ % options_.starvation_boost_period) ==
          static_cast<uint64_t>(options_.starvation_boost_period) - 1;
  static constexpr TaskClass kHighFirst[] = {
      TaskClass::kInteractive, TaskClass::kBatch, TaskClass::kBackground};
  static constexpr TaskClass kLowFirst[] = {
      TaskClass::kBackground, TaskClass::kBatch, TaskClass::kInteractive};
  for (TaskClass c : boost ? kLowFirst : kHighFirst) {
    std::vector<Task>& q = queues_[static_cast<int>(c)];
    if (q.empty()) continue;
    // Class caps keep reserve workers for interactive arrivals. Nested
    // tasks (spawned from inside a worker) bypass the caps: their parent
    // already holds a slot and may be blocked waiting on them.
    if (c != TaskClass::kInteractive && !q.front().nested) {
      if (running_non_interactive_ >= max_non_interactive_running_) continue;
      if (c == TaskClass::kBackground &&
          running_background_ >= max_background_running_) {
        continue;
      }
    }
    pop(q);
    ++dispatches_;
    if (c != TaskClass::kInteractive) {
      ++running_non_interactive_;
      if (c == TaskClass::kBackground) ++running_background_;
    }
    return true;
  }
  return false;
}

void Scheduler::PublishDepthGauge(TaskClass cls, size_t depth) const {
  if (GlobalMetricsSink* sink = GetGlobalMetricsSink(); sink != nullptr) {
    sink->SetGauge(ClassMetricName("queue_depth", static_cast<int>(cls)),
                   static_cast<double>(depth));
  }
}

void Scheduler::RunTask(Task task) {
  const int ci = static_cast<int>(task.cls);
  GlobalMetricsSink* sink = GetGlobalMetricsSink();
  auto started = std::chrono::steady_clock::now();
  if (sink != nullptr) {
    double wait_us =
        std::chrono::duration<double, std::micro>(started - task.enqueued)
            .count();
    sink->Observe(ClassMetricName("wait_us", ci), wait_us);
  }

  if (task.skip_if_cancelled && task.ctx.cancelled()) {
    if (sink != nullptr) sink->Add(ClassMetricName("skipped_cancelled", ci), 1);
    std::lock_guard<std::mutex> lock(mu_);
    ++skipped_cancelled_[ci];
    ++completed_[ci];
    return;
  }

  {
    ScopedSpan span(task.ctx.StartSpan(
        "sched:" + (task.name.empty() ? TaskClassName(task.cls) : task.name)));
    task.fn();
  }

  if (sink != nullptr) {
    double run_us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - started)
                        .count();
    sink->Observe(ClassMetricName("run_us", ci), run_us);
    sink->Add(ClassMetricName("completed", ci), 1);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_[ci];
}

void Scheduler::WorkerLoop() {
  const Scheduler* saved = tls_worker_of;
  tls_worker_of = this;
  while (true) {
    Task task;
    size_t depth = 0;
    TaskClass depth_cls = TaskClass::kInteractive;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return stop_ || TotalQueuedLocked() > 0; });
      if (TotalQueuedLocked() == 0) {
        if (stop_) break;
        continue;
      }
      if (!PickTaskLocked(&task)) {
        // Everything queued is capped; wake when capacity frees (or poll,
        // against missed wakeups).
        work_cv_.wait_for(lock, std::chrono::milliseconds(2));
        continue;
      }
      depth_cls = options_.prioritize ? task.cls : TaskClass::kInteractive;
      depth = queues_[static_cast<int>(depth_cls)].size();
    }
    PublishDepthGauge(depth_cls, depth);
    const TaskClass cls = task.cls;
    RunTask(std::move(task));
    if (options_.prioritize && cls != TaskClass::kInteractive) {
      std::lock_guard<std::mutex> lock(mu_);
      --running_non_interactive_;
      if (cls == TaskClass::kBackground) --running_background_;
    }
    // A completion may unblock a capped class or a Wait()ing joiner.
    work_cv_.notify_one();
  }
  tls_worker_of = saved;
}

int64_t Scheduler::queue_depth(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int qi = options_.prioritize ? static_cast<int>(cls) : 0;
  return static_cast<int64_t>(queues_[qi].size());
}

int64_t Scheduler::submitted(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_[static_cast<int>(cls)];
}

int64_t Scheduler::completed(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_[static_cast<int>(cls)];
}

int64_t Scheduler::shed(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_[static_cast<int>(cls)];
}

int64_t Scheduler::skipped_cancelled(TaskClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_cancelled_[static_cast<int>(cls)];
}

Scheduler& Scheduler::Global() {
  // Leaked, like obs::GlobalMetrics(): worker threads must stay valid for
  // any static-destruction-order stragglers.
  static Scheduler* global = new Scheduler();
  return *global;
}

// --- TaskGroup ---

TaskGroup::TaskGroup(Scheduler* scheduler, TaskClass cls,
                     const ExecContext& ctx, int max_concurrency)
    : scheduler_(scheduler),
      cls_(cls),
      ctx_(ctx),
      max_concurrency_(max_concurrency) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Spawn(std::function<void()> fn, std::string name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(Pending{std::move(fn), std::move(name)});
    ++outstanding_;
    ++spawned_;
  }
  Pump(0);
}

void TaskGroup::Pump(int64_t finished) {
  // Lifetime invariant: `finished` completions are applied to
  // outstanding_ — and waiters notified — as this call's very last touch
  // of the group. A task that completed on a worker therefore keeps the
  // group alive (its own outstanding_ count) while it pumps successors;
  // decrementing before pumping would let Wait() return and the group be
  // destroyed under the worker's feet.
  while (true) {
    Pending next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty() ||
          (max_concurrency_ > 0 && in_flight_ >= max_concurrency_)) {
        outstanding_ -= finished;
        if (finished > 0 && outstanding_ == 0) {
          // Notify under the lock: the waiter re-acquires mu_ before
          // returning from Wait(), so this thread is fully out of the
          // group's members by the time destruction can proceed.
          done_cv_.notify_all();
        }
        return;
      }
      next = std::move(pending_.front());
      pending_.pop_front();
      ++in_flight_;
    }
    // The wrapper owns completion accounting, so a task always finishes
    // the group whether it ran on a worker or inline.
    auto fn = std::make_shared<std::function<void()>>(std::move(next.fn));
    Status submitted = scheduler_->Submit(
        cls_,
        [this, fn] {
          (*fn)();
          {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
          }
          Pump(1);  // applies this task's completion on its exit path
        },
        ctx_, SubmitOptions{std::move(next.name), false});
    if (!submitted.ok()) {
      // Load shed (admission control) or shutdown: run inline on the
      // spawning/pumping thread — the group never loses work. The
      // completion is deferred into `finished` so it, too, is applied
      // only on the exit path.
      (*fn)();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++ran_inline_;
        --in_flight_;
      }
      ++finished;
    }
  }
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

int64_t TaskGroup::spawned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spawned_;
}

int64_t TaskGroup::ran_inline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ran_inline_;
}

}  // namespace vizq
