// ExecContext: the per-request context threaded through the entire query
// stack (QueryService -> caches -> connection pool -> data sources -> TDE
// operators). It carries four concerns that every layer needs but none
// should own:
//
//   * a monotonic **deadline** — the response-time budget of the request;
//   * a cooperative **CancelToken** — callers abandon work (user navigated
//     away, dashboard superseded) and every layer stops at the next
//     checkpoint;
//   * a hierarchical **trace** — one Span per pipeline stage / operator,
//     rendered as a text tree or JSON for latency accounting;
//   * a **MetricsRegistry** — named counters and histograms (cache hits,
//     rows scanned, pool waits) aggregated per request;
//   * a **RequestLog** — timestamped breadcrumbs (cache decisions, pool
//     events) and named text attachments (the annotated EXPLAIN ANALYZE
//     plan) that the process-wide PerfRecorder (src/obs/) captures when
//     the request completes;
//   * a **PhaseTimeline** — named-phase wall-time attribution (admission,
//     cache lookup, scheduler queue wait, execution, materialization)
//     whose root phases decompose the request's end-to-end latency (see
//     phase_timeline.h).
//
// Every Count/Observe is additionally forwarded to the process-global
// metrics sink (installed by obs::GlobalMetrics()), so the per-request
// and global views share one naming scheme. ExecContext::Background()
// keeps its "observability off" contract: it forwards nothing.
//
// Ownership / threading rules (see DESIGN.md "ExecContext"):
//   * The request originator creates the context and keeps it alive for
//     the whole request; copies are cheap handles sharing the same trace,
//     metrics and cancel state.
//   * Anyone holding a copy may Cancel(); cancellation is sticky.
//   * A Span is single-writer: only the thread that started it may End()
//     it. Starting *children* of a span from multiple threads is safe
//     (the trace serializes tree mutation).
//   * `ExecContext::Background()` is the explicit "no deadline, no trace"
//     context; zero-context overloads across the stack delegate to it so
//     call sites can migrate incrementally.

#ifndef VIZQUERY_COMMON_EXEC_CONTEXT_H_
#define VIZQUERY_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/phase_timeline.h"
#include "src/common/status.h"

namespace vizq {

// Shared cooperative-cancellation flag. Copies observe the same state.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { state_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return state_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

class Trace;

// One timed node in the trace tree. Created via ExecContext::StartSpan /
// Span::StartChild; closed with End() (idempotent). Single-writer: the
// starting thread ends it; concurrent child creation is safe.
class Span {
 public:
  const std::string& name() const { return name_; }

  // Milliseconds from start to End(); if still open, elapsed-so-far.
  double duration_ms() const;
  bool finished() const { return duration_ns_.load() >= 0; }

  // When the span started (steady clock) — the timestamp source for
  // Chrome trace-event export (obs::PerfRecorder).
  std::chrono::steady_clock::time_point start_time() const { return start_; }

  // Stops the clock. Safe to call more than once; later calls are no-ops.
  void End();

  // Starts a child span (thread-safe). Never returns null.
  Span* StartChild(const std::string& name);

  // Snapshot of the current children, in creation order.
  std::vector<const Span*> children() const;

 private:
  friend class Trace;
  Span(Trace* trace, std::string name);

  Trace* trace_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<int64_t> duration_ns_{-1};  // -1 while open
  std::vector<std::unique_ptr<Span>> children_;
};

// Owns a span tree. Rendering is meant for after the request completes,
// but is safe (snapshot-consistent) at any time.
class Trace {
 public:
  explicit Trace(std::string root_name = "request");

  Span* root() { return root_.get(); }
  const Span* root() const { return root_.get(); }

  // Indented text tree: one line per span, "name  <ms> ms".
  std::string ToText() const;
  // Nested JSON: {"name":..,"ms":..,"children":[..]}.
  std::string ToJson() const;

  // Depth-first list of span names (root first); handy for tests.
  std::vector<std::string> SpanNames() const;

 private:
  friend class Span;
  mutable std::mutex mu_;
  std::unique_ptr<Span> root_;
};

// Process-global metrics destination. ExecContext::Count/Observe forward
// every per-request update here as well (when a sink is installed and the
// context has metrics enabled), giving the process a single registry with
// the same metric names the per-request view uses. The canonical
// implementation is obs::MetricsRegistry; the indirection keeps common/
// free of a dependency on obs/.
class GlobalMetricsSink {
 public:
  virtual ~GlobalMetricsSink() = default;
  virtual void Add(const std::string& name, int64_t delta) = 0;
  virtual void Observe(const std::string& name, double value) = 0;
  // Last-write-wins instantaneous value (queue depths, pool occupancy).
  // Default no-op so sinks that only aggregate counters keep working.
  virtual void SetGauge(const std::string& name, double value) {
    (void)name;
    (void)value;
  }
};

// Installs / reads the process-global sink. The sink must outlive all use
// (in practice it is a leaked singleton). Thread-safe.
void SetGlobalMetricsSink(GlobalMetricsSink* sink);
GlobalMetricsSink* GetGlobalMetricsSink();

// Timestamped breadcrumbs + named text attachments for one request.
// Breadcrumbs record *decisions* (why a cache lookup missed, where a pool
// acquire was steered); attachments carry larger artifacts (the annotated
// EXPLAIN ANALYZE plan). Shared by all copies of an ExecContext, like the
// trace; thread-safe.
class RequestLog {
 public:
  struct Event {
    std::chrono::steady_clock::time_point at;
    std::string category;  // e.g. "cache.intelligent", "pool"
    std::string detail;
  };

  void AddEvent(std::string category, std::string detail);
  // Stores `text` under `name`; a later Attach to the same name wins.
  void Attach(const std::string& name, std::string text);

  std::vector<Event> events() const;
  std::map<std::string, std::string> attachments() const;
  // Empty string when the attachment is absent.
  std::string attachment(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::string, std::string> attachments_;
};

// Named counters + min/max/sum/count histograms. Thread-safe.
class MetricsRegistry {
 public:
  struct HistogramStats {
    int64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double mean() const { return count == 0 ? 0 : sum / count; }
  };

  void Add(const std::string& name, int64_t delta = 1);
  void Observe(const std::string& name, double value);

  // 0 / empty stats when the name was never touched.
  int64_t counter(const std::string& name) const;
  HistogramStats histogram(const std::string& name) const;

  std::map<std::string, int64_t> counters() const;
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, HistogramStats> histograms_;
};

// The context itself: a cheap value type. Copies share deadline, cancel
// state, trace and metrics; `WithSpan` re-parents where new spans attach.
class ExecContext {
 public:
  // No deadline; tracing and metrics enabled.
  ExecContext();

  // Process-wide context with no deadline and tracing/metrics *disabled*
  // (StartSpan returns null, Count/Observe are no-ops). The delegate for
  // every zero-context overload in the stack.
  static const ExecContext& Background();

  // Fresh context whose deadline is `ms` from now.
  static ExecContext WithDeadlineMs(double ms);

  // The context an RPC transport hands to the remote (node-side) handler:
  // shares this context's cancel state, trace, metrics and log, but
  //   * tightens the deadline to min(existing, now + budget_ms), so a
  //     per-call budget can never outlive the request's own deadline;
  //   * drops the phase timeline — node-side root phases (cache lookup,
  //     plan, execution) would double-count against the caller's `rpc`
  //     phase; the transport charges the remote share back explicitly as
  //     the `remote_exec` detail phase instead.
  // budget_ms <= 0 keeps the existing deadline unchanged.
  ExecContext ForRemoteCall(double budget_ms) const;

  // --- deadline ---
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }
  // Milliseconds until the deadline; a very large number when unset.
  double remaining_ms() const;
  bool deadline_expired() const;

  // --- cancellation ---
  void Cancel() { token_.Cancel(); }
  // True when explicitly cancelled OR past the deadline.
  bool cancelled() const { return token_.cancelled() || deadline_expired(); }
  const CancelToken& cancel_token() const { return token_; }

  // The cooperative checkpoint every layer polls: kDeadlineExceeded past
  // the deadline, kAborted after Cancel(), OK otherwise. `what` names the
  // checkpoint for the error message.
  Status CheckContinue(const char* what) const;

  // --- tracing ---
  bool tracing_enabled() const { return trace_ != nullptr; }
  Trace* trace() { return trace_.get(); }
  const Trace* trace() const { return trace_.get(); }

  // Starts a span under this context's current parent (the root unless
  // re-parented with WithSpan). Returns null when tracing is disabled —
  // ScopedSpan and End() tolerate null.
  Span* StartSpan(const std::string& name) const;

  // Copy whose StartSpan attaches children under `span`. Null leaves the
  // parent unchanged.
  ExecContext WithSpan(Span* span) const;

  // --- metrics ---
  bool metrics_enabled() const { return metrics_ != nullptr; }
  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }
  // Both forward to the process-global sink as well (same names); see the
  // header comment. Background() forwards nothing.
  void Count(const std::string& name, int64_t delta = 1) const;
  void Observe(const std::string& name, double value) const;

  // --- phase timeline ---
  // Null when timelines are disabled (Background(), or the process-wide
  // PhaseTimeline::SetEnabled(false) kill switch at creation time). All
  // copies of a context share one timeline, like the trace.
  PhaseTimeline* timeline() const { return timeline_.get(); }

  // --- request log (breadcrumbs + attachments) ---
  bool log_enabled() const { return log_ != nullptr; }
  RequestLog* log() { return log_.get(); }
  const RequestLog* log() const { return log_.get(); }
  // No-ops when the log is disabled (Background()).
  void LogEvent(std::string category, std::string detail) const;
  void Attach(const std::string& name, std::string text) const;

 private:
  struct DisabledTag {};
  explicit ExecContext(DisabledTag);

  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  CancelToken token_;
  std::shared_ptr<Trace> trace_;
  std::shared_ptr<MetricsRegistry> metrics_;
  std::shared_ptr<RequestLog> log_;
  std::shared_ptr<PhaseTimeline> timeline_;
  Span* parent_ = nullptr;  // default parent for StartSpan; null = root
};

// RAII helper: ends the span on scope exit. Tolerates a null span, so
// `ScopedSpan s(ctx.StartSpan("x"))` works with tracing disabled.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  explicit ScopedSpan(Span* span) : span_(span) {}
  ScopedSpan(ScopedSpan&& other) noexcept : span_(other.span_) {
    other.span_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      if (span_ != nullptr) span_->End();
      span_ = other.span_;
      other.span_ = nullptr;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (span_ != nullptr) span_->End();
  }

  Span* get() const { return span_; }
  // Ends the span now (idempotent with the destructor).
  void End() {
    if (span_ != nullptr) span_->End();
  }

 private:
  Span* span_ = nullptr;
};

}  // namespace vizq

#endif  // VIZQUERY_COMMON_EXEC_CONTEXT_H_
