// Little-endian binary writer/reader shared by cache persistence and the
// distributed cache tier. (The storage layer's single-file format keeps its
// own encoder for format-stability reasons.)

#ifndef VIZQUERY_COMMON_BINARY_IO_H_
#define VIZQUERY_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/common/value.h"

namespace vizq {

class BinaryWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  void Val(const Value& v) {
    if (v.is_null()) {
      U8(0);
    } else if (v.is_bool()) {
      U8(1);
      U8(v.bool_value() ? 1 : 0);
    } else if (v.is_int()) {
      U8(2);
      I64(v.int_value());
    } else if (v.is_double()) {
      U8(3);
      F64(v.double_value());
    } else {
      U8(4);
      Str(v.string_value());
    }
  }

  const std::string& bytes() const { return out_; }
  std::string TakeBytes() { return std::move(out_); }

 private:
  void Raw(const void* p, size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& bytes) : data_(bytes) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool U32(uint32_t* v) { return Raw(v, 4); }
  bool U64(uint64_t* v) { return Raw(v, 8); }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool F64(double* v) { return Raw(v, 8); }
  bool Str(std::string* s) {
    uint32_t n;
    if (!U32(&n) || pos_ + n > data_.size()) return false;
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool Val(Value* v) {
    uint8_t tag;
    if (!U8(&tag)) return false;
    switch (tag) {
      case 0:
        *v = Value::Null();
        return true;
      case 1: {
        uint8_t b;
        if (!U8(&b)) return false;
        *v = Value(b != 0);
        return true;
      }
      case 2: {
        int64_t i;
        if (!I64(&i)) return false;
        *v = Value(i);
        return true;
      }
      case 3: {
        double d;
        if (!F64(&d)) return false;
        *v = Value(d);
        return true;
      }
      case 4: {
        std::string s;
        if (!Str(&s)) return false;
        *v = Value(std::move(s));
        return true;
      }
      default:
        return false;
    }
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Raw(void* p, size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace vizq

#endif  // VIZQUERY_COMMON_BINARY_IO_H_
