#include "src/common/value.h"

#include <cmath>
#include <cstdio>

namespace vizq {

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int_value());
  if (is_double()) return double_value();
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  return 0.0;
}

int Value::Compare(const Value& other, Collation collation) const {
  bool a_null = is_null();
  bool b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;
  }
  if (is_string() && other.is_string()) {
    return CollatedCompare(string_value(), other.string_value(), collation);
  }
  if (is_string() != other.is_string()) {
    // Mixed string/number: stable but meaningless ordering by alternative.
    return v_.index() < other.v_.index() ? -1 : 1;
  }
  // Both numeric-ish (bool/int/double).
  double a = AsDouble();
  double b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

uint64_t Value::Hash(Collation collation) const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_string()) return CollatedHash(string_value(), collation);
  // Hash numerics through their double widening so 1 == 1.0 hash-agree,
  // consistent with Compare.
  double d = AsDouble();
  if (d == 0.0) d = 0.0;  // normalize -0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  bits ^= bits >> 33;
  bits *= 0xff51afd7ed558ccdULL;
  bits ^= bits >> 33;
  return bits;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int()) return std::to_string(int_value());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", double_value());
    return buf;
  }
  return string_value();
}

}  // namespace vizq
