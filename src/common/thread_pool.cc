#include "src/common/thread_pool.h"

#include <cstdio>
#include <cstdlib>

namespace vizq {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  num_threads_ = num_threads;
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      std::fprintf(stderr,
                   "ThreadPool::Submit called after shutdown; the task "
                   "would never run\n");
      std::abort();
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace vizq
