// The process-wide priority task scheduler: one audited concurrency
// surface for every execution layer (DESIGN.md §10).
//
// The paper's responsiveness story has many concurrent activities sharing
// one client machine: concurrent batch submission (§3.5), speculative
// background prefetch, and intra-query parallelism via Exchange (§4.2).
// Before this scheduler each subsystem spun up its own threads and they
// fought blindly for cores; now all of them submit tasks here:
//
//   * three priority classes, kInteractive > kBatch > kBackground, with
//     FIFO order inside a class refined by earliest-deadline-first for
//     tasks whose ExecContext carries a deadline;
//   * admission control: per-class bounded queues; a full queue sheds the
//     task with a typed kResourceExhausted status instead of queueing
//     unboundedly (TaskGroup turns a shed into inline execution on the
//     submitter, so correctness never depends on admission);
//   * anti-starvation: every Nth dispatch picks from the *lowest*
//     non-empty class, so background work keeps trickling through under
//     sustained interactive load;
//   * class caps: non-interactive work may only occupy a fraction of the
//     workers, keeping reserve capacity for interactive arrivals (tasks
//     spawned from inside a worker bypass the caps — a capped parent
//     blocked on its children must not be able to wedge the process);
//   * cooperative cancellation: tasks carry an ExecContext; a task marked
//     skip-if-cancelled whose context is already cancelled/expired at
//     dispatch is dropped (counted) without running;
//   * observability: per-class submitted/completed/shed counters and
//     queue-depth gauges, task wait/run histograms (sched.* names in the
//     global metrics registry) and a "sched:<name>" span on traced
//     contexts, so the PerfRecorder shows scheduling alongside execution.
//
// Workers are hosted on an internal ThreadPool — the pool's only
// remaining production role. The pool is intentionally oversubscribed
// relative to the core count: most tasks in this codebase model I/O
// (simulated backends sleep), so workers spend their time blocked, not
// computing.
//
// Scheduler::Global() is the process singleton every migrated layer uses;
// tests construct private instances with small worker counts.

#ifndef VIZQUERY_COMMON_SCHEDULER_H_
#define VIZQUERY_COMMON_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace vizq {

enum class TaskClass : uint8_t {
  kInteractive = 0,  // user-visible query work (Exchange producers,
                     // dashboard batches)
  kBatch = 1,        // bulk work with a caller waiting, but no user staring
  kBackground = 2,   // speculation: prefetch, connection prewarm
};
inline constexpr int kNumTaskClasses = 3;

const char* TaskClassName(TaskClass c);

struct SchedulerOptions {
  // 0 resolves to an oversubscribed default (see scheduler.cc): tasks here
  // mostly sleep on simulated I/O, so more workers than cores is correct.
  int num_threads = 0;

  // Admission control: Submit returns kResourceExhausted once this many
  // tasks of the class are waiting. Background is tighter — speculation
  // is the first thing to shed under pressure.
  int max_queued_interactive = 4096;
  int max_queued_batch = 4096;
  int max_queued_background = 1024;

  // Fraction of workers non-interactive (batch+background) tasks may
  // occupy at once; the remainder is reserve capacity for interactive
  // arrivals. Background alone is capped at half of this.
  double non_interactive_share = 0.75;

  // Every Nth dispatch picks from the lowest-priority non-empty class, so
  // kBackground cannot starve forever under sustained kInteractive load.
  int starvation_boost_period = 16;

  // Per-session fair admission (defense in depth under the server-level
  // AdmissionController): at most this many tasks of ONE session may be
  // queued across all classes; excess submits shed with
  // kResourceExhausted and count into session_shed. 0 = no per-session
  // cap. Tasks without a session (session_id == 0) are exempt.
  int max_queued_per_session = 0;

  // false = one undifferentiated FIFO ignoring class, deadline and caps —
  // the "single shared pool" baseline bench_scheduler measures against.
  bool prioritize = true;
};

struct SubmitOptions {
  // Labels the task's span ("sched:<name>") and shows up in traces.
  std::string name;
  // Drop the task (without running it) when its context is already
  // cancelled or past deadline at dispatch. Only for fire-and-forget
  // work; joined work runs so its completion bookkeeping happens.
  bool skip_if_cancelled = false;
  // The user session this task belongs to; 0 = sessionless (exempt from
  // the per-session queue cap). Set by QueryService from
  // BatchOptions::session_id so one hot session saturating the queues
  // sheds its own work instead of everyone's.
  uint64_t session_id = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Enqueues `fn` under `cls`. kResourceExhausted when the class queue is
  // full (load shed), kFailedPrecondition after Shutdown(). The context
  // supplies the deadline used for intra-class ordering and the trace the
  // task's "sched:" span attaches to.
  Status Submit(TaskClass cls, std::function<void()> fn,
                const ExecContext& ctx = ExecContext::Background(),
                SubmitOptions opts = {});

  // Completes every queued task, joins the workers, and rejects further
  // submits. Idempotent; called by the destructor.
  void Shutdown();

  int num_threads() const { return num_threads_; }
  int64_t queue_depth(TaskClass cls) const;
  int64_t submitted(TaskClass cls) const;
  int64_t completed(TaskClass cls) const;
  int64_t shed(TaskClass cls) const;
  int64_t skipped_cancelled(TaskClass cls) const;
  // Submits shed by the per-session cap (also counted in shed(cls)).
  int64_t session_shed() const;
  // Currently queued tasks of one session (0 when unknown).
  int64_t session_queued(uint64_t session_id) const;

  // Blocks until completed(cls) >= n or `timeout` elapses; returns whether
  // the target was reached. The CV-latch replacement for sleep-poll loops
  // in tests and for harness drains.
  bool WaitForCompleted(TaskClass cls, int64_t n,
                        std::chrono::milliseconds timeout);

  // The process-wide scheduler (leaked singleton, like GlobalMetrics()).
  static Scheduler& Global();

  // True when the calling thread is one of this scheduler's workers —
  // i.e. the caller is inside a task. Nested spawns from such threads
  // bypass the class caps (see the header comment).
  bool OnWorkerThread() const;

 private:
  struct Task {
    std::function<void()> fn;
    ExecContext ctx;
    std::string name;
    TaskClass cls = TaskClass::kInteractive;
    uint64_t seq = 0;
    uint64_t session_id = 0;
    bool has_deadline = false;
    bool skip_if_cancelled = false;
    bool nested = false;  // submitted from a worker of this scheduler
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point enqueued{};
  };

  // Heap order: earliest deadline first, then FIFO by submit sequence;
  // `true` when `a` should dispatch after `b`.
  static bool Worse(const Task& a, const Task& b);

  void WorkerLoop();
  // Picks the next runnable task under mu_; false when nothing is
  // dispatchable right now (empty, or capped classes only).
  bool PickTaskLocked(Task* out);
  // Extracts the best (by dispatch order) cap-bypassing nested task from
  // a capped class's heap — nested tasks may sit behind non-nested ones,
  // so the front alone does not decide dispatchability. False when the
  // queue holds no nested task.
  static bool PopNestedLocked(std::vector<Task>& q, Task* out);
  void RunTask(Task task);
  int64_t TotalQueuedLocked() const;
  void PublishDepthGauge(TaskClass cls, size_t depth) const;

  SchedulerOptions options_;
  int num_threads_ = 0;
  int max_non_interactive_running_ = 0;
  int max_background_running_ = 0;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  // Notified on every task completion; WaitForCompleted parks here.
  std::condition_variable completed_cv_;
  // Per-class min-heaps ordered by (deadline, seq): EDF among deadlined
  // tasks, then FIFO (no-deadline tasks sort last, among themselves FIFO).
  std::vector<Task> queues_[kNumTaskClasses];
  uint64_t next_seq_ = 0;
  uint64_t dispatches_ = 0;
  int running_non_interactive_ = 0;
  int running_background_ = 0;
  bool stop_ = false;

  int64_t submitted_[kNumTaskClasses] = {};
  int64_t completed_[kNumTaskClasses] = {};
  int64_t shed_[kNumTaskClasses] = {};
  int64_t skipped_cancelled_[kNumTaskClasses] = {};
  // Queued tasks per session (entries erased at zero) and the count of
  // submits shed by the per-session cap.
  std::map<uint64_t, int64_t> session_queued_;
  int64_t session_shed_ = 0;

  // The worker host. Kept last so it is destroyed (joined) first.
  std::unique_ptr<ThreadPool> pool_;
};

// Joins a fan-out of scheduler tasks — the replacement for the per-call
// ThreadPool / CountDownLatch pattern. Spawn() enqueues onto the group's
// scheduler and class; a shed or post-shutdown submit runs the task inline
// on the spawning (or pumping) thread, so the group never loses work.
// Wait() blocks until every spawned task finished; the destructor waits.
// When Wait() runs on a scheduler worker it does not merely park: it
// claims the group's still-queued tasks and runs them inline, so workers
// blocked joining nested fan-outs cannot starve the very tasks they wait
// for (every worker parked in some Wait() would otherwise be a circular
// wait under saturation).
//
// `max_concurrency` > 0 bounds how many of the group's tasks are in
// flight at once (the §3.5 max_parallel_queries semantics); further
// spawns queue inside the group and are released as tasks finish.
class TaskGroup {
 public:
  // `session_id` tags every task the group submits (per-session fair
  // admission); a session-cap shed runs inline like any other shed.
  TaskGroup(Scheduler* scheduler, TaskClass cls,
            const ExecContext& ctx = ExecContext::Background(),
            int max_concurrency = 0, uint64_t session_id = 0);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Spawn(std::function<void()> fn, std::string name = {});
  void Wait();

  int64_t spawned() const;
  // Tasks that were shed by the scheduler and ran inline instead.
  int64_t ran_inline() const;
  // Still-queued tasks a Wait()ing scheduler worker claimed and ran
  // itself instead of parking.
  int64_t stolen() const;

 private:
  struct Pending {
    std::function<void()> fn;
    std::string name;
  };
  // A task handed to the scheduler. The claim flag picks exactly one
  // runner: the dispatched wrapper, a Wait()ing worker that stole it, or
  // the pumping thread when the submit itself failed.
  struct Submitted {
    std::function<void()> fn;
    std::atomic<bool> claimed{false};
  };
  // All group state sits behind a shared_ptr: wrappers queued in the
  // scheduler capture it, so a wrapper that loses its claim (its task was
  // stolen) still runs safely after the TaskGroup object is gone, and a
  // worker finishing a task can pump successors without racing group
  // destruction.
  struct State {
    Scheduler* scheduler = nullptr;
    TaskClass cls = TaskClass::kInteractive;
    ExecContext ctx;
    int max_concurrency = 0;
    uint64_t session_id = 0;

    std::mutex mu;
    std::condition_variable done_cv;
    std::deque<Pending> pending;
    // Submitted-but-possibly-unstarted wrappers: the steal window for
    // Wait()ing workers. Claimed entries are trimmed lazily.
    std::deque<std::shared_ptr<Submitted>> submitted;
    int64_t outstanding = 0;  // spawned, not yet finished
    int64_t in_flight = 0;    // submitted or running
    int64_t spawned = 0;
    int64_t ran_inline = 0;
    int64_t stolen = 0;
  };

  // Submits pending tasks while below max_concurrency, then applies
  // `finished` completions to outstanding (notifying waiters) as its
  // very last touch of the counters. Call without holding s->mu.
  static void Pump(const std::shared_ptr<State>& s, int64_t finished);
  // Runs a claimed task and its completion bookkeeping, then pumps.
  static void RunClaimed(const std::shared_ptr<State>& s,
                         const std::shared_ptr<Submitted>& task);
  // Pops the first unclaimed submitted wrapper, claiming it; null when
  // none remain. Requires s.mu held.
  static std::shared_ptr<Submitted> StealLocked(State& s);

  std::shared_ptr<State> state_;
};

}  // namespace vizq

#endif  // VIZQUERY_COMMON_SCHEDULER_H_
