// The VizQuery type system.
//
// Kept deliberately small: the five physical kinds below are enough to model
// the paper's workloads (the FAA flights schema, dashboard filters and
// aggregates). Dates are carried as days-since-epoch in an int64 payload but
// keep their own kind so dialect generation and formatting can treat them
// distinctly.

#ifndef VIZQUERY_COMMON_TYPES_H_
#define VIZQUERY_COMMON_TYPES_H_

#include <cstdint>
#include <string>

#include "src/common/collation.h"

namespace vizq {

// Physical type of a column or expression result.
enum class TypeKind : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
  kDate = 4,  // days since 1970-01-01, stored as int64
};

const char* TypeKindToString(TypeKind kind);

// A column/expression type: a physical kind plus, for strings, a collation.
struct DataType {
  TypeKind kind = TypeKind::kInt64;
  Collation collation = Collation::kBinary;

  static DataType Bool() { return {TypeKind::kBool, Collation::kBinary}; }
  static DataType Int64() { return {TypeKind::kInt64, Collation::kBinary}; }
  static DataType Float64() { return {TypeKind::kFloat64, Collation::kBinary}; }
  static DataType String(Collation c = Collation::kBinary) {
    return {TypeKind::kString, c};
  }
  static DataType Date() { return {TypeKind::kDate, Collation::kBinary}; }

  bool is_numeric() const {
    return kind == TypeKind::kInt64 || kind == TypeKind::kFloat64;
  }
  bool is_string() const { return kind == TypeKind::kString; }

  // Whether two values of this type are stored in the int64 payload.
  bool uses_int_payload() const {
    return kind == TypeKind::kBool || kind == TypeKind::kInt64 ||
           kind == TypeKind::kDate;
  }

  std::string ToString() const;

  bool operator==(const DataType& other) const {
    return kind == other.kind &&
           (kind != TypeKind::kString || collation == other.collation);
  }
};

// Aggregate functions supported across the stack (abstract queries, TQL and
// the intelligent cache's roll-up post-processing).
enum class AggFunc : uint8_t {
  kSum = 0,
  kMin,
  kMax,
  kCount,          // COUNT(expr): non-null count
  kCountStar,      // COUNT(*)
  kAvg,            // decomposed into SUM/COUNT internally for re-aggregation
  kCountDistinct,  // not re-aggregable from partials; blocks cache roll-up
};

const char* AggFuncToString(AggFunc f);

// Result type of `f` applied to an input of type `input`.
DataType AggResultType(AggFunc f, const DataType& input);

// True when partial results of `f` can be combined by re-applying an
// aggregate to them (the property the intelligent cache's roll-up and the
// TDE's local/global aggregation both rely on).
bool IsReaggregable(AggFunc f);

}  // namespace vizq

#endif  // VIZQUERY_COMMON_TYPES_H_
