#include "src/common/result_table.h"

#include <algorithm>
#include <cstring>

namespace vizq {

namespace {

// --- binary serialization helpers (little-endian, length-prefixed) ---

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : data_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t n;
    if (!GetU32(&n)) return false;
    if (pos_ + n > data_.size()) return false;
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

// Value wire tags.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, kTagNull);
  } else if (v.is_bool()) {
    PutU8(out, kTagBool);
    PutU8(out, v.bool_value() ? 1 : 0);
  } else if (v.is_int()) {
    PutU8(out, kTagInt);
    PutU64(out, static_cast<uint64_t>(v.int_value()));
  } else if (v.is_double()) {
    PutU8(out, kTagDouble);
    uint64_t bits;
    double d = v.double_value();
    std::memcpy(&bits, &d, 8);
    PutU64(out, bits);
  } else {
    PutU8(out, kTagString);
    PutString(out, v.string_value());
  }
}

bool GetValue(Reader* r, Value* v) {
  uint8_t tag;
  if (!r->GetU8(&tag)) return false;
  switch (tag) {
    case kTagNull:
      *v = Value::Null();
      return true;
    case kTagBool: {
      uint8_t b;
      if (!r->GetU8(&b)) return false;
      *v = Value(b != 0);
      return true;
    }
    case kTagInt: {
      uint64_t i;
      if (!r->GetU64(&i)) return false;
      *v = Value(static_cast<int64_t>(i));
      return true;
    }
    case kTagDouble: {
      uint64_t bits;
      if (!r->GetU64(&bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *v = Value(d);
      return true;
    }
    case kTagString: {
      std::string s;
      if (!r->GetString(&s)) return false;
      *v = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

int CompareRowsOnKeys(const ResultTable::Row& a, const ResultTable::Row& b,
                      const std::vector<int>& keys) {
  for (int k : keys) {
    int cmp = a[k].Compare(b[k]);
    if (cmp != 0) return cmp;
  }
  return 0;
}

}  // namespace

std::optional<int> ResultTable::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

void ResultTable::SortRows(const std::vector<int>& key_columns) {
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&key_columns](const Row& a, const Row& b) {
                     return CompareRowsOnKeys(a, b, key_columns) < 0;
                   });
}

void ResultTable::SortRowsByAllColumns() {
  std::vector<int> keys;
  keys.reserve(columns_.size());
  for (int i = 0; i < num_columns(); ++i) keys.push_back(i);
  SortRows(keys);
}

int64_t ResultTable::ApproxBytes() const {
  int64_t bytes = 64;
  for (const ResultColumn& c : columns_) {
    bytes += 16 + static_cast<int64_t>(c.name.size());
  }
  for (const Row& row : rows_) {
    for (const Value& v : row) {
      bytes += 16;
      if (v.is_string()) bytes += static_cast<int64_t>(v.string_value().size());
    }
  }
  return bytes;
}

std::string ResultTable::Serialize() const {
  std::string out;
  PutU32(&out, 0x565A5254);  // 'VZRT' magic
  PutU32(&out, static_cast<uint32_t>(columns_.size()));
  for (const ResultColumn& c : columns_) {
    PutString(&out, c.name);
    PutU8(&out, static_cast<uint8_t>(c.type.kind));
    PutU8(&out, static_cast<uint8_t>(c.type.collation));
  }
  PutU64(&out, static_cast<uint64_t>(rows_.size()));
  for (const Row& row : rows_) {
    for (const Value& v : row) PutValue(&out, v);
  }
  return out;
}

StatusOr<ResultTable> ResultTable::Deserialize(const std::string& bytes) {
  Reader r(bytes);
  uint32_t magic;
  if (!r.GetU32(&magic) || magic != 0x565A5254) {
    return DataLoss("ResultTable: bad magic");
  }
  uint32_t ncols;
  if (!r.GetU32(&ncols) || ncols > 100000) {
    return DataLoss("ResultTable: bad column count");
  }
  std::vector<ResultColumn> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    ResultColumn c;
    uint8_t kind, collation;
    if (!r.GetString(&c.name) || !r.GetU8(&kind) || !r.GetU8(&collation)) {
      return DataLoss("ResultTable: truncated column header");
    }
    c.type.kind = static_cast<TypeKind>(kind);
    c.type.collation = static_cast<Collation>(collation);
    cols.push_back(std::move(c));
  }
  ResultTable table(std::move(cols));
  uint64_t nrows;
  if (!r.GetU64(&nrows)) return DataLoss("ResultTable: truncated row count");
  // Guard against corrupt counts: every value carries at least a 1-byte
  // tag, so nrows*ncols can never exceed the remaining payload.
  if ((ncols == 0 && nrows > 0) ||
      (ncols > 0 && nrows > bytes.size() / ncols)) {
    return DataLoss("ResultTable: implausible row count");
  }
  for (uint64_t i = 0; i < nrows; ++i) {
    Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      Value v;
      if (!GetValue(&r, &v)) return DataLoss("ResultTable: truncated row");
      row.push_back(std::move(v));
    }
    table.AddRow(std::move(row));
  }
  if (!r.AtEnd()) return DataLoss("ResultTable: trailing bytes");
  return table;
}

std::string ResultTable::ToCsv() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ',';
    out += columns_[i].name;
  }
  out += '\n';
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += row[i].ToString();
    }
    out += '\n';
  }
  return out;
}

bool ResultTable::operator==(const ResultTable& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        !(columns_[i].type == other.columns_[i].type)) {
      return false;
    }
  }
  if (rows_.size() != other.rows_.size()) return false;
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (size_t j = 0; j < columns_.size(); ++j) {
      if (!rows_[i][j].Equals(other.rows_[i][j])) return false;
    }
  }
  return true;
}

bool ResultTable::SameUnordered(const ResultTable& a, const ResultTable& b) {
  ResultTable ca = a;
  ResultTable cb = b;
  ca.SortRowsByAllColumns();
  cb.SortRowsByAllColumns();
  return ca == cb;
}

}  // namespace vizq
