// Small string utilities shared across modules (CSV parsing, SQL rendering,
// TQL tokenizing, date handling).

#ifndef VIZQUERY_COMMON_STR_UTIL_H_
#define VIZQUERY_COMMON_STR_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vizq {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Strict parsers: the whole trimmed input must be consumed.
std::optional<int64_t> ParseInt64(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);
std::optional<bool> ParseBool(std::string_view s);

// Parses "YYYY-MM-DD" into days since 1970-01-01 (proleptic Gregorian).
std::optional<int64_t> ParseDateDays(std::string_view s);

// Formats days-since-epoch back to "YYYY-MM-DD".
std::string FormatDateDays(int64_t days);

// Day of week for days-since-epoch: 0 = Monday ... 6 = Sunday.
int DayOfWeek(int64_t days);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// ASCII lower-casing.
std::string ToLower(std::string_view s);

}  // namespace vizq

#endif  // VIZQUERY_COMMON_STR_UTIL_H_
