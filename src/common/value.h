// Value: a dynamically-typed scalar used at API boundaries (literals in
// queries, filter sets, result cells). The execution engine works on typed
// column vectors; Value appears where genericity matters more than speed.

#ifndef VIZQUERY_COMMON_VALUE_H_
#define VIZQUERY_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/collation.h"
#include "src/common/types.h"

namespace vizq {

// A nullable scalar. The physical kind is encoded in the variant alternative;
// dates share the int64 alternative (their kind lives in column metadata).
class Value {
 public:
  // Constructs a NULL value.
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  bool bool_value() const { return std::get<bool>(v_); }
  int64_t int_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }

  // Numeric value widened to double; bools count as 0/1. Requires !is_null()
  // and a non-string alternative.
  double AsDouble() const;

  // Three-way comparison. NULL sorts before everything; strings use
  // `collation`; numerics compare after widening to double when kinds mix.
  // Comparing a string with a number is a caller bug and compares by
  // alternative index (stable but meaningless), matching SQL engines that
  // forbid it at type-check time.
  int Compare(const Value& other,
              Collation collation = Collation::kBinary) const;

  bool Equals(const Value& other,
              Collation collation = Collation::kBinary) const {
    return Compare(other, collation) == 0;
  }

  // Hash consistent with Equals under `collation`.
  uint64_t Hash(Collation collation = Collation::kBinary) const;

  // Rendering for debugging, cache keys and SQL literal generation is done
  // by callers (see sql_dialect.cc); this is the debug form.
  std::string ToString() const;

  // operator== uses binary collation; containers of Value rely on it.
  bool operator==(const Value& other) const { return Equals(other); }
  bool operator!=(const Value& other) const { return !Equals(other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> v_;
};

}  // namespace vizq

#endif  // VIZQUERY_COMMON_VALUE_H_
