// Column-level string collation.
//
// The TDE supports column-level collated strings (§4.1.1 of the paper):
// string comparisons, grouping and ordering honor the collation declared on
// the column, so behaviour matches what a live database connection with the
// same collation would produce.

#ifndef VIZQUERY_COMMON_COLLATION_H_
#define VIZQUERY_COMMON_COLLATION_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace vizq {

// The collations this engine implements. kBinary is plain byte ordering;
// kCaseInsensitive folds ASCII case before comparing (sufficient for the
// synthetic workloads; the interface is where an ICU-backed collation would
// plug in).
enum class Collation : uint8_t {
  kBinary = 0,
  kCaseInsensitive = 1,
};

const char* CollationToString(Collation c);

// Three-way comparison of `a` and `b` under `c`: negative, zero or positive.
int CollatedCompare(std::string_view a, std::string_view b, Collation c);

// Equality under `c`.
bool CollatedEquals(std::string_view a, std::string_view b, Collation c);

// Hash consistent with CollatedEquals: two strings equal under `c` hash to
// the same value.
uint64_t CollatedHash(std::string_view s, Collation c);

// Returns the canonical key of `s` under `c` — a string such that two
// inputs equal under `c` have identical keys (identity for kBinary,
// ASCII-lowercased for kCaseInsensitive).
std::string CollationKey(std::string_view s, Collation c);

}  // namespace vizq

#endif  // VIZQUERY_COMMON_COLLATION_H_
