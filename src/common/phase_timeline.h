// PhaseTimeline: per-request phase attribution for the serving stack.
//
// The paper's subject is user-perceived response time; the traffic
// harness (PR 8) can say *that* p99 degrades past saturation but not
// *where the time went*. Every request now carries a PhaseTimeline on
// its ExecContext and each serving layer charges its wall time to a
// named phase:
//
//   root phases (exclusive, sum ~= end-to-end wall):
//     client_queue   arrival -> a serving thread picked the request up
//     client_prep    client-side step/batch construction
//     admission      fair-admission decision
//     cache_lookup   intelligent-cache probes (all ladder rungs)
//     plan           opportunity analysis + fusion
//     execution      remote execution: scheduler + backend + group join
//     materialize    roll-ups, result resolution, result copies
//     ladder         shed-ladder bookkeeping outside the probes
//     rpc            scatter/gather round trips to data-server nodes
//
//   detail phases (additive, NOT part of the sum invariant):
//     queue_interactive / queue_batch / queue_background
//       scheduler queue wait per task class. Tasks of one request run
//       concurrently on many workers, so their waits overlap the root
//       `execution` phase and each other; they decompose *where queueing
//       happens*, not wall time.
//     remote_exec
//       node-side execution time inside an rpc round trip, charged onto
//       the caller's timeline by the transport (overlaps `rpc`).
//
// Exclusive accounting is what makes "phases sum to ~total" hold: root
// phases are measured only on the thread driving the request, through a
// thread-local stack of PhaseScopes. Starting a nested scope pauses the
// enclosing one (its elapsed time is flushed and its clock stops), and
// destroying the nested scope resumes it — so a ladder rung that calls
// into the batch pipeline never double-counts the cache probes inside.
//
// This header lives in common/ (with ExecContext) and is dependency-free;
// aggregation into histograms / SLO monitors happens in obs/ and the
// server layer. A process-wide kill switch (SetEnabled) lets benches
// measure the overhead of the whole layer; with it off, contexts carry no
// timeline and every scope is a no-op.

#ifndef VIZQUERY_COMMON_PHASE_TIMELINE_H_
#define VIZQUERY_COMMON_PHASE_TIMELINE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace vizq {

enum class Phase : uint8_t {
  // Root phases: exclusive decomposition of the request's wall time.
  kClientQueue = 0,
  kClientPrep,
  kAdmission,
  kCacheLookup,
  kPlan,
  kExecution,
  kMaterialize,
  kLadder,
  // Scatter/gather round trips against data-server nodes: serialization,
  // modeled wire time, and waiting on remote execution. Root phase — on
  // a clustered request the driving thread's time genuinely goes here
  // instead of kExecution (the node-side context carries no timeline, so
  // the two never double-count).
  kRpc,
  // Detail phases: additive annotations outside the sum invariant.
  kQueueInteractive,
  kQueueBatch,
  kQueueBackground,
  // Time a data-server node spent executing one scattered call, charged
  // by the RPC transport onto the *caller's* timeline. Overlaps kRpc by
  // construction (it is the remote share of the round trip), hence a
  // detail phase.
  kRemoteExec,
};

inline constexpr int kNumPhases = 13;
inline constexpr int kNumRootPhases = 9;

const char* PhaseName(Phase p);
inline bool IsRootPhase(Phase p) {
  return static_cast<int>(p) < kNumRootPhases;
}

// Thread-safe accumulator; shared (via shared_ptr on ExecContext) by every
// copy of a request's context.
class PhaseTimeline {
 public:
  // Process-wide kill switch, default on. Only consulted when a context is
  // *created* (ExecContext allocates the timeline), so flipping it does
  // not disturb requests already in flight.
  static void SetEnabled(bool enabled);
  static bool Enabled();

  void Add(Phase p, int64_t ns) {
    if (ns > 0) {
      ns_[static_cast<int>(p)].fetch_add(ns, std::memory_order_relaxed);
    }
  }

  int64_t phase_ns(Phase p) const {
    return ns_[static_cast<int>(p)].load(std::memory_order_relaxed);
  }
  double phase_ms(Phase p) const {
    return static_cast<double>(phase_ns(p)) / 1e6;
  }

  // Sum of the root phases: the attributed share of end-to-end wall time.
  int64_t attributed_ns() const;
  double attributed_ms() const {
    return static_cast<double>(attributed_ns()) / 1e6;
  }

  // The shed-ladder rung that answered (-1 unset, 0 admitted fresh path,
  // 1 stale-exact, 2 derived, 3 typed shed) and the serve outcome label;
  // set by the frontend when the request finishes.
  void SetRung(int rung) { rung_.store(rung, std::memory_order_relaxed); }
  int rung() const { return rung_.load(std::memory_order_relaxed); }
  // `outcome` must point at a string literal / static storage.
  void SetOutcome(const char* outcome) {
    outcome_.store(outcome, std::memory_order_relaxed);
  }
  const char* outcome() const {
    const char* o = outcome_.load(std::memory_order_relaxed);
    return o == nullptr ? "" : o;
  }

  // "client_queue=0.12ms cache_lookup=0.45ms ... rung=1 outcome=stale"
  // (phases with zero time are omitted).
  std::string ToString() const;

 private:
  std::array<std::atomic<int64_t>, kNumPhases> ns_{};
  std::atomic<int> rung_{-1};
  std::atomic<const char*> outcome_{nullptr};
};

// RAII scope charging elapsed wall time on *this thread* to one root
// phase. Scopes nest through a thread-local stack: constructing a scope
// pauses the enclosing one, destroying it resumes the parent — the
// exclusive accounting described in the header comment. A null timeline
// makes the scope inert, as does nesting directly under a scope for the
// SAME phase of the same timeline (the parent's running clock already
// charges that bucket, so the child skips the pause/resume clock reads).
// Scopes must be strictly nested per thread (guaranteed by stack
// allocation) and are neither copyable nor movable.
class PhaseScope {
 public:
  PhaseScope(PhaseTimeline* timeline, Phase phase);
  ~PhaseScope() { End(); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  // Flushes the accumulated time now (idempotent with the destructor).
  void End();

 private:
  PhaseTimeline* timeline_;
  Phase phase_;
  PhaseScope* parent_ = nullptr;
  std::chrono::steady_clock::time_point started_{};
  int64_t accumulated_ns_ = 0;  // flushed while paused by a nested scope
  bool ended_ = false;
};

}  // namespace vizq

#endif  // VIZQUERY_COMMON_PHASE_TIMELINE_H_
