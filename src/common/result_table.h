// ResultTable: the tabular format query results are streamed back in
// (§3.1 of the paper). It is the common currency between data sources, the
// query caches (which store and post-process results), the dashboard
// renderer and tests.
//
// Results in this system are small by construction — pre-filtered and
// pre-aggregated (§3.2) — so a row-major vector-of-Value representation is
// the right trade-off: simple, and cheap to roll up / filter / project.

#ifndef VIZQUERY_COMMON_RESULT_TABLE_H_
#define VIZQUERY_COMMON_RESULT_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/value.h"

namespace vizq {

// Schema entry of a result column.
struct ResultColumn {
  std::string name;
  DataType type;
};

class ResultTable {
 public:
  using Row = std::vector<Value>;

  ResultTable() = default;
  explicit ResultTable(std::vector<ResultColumn> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ResultColumn>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(int64_t i) const { return rows_[i]; }

  // Index of the column named `name` (exact match), or nullopt.
  std::optional<int> FindColumn(const std::string& name) const;

  // Appends a row; the caller guarantees arity/type agreement.
  void AddRow(Row row) { rows_.push_back(std::move(row)); }
  void ReserveRows(int64_t n) { rows_.reserve(n); }

  const Value& at(int64_t row, int col) const { return rows_[row][col]; }

  // Sorts rows lexicographically by the given column indices (ascending,
  // binary collation); used to canonicalize tables for comparison in tests
  // and for deterministic output.
  void SortRows(const std::vector<int>& key_columns);

  // Sorts by all columns.
  void SortRowsByAllColumns();

  // Approximate in-memory footprint, used for cache sizing and for the
  // simulated network-transfer model.
  int64_t ApproxBytes() const;

  // Serializes to a compact binary string and back; used by the persisted
  // cache and the distributed cache tier.
  std::string Serialize() const;
  static StatusOr<ResultTable> Deserialize(const std::string& bytes);

  // Renders a debug/CSV form (header + rows).
  std::string ToCsv() const;

  // Structural equality: same columns (name+type) and same rows in order.
  bool operator==(const ResultTable& other) const;

  // Equality after canonical row ordering; what most tests want, since
  // hash-aggregation output order is unspecified.
  static bool SameUnordered(const ResultTable& a, const ResultTable& b);

 private:
  std::vector<ResultColumn> columns_;
  std::vector<Row> rows_;
};

}  // namespace vizq

#endif  // VIZQUERY_COMMON_RESULT_TABLE_H_
