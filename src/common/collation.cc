#include "src/common/collation.h"

#include <algorithm>
#include <cctype>

namespace vizq {

namespace {

inline char FoldCase(char ch) {
  return (ch >= 'A' && ch <= 'Z') ? static_cast<char>(ch - 'A' + 'a') : ch;
}

// 64-bit FNV-1a.
inline uint64_t Fnv1a(uint64_t h, char ch) {
  h ^= static_cast<uint8_t>(ch);
  h *= 0x100000001b3ULL;
  return h;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

}  // namespace

const char* CollationToString(Collation c) {
  switch (c) {
    case Collation::kBinary: return "binary";
    case Collation::kCaseInsensitive: return "nocase";
  }
  return "unknown";
}

int CollatedCompare(std::string_view a, std::string_view b, Collation c) {
  if (c == Collation::kBinary) {
    int cmp = a.compare(b);
    return cmp;
  }
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    char ca = FoldCase(a[i]);
    char cb = FoldCase(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool CollatedEquals(std::string_view a, std::string_view b, Collation c) {
  if (a.size() != b.size()) return false;
  return CollatedCompare(a, b, c) == 0;
}

uint64_t CollatedHash(std::string_view s, Collation c) {
  uint64_t h = kFnvOffset;
  if (c == Collation::kBinary) {
    for (char ch : s) h = Fnv1a(h, ch);
  } else {
    for (char ch : s) h = Fnv1a(h, FoldCase(ch));
  }
  return h;
}

std::string CollationKey(std::string_view s, Collation c) {
  std::string key(s);
  if (c == Collation::kCaseInsensitive) {
    std::transform(key.begin(), key.end(), key.begin(), FoldCase);
  }
  return key;
}

}  // namespace vizq
