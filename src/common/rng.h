// Deterministic pseudo-random generator for synthetic workloads.
// Every generator in src/workload takes an explicit seed so data sets and
// traffic traces are reproducible across runs and platforms.

#ifndef VIZQUERY_COMMON_RNG_H_
#define VIZQUERY_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace vizq {

// splitmix64-seeded xorshift generator; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 to spread low-entropy seeds.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    state_ = z ^ (z >> 31);
    if (state_ == 0) state_ = 0x853c49e6748fea9bULL;
  }

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

// Zipf(s) distribution over ranks [0, n): rank r drawn with probability
// proportional to 1/(r+1)^s. CDF precomputed once; Sample is O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s) : cdf_(n) {
    double total = 0;
    for (uint64_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = total;
    }
    for (uint64_t r = 0; r < n; ++r) cdf_[r] /= total;
  }

  uint64_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    // Binary search first cdf >= u.
    uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) lo = mid + 1; else hi = mid;
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

// Mixes `v` into hash state `h` (boost::hash_combine-style, 64-bit).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace vizq

#endif  // VIZQUERY_COMMON_RNG_H_
