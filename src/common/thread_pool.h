// A fixed-size worker pool. Since the unified scheduler landed
// (src/common/scheduler.h) this class has exactly one production role:
// hosting the Scheduler's worker threads. Everything that used to build
// ad-hoc pools (Exchange producers, per-batch QueryService pools, the
// Prefetcher) now submits tasks to the process-wide Scheduler instead.
// Tests still use it directly as a plain fan-out helper.
//
// Tasks are arbitrary std::function<void()>. Submission never blocks; the
// queue is unbounded (callers in this codebase bound their own fan-out).
// Submitting after Shutdown() (or during destruction) is a hard error:
// the old behaviour silently enqueued work that never ran.

#ifndef VIZQUERY_COMMON_THREAD_POOL_H_
#define VIZQUERY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vizq {

class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  // Drains nothing: outstanding tasks are completed before destruction
  // returns (join semantics).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution on some worker. Aborts the process if
  // the pool has been shut down — a submit that would never run is a
  // lifecycle bug at the call site, not a condition to limp past.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Wait();

  // Completes outstanding tasks, joins the workers, and rejects any later
  // Submit. Idempotent; also called by the destructor.
  void Shutdown();

  int num_threads() const { return num_threads_; }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: work or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): all quiet
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutdown_ = false;
  int num_threads_ = 0;
  std::vector<std::thread> threads_;
};

// A latch counting down to zero; used to join fan-out work without polling.
class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ <= 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace vizq

#endif  // VIZQUERY_COMMON_THREAD_POOL_H_
