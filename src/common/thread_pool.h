// A fixed-size worker pool used by the Exchange operator, the dashboard
// batch scheduler and the simulated backends.
//
// Tasks are arbitrary std::function<void()>. Submission never blocks; the
// queue is unbounded (callers in this codebase bound their own fan-out).

#ifndef VIZQUERY_COMMON_THREAD_POOL_H_
#define VIZQUERY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vizq {

class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  // Drains nothing: outstanding tasks are completed before destruction
  // returns (join semantics).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: work or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): all quiet
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// A latch counting down to zero; used to join fan-out work without polling.
class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ <= 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace vizq

#endif  // VIZQUERY_COMMON_THREAD_POOL_H_
