#include "src/common/exec_context.h"

#include <limits>
#include <sstream>

namespace vizq {

namespace {

std::string FormatMs(double ms) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << ms;
  return os.str();
}

}  // namespace

// --- global metrics sink ---

namespace {
std::atomic<GlobalMetricsSink*> g_metrics_sink{nullptr};
}  // namespace

void SetGlobalMetricsSink(GlobalMetricsSink* sink) {
  g_metrics_sink.store(sink, std::memory_order_release);
}

GlobalMetricsSink* GetGlobalMetricsSink() {
  return g_metrics_sink.load(std::memory_order_acquire);
}

// --- RequestLog ---

void RequestLog::AddEvent(std::string category, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::chrono::steady_clock::now(),
                          std::move(category), std::move(detail)});
}

void RequestLog::Attach(const std::string& name, std::string text) {
  std::lock_guard<std::mutex> lock(mu_);
  attachments_[name] = std::move(text);
}

std::vector<RequestLog::Event> RequestLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::map<std::string, std::string> RequestLog::attachments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attachments_;
}

std::string RequestLog::attachment(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = attachments_.find(name);
  return it == attachments_.end() ? std::string() : it->second;
}

// --- Span ---

Span::Span(Trace* trace, std::string name)
    : trace_(trace),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {}

double Span::duration_ms() const {
  int64_t ns = duration_ns_.load(std::memory_order_acquire);
  if (ns < 0) {
    ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
             .count();
  }
  return static_cast<double>(ns) / 1e6;
}

void Span::End() {
  int64_t expected = -1;
  int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
  duration_ns_.compare_exchange_strong(expected, ns,
                                       std::memory_order_acq_rel);
}

Span* Span::StartChild(const std::string& name) {
  std::lock_guard<std::mutex> lock(trace_->mu_);
  children_.push_back(std::unique_ptr<Span>(new Span(trace_, name)));
  return children_.back().get();
}

std::vector<const Span*> Span::children() const {
  std::lock_guard<std::mutex> lock(trace_->mu_);
  std::vector<const Span*> out;
  out.reserve(children_.size());
  for (const auto& c : children_) out.push_back(c.get());
  return out;
}

// --- Trace ---

Trace::Trace(std::string root_name)
    : root_(new Span(this, std::move(root_name))) {}

namespace {

void RenderText(const Span& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(span.name());
  out->append("  ");
  out->append(FormatMs(span.duration_ms()));
  out->append(" ms\n");
  for (const Span* child : span.children()) {
    RenderText(*child, depth + 1, out);
  }
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      default: out->push_back(c);
    }
  }
}

void RenderJson(const Span& span, std::string* out) {
  out->append("{\"name\":\"");
  AppendJsonEscaped(span.name(), out);
  out->append("\",\"ms\":");
  out->append(FormatMs(span.duration_ms()));
  std::vector<const Span*> children = span.children();
  if (!children.empty()) {
    out->append(",\"children\":[");
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out->push_back(',');
      RenderJson(*children[i], out);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

void CollectNames(const Span& span, std::vector<std::string>* out) {
  out->push_back(span.name());
  for (const Span* child : span.children()) CollectNames(*child, out);
}

}  // namespace

std::string Trace::ToText() const {
  std::string out;
  RenderText(*root_, 0, &out);
  return out;
}

std::string Trace::ToJson() const {
  std::string out;
  RenderJson(*root_, &out);
  return out;
}

std::vector<std::string> Trace::SpanNames() const {
  std::vector<std::string> out;
  CollectNames(*root_, &out);
  return out;
}

// --- MetricsRegistry ---

void MetricsRegistry::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramStats& h = histograms_[name];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.sum += value;
  ++h.count;
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricsRegistry::HistogramStats MetricsRegistry::histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStats{} : it->second;
}

std::map<std::string, int64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " = {count " + std::to_string(h.count) + ", mean " +
           FormatMs(h.mean()) + ", min " + FormatMs(h.min) + ", max " +
           FormatMs(h.max) + "}\n";
  }
  return out;
}

// --- ExecContext ---

ExecContext::ExecContext()
    : trace_(std::make_shared<Trace>()),
      metrics_(std::make_shared<MetricsRegistry>()),
      log_(std::make_shared<RequestLog>()),
      timeline_(PhaseTimeline::Enabled() ? std::make_shared<PhaseTimeline>()
                                         : nullptr) {}

ExecContext::ExecContext(DisabledTag) {}

const ExecContext& ExecContext::Background() {
  static const ExecContext* background = new ExecContext(DisabledTag{});
  return *background;
}

ExecContext ExecContext::WithDeadlineMs(double ms) {
  ExecContext ctx;
  ctx.has_deadline_ = true;
  ctx.deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(static_cast<int64_t>(ms * 1000));
  return ctx;
}

ExecContext ExecContext::ForRemoteCall(double budget_ms) const {
  ExecContext remote = *this;
  remote.timeline_.reset();
  if (budget_ms > 0) {
    auto budget_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(budget_ms * 1000));
    if (!remote.has_deadline_ || budget_deadline < remote.deadline_) {
      remote.has_deadline_ = true;
      remote.deadline_ = budget_deadline;
    }
  }
  return remote;
}

double ExecContext::remaining_ms() const {
  if (!has_deadline_) return std::numeric_limits<double>::max();
  return std::chrono::duration<double, std::milli>(
             deadline_ - std::chrono::steady_clock::now())
      .count();
}

bool ExecContext::deadline_expired() const {
  return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
}

Status ExecContext::CheckContinue(const char* what) const {
  if (deadline_expired()) {
    return DeadlineExceeded(std::string(what) + ": deadline exceeded");
  }
  if (token_.cancelled()) {
    return Aborted(std::string(what) + ": cancelled");
  }
  return OkStatus();
}

Span* ExecContext::StartSpan(const std::string& name) const {
  if (trace_ == nullptr) return nullptr;
  Span* parent = parent_ != nullptr ? parent_ : trace_->root();
  return parent->StartChild(name);
}

ExecContext ExecContext::WithSpan(Span* span) const {
  ExecContext copy = *this;
  if (span != nullptr) copy.parent_ = span;
  return copy;
}

void ExecContext::Count(const std::string& name, int64_t delta) const {
  if (metrics_ == nullptr) return;
  metrics_->Add(name, delta);
  if (GlobalMetricsSink* sink = GetGlobalMetricsSink(); sink != nullptr) {
    sink->Add(name, delta);
  }
}

void ExecContext::Observe(const std::string& name, double value) const {
  if (metrics_ == nullptr) return;
  metrics_->Observe(name, value);
  if (GlobalMetricsSink* sink = GetGlobalMetricsSink(); sink != nullptr) {
    sink->Observe(name, value);
  }
}

void ExecContext::LogEvent(std::string category, std::string detail) const {
  if (log_ != nullptr) log_->AddEvent(std::move(category), std::move(detail));
}

void ExecContext::Attach(const std::string& name, std::string text) const {
  if (log_ != nullptr) log_->Attach(name, std::move(text));
}

}  // namespace vizq
