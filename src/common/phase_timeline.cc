#include "src/common/phase_timeline.h"

#include <algorithm>
#include <cstdio>

namespace vizq {

namespace {

std::atomic<bool> g_timelines_enabled{true};

// Top of this thread's scope stack. A request is driven by one thread at
// a time for its root phases (the serving thread; scheduler workers only
// Add() detail phases), so a per-thread stack is exactly the exclusivity
// we want: nested scopes pause their parent on the same thread, and
// scopes on other threads are unrelated.
thread_local PhaseScope* tls_top_scope = nullptr;

}  // namespace

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kClientQueue: return "client_queue";
    case Phase::kClientPrep: return "client_prep";
    case Phase::kAdmission: return "admission";
    case Phase::kCacheLookup: return "cache_lookup";
    case Phase::kPlan: return "plan";
    case Phase::kExecution: return "execution";
    case Phase::kMaterialize: return "materialize";
    case Phase::kLadder: return "ladder";
    case Phase::kRpc: return "rpc";
    case Phase::kQueueInteractive: return "queue_interactive";
    case Phase::kQueueBatch: return "queue_batch";
    case Phase::kQueueBackground: return "queue_background";
    case Phase::kRemoteExec: return "remote_exec";
  }
  return "?";
}

void PhaseTimeline::SetEnabled(bool enabled) {
  g_timelines_enabled.store(enabled, std::memory_order_relaxed);
}

bool PhaseTimeline::Enabled() {
  return g_timelines_enabled.load(std::memory_order_relaxed);
}

int64_t PhaseTimeline::attributed_ns() const {
  int64_t total = 0;
  for (int i = 0; i < kNumRootPhases; ++i) {
    total += ns_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::string PhaseTimeline::ToString() const {
  // snprintf into a stack buffer: this renders on serving threads (the
  // flight-recorder attachment), so no ostringstream construction — a
  // locale-aware stream costs more than the whole timeline bookkeeping.
  char buf[512];
  size_t len = 0;
  auto append = [&](const char* fmt, auto... vals) {
    if (len >= sizeof(buf)) return;
    int n = std::snprintf(buf + len, sizeof(buf) - len, fmt, vals...);
    if (n > 0) len = std::min(len + static_cast<size_t>(n), sizeof(buf) - 1);
  };
  for (int i = 0; i < kNumPhases; ++i) {
    int64_t ns = ns_[i].load(std::memory_order_relaxed);
    if (ns == 0) continue;
    append(len == 0 ? "%s=%.3fms" : " %s=%.3fms",
           PhaseName(static_cast<Phase>(i)), static_cast<double>(ns) / 1e6);
  }
  int r = rung();
  if (r >= 0) append(len == 0 ? "rung=%d" : " rung=%d", r);
  const char* o = outcome_.load(std::memory_order_relaxed);
  if (o != nullptr) append(len == 0 ? "outcome=%s" : " outcome=%s", o);
  return std::string(buf, len);
}

PhaseScope::PhaseScope(PhaseTimeline* timeline, Phase phase)
    : timeline_(timeline), phase_(phase) {
  if (timeline_ == nullptr) {
    ended_ = true;
    return;
  }
  // Same-phase nesting on the same timeline is an accounting no-op: the
  // child's time would land in the very bucket the paused parent is
  // already charging. Go inert instead of paying the pause/resume clock
  // reads — this is the hot per-query case (each cache probe opening
  // kCacheLookup under the batch loop's own kCacheLookup scope).
  if (tls_top_scope != nullptr && tls_top_scope->timeline_ == timeline_ &&
      tls_top_scope->phase_ == phase) {
    timeline_ = nullptr;
    ended_ = true;
    return;
  }
  auto now = std::chrono::steady_clock::now();
  parent_ = tls_top_scope;
  if (parent_ != nullptr) {
    // Pause the enclosing scope: bank its elapsed time; its clock restarts
    // when this scope ends. Exclusive accounting is unconditional — even a
    // parent on a *different* timeline stops, because this thread's time
    // now belongs to the nested work.
    parent_->accumulated_ns_ +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - parent_->started_)
            .count();
  }
  started_ = now;
  tls_top_scope = this;
}

void PhaseScope::End() {
  if (ended_) return;
  ended_ = true;
  auto now = std::chrono::steady_clock::now();
  accumulated_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         now - started_)
                         .count();
  timeline_->Add(phase_, accumulated_ns_);
  tls_top_scope = parent_;
  if (parent_ != nullptr) parent_->started_ = now;  // resume
}

}  // namespace vizq
