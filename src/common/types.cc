#include "src/common/types.h"

namespace vizq {

const char* TypeKindToString(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBool: return "bool";
    case TypeKind::kInt64: return "int64";
    case TypeKind::kFloat64: return "float64";
    case TypeKind::kString: return "string";
    case TypeKind::kDate: return "date";
  }
  return "unknown";
}

std::string DataType::ToString() const {
  std::string out = TypeKindToString(kind);
  if (kind == TypeKind::kString && collation != Collation::kBinary) {
    out += " collate ";
    out += CollationToString(collation);
  }
  return out;
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kCountStar: return "COUNT(*)";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kCountDistinct: return "COUNTD";
  }
  return "?";
}

DataType AggResultType(AggFunc f, const DataType& input) {
  switch (f) {
    case AggFunc::kSum:
      return input.kind == TypeKind::kFloat64 ? DataType::Float64()
                                              : DataType::Int64();
    case AggFunc::kMin:
    case AggFunc::kMax:
      return input;
    case AggFunc::kCount:
    case AggFunc::kCountStar:
    case AggFunc::kCountDistinct:
      return DataType::Int64();
    case AggFunc::kAvg:
      return DataType::Float64();
  }
  return DataType::Int64();
}

bool IsReaggregable(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
    case AggFunc::kCount:      // partial counts combine via SUM
    case AggFunc::kCountStar:  // ditto
    case AggFunc::kAvg:        // via SUM/COUNT decomposition
      return true;
    case AggFunc::kCountDistinct:
      return false;
  }
  return false;
}

}  // namespace vizq
