#include "src/cluster/placement.h"

#include <algorithm>

#include "src/common/rng.h"

namespace vizq::cluster {

namespace {

// splitmix64 finalizer: a full-avalanche mix, so inputs differing only in
// a few low bits (virtual-node indices) land uniformly on the ring.
// HashCombine alone is one weak round — a member's vnode points would all
// share their high bits and cluster in a single arc, collapsing every
// member to effectively one point.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over the bytes, seed stirred in, then finalized. FNV keeps
// ownership stable across platforms (no std::hash, whose value is
// implementation-defined — determinism per seed is a tested property).
uint64_t HashString(const std::string& s, uint64_t seed) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(HashCombine(h, seed));
}

}  // namespace

void ConsistentHashRing::AddNode(const std::string& node_id) {
  auto it = std::lower_bound(members_.begin(), members_.end(), node_id);
  if (it != members_.end() && *it == node_id) return;
  members_.insert(it, node_id);
  Rebuild();
}

void ConsistentHashRing::RemoveNode(const std::string& node_id) {
  auto it = std::lower_bound(members_.begin(), members_.end(), node_id);
  if (it == members_.end() || *it != node_id) return;
  members_.erase(it);
  Rebuild();
}

bool ConsistentHashRing::HasNode(const std::string& node_id) const {
  return std::binary_search(members_.begin(), members_.end(), node_id);
}

void ConsistentHashRing::Rebuild() {
  ring_.clear();
  ring_.reserve(members_.size() *
                static_cast<size_t>(std::max(1, options_.virtual_nodes)));
  for (int m = 0; m < static_cast<int>(members_.size()); ++m) {
    uint64_t base = HashString(members_[m], options_.seed);
    for (int v = 0; v < std::max(1, options_.virtual_nodes); ++v) {
      ring_.push_back(
          Point{Mix64(HashCombine(base, static_cast<uint64_t>(v) + 1)), m});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.member < b.member;  // deterministic tie-break
  });
}

std::string ConsistentHashRing::OwnerOf(const std::string& key) const {
  if (ring_.empty()) return std::string();
  uint64_t h = HashString(key, options_.seed);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, uint64_t hash) { return p.hash < hash; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return members_[static_cast<size_t>(it->member)];
}

}  // namespace vizq::cluster
