#include "src/cluster/node.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/binary_io.h"
#include "src/obs/metrics.h"

namespace vizq::cluster {

namespace {

constexpr uint8_t kMaxServedFrom =
    static_cast<uint8_t>(dashboard::ServedFrom::kFailed);
constexpr uint8_t kMaxTaskClass = static_cast<uint8_t>(TaskClass::kBackground);

}  // namespace

// --- wire codecs ---

std::string EncodeBatchRequest(const std::vector<query::AbstractQuery>& batch,
                               const WireBatchOptions& options) {
  BinaryWriter w;
  w.U32(static_cast<uint32_t>(batch.size()));
  for (const auto& q : batch) w.Str(q.Serialize());
  w.U8(options.cache_only ? 1 : 0);
  w.F64(options.max_result_age_ms);
  w.U8(options.cache_exact_only ? 1 : 0);
  w.U64(options.session_id);
  w.U8(static_cast<uint8_t>(options.priority));
  return w.TakeBytes();
}

StatusOr<std::pair<std::vector<query::AbstractQuery>, WireBatchOptions>>
DecodeBatchRequest(const std::string& payload) {
  BinaryReader r(payload);
  uint32_t count = 0;
  if (!r.U32(&count)) return DataLoss("batch request: truncated count");
  std::vector<query::AbstractQuery> batch;
  batch.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string bytes;
    if (!r.Str(&bytes)) return DataLoss("batch request: truncated query");
    VIZQ_ASSIGN_OR_RETURN(query::AbstractQuery q,
                          query::AbstractQuery::Deserialize(bytes));
    batch.push_back(std::move(q));
  }
  WireBatchOptions options;
  uint8_t cache_only = 0, exact_only = 0, priority = 0;
  if (!r.U8(&cache_only) || !r.F64(&options.max_result_age_ms) ||
      !r.U8(&exact_only) || !r.U64(&options.session_id) || !r.U8(&priority) ||
      !r.AtEnd()) {
    return DataLoss("batch request: truncated options");
  }
  if (priority > kMaxTaskClass) {
    return DataLoss("batch request: bad priority " + std::to_string(priority));
  }
  options.cache_only = cache_only != 0;
  options.cache_exact_only = exact_only != 0;
  options.priority = static_cast<TaskClass>(priority);
  return std::make_pair(std::move(batch), options);
}

std::string EncodeBatchResponse(const NodeBatchResult& result) {
  BinaryWriter w;
  w.U32(static_cast<uint32_t>(result.results.size()));
  for (size_t i = 0; i < result.results.size(); ++i) {
    w.Str(result.results[i].Serialize());
    const dashboard::QueryReport& qr =
        i < result.queries.size() ? result.queries[i]
                                  : dashboard::QueryReport{};
    w.U8(static_cast<uint8_t>(qr.served_from));
    w.F64(qr.ms);
    w.F64(qr.age_ms);
  }
  w.U32(static_cast<uint32_t>(result.remote_queries));
  w.U32(static_cast<uint32_t>(result.fused_groups));
  w.U32(static_cast<uint32_t>(result.local_resolved));
  w.U32(static_cast<uint32_t>(result.cache_hits));
  return w.TakeBytes();
}

StatusOr<NodeBatchResult> DecodeBatchResponse(const std::string& payload) {
  BinaryReader r(payload);
  uint32_t count = 0;
  if (!r.U32(&count)) return DataLoss("batch response: truncated count");
  NodeBatchResult result;
  result.results.reserve(count);
  result.queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string bytes;
    uint8_t served = 0;
    dashboard::QueryReport qr;
    if (!r.Str(&bytes) || !r.U8(&served) || !r.F64(&qr.ms) ||
        !r.F64(&qr.age_ms)) {
      return DataLoss("batch response: truncated result");
    }
    if (served > kMaxServedFrom) {
      return DataLoss("batch response: bad served_from " +
                      std::to_string(served));
    }
    qr.served_from = static_cast<dashboard::ServedFrom>(served);
    VIZQ_ASSIGN_OR_RETURN(ResultTable table, ResultTable::Deserialize(bytes));
    result.results.push_back(std::move(table));
    result.queries.push_back(qr);
  }
  uint32_t remote = 0, fused = 0, local = 0, hits = 0;
  if (!r.U32(&remote) || !r.U32(&fused) || !r.U32(&local) || !r.U32(&hits) ||
      !r.AtEnd()) {
    return DataLoss("batch response: truncated counters");
  }
  result.remote_queries = static_cast<int>(remote);
  result.fused_groups = static_cast<int>(fused);
  result.local_resolved = static_cast<int>(local);
  result.cache_hits = static_cast<int>(hits);
  return result;
}

// --- DataServerNode ---

DataServerNode::DataServerNode(NodeOptions options)
    : options_(std::move(options)) {}

Status DataServerNode::AddSource(const SourceSpec& spec) {
  auto hosted = std::make_shared<Hosted>();
  hosted->caches = std::make_shared<dashboard::CacheStack>(
      options_.cache, options_.literal_cache);
  hosted->caches->shared = options_.shared_tier;
  hosted->service = std::make_shared<dashboard::QueryService>(spec.backend,
                                                              hosted->caches);
  VIZQ_RETURN_IF_ERROR(hosted->service->RegisterView(spec.view));
  if (!spec.domains.empty()) {
    hosted->service->SetDomains(spec.view.name, spec.domains);
  }
  std::lock_guard<std::mutex> lock(mu_);
  hosted_[spec.view.name] = std::move(hosted);  // re-add replaces
  return OkStatus();
}

bool DataServerNode::RemoveSource(const std::string& view) {
  std::lock_guard<std::mutex> lock(mu_);
  return hosted_.erase(view) > 0;
}

bool DataServerNode::Serves(const std::string& view) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hosted_.count(view) > 0;
}

std::vector<std::string> DataServerNode::HostedViews() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> views;
  views.reserve(hosted_.size());
  for (const auto& [view, hosted] : hosted_) views.push_back(view);
  return views;
}

std::shared_ptr<DataServerNode::Hosted> DataServerNode::FindHosted(
    const std::string& view) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hosted_.find(view);
  return it == hosted_.end() ? nullptr : it->second;
}

Status DataServerNode::AcquireSlot(const ExecContext& ctx) {
  const int cap = std::max(1, options_.cpu_slots);
  std::unique_lock<std::mutex> lock(slots_mu_);
  while (slots_in_use_ >= cap) {
    VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("node cpu slot"));
    // Short waits so cancellation/deadline is observed promptly even when
    // no release wakes us.
    slots_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
  ++slots_in_use_;
  return OkStatus();
}

void DataServerNode::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    --slots_in_use_;
  }
  slots_cv_.notify_one();
}

rpc::RpcResponse DataServerNode::Handle(const ExecContext& ctx,
                                        const rpc::RpcRequest& request) {
  if (request.method == "execute_batch") return ExecuteBatchRpc(ctx, request);
  rpc::RpcResponse resp;
  resp.code = StatusCode::kUnimplemented;
  resp.message = "node " + options_.id + ": unknown method '" +
                 request.method + "'";
  return resp;
}

rpc::RpcResponse DataServerNode::ExecuteBatchRpc(
    const ExecContext& ctx, const rpc::RpcRequest& request) {
  rpc::RpcResponse resp;
  auto fail = [&resp](const Status& s) {
    resp.code = s.code();
    resp.message = s.message();
    return resp;
  };

  auto decoded = DecodeBatchRequest(request.payload);
  if (!decoded.ok()) return fail(decoded.status());
  const std::vector<query::AbstractQuery>& batch = decoded->first;
  const WireBatchOptions& wire = decoded->second;

  // Partition by view, preserving original positions. A view this node
  // does not host is a *stale placement* answer (kFailedPrecondition):
  // the caller's routing table lags a rebalance/failover, and the
  // retrying channel re-resolves the owner. It is deliberately distinct
  // from kNotFound, which means the view does not exist anywhere and
  // passes through to the client verbatim.
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch.size(); ++i) groups[batch[i].view].push_back(i);
  std::map<std::string, std::shared_ptr<Hosted>> services;
  for (const auto& [view, positions] : groups) {
    auto hosted = FindHosted(view);
    if (hosted == nullptr) {
      return fail(FailedPrecondition("node " + options_.id +
                                     " does not host view '" + view + "'"));
    }
    services[view] = std::move(hosted);
  }

  Status slot = AcquireSlot(ctx);
  if (!slot.ok()) return fail(slot);
  struct SlotGuard {
    DataServerNode* node;
    ~SlotGuard() { node->ReleaseSlot(); }
  } slot_guard{this};

  const auto start = std::chrono::steady_clock::now();
  NodeBatchResult out;
  out.results.resize(batch.size());
  out.queries.resize(batch.size());

  for (const auto& [view, positions] : groups) {
    std::vector<query::AbstractQuery> sub;
    sub.reserve(positions.size());
    for (size_t pos : positions) sub.push_back(batch[pos]);

    dashboard::BatchOptions opts = options_.batch;
    opts.cache_only = wire.cache_only;
    opts.max_result_age_ms = wire.max_result_age_ms;
    opts.cache_exact_only = wire.cache_exact_only;
    opts.session_id = wire.session_id;
    opts.priority = wire.priority;
    opts.node_id = options_.id;
    opts.compiler.temp_namespace = options_.id;

    dashboard::BatchReport report;
    auto results =
        services[view]->service->ExecuteBatch(ctx, sub, opts, &report);
    if (!results.ok()) return fail(results.status());  // typed, no partials

    for (size_t k = 0; k < positions.size(); ++k) {
      out.results[positions[k]] = std::move((*results)[k]);
      if (k < report.queries.size()) {
        out.queries[positions[k]] = report.queries[k];
      }
    }
    out.remote_queries += report.remote_queries;
    out.fused_groups += report.fused_groups;
    out.local_resolved += report.local_resolved;
    out.cache_hits += report.cache_hits;
  }

  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  batches_served_.fetch_add(1, std::memory_order_relaxed);
  ctx.Count(obs::Labeled("rpc.node.batches", "node", options_.id));
  ctx.Observe(obs::Labeled("rpc.node.ms", "node", options_.id), ms);

  resp.payload = EncodeBatchResponse(out);
  return resp;
}

}  // namespace vizq::cluster
