// ClusterCoordinator: scatter/gather execution across the sharded Data
// Server (DESIGN.md §15).
//
// The coordinator is the cluster-side BatchExecutor: the Frontend (and
// everything above it — admission, shed ladder, renderer) holds a
// BatchExecutor* and cannot tell whether batches run on the single-node
// QueryService or get scattered across N simulated DataServerNodes.
//
// Placement is a consistent-hash ring over node ids (placement.h): each
// published source's view name hashes to its owning node. ExecuteBatch
// groups the batch by view, scatters each group to its owner over the
// retrying channel (rpc/channel.h), and gathers positionally. Any group
// failure fails the whole batch with that group's *typed* error — a
// gather never returns silent partial results (the cluster fuzz lane's
// core invariant).
//
// Failure handling, two deliberately different paths:
//   * node DEATH (transport kAborted): the retry hook removes the node
//     from the ring and reassigns its sources to the surviving owners.
//     The shared cache tier is NOT invalidated — keeping a dead node's
//     published results warm for its successors is the point of the
//     §3.2 distributed layer, and the entries are still correct.
//   * administrative REBALANCE (Rebalance()/ReviveNode()): ownership
//     moves are accompanied by EraseNamespace(SharedKeyPrefix(view)) on
//     the moved views, the old owner stops serving them, and the new
//     owner starts fresh — the "rebalance leaves no stale owner
//     serving" property cluster_test checks.

#ifndef VIZQUERY_CLUSTER_COORDINATOR_H_
#define VIZQUERY_CLUSTER_COORDINATOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cluster/node.h"
#include "src/cluster/placement.h"
#include "src/rpc/channel.h"

namespace vizq::cluster {

struct ClusterOptions {
  int num_nodes = 4;
  PlacementOptions placement;
  rpc::TransportOptions transport;
  rpc::RetryOptions retry;
  // Template for every node ("n0".."n{N-1}"); id and shared_tier are
  // filled in by the coordinator.
  NodeOptions node;
  cache::DistributedCacheTier::Options shared_tier;
  // On a transport kAborted, remove the node from the ring and reassign
  // its sources before the retry (false = retries just keep failing,
  // which is what the "bounded recovery" bench measures against).
  bool auto_rebalance_on_failure = true;
};

class ClusterCoordinator : public dashboard::BatchExecutor {
 public:
  explicit ClusterCoordinator(ClusterOptions options = {});

  // Publishes a source to the cluster: the consistent-hash owner hosts
  // it. Idempotent per view name (re-publish re-registers).
  Status Publish(const SourceSpec& spec);

  // Scatter/gather over the owning nodes. Results are positional; on any
  // group failure the whole batch fails with that group's typed error.
  StatusOr<std::vector<ResultTable>> ExecuteBatch(
      const ExecContext& ctx, const std::vector<query::AbstractQuery>& batch,
      const dashboard::BatchOptions& options,
      dashboard::BatchReport* report) override;

  // Convenience for tests/benches.
  StatusOr<std::vector<ResultTable>> ExecuteBatch(
      const std::vector<query::AbstractQuery>& batch,
      const dashboard::BatchOptions& options = {},
      dashboard::BatchReport* report = nullptr) {
    return ExecuteBatch(ExecContext::Background(), batch, options, report);
  }

  // Failure injection: the node stops answering (in-flight calls lose
  // their responses). Detection is lazy — the next scatter that hits the
  // dead node triggers the failover via the retry hook.
  void KillNode(const std::string& node_id);
  // Brings the node back up, re-adds it to the ring, and runs an
  // administrative rebalance so it takes back its ring share.
  void ReviveNode(const std::string& node_id);
  // Re-derives every source's owner from the current ring and moves the
  // diffs (old owner stops serving, moved namespaces invalidated in the
  // shared tier). Returns how many sources moved.
  int Rebalance();

  // Current owner of a view ("" when unknown) — placement introspection.
  std::string OwnerOf(const std::string& view) const;

  struct Stats {
    int64_t failovers = 0;        // nodes removed after transport kAborted
    int64_t rebalances = 0;       // administrative rebalance passes
    int64_t moved_sources = 0;    // ownership moves (both paths)
    int64_t scattered_groups = 0; // per-view groups sent over the wire
  };
  Stats stats() const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  DataServerNode* node(const std::string& node_id);
  rpc::InProcessTransport& transport() { return transport_; }
  const std::shared_ptr<cache::DistributedCacheTier>& shared_tier() const {
    return shared_tier_;
  }
  int64_t retries() const { return retries_.load(std::memory_order_relaxed); }

 private:
  // One scattered per-view group's outcome.
  struct GroupResult {
    Status status;
    NodeBatchResult result;
    double remote_ms = 0;
  };

  GroupResult CallGroup(const ExecContext& ctx, const std::string& view,
                        const std::vector<query::AbstractQuery>& sub,
                        const WireBatchOptions& wire);

  // Retry hook: a transport kAborted marks the node dead and fails its
  // sources over to the ring's surviving owners (no cache invalidation —
  // see the header comment). Other retriable failures change nothing.
  void HandleNodeFailure(const std::string& node_id, const Status& status);

  // Moves ownership of `view` to `new_owner` with full administrative
  // semantics (old owner drops it, shared namespace erased). Requires
  // mu_ held; returns whether a move happened.
  bool MoveSourceLocked(const std::string& view, const std::string& new_owner);

  ClusterOptions options_;
  std::shared_ptr<cache::DistributedCacheTier> shared_tier_;
  rpc::InProcessTransport transport_;
  std::vector<std::unique_ptr<DataServerNode>> nodes_;
  std::map<std::string, DataServerNode*> nodes_by_id_;

  mutable std::mutex mu_;
  ConsistentHashRing ring_;
  std::map<std::string, SourceSpec> catalog_;   // by view name
  std::map<std::string, std::string> owner_;    // view -> node id
  Stats stats_;
  std::atomic<int64_t> retries_{0};
};

}  // namespace vizq::cluster

#endif  // VIZQUERY_CLUSTER_COORDINATOR_H_
