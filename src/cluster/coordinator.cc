#include "src/cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/scheduler.h"
#include "src/obs/metrics.h"

namespace vizq::cluster {

ClusterCoordinator::ClusterCoordinator(ClusterOptions options)
    : options_(std::move(options)),
      shared_tier_(
          std::make_shared<cache::DistributedCacheTier>(options_.shared_tier)),
      transport_(options_.transport),
      ring_(options_.placement) {
  const int n = std::max(1, options_.num_nodes);
  nodes_.reserve(n);
  for (int i = 0; i < n; ++i) {
    NodeOptions node_opts = options_.node;
    node_opts.id = "n" + std::to_string(i);
    node_opts.shared_tier = shared_tier_;
    nodes_.push_back(std::make_unique<DataServerNode>(std::move(node_opts)));
    DataServerNode* node = nodes_.back().get();
    nodes_by_id_[node->id()] = node;
    transport_.RegisterEndpoint(node->id(), node);
    ring_.AddNode(node->id());
  }
}

Status ClusterCoordinator::Publish(const SourceSpec& spec) {
  if (spec.view.name.empty()) {
    return InvalidArgument("cluster publish: view has no name");
  }
  if (spec.backend == nullptr) {
    return InvalidArgument("cluster publish: null backend for view '" +
                           spec.view.name + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string owner = ring_.OwnerOf(spec.view.name);
  if (owner.empty()) return Internal("cluster publish: empty ring");
  VIZQ_RETURN_IF_ERROR(nodes_by_id_.at(owner)->AddSource(spec));
  catalog_[spec.view.name] = spec;
  owner_[spec.view.name] = owner;
  return OkStatus();
}

std::string ClusterCoordinator::OwnerOf(const std::string& view) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owner_.find(view);
  return it == owner_.end() ? std::string() : it->second;
}

ClusterCoordinator::Stats ClusterCoordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

DataServerNode* ClusterCoordinator::node(const std::string& node_id) {
  auto it = nodes_by_id_.find(node_id);
  return it == nodes_by_id_.end() ? nullptr : it->second;
}

ClusterCoordinator::GroupResult ClusterCoordinator::CallGroup(
    const ExecContext& ctx, const std::string& view,
    const std::vector<query::AbstractQuery>& sub,
    const WireBatchOptions& wire) {
  GroupResult out;
  rpc::RetryingChannel channel(&transport_, options_.retry);
  auto resolve = [this, &view]() {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = owner_.find(view);
    return it == owner_.end() ? std::string() : it->second;
  };
  rpc::RetryingChannel::FailureHook on_failure;
  if (options_.auto_rebalance_on_failure) {
    on_failure = [this](const std::string& node_id, const Status& status) {
      HandleNodeFailure(node_id, status);
    };
  }
  auto resp = channel.Call(ctx, "execute_batch",
                           EncodeBatchRequest(sub, wire), resolve, on_failure);
  retries_.fetch_add(channel.retries(), std::memory_order_relaxed);
  if (!resp.ok()) {
    out.status = resp.status();
    return out;
  }
  if (resp->code != StatusCode::kOk) {
    out.status = resp->ToStatus();
    return out;
  }
  auto decoded = DecodeBatchResponse(resp->payload);
  if (!decoded.ok()) {
    out.status = decoded.status();
    return out;
  }
  if (decoded->results.size() != sub.size()) {
    out.status = DataLoss("cluster gather: node answered " +
                          std::to_string(decoded->results.size()) +
                          " results for " + std::to_string(sub.size()) +
                          " queries on view '" + view + "'");
    return out;
  }
  out.result = std::move(*decoded);
  out.remote_ms = resp->remote_ms;
  return out;
}

StatusOr<std::vector<ResultTable>> ClusterCoordinator::ExecuteBatch(
    const ExecContext& ctx, const std::vector<query::AbstractQuery>& batch,
    const dashboard::BatchOptions& options, dashboard::BatchReport* report) {
  const auto start = std::chrono::steady_clock::now();
  if (batch.empty()) return std::vector<ResultTable>{};
  VIZQ_RETURN_IF_ERROR(ctx.CheckContinue("cluster batch"));

  // Group by view; reject unknown views before any wire traffic (the
  // same verbatim kNotFound a single-node service would answer).
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch.size(); ++i) {
    groups[batch[i].view].push_back(i);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [view, positions] : groups) {
      if (catalog_.find(view) == catalog_.end()) {
        return NotFound("no view registered as '" + view + "'");
      }
    }
  }

  WireBatchOptions wire;
  wire.cache_only = options.cache_only;
  wire.max_result_age_ms = options.max_result_age_ms;
  wire.cache_exact_only = options.cache_exact_only;
  wire.session_id = options.session_id;
  wire.priority = options.priority;

  // The scatter/gather round trips are the request's `rpc` root phase:
  // node-side contexts carry no timeline (ForRemoteCall), so node work
  // cannot double-count, and the transport charges the remote share back
  // as the additive `remote_exec` detail phase.
  PhaseScope rpc_phase(ctx.timeline(), Phase::kRpc);

  std::vector<std::string> views;
  std::vector<std::vector<query::AbstractQuery>> subs;
  views.reserve(groups.size());
  subs.reserve(groups.size());
  for (const auto& [view, positions] : groups) {
    views.push_back(view);
    std::vector<query::AbstractQuery> sub;
    sub.reserve(positions.size());
    for (size_t pos : positions) sub.push_back(batch[pos]);
    subs.push_back(std::move(sub));
  }

  std::vector<GroupResult> outcomes(views.size());
  if (views.size() == 1) {
    outcomes[0] = CallGroup(ctx, views[0], subs[0], wire);
  } else {
    TaskGroup group(&Scheduler::Global(), options.priority, ctx,
                    options.max_parallel_queries, options.session_id);
    for (size_t g = 0; g < views.size(); ++g) {
      group.Spawn(
          [this, &ctx, &views, &subs, &outcomes, &wire, g]() {
            outcomes[g] = CallGroup(ctx, views[g], subs[g], wire);
          },
          "scatter@" + views[g]);
    }
    group.Wait();
  }

  // First failing group (deterministic view order) fails the whole batch
  // with its typed error — never silent partials.
  for (size_t g = 0; g < views.size(); ++g) {
    if (!outcomes[g].status.ok()) {
      ctx.Count("cluster.batch_failed");
      return outcomes[g].status;
    }
  }

  std::vector<ResultTable> results(batch.size());
  dashboard::BatchReport merged;
  merged.queries.resize(batch.size());
  size_t g = 0;
  double remote_ms = 0;
  for (const auto& [view, positions] : groups) {
    GroupResult& out = outcomes[g];
    for (size_t k = 0; k < positions.size(); ++k) {
      results[positions[k]] = std::move(out.result.results[k]);
      merged.queries[positions[k]] = out.result.queries[k];
    }
    merged.remote_queries += out.result.remote_queries;
    merged.fused_groups += out.result.fused_groups;
    merged.local_resolved += out.result.local_resolved;
    merged.cache_hits += out.result.cache_hits;
    remote_ms = std::max(remote_ms, out.remote_ms);
    ++g;
  }
  merged.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.scattered_groups += static_cast<int64_t>(views.size());
  }
  ctx.Count("cluster.batches");
  ctx.Count("cluster.scatter_groups", static_cast<int64_t>(views.size()));
  ctx.Observe("cluster.remote_ms", remote_ms);
  if (report != nullptr) *report = std::move(merged);
  return results;
}

void ClusterCoordinator::KillNode(const std::string& node_id) {
  transport_.SetEndpointUp(node_id, false);
}

void ClusterCoordinator::ReviveNode(const std::string& node_id) {
  if (nodes_by_id_.find(node_id) == nodes_by_id_.end()) return;
  transport_.SetEndpointUp(node_id, true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.AddNode(node_id);
  }
  Rebalance();
}

void ClusterCoordinator::HandleNodeFailure(const std::string& node_id,
                                           const Status& status) {
  // Only a dead endpoint (transport kAborted) is evidence the *node* is
  // gone; a full inbox or a corrupt envelope is transient and placement
  // should not churn over it.
  if (status.code() != StatusCode::kAborted) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!ring_.HasNode(node_id)) return;  // another group already failed it over
  ring_.RemoveNode(node_id);
  if (ring_.num_nodes() == 0) {
    // Last node died: nothing to fail over to; leave ownership so a
    // revive can restore it.
    ring_.AddNode(node_id);
    return;
  }
  stats_.failovers++;
  // Reassign the dead node's sources to the ring's surviving owners.
  // Deliberately NOT an administrative move: the shared tier keeps the
  // dead node's published entries — they are still correct, and serving
  // them warm from the successor is what the §3.2 layer is for.
  for (auto& [view, owner] : owner_) {
    if (owner != node_id) continue;
    const std::string new_owner = ring_.OwnerOf(view);
    Status added = nodes_by_id_.at(new_owner)->AddSource(catalog_.at(view));
    if (!added.ok()) continue;  // next scatter retries resolve again
    owner = new_owner;
    stats_.moved_sources++;
  }
  if (auto* sink = GetGlobalMetricsSink()) {
    sink->Add(obs::Labeled("cluster.failover", "node", node_id), 1);
  }
}

bool ClusterCoordinator::MoveSourceLocked(const std::string& view,
                                          const std::string& new_owner) {
  auto it = owner_.find(view);
  if (it == owner_.end() || it->second == new_owner) return false;
  // Administrative move: the old owner stops serving the view, its whole
  // shared-tier namespace is invalidated, then the new owner starts
  // fresh — no node can serve the view's pre-move entries.
  auto old_node = nodes_by_id_.find(it->second);
  if (old_node != nodes_by_id_.end()) old_node->second->RemoveSource(view);
  shared_tier_->EraseNamespace(cache::SharedKeyPrefix(view));
  Status added = nodes_by_id_.at(new_owner)->AddSource(catalog_.at(view));
  if (!added.ok()) return false;
  it->second = new_owner;
  return true;
}

int ClusterCoordinator::Rebalance() {
  std::lock_guard<std::mutex> lock(mu_);
  int moved = 0;
  for (const auto& [view, spec] : catalog_) {
    const std::string target = ring_.OwnerOf(view);
    if (target.empty()) continue;
    if (MoveSourceLocked(view, target)) ++moved;
  }
  stats_.rebalances++;
  stats_.moved_sources += moved;
  return moved;
}

}  // namespace vizq::cluster
