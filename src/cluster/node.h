// DataServerNode: one simulated Data Server in the sharded cluster.
//
// A node owns a slice of the published sources (assigned by the
// coordinator's consistent-hash placement) and serves `execute_batch`
// RPCs against them: each hosted source gets its own QueryService and
// per-node cache stack, sitting over the cluster-wide distributed tier
// (the §3.2 Redis/Cassandra layer) so a result computed on any node
// keeps every node warm. A bounded pool of cpu slots models the node's
// compute: batches queue (deadline-aware) for a slot, which is what
// makes aggregate goodput scale as nodes are added.
//
// Node-local state is namespaced by node id: temp-table definitions
// (TempTableRegistry scope via DataServerOptions) and compiled temp
// names (CompilerOptions::temp_namespace) — two nodes sharing a backend
// can never observe each other's temps.
//
// A request for a view the node does not host answers
// kFailedPrecondition ("stale placement"): the retrying channel
// re-resolves the owner and roams — this is the window during a
// rebalance where routing and hosting briefly disagree.

#ifndef VIZQUERY_CLUSTER_NODE_H_
#define VIZQUERY_CLUSTER_NODE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/dashboard/query_service.h"
#include "src/rpc/channel.h"

namespace vizq::cluster {

// One published source as the cluster sees it: the view to register and
// the backend to execute against. (Source name == view name.)
struct SourceSpec {
  query::ViewDefinition view;
  std::shared_ptr<federation::DataSource> backend;
  query::ColumnDomains domains;  // may be empty
};

struct NodeOptions {
  std::string id;
  // Concurrent batches this node can execute; further batches wait
  // (deadline-aware) for a slot. The cluster's scaling lever.
  int cpu_slots = 2;
  // Per-source cache sizing on this node.
  cache::IntelligentCacheOptions cache;
  cache::LiteralCacheOptions literal_cache;
  // Template pipeline options; per-request scalars (cache_only, ladder
  // freshness, session) are overridden from the RPC payload.
  dashboard::BatchOptions batch;
  // The cluster-wide cache tier behind every hosted source (may be null).
  std::shared_ptr<cache::DistributedCacheTier> shared_tier;
};

// The scalar batch options that cross the wire with a scattered batch
// (everything else comes from the node's template options).
struct WireBatchOptions {
  bool cache_only = false;
  double max_result_age_ms = -1.0;
  bool cache_exact_only = false;
  uint64_t session_id = 0;
  TaskClass priority = TaskClass::kInteractive;
};

// What one node answered for one scattered batch.
struct NodeBatchResult {
  std::vector<ResultTable> results;  // positional, same order as request
  std::vector<dashboard::QueryReport> queries;
  int remote_queries = 0;
  int fused_groups = 0;
  int local_resolved = 0;
  int cache_hits = 0;
};

// Payload codecs for the "execute_batch" method, shared by the node
// (decode request / encode response) and the coordinator (the reverse).
std::string EncodeBatchRequest(const std::vector<query::AbstractQuery>& batch,
                               const WireBatchOptions& options);
StatusOr<std::pair<std::vector<query::AbstractQuery>, WireBatchOptions>>
DecodeBatchRequest(const std::string& payload);
std::string EncodeBatchResponse(const NodeBatchResult& result);
StatusOr<NodeBatchResult> DecodeBatchResponse(const std::string& payload);

class DataServerNode : public rpc::RpcHandler {
 public:
  explicit DataServerNode(NodeOptions options);

  const std::string& id() const { return options_.id; }

  // Source management (called by the coordinator under its placement
  // lock; also safe concurrently with Handle()).
  Status AddSource(const SourceSpec& spec);
  bool RemoveSource(const std::string& view);
  bool Serves(const std::string& view) const;
  std::vector<std::string> HostedViews() const;

  // rpc::RpcHandler: "execute_batch" over hosted sources.
  rpc::RpcResponse Handle(const ExecContext& ctx,
                          const rpc::RpcRequest& request) override;

  int64_t batches_served() const {
    return batches_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Hosted {
    std::shared_ptr<dashboard::CacheStack> caches;
    std::shared_ptr<dashboard::QueryService> service;
  };

  // Blocks until a cpu slot frees or the deadline passes.
  Status AcquireSlot(const ExecContext& ctx);
  void ReleaseSlot();

  std::shared_ptr<Hosted> FindHosted(const std::string& view) const;

  rpc::RpcResponse ExecuteBatchRpc(const ExecContext& ctx,
                                   const rpc::RpcRequest& request);

  NodeOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Hosted>> hosted_;  // by view name

  std::mutex slots_mu_;
  std::condition_variable slots_cv_;
  int slots_in_use_ = 0;

  std::atomic<int64_t> batches_served_{0};
};

}  // namespace vizq::cluster

#endif  // VIZQUERY_CLUSTER_NODE_H_
