// Consistent-hash placement of published data sources onto data-server
// nodes (the Hillview-style partitioning the cluster coordinator routes
// by). Each node contributes `virtual_nodes` points on a 64-bit hash
// ring; a source is owned by the first node point at or after the hash
// of its name. The properties cluster_test checks:
//
//   * determinism — ownership is a pure function of (members, seed);
//   * minimal movement — adding or removing one of N nodes re-homes at
//     most ~K/N + eps of K sources (the whole point of consistent
//     hashing vs `hash % N`, which moves nearly everything);
//   * virtual nodes smooth the load split across members.
//
// Not thread-safe: the ClusterCoordinator owns the ring and guards it
// with its own membership lock.

#ifndef VIZQUERY_CLUSTER_PLACEMENT_H_
#define VIZQUERY_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vizq::cluster {

struct PlacementOptions {
  // Ring points per node. More points -> smoother split, larger ring.
  int virtual_nodes = 64;
  // Mixed into every ring hash, so two clusters with the same member
  // names can still be given independent placements.
  uint64_t seed = 0;
};

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(PlacementOptions options = {})
      : options_(options) {}

  // Adding an existing member or removing an absent one is a no-op.
  void AddNode(const std::string& node_id);
  void RemoveNode(const std::string& node_id);
  bool HasNode(const std::string& node_id) const;

  // The member owning `key` (a published source name). Empty string when
  // the ring has no members.
  std::string OwnerOf(const std::string& key) const;

  // Current members, sorted by id.
  std::vector<std::string> nodes() const { return members_; }
  int num_nodes() const { return static_cast<int>(members_.size()); }

  const PlacementOptions& options() const { return options_; }

 private:
  void Rebuild();

  struct Point {
    uint64_t hash;
    // Index into members_; the ring stores indices so membership churn
    // does not copy node-id strings per virtual point.
    int member;
  };

  PlacementOptions options_;
  std::vector<std::string> members_;  // sorted
  std::vector<Point> ring_;           // sorted by hash
};

}  // namespace vizq::cluster

#endif  // VIZQUERY_CLUSTER_PLACEMENT_H_
