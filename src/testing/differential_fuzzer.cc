#include "src/testing/differential_fuzzer.h"

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "src/common/rng.h"
#include "src/testing/join_fuzz.h"
#include "src/testing/query_gen.h"
#include "src/testing/reference_oracle.h"

namespace vizq::testing {

namespace {

using query::AbstractQuery;
using query::ColumnPredicate;
using query::OrderSpec;

// Drops order-by entries that no longer name an output column (the
// minimizer removes dimensions/measures greedily).
void PruneOrderBy(AbstractQuery* q) {
  std::set<std::string> names;
  for (const std::string& n : q->OutputNames()) names.insert(n);
  std::vector<OrderSpec> kept;
  for (const OrderSpec& o : q->order_by) {
    if (names.count(o.by_alias) > 0) kept.push_back(o);
  }
  q->order_by = std::move(kept);
  if (q->order_by.empty()) q->limit = 0;
}

bool IsValidQuery(const AbstractQuery& q) {
  return !q.dimensions.empty() || !q.measures.empty();
}

// Candidate shrinking steps, coarse first. Each returns a modified copy.
std::vector<AbstractQuery> ShrinkCandidates(const AbstractQuery& q) {
  std::vector<AbstractQuery> out;
  auto push = [&](AbstractQuery c) {
    PruneOrderBy(&c);
    c.Canonicalize();
    if (IsValidQuery(c)) out.push_back(std::move(c));
  };

  if (!q.order_by.empty() || q.has_limit()) {
    AbstractQuery c = q;
    c.order_by.clear();
    c.limit = 0;
    push(std::move(c));
  }
  for (size_t i = 0; i < q.filters.predicates.size(); ++i) {
    AbstractQuery c = q;
    c.filters.predicates.erase(c.filters.predicates.begin() + i);
    push(std::move(c));
  }
  for (size_t i = 0; i < q.measures.size(); ++i) {
    AbstractQuery c = q;
    c.measures.erase(c.measures.begin() + i);
    push(std::move(c));
  }
  for (size_t i = 0; i < q.dimensions.size(); ++i) {
    AbstractQuery c = q;
    c.dimensions.erase(c.dimensions.begin() + i);
    push(std::move(c));
  }
  // Halve IN-lists; drop range bounds.
  for (size_t i = 0; i < q.filters.predicates.size(); ++i) {
    const ColumnPredicate& p = q.filters.predicates[i];
    if (p.kind == ColumnPredicate::Kind::kInSet && p.values.size() > 1) {
      size_t half = p.values.size() / 2;
      AbstractQuery c1 = q;
      c1.filters.predicates[i].values.assign(p.values.begin(),
                                             p.values.begin() + half);
      push(std::move(c1));
      AbstractQuery c2 = q;
      c2.filters.predicates[i].values.assign(p.values.begin() + half,
                                             p.values.end());
      push(std::move(c2));
    } else if (p.kind == ColumnPredicate::Kind::kRange) {
      if (p.lower.has_value() && p.upper.has_value()) {
        AbstractQuery c1 = q;
        c1.filters.predicates[i].lower.reset();
        push(std::move(c1));
        AbstractQuery c2 = q;
        c2.filters.predicates[i].upper.reset();
        push(std::move(c2));
      }
    }
  }
  return out;
}

}  // namespace

bool LaneStillFails(const Dataset& ds, const LaneSetupOptions& lane_options,
                    const AbstractQuery& q, const std::string& lane,
                    uint64_t lane_seed, std::string* detail) {
  ExecutionLanes lanes(ds, lane_options);
  std::vector<LaneCheck> checks;
  if (lane == "batch_fused" || lane == "batch_unfused" ||
      lane == "cluster_batch") {
    checks = lanes.RunBatch({q}, lane_seed);
  } else {
    checks = lanes.RunQuery(q, lane_seed);
  }
  for (const LaneCheck& c : checks) {
    if (c.lane == lane && !c.ok) {
      if (detail != nullptr) *detail = c.detail;
      return true;
    }
  }
  return false;
}

namespace {

// Greedy shrink to a fixpoint: repeatedly take the first candidate that
// still fails the lane on a fresh lane set. Bounded by a re-execution
// budget so pathological cases cannot stall the run.
AbstractQuery Minimize(const Dataset& ds, const LaneSetupOptions& lane_options,
                       const AbstractQuery& q, const std::string& lane,
                       uint64_t lane_seed, bool* standalone) {
  std::string detail;
  if (!LaneStillFails(ds, lane_options, q, lane, lane_seed, &detail)) {
    // Not reproducible in isolation: the failure needed cross-query cache
    // state from earlier queries in the window.
    *standalone = false;
    return q;
  }
  *standalone = true;
  AbstractQuery current = q;
  int budget = 150;
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    for (AbstractQuery& candidate : ShrinkCandidates(current)) {
      if (--budget <= 0) break;
      if (LaneStillFails(ds, lane_options, candidate, lane, lane_seed,
                         nullptr)) {
        current = std::move(candidate);
        improved = true;
        break;
      }
    }
  }
  return current;
}

void RecordFailures(const std::vector<LaneCheck>& checks, int iteration,
                    uint64_t dataset_seed, uint64_t lane_seed,
                    const std::map<std::string, AbstractQuery>& by_key,
                    const Dataset& ds, const LaneSetupOptions& lane_options,
                    const FuzzOptions& options,
                    std::set<std::string>* seen_failures,
                    FuzzReport* report) {
  for (const LaneCheck& c : checks) {
    if (c.ok) continue;
    if (static_cast<int>(report->failures.size()) >= options.max_failures) {
      return;
    }
    // One report per (lane, query) pair.
    std::string fp = c.lane + "|" + c.query_key;
    if (!seen_failures->insert(fp).second) continue;

    FuzzFailure f;
    f.iteration = iteration;
    f.dataset_seed = dataset_seed;
    f.lane_seed = lane_seed;
    f.lane = c.lane;
    f.detail = c.detail;
    auto it = by_key.find(c.query_key);
    if (it != by_key.end()) f.query = it->second;
    f.minimized = f.query;
    bool metamorphic_lane = c.lane.rfind("metamorphic", 0) == 0;
    if (options.minimize && it != by_key.end() && !metamorphic_lane) {
      bool standalone = false;
      f.minimized = Minimize(ds, lane_options, f.query, c.lane, lane_seed,
                             &standalone);
      if (!standalone) {
        f.detail +=
            " [not reproducible standalone: needs cross-query cache state "
            "from this dataset window]";
      }
    }
    report->failures.push_back(std::move(f));
  }
}

}  // namespace

std::string FuzzFailure::ToString() const {
  std::ostringstream os;
  os << "lane=" << lane << " iteration=" << iteration
     << " dataset_seed=" << dataset_seed << " lane_seed=" << lane_seed
     << "\n  query:     " << query.ToKeyString()
     << "\n  minimized: " << minimized.ToKeyString() << "\n  detail:    "
     << detail;
  return os.str();
}

std::string FuzzReport::Summary() const {
  std::ostringstream os;
  os << "differential fuzz: " << iterations_run << " iterations, "
     << queries_generated << " queries, " << lane_checks << " lane checks, "
     << failures.size() << " failure(s)";
  for (const FuzzFailure& f : failures) {
    os << "\n--- FAILURE ---\n" << f.ToString();
  }
  return os.str();
}

FuzzReport RunDifferentialFuzz(const FuzzOptions& options) {
  FuzzReport report;
  LaneSetupOptions lane_options;
  lane_options.include_federated = options.include_federated;
  lane_options.deadline_lane = options.deadline_lane;
  lane_options.stale_shed_lane = options.stale_shed_lane;
  lane_options.cluster_lane = options.cluster_lane;
  lane_options.inject_offby_one = options.inject_offby_one;
  lane_options.diff = options.diff;

  Dataset ds;
  std::unique_ptr<ExecutionLanes> lanes;
  uint64_t dataset_seed = 0;
  std::set<std::string> seen_failures;

  for (int iter = 0; iter < options.iterations; ++iter) {
    if (static_cast<int>(report.failures.size()) >= options.max_failures) {
      break;
    }
    uint64_t iter_seed = HashCombine(options.seed, static_cast<uint64_t>(iter));
    if (lanes == nullptr || iter % options.dataset_every == 0) {
      dataset_seed = iter_seed;
      ds = GenerateDataset(dataset_seed);
      lanes = std::make_unique<ExecutionLanes>(ds, lane_options);
    }
    ++report.iterations_run;

    Rng rng(HashCombine(iter_seed, 0x9e3779));
    std::vector<AbstractQuery> batch;
    std::map<std::string, AbstractQuery> by_key;
    for (int i = 0; i < options.queries_per_iteration; ++i) {
      AbstractQuery q = GenerateQuery(ds, rng);
      by_key.emplace(q.ToKeyString(), q);
      batch.push_back(std::move(q));
    }
    report.queries_generated += static_cast<int>(batch.size());

    for (size_t i = 0; i < batch.size(); ++i) {
      uint64_t lane_seed = HashCombine(iter_seed, 0xface + i);
      auto checks = lanes->RunQuery(batch[i], lane_seed);
      RecordFailures(checks, iter, dataset_seed, lane_seed, by_key, ds,
                     lane_options, options, &seen_failures, &report);
    }
    {
      uint64_t batch_seed = HashCombine(iter_seed, 0xba7c4);
      auto checks = lanes->RunBatch(batch, batch_seed);
      RecordFailures(checks, iter, dataset_seed, batch_seed, by_key, ds,
                     lane_options, options, &seen_failures, &report);
    }

    // --- metamorphic cross-checks on the first query of the batch ---
    if (options.metamorphic && !batch.empty()) {
      AbstractQuery base = batch[0];
      base.order_by.clear();
      base.limit = 0;
      base.Canonicalize();
      std::vector<LaneCheck> checks;
      std::map<std::string, AbstractQuery> meta_keys;

      auto split = SplitInFilter(base, rng);
      if (split.has_value()) {
        auto a = lanes->ExecuteTruth(split->first);
        auto b = lanes->ExecuteTruth(split->second);
        auto oracle = lanes->OracleFor(base);
        ++report.lane_checks;
        if (a.ok() && b.ok() && oracle.ok()) {
          ResultTable merged(std::vector<ResultColumn>(a->columns()));
          for (const auto& row : a->rows()) merged.AddRow(row);
          for (const auto& row : b->rows()) merged.AddRow(row);
          DiffResult diff = DiffTables(oracle->limited, merged, options.diff);
          if (!diff.equivalent) {
            checks.push_back(LaneCheck{
                "metamorphic_split", false,
                "union of IN-split parts differs from whole: " + diff.message +
                    " [parts: " + split->first.ToKeyString() + " | " +
                    split->second.ToKeyString() + "]",
                base.ToKeyString()});
            meta_keys.emplace(base.ToKeyString(), base);
          }
        }
      }

      auto coarse = RollUpQuery(base, rng);
      if (coarse.has_value()) {
        auto fine = lanes->ExecuteTruth(base);
        auto coarse_res = lanes->ExecuteTruth(*coarse);
        ++report.lane_checks;
        if (fine.ok() && coarse_res.ok() && fine->num_rows() > 0) {
          AbstractQuery spec = RollupSpec(base, *coarse);
          auto rolled = OracleAggregateRows(fine->columns(), fine->rows(),
                                            spec);
          if (rolled.ok()) {
            DiffResult diff = DiffTables(*rolled, *coarse_res, options.diff);
            if (!diff.equivalent) {
              checks.push_back(LaneCheck{
                  "metamorphic_rollup", false,
                  "coarse result differs from roll-up of fine result: " +
                      diff.message + " [fine: " + base.ToKeyString() + "]",
                  coarse->ToKeyString()});
              meta_keys.emplace(coarse->ToKeyString(), *coarse);
            }
          }
        }
      }
      RecordFailures(checks, iter, dataset_seed,
                     HashCombine(iter_seed, 0x3e7a), meta_keys, ds,
                     lane_options, options, &seen_failures, &report);
    }

    // --- join lane: a generated two-table equi-join vs the nested-loop
    // oracle join (join_fuzz.h). No minimizer entry: the case description
    // rides in the failure detail, and the fingerprint dedups per case. ---
    if (options.join_lane) {
      JoinFuzzCase jc = GenerateJoinCase(ds, rng);
      auto checks = RunJoinLanes(ds, jc, options.diff);
      report.lane_checks += static_cast<int64_t>(checks.size());
      RecordFailures(checks, iter, dataset_seed,
                     HashCombine(iter_seed, 0x107a9), {}, ds, lane_options,
                     options, &seen_failures, &report);
    }

    report.lane_checks = lanes->checks_run() + report.lane_checks;
  }
  return report;
}

}  // namespace vizq::testing
