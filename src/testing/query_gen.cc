#include "src/testing/query_gen.h"

#include <algorithm>
#include <set>
#include <utility>

namespace vizq::testing {

namespace {

using query::AbstractQuery;
using query::ColumnPredicate;
using query::Measure;
using query::OrderSpec;

// Non-null members of a pool.
std::vector<Value> NonNull(const std::vector<Value>& pool) {
  std::vector<Value> out;
  for (const Value& v : pool) {
    if (!v.is_null()) out.push_back(v);
  }
  return out;
}

Measure RandomMeasure(const Dataset& ds, Rng& rng) {
  static const AggFunc kFuncs[] = {
      AggFunc::kSum,   AggFunc::kMin,       AggFunc::kMax,
      AggFunc::kCount, AggFunc::kCountStar, AggFunc::kAvg,
      AggFunc::kCountDistinct,
  };
  AggFunc func = kFuncs[rng.Below(7)];
  Measure m;
  m.func = func;
  if (func == AggFunc::kCountStar) return m;
  if (func == AggFunc::kSum || func == AggFunc::kAvg) {
    // Numeric-only arguments: the int dim or either measure column.
    static const char* kNumeric[] = {"d2", "m0", "m1"};
    m.column = kNumeric[rng.Below(3)];
  } else {
    // MIN/MAX/COUNT/COUNTD take any column.
    std::vector<std::string> all = ds.all_columns();
    m.column = all[rng.Below(all.size())];
  }
  return m;
}

ColumnPredicate RandomPredicate(const Dataset& ds, const std::string& column,
                                Rng& rng) {
  const std::vector<Value>& pool = ds.pools.at(column);
  if (rng.Chance(0.55)) {
    // IN-set.
    std::vector<Value> values;
    std::vector<Value> candidates = NonNull(pool);
    size_t want;
    if (candidates.size() > 60 && rng.Chance(0.35)) {
      // Large enumeration: big enough to trip IN-externalization on
      // backends with a low externalize threshold.
      want = 60 + rng.Below(candidates.size() - 60);
    } else {
      want = 1 + rng.Below(std::min<size_t>(5, candidates.size()));
    }
    // Sample without replacement via partial shuffle.
    for (size_t i = 0; i < want && i < candidates.size(); ++i) {
      size_t j = i + rng.Below(candidates.size() - i);
      std::swap(candidates[i], candidates[j]);
      values.push_back(candidates[i]);
    }
    // A NULL literal in the set matches nothing — adversarial but legal.
    if (rng.Chance(0.15)) values.push_back(Value::Null());
    return ColumnPredicate::InSet(column, std::move(values));
  }
  // Range, possibly one-sided, random inclusivity.
  std::vector<Value> candidates = NonNull(pool);
  Value a = candidates[rng.Below(candidates.size())];
  Value b = candidates[rng.Below(candidates.size())];
  if (a.Compare(b) > 0) std::swap(a, b);
  std::optional<Value> lower = a;
  std::optional<Value> upper = b;
  if (rng.Chance(0.25)) lower.reset();
  else if (rng.Chance(0.25)) upper.reset();
  return ColumnPredicate::Range(column, lower, upper, rng.Chance(0.8),
                                rng.Chance(0.8));
}

}  // namespace

AbstractQuery GenerateQuery(const Dataset& ds, Rng& rng) {
  AbstractQuery q;
  q.data_source = kFuzzDataSource;
  q.view = ds.table;

  for (const std::string& d : ds.dim_columns) {
    if (rng.Chance(0.4)) q.dimensions.push_back(d);
  }

  size_t n_measures = rng.Below(4);
  if (q.dimensions.empty() && n_measures == 0) n_measures = 1;
  std::set<std::string> seen;
  for (size_t i = 0; i < n_measures; ++i) {
    Measure m = RandomMeasure(ds, rng);
    if (!seen.insert(m.ToKeyString()).second) continue;  // dedup aliases
    q.measures.push_back(std::move(m));
  }
  if (q.dimensions.empty() && q.measures.empty()) {
    q.measures.push_back(Measure{AggFunc::kCountStar, "", ""});
  }

  // 0..2 predicates over distinct columns.
  size_t n_filters = rng.Below(3);
  std::vector<std::string> cols = ds.all_columns();
  std::set<std::string> filtered;
  for (size_t i = 0; i < n_filters; ++i) {
    const std::string& col = cols[rng.Below(cols.size())];
    if (!filtered.insert(col).second) continue;
    q.filters.predicates.push_back(RandomPredicate(ds, col, rng));
  }

  if (rng.Chance(0.35)) {
    std::vector<std::string> names = q.OutputNames();
    size_t n_keys = 1 + rng.Below(std::min<size_t>(2, names.size()));
    std::set<std::string> used;
    for (size_t i = 0; i < n_keys; ++i) {
      const std::string& name = names[rng.Below(names.size())];
      if (!used.insert(name).second) continue;
      q.order_by.push_back(OrderSpec{name, rng.Chance(0.5)});
    }
    if (rng.Chance(0.6)) q.limit = 1 + static_cast<int64_t>(rng.Below(10));
  }

  q.Canonicalize();
  return q;
}

std::optional<std::pair<AbstractQuery, AbstractQuery>> SplitInFilter(
    const AbstractQuery& q, Rng& rng) {
  for (size_t pi = 0; pi < q.filters.predicates.size(); ++pi) {
    const ColumnPredicate& p = q.filters.predicates[pi];
    if (p.kind != ColumnPredicate::Kind::kInSet) continue;
    bool is_dim = false;
    for (const std::string& d : q.dimensions) {
      if (d == p.column) is_dim = true;
    }
    if (!is_dim) continue;
    std::vector<Value> values = p.values;
    if (values.size() < 2) continue;
    // Random nonempty bipartition.
    size_t cut = 1 + rng.Below(values.size() - 1);
    std::vector<Value> first(values.begin(), values.begin() + cut);
    std::vector<Value> second(values.begin() + cut, values.end());
    AbstractQuery a = q, b = q;
    a.filters.predicates[pi] = ColumnPredicate::InSet(p.column, first);
    b.filters.predicates[pi] = ColumnPredicate::InSet(p.column, second);
    a.Canonicalize();
    b.Canonicalize();
    return std::make_pair(std::move(a), std::move(b));
  }
  return std::nullopt;
}

std::optional<AbstractQuery> RollUpQuery(const AbstractQuery& q, Rng& rng) {
  if (q.dimensions.empty() || q.has_limit()) return std::nullopt;
  for (const Measure& m : q.measures) {
    if (m.func == AggFunc::kAvg || m.func == AggFunc::kCountDistinct) {
      return std::nullopt;  // not re-aggregable from the fine result
    }
  }
  AbstractQuery coarse = q;
  coarse.order_by.clear();
  coarse.limit = 0;
  // Drop a random nonempty subset of the dimensions.
  size_t n_drop = 1 + rng.Below(q.dimensions.size());
  if (n_drop == q.dimensions.size() && coarse.measures.empty()) {
    if (q.dimensions.size() == 1) return std::nullopt;
    n_drop = q.dimensions.size() - 1;  // keep a domain query nonempty
  }
  std::vector<std::string> dims = q.dimensions;
  for (size_t i = 0; i < n_drop; ++i) {
    size_t j = i + rng.Below(dims.size() - i);
    std::swap(dims[i], dims[j]);
  }
  coarse.dimensions.assign(dims.begin() + n_drop, dims.end());
  coarse.Canonicalize();
  return coarse;
}

AbstractQuery RollupSpec(const AbstractQuery& fine,
                         const AbstractQuery& coarse) {
  AbstractQuery spec;
  spec.data_source = fine.data_source;
  spec.view = fine.view;
  spec.dimensions = coarse.dimensions;
  for (const Measure& m : coarse.measures) {
    Measure rolled;
    rolled.alias = m.EffectiveAlias();
    switch (m.func) {
      case AggFunc::kSum:
      case AggFunc::kCount:
      case AggFunc::kCountStar:
        // Sums and counts combine by summation over the fine column.
        rolled.func = AggFunc::kSum;
        rolled.column = m.EffectiveAlias();
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        rolled.func = m.func;
        rolled.column = m.EffectiveAlias();
        break;
      default:
        rolled.func = m.func;  // unreachable: RollUpQuery filtered these
        rolled.column = m.EffectiveAlias();
        break;
    }
    spec.measures.push_back(std::move(rolled));
  }
  return spec;
}

}  // namespace vizq::testing
