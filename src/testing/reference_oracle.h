// ReferenceOracle: a deliberately naive, row-at-a-time evaluator of
// AbstractQuery against a TDE table, written independently of the TDE
// operator code, the cache post-processors and the compiler. It is the
// single source of truth the differential fuzzer diffs every execution
// lane against.
//
// Semantics contract (see DESIGN.md §8):
//   * Predicates use SQL three-valued logic collapsed to a boolean: a NULL
//     cell satisfies no predicate — not even a NULL literal inside an
//     IN-set. Range bounds compare with Value::Compare.
//   * GROUP BY treats NULL as an ordinary key value: rows with a NULL
//     dimension form their own group, and NULL==NULL for grouping.
//   * Aggregates skip NULL inputs. COUNT(*) counts all rows; COUNT(c) and
//     COUNTD(c) count non-null (distinct) values; SUM/MIN/MAX over zero
//     non-null inputs are NULL; AVG is NULL when the non-null count is 0.
//   * SUM over integer inputs accumulates in exact int64; over doubles in
//     double.
//   * A scalar aggregate (no dimensions) always emits exactly one row,
//     even over an empty input relation.
//   * A dimensions-only query returns the distinct dimension tuples
//     (including NULL tuples).
//   * ORDER BY sorts with Value::Compare — NULL first ascending, last
//     descending — using a stable sort; LIMIT truncates after the sort.

#ifndef VIZQUERY_TESTING_REFERENCE_ORACLE_H_
#define VIZQUERY_TESTING_REFERENCE_ORACLE_H_

#include "src/common/result_table.h"
#include "src/common/status.h"
#include "src/query/abstract_query.h"
#include "src/tde/storage/table.h"

namespace vizq::testing {

// Evaluates `q` against `table` (schema columns referenced by name).
// Ignores q.data_source/q.view — the caller picked the table.
StatusOr<ResultTable> OracleExecute(const tde::Table& table,
                                    const query::AbstractQuery& q);

// Same, over an already-materialized row set (used by the metamorphic
// roll-up check, which re-aggregates a lane's fine-grained result).
StatusOr<ResultTable> OracleAggregateRows(
    const std::vector<ResultColumn>& input_columns,
    const std::vector<ResultTable::Row>& input_rows,
    const query::AbstractQuery& q);

}  // namespace vizq::testing

#endif  // VIZQUERY_TESTING_REFERENCE_ORACLE_H_
