#include "src/testing/dataset_gen.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace vizq::testing {

namespace {

// Profile of one string dimension column.
struct StringDimProfile {
  std::vector<std::string> pool;  // non-null values that may occur
  double null_frac = 0;
  bool sorted_runs = false;  // emit pool values in long sorted runs (RLE)
};

StringDimProfile MakeStringDimProfile(Rng& rng, const std::string& prefix) {
  StringDimProfile p;
  // Cardinality classes: single-value, tiny, medium, high-cardinality.
  static const int kCards[] = {1, 2, 8, 40, 300};
  int card = kCards[rng.Below(5)];
  p.pool.reserve(card);
  for (int i = 0; i < card; ++i) {
    p.pool.push_back(prefix + std::to_string(i));
  }
  // Adversarial members: strings that collide with textual renderings of
  // NULL and of numbers, plus an empty string.
  if (rng.Chance(0.5)) p.pool.push_back("NULL");
  if (rng.Chance(0.3)) p.pool.push_back("");
  if (rng.Chance(0.3)) p.pool.push_back("0");
  static const double kNullFracs[] = {0.0, 0.05, 0.3, 0.9};
  p.null_frac = kNullFracs[rng.Below(4)];
  p.sorted_runs = rng.Chance(0.3);
  return p;
}

}  // namespace

Dataset GenerateDataset(uint64_t seed) {
  using tde::ColumnInfo;
  using tde::TableBuilder;

  Rng rng(HashCombine(seed, 0xda7a5e7));
  Dataset ds;
  ds.dim_columns = {"d0", "d1", "d2", "day"};
  ds.measure_columns = {"m0", "m1"};

  // Row-count classes, empty table included.
  static const int64_t kRowCounts[] = {0, 1, 2, 7, 30, 120, 400};
  ds.rows = kRowCounts[rng.Below(7)];

  StringDimProfile d0 = MakeStringDimProfile(rng, "a");
  StringDimProfile d1 = MakeStringDimProfile(rng, "b");

  // d2: small int domain, possibly negative, possibly nullable.
  int64_t d2_card = 1 + static_cast<int64_t>(rng.Below(6));
  int64_t d2_base = rng.Chance(0.3) ? -3 : 0;
  double d2_null_frac = rng.Chance(0.3) ? 0.2 : 0.0;

  // day: a month of dates.
  int64_t day_base = 16000;
  int64_t day_span = 1 + static_cast<int64_t>(rng.Below(30));

  // m0: int measure. Magnitude class keeps |sum| well inside int64.
  static const int64_t kIntMagnitudes[] = {1, 100, 1000000000000LL};
  int64_t m0_mag = kIntMagnitudes[rng.Below(3)];
  bool m0_signed = rng.Chance(0.5);
  double m0_null_frac = rng.Chance(0.4) ? 0.15 : 0.0;

  // m1: non-negative double measure, mixed magnitudes 1e-6 .. 1e6.
  double m1_null_frac = rng.Chance(0.4) ? 0.15 : 0.0;
  bool m1_tiny = rng.Chance(0.3);

  std::vector<ColumnInfo> schema = {
      {"d0", DataType::String()},  {"d1", DataType::String()},
      {"d2", DataType::Int64()},   {"day", DataType::Date()},
      {"m0", DataType::Int64()},   {"m1", DataType::Float64()},
  };
  TableBuilder builder(ds.table, schema);
  TableBuilder builder_plain(ds.table, schema);
  for (int c = 0; c < static_cast<int>(schema.size()); ++c) {
    builder_plain.SetEncodingChoice(c, tde::EncodingChoice::kForcePlain);
  }

  auto pick_string = [&](const StringDimProfile& p, int64_t row) -> Value {
    if (p.null_frac > 0 && rng.Chance(p.null_frac)) return Value::Null();
    if (p.sorted_runs) {
      // Long runs of equal values, in pool order: RLE-friendly.
      int64_t run = std::max<int64_t>(1, ds.rows / std::max<size_t>(
                                             1, p.pool.size()));
      size_t idx = std::min(p.pool.size() - 1,
                            static_cast<size_t>(row / run));
      return Value(p.pool[idx]);
    }
    return Value(p.pool[rng.Below(p.pool.size())]);
  };

  for (int64_t r = 0; r < ds.rows; ++r) {
    std::vector<Value> row;
    row.push_back(pick_string(d0, r));
    row.push_back(pick_string(d1, r));
    if (d2_null_frac > 0 && rng.Chance(d2_null_frac)) {
      row.push_back(Value::Null());
    } else {
      row.push_back(Value(d2_base + static_cast<int64_t>(rng.Below(
                                        static_cast<uint64_t>(d2_card)))));
    }
    row.push_back(Value(day_base + rng.Range(0, day_span - 1)));
    if (m0_null_frac > 0 && rng.Chance(m0_null_frac)) {
      row.push_back(Value::Null());
    } else {
      int64_t v = rng.Range(0, m0_mag);
      if (m0_signed && rng.Chance(0.5)) v = -v;
      row.push_back(Value(v));
    }
    if (m1_null_frac > 0 && rng.Chance(m1_null_frac)) {
      row.push_back(Value::Null());
    } else {
      double v = m1_tiny ? rng.NextDouble() * 1e-6
                         : rng.NextDouble() * 1e6;
      row.push_back(Value(v));
    }
    (void)builder.AddRow(row);
    (void)builder_plain.AddRow(row);
  }

  auto table = builder.Finish();
  ds.db = std::make_shared<tde::Database>("fuzzdb");
  (void)ds.db->AddTable(*table);
  auto table_plain = builder_plain.Finish();
  ds.db_plain = std::make_shared<tde::Database>("fuzzdb_plain");
  (void)ds.db_plain->AddTable(*table_plain);

  // Literal pools for filter generation: occurring values, a NULL literal,
  // and out-of-domain probes.
  auto string_pool = [&](const StringDimProfile& p) {
    std::vector<Value> pool;
    for (const std::string& s : p.pool) pool.emplace_back(s);
    pool.push_back(Value::Null());
    pool.emplace_back("zz-absent");
    return pool;
  };
  ds.pools["d0"] = string_pool(d0);
  ds.pools["d1"] = string_pool(d1);
  {
    std::vector<Value> pool;
    for (int64_t v = d2_base - 1; v <= d2_base + d2_card; ++v) {
      pool.emplace_back(v);
    }
    pool.push_back(Value::Null());
    ds.pools["d2"] = pool;
  }
  {
    std::vector<Value> pool;
    for (int64_t v = day_base; v < day_base + day_span; v += 3) {
      pool.emplace_back(v);
    }
    pool.emplace_back(day_base - 100);
    ds.pools["day"] = pool;
  }
  {
    std::vector<Value> pool = {Value(static_cast<int64_t>(0)),
                               Value(m0_mag / 2), Value(m0_mag),
                               Value(-m0_mag / 3)};
    ds.pools["m0"] = pool;
  }
  {
    std::vector<Value> pool = {Value(0.0), Value(1e-7), Value(0.5),
                               Value(2.5e5), Value(1e6)};
    ds.pools["m1"] = pool;
  }

  // --- join dimension table (join_fuzz.h lanes). Generated after every
  // fact-table rng draw so existing datasets are byte-identical for a
  // given seed. Keys come from d0's pool so fact rows usually match;
  // skipped keys leave fact rows unmatched, duplicated keys multiply
  // matches, and NULL/absent keys probe the never-match contract. ---
  {
    std::vector<ColumnInfo> dim_schema = {{"k", DataType::String()},
                                          {"p", DataType::Int64()}};
    TableBuilder dim_builder(ds.dim_table, dim_schema);
    TableBuilder dim_builder_plain(ds.dim_table, dim_schema);
    for (int c = 0; c < static_cast<int>(dim_schema.size()); ++c) {
      dim_builder_plain.SetEncodingChoice(c, tde::EncodingChoice::kForcePlain);
    }
    auto add_dim_row = [&](const Value& k) {
      std::vector<Value> row = {k, Value(rng.Range(-50, 50))};
      (void)dim_builder.AddRow(row);
      (void)dim_builder_plain.AddRow(row);
      ++ds.dim_rows;
    };
    if (!rng.Chance(0.1)) {  // 10%: empty dimension table
      size_t keys = std::min<size_t>(d0.pool.size(), 60);
      for (size_t i = 0; i < keys; ++i) {
        if (rng.Chance(0.2)) continue;  // fact rows with no dim match
        add_dim_row(Value(d0.pool[i]));
        if (rng.Chance(0.2)) add_dim_row(Value(d0.pool[i]));  // duplicate
      }
      for (int i = 0; i < 2; ++i) {  // keys the fact side never has
        if (rng.Chance(0.5)) {
          add_dim_row(Value("dimonly" + std::to_string(i)));
        }
      }
      if (rng.Chance(0.4)) add_dim_row(Value::Null());  // never matches
    }
    (void)ds.db->AddTable(*dim_builder.Finish());
    (void)ds.db_plain->AddTable(*dim_builder_plain.Finish());
  }
  return ds;
}

}  // namespace vizq::testing
