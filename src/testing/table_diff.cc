#include "src/testing/table_diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace vizq::testing {

namespace {

bool ColumnsAgree(const ResultTable& expected, const ResultTable& actual,
                  std::string* message) {
  if (expected.num_columns() != actual.num_columns()) {
    *message = "column count mismatch: expected " +
               std::to_string(expected.num_columns()) + ", actual " +
               std::to_string(actual.num_columns());
    return false;
  }
  for (int i = 0; i < expected.num_columns(); ++i) {
    if (expected.columns()[i].name != actual.columns()[i].name) {
      *message = "column " + std::to_string(i) + " name mismatch: expected '" +
                 expected.columns()[i].name + "', actual '" +
                 actual.columns()[i].name + "'";
      return false;
    }
  }
  return true;
}

bool RowsEquivalent(const ResultTable::Row& a, const ResultTable::Row& b,
                    const DiffOptions& options) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!CellsEquivalent(a[i], b[i], options)) return false;
  }
  return true;
}

// Lexicographic row order via Value::Compare (NULL first, binary strings).
bool RowLess(const ResultTable::Row& a, const ResultTable::Row& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    int cmp = a[i].Compare(b[i]);
    if (cmp != 0) return cmp < 0;
  }
  return a.size() < b.size();
}

std::string RowToString(const ResultTable::Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].is_null() ? "NULL" : row[i].ToString();
  }
  out += ")";
  return out;
}

std::vector<ResultTable::Row> SortedRows(const ResultTable& t) {
  std::vector<ResultTable::Row> rows = t.rows();
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

}  // namespace

bool CellsEquivalent(const Value& a, const Value& b,
                     const DiffOptions& options) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  // Doubles (on either side) compare with tolerance; this also covers
  // int-vs-double kind drift between lanes (e.g. a SUM surfaced as double
  // by one lane and int by another).
  if (a.is_double() || b.is_double()) {
    if (!a.is_numeric() || !b.is_numeric()) return false;
    double x = a.AsDouble();
    double y = b.AsDouble();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
    double diff = std::fabs(x - y);
    double scale = std::max(std::fabs(x), std::fabs(y));
    return diff <= options.abs_tol + options.rel_tol * scale;
  }
  return a.Equals(b);
}

DiffResult DiffTables(const ResultTable& expected, const ResultTable& actual,
                      const DiffOptions& options) {
  DiffResult r;
  if (!ColumnsAgree(expected, actual, &r.message)) {
    r.equivalent = false;
    return r;
  }
  if (expected.num_rows() != actual.num_rows()) {
    r.equivalent = false;
    r.message = "row count mismatch: expected " +
                std::to_string(expected.num_rows()) + ", actual " +
                std::to_string(actual.num_rows());
    return r;
  }
  // Canonical sort on both sides, then pairwise comparison with tolerance.
  // Tolerances are far smaller than genuine value differences in any
  // generated dataset, so nearly-equal rows sort to the same position.
  std::vector<ResultTable::Row> exp = SortedRows(expected);
  std::vector<ResultTable::Row> act = SortedRows(actual);
  for (size_t i = 0; i < exp.size(); ++i) {
    if (!RowsEquivalent(exp[i], act[i], options)) {
      r.equivalent = false;
      r.message = "row mismatch at canonical position " + std::to_string(i) +
                  ": expected " + RowToString(exp[i]) + ", actual " +
                  RowToString(act[i]);
      return r;
    }
  }
  return r;
}

DiffResult DiffTopN(const ResultTable& expected_limited,
                    const ResultTable& expected_unlimited,
                    const ResultTable& actual,
                    const query::AbstractQuery& query,
                    const DiffOptions& options) {
  DiffResult r;
  if (!ColumnsAgree(expected_limited, actual, &r.message)) {
    r.equivalent = false;
    return r;
  }
  if (expected_limited.num_rows() != actual.num_rows()) {
    r.equivalent = false;
    r.message = "row count mismatch: expected " +
                std::to_string(expected_limited.num_rows()) + ", actual " +
                std::to_string(actual.num_rows());
    return r;
  }

  // Positional agreement on the order-by key columns: ties may swap rows,
  // but the key sequence is fully determined by the ordering.
  std::vector<int> key_cols;
  for (const query::OrderSpec& o : query.order_by) {
    auto idx = actual.FindColumn(o.by_alias);
    if (!idx.has_value()) {
      r.equivalent = false;
      r.message = "order-by column '" + o.by_alias + "' missing from result";
      return r;
    }
    key_cols.push_back(*idx);
  }
  for (int64_t i = 0; i < actual.num_rows(); ++i) {
    for (int c : key_cols) {
      if (!CellsEquivalent(expected_limited.at(i, c), actual.at(i, c),
                           options)) {
        r.equivalent = false;
        r.message = "order-by key mismatch at row " + std::to_string(i) +
                    " column '" + actual.columns()[c].name + "': expected " +
                    expected_limited.at(i, c).ToString() + ", actual " +
                    actual.at(i, c).ToString();
        return r;
      }
    }
  }

  // Every actual row must be drawn from the unlimited reference result
  // (multiset containment: a reference row serves at most one actual row).
  std::vector<ResultTable::Row> pool = expected_unlimited.rows();
  std::vector<char> used(pool.size(), 0);
  for (int64_t i = 0; i < actual.num_rows(); ++i) {
    bool found = false;
    for (size_t j = 0; j < pool.size(); ++j) {
      if (used[j]) continue;
      if (RowsEquivalent(pool[j], actual.row(i), options)) {
        used[j] = 1;
        found = true;
        break;
      }
    }
    if (!found) {
      r.equivalent = false;
      r.message = "row " + std::to_string(i) + " = " +
                  RowToString(actual.row(i)) +
                  " does not appear in the unlimited reference result";
      return r;
    }
  }
  return r;
}

DiffResult DiffForQuery(const ResultTable& expected_limited,
                        const ResultTable& expected_unlimited,
                        const ResultTable& actual,
                        const query::AbstractQuery& query,
                        const DiffOptions& options) {
  if (!query.order_by.empty() || query.has_limit()) {
    return DiffTopN(expected_limited, expected_unlimited, actual, query,
                    options);
  }
  return DiffTables(expected_limited, actual, options);
}

}  // namespace vizq::testing
