// QueryGen: random abstract aggregate-select-project queries over a
// generated Dataset — GROUP BY subsets (including dims-only domain
// queries and scalar aggregates), every AggFunc, IN-set / range / null
// predicates, and optional order-by + limit — plus metamorphic rewrites
// with known answer relationships:
//   * SplitInFilter: when an IN-filtered column is also a dimension, the
//     result is the disjoint union of the results over a partition of the
//     IN-set;
//   * RollUpQuery: a coarser GROUP BY whose (re-aggregable) answer must
//     equal the naive roll-up of the finer result.

#ifndef VIZQUERY_TESTING_QUERY_GEN_H_
#define VIZQUERY_TESTING_QUERY_GEN_H_

#include <optional>

#include "src/common/rng.h"
#include "src/query/abstract_query.h"
#include "src/testing/dataset_gen.h"

namespace vizq::testing {

// Generates one random query against `ds`. Always satisfiable by every
// lane: at least one dimension or measure; limit only with order-by.
query::AbstractQuery GenerateQuery(const Dataset& ds, Rng& rng);

// Metamorphic rewrite: if `q` has an IN filter on one of its dimensions
// with >= 2 values, returns two copies of `q` whose IN-sets partition the
// original. result(q) == result(first) ⊎ result(second).
std::optional<std::pair<query::AbstractQuery, query::AbstractQuery>>
SplitInFilter(const query::AbstractQuery& q, Rng& rng);

// Metamorphic rewrite: drops a strict subset of q's dimensions (and any
// order/limit). Only valid when every measure re-aggregates (SUM, MIN,
// MAX, COUNT(*)); returns nullopt otherwise. result(coarse) ==
// OracleAggregateRows(result(q), rollup-spec).
std::optional<query::AbstractQuery> RollUpQuery(const query::AbstractQuery& q,
                                                Rng& rng);

// The aggregation query that rolls a fine result (named by f's output
// columns) up to `coarse`'s granularity: COUNT(c) becomes SUM over the
// fine count column, etc. Used with OracleAggregateRows on the fine
// lane's rows.
query::AbstractQuery RollupSpec(const query::AbstractQuery& fine,
                                const query::AbstractQuery& coarse);

}  // namespace vizq::testing

#endif  // VIZQUERY_TESTING_QUERY_GEN_H_
