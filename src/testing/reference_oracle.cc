#include "src/testing/reference_oracle.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

namespace vizq::testing {

namespace {

using query::AbstractQuery;
using query::ColumnPredicate;
using query::Measure;
using query::OrderSpec;

// Independent re-statement of the predicate contract: NULL satisfies
// nothing; IN compares with Equals (a NULL literal in the set matches no
// row); ranges compare with Value::Compare.
bool PredicateAdmits(const Value& v, const ColumnPredicate& p) {
  if (v.is_null()) return false;
  if (p.kind == ColumnPredicate::Kind::kInSet) {
    for (const Value& candidate : p.values) {
      if (!candidate.is_null() && v.Equals(candidate)) return true;
    }
    return false;
  }
  if (p.lower.has_value()) {
    int cmp = v.Compare(*p.lower);
    if (cmp < 0 || (cmp == 0 && !p.lower_inclusive)) return false;
  }
  if (p.upper.has_value()) {
    int cmp = v.Compare(*p.upper);
    if (cmp > 0 || (cmp == 0 && !p.upper_inclusive)) return false;
  }
  return true;
}

struct RowLess {
  bool operator()(const ResultTable::Row& a,
                  const ResultTable::Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int cmp = a[i].Compare(b[i]);
      if (cmp != 0) return cmp < 0;
    }
    return a.size() < b.size();
  }
};

// Naive per-group accumulator for one measure.
struct Accumulator {
  int64_t count = 0;        // non-null inputs seen (rows for COUNT(*))
  int64_t sum_i = 0;        // integer SUM
  double sum_d = 0;         // double SUM / AVG numerator
  bool input_is_double = false;
  Value extreme;            // MIN/MAX carrier, NULL until first input
  std::set<Value> distinct;  // COUNTD
};

DataType OracleResultType(const Measure& m, const DataType& input) {
  switch (m.func) {
    case AggFunc::kSum:
      return input.kind == TypeKind::kFloat64 ? DataType::Float64()
                                              : DataType::Int64();
    case AggFunc::kMin:
    case AggFunc::kMax:
      return input;
    case AggFunc::kAvg:
      return DataType::Float64();
    case AggFunc::kCount:
    case AggFunc::kCountStar:
    case AggFunc::kCountDistinct:
      return DataType::Int64();
  }
  return DataType::Int64();
}

void Accumulate(Accumulator& acc, const Measure& m, const Value& v) {
  if (m.func == AggFunc::kCountStar) {
    ++acc.count;
    return;
  }
  if (v.is_null()) return;
  ++acc.count;
  switch (m.func) {
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (v.is_double()) {
        acc.sum_d += v.double_value();
        acc.input_is_double = true;
      } else {
        acc.sum_i += v.int_value();
        acc.sum_d += static_cast<double>(v.int_value());
      }
      break;
    case AggFunc::kMin:
      if (acc.extreme.is_null() || v.Compare(acc.extreme) < 0) acc.extreme = v;
      break;
    case AggFunc::kMax:
      if (acc.extreme.is_null() || v.Compare(acc.extreme) > 0) acc.extreme = v;
      break;
    case AggFunc::kCountDistinct:
      acc.distinct.insert(v);
      break;
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      break;  // count already bumped
  }
}

Value Finalize(const Accumulator& acc, const Measure& m) {
  switch (m.func) {
    case AggFunc::kSum:
      if (acc.count == 0) return Value::Null();
      return acc.input_is_double ? Value(acc.sum_d) : Value(acc.sum_i);
    case AggFunc::kMin:
    case AggFunc::kMax:
      return acc.extreme;  // NULL when no non-null input
    case AggFunc::kAvg:
      if (acc.count == 0) return Value::Null();
      return Value(acc.sum_d / static_cast<double>(acc.count));
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return Value(acc.count);
    case AggFunc::kCountDistinct:
      return Value(static_cast<int64_t>(acc.distinct.size()));
  }
  return Value::Null();
}

}  // namespace

StatusOr<ResultTable> OracleAggregateRows(
    const std::vector<ResultColumn>& input_columns,
    const std::vector<ResultTable::Row>& input_rows,
    const AbstractQuery& q) {
  if (q.dimensions.empty() && q.measures.empty()) {
    return InvalidArgument("oracle: query has neither dimensions nor measures");
  }

  std::map<std::string, int> by_name;
  for (size_t i = 0; i < input_columns.size(); ++i) {
    by_name[input_columns[i].name] = static_cast<int>(i);
  }
  auto resolve = [&](const std::string& name) -> StatusOr<int> {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return NotFound("oracle: column '" + name + "' not in input");
    }
    return it->second;
  };

  std::vector<int> dim_idx;
  for (const std::string& d : q.dimensions) {
    VIZQ_ASSIGN_OR_RETURN(int idx, resolve(d));
    dim_idx.push_back(idx);
  }
  std::vector<int> measure_idx;  // -1 for COUNT(*)
  for (const Measure& m : q.measures) {
    if (m.func == AggFunc::kCountStar) {
      measure_idx.push_back(-1);
    } else {
      VIZQ_ASSIGN_OR_RETURN(int idx, resolve(m.column));
      measure_idx.push_back(idx);
    }
  }
  std::vector<std::pair<int, const ColumnPredicate*>> filters;
  for (const ColumnPredicate& p : q.filters.predicates) {
    VIZQ_ASSIGN_OR_RETURN(int idx, resolve(p.column));
    filters.emplace_back(idx, &p);
  }

  // Output schema.
  std::vector<ResultColumn> out_cols;
  for (size_t i = 0; i < q.dimensions.size(); ++i) {
    out_cols.push_back(
        ResultColumn{q.dimensions[i], input_columns[dim_idx[i]].type});
  }
  for (size_t i = 0; i < q.measures.size(); ++i) {
    DataType input = measure_idx[i] >= 0 ? input_columns[measure_idx[i]].type
                                         : DataType::Int64();
    out_cols.push_back(ResultColumn{q.measures[i].EffectiveAlias(),
                                    OracleResultType(q.measures[i], input)});
  }
  ResultTable out(std::move(out_cols));

  // One pass: filter, group, accumulate.
  std::map<ResultTable::Row, std::vector<Accumulator>, RowLess> groups;
  const bool scalar = q.dimensions.empty() && !q.measures.empty();
  if (scalar) {
    // A scalar aggregate emits one row even over empty input.
    groups.emplace(ResultTable::Row{},
                   std::vector<Accumulator>(q.measures.size()));
  }
  for (const ResultTable::Row& row : input_rows) {
    bool pass = true;
    for (const auto& [idx, pred] : filters) {
      if (!PredicateAdmits(row[idx], *pred)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    ResultTable::Row key;
    key.reserve(dim_idx.size());
    for (int idx : dim_idx) key.push_back(row[idx]);
    auto [it, inserted] =
        groups.try_emplace(std::move(key), q.measures.size());
    for (size_t mi = 0; mi < q.measures.size(); ++mi) {
      Value v = measure_idx[mi] >= 0 ? row[measure_idx[mi]] : Value::Null();
      Accumulate(it->second[mi], q.measures[mi], v);
    }
  }

  for (const auto& [key, accs] : groups) {
    ResultTable::Row row = key;
    for (size_t mi = 0; mi < q.measures.size(); ++mi) {
      row.push_back(Finalize(accs[mi], q.measures[mi]));
    }
    out.AddRow(std::move(row));
  }

  // ORDER BY (stable; NULL first ascending, last descending) + LIMIT.
  if (!q.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;
    for (const OrderSpec& o : q.order_by) {
      auto idx = out.FindColumn(o.by_alias);
      if (!idx.has_value()) {
        return InvalidArgument("oracle: order-by alias '" + o.by_alias +
                               "' is not an output column");
      }
      keys.emplace_back(*idx, o.ascending);
    }
    std::vector<int64_t> order(out.num_rows());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      for (const auto& [col, asc] : keys) {
        int cmp = out.at(a, col).Compare(out.at(b, col));
        if (cmp != 0) return asc ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    ResultTable sorted(std::vector<ResultColumn>(out.columns()));
    for (int64_t i : order) sorted.AddRow(out.row(i));
    out = std::move(sorted);
  }
  if (q.has_limit() && out.num_rows() > q.limit) {
    ResultTable limited(std::vector<ResultColumn>(out.columns()));
    for (int64_t i = 0; i < q.limit; ++i) limited.AddRow(out.row(i));
    out = std::move(limited);
  }
  return out;
}

StatusOr<ResultTable> OracleExecute(const tde::Table& table,
                                    const AbstractQuery& q) {
  std::vector<int> all_columns(table.num_columns());
  std::iota(all_columns.begin(), all_columns.end(), 0);
  ResultTable raw = table.Slice(0, table.num_rows(), all_columns);
  return OracleAggregateRows(raw.columns(), raw.rows(), q);
}

}  // namespace vizq::testing
