// JoinFuzz: the differential fuzzer's join lane. Generates two-table
// equi-joins — fact ⋈ dimension on d0 = k, inner and left-outer — topped
// by a generated aggregation over the joined schema, and diffs every TDE
// execution mode against a nested-loop reference join evaluated with the
// row-at-a-time oracle aggregator (reference_oracle.h).
//
// Semantics under test (DESIGN.md §8 plus the join contract):
//   * NULL keys never match — on either side, for both join types.
//   * Duplicate dimension keys multiply matches (one fact row can emit
//     several joined rows).
//   * A left-outer fact row with no match emits NULL dimension columns,
//     which then flow through grouping (NULL is an ordinary group key)
//     and aggregation (aggregates skip NULLs, COUNT(*) does not).
//
// Lanes: join_serial (all-serial plan), join_parallel (forced morsels +
// partitioned build + partitioned final merge at tiny thresholds) and
// join_plain (the forced-kPlain encoding twin), all diffed
// order-insensitively against the oracle.

#ifndef VIZQUERY_TESTING_JOIN_FUZZ_H_
#define VIZQUERY_TESTING_JOIN_FUZZ_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/query/abstract_query.h"
#include "src/tde/exec/join.h"
#include "src/tde/plan/logical.h"
#include "src/testing/dataset_gen.h"
#include "src/testing/lanes.h"

namespace vizq::testing {

// One generated join case: the join shape plus an aggregation whose
// dimensions/measures name columns of the joined schema (fact columns
// d0..m1 and dimension columns k, p — no name collisions by construction).
struct JoinFuzzCase {
  tde::JoinType join_type = tde::JoinType::kInner;
  query::AbstractQuery agg;

  std::string Describe() const;
};

// Deterministic in `rng`: group-by over 0–2 of {d0, d1, d2, k} with 1–2
// aggregates over {m0, m1, p} (SUM/MIN/MAX/COUNT/AVG/COUNTD) and an
// occasional COUNT(*).
JoinFuzzCase GenerateJoinCase(const Dataset& ds, Rng& rng);

// The logical plan: Aggregate(agg) over Join(Scan(fact), Scan(dim)).
tde::LogicalOpPtr BuildJoinPlan(const Dataset& ds, const JoinFuzzCase& jc);

// Nested-loop reference: materializes the join row-at-a-time (NULL keys
// never match; left-outer emits NULL right columns), then aggregates with
// OracleAggregateRows. Written independently of the hash-join operator.
StatusOr<ResultTable> OracleJoinExecute(const Dataset& ds,
                                        const JoinFuzzCase& jc);

// Runs the case through the serial, forced-parallel and forced-plain
// engines, diffing each against the nested-loop oracle.
std::vector<LaneCheck> RunJoinLanes(const Dataset& ds, const JoinFuzzCase& jc,
                                    const DiffOptions& diff);

}  // namespace vizq::testing

#endif  // VIZQUERY_TESTING_JOIN_FUZZ_H_
